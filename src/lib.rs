//! # toposem
//!
//! A complete Rust implementation of Siebes & Kersten, *Using Design
//! Axioms and Topology to Model Database Semantics* (CWI CS-R8711, 1987):
//! six design axioms, entity-type topologies, extensions with containment
//! and the Extension Axiom, entity-type functional dependencies with the
//! Armstrong calculus, the §6 constraint extensions, a presheaf view of
//! extensions, an enforcing storage engine, and the Universal Relation
//! baseline the paper argues against.
//!
//! This crate is a facade: every subsystem lives in its own crate and is
//! re-exported here under a module named after its role.
//!
//! ## Quickstart
//!
//! ```
//! use toposem::core::{employee_schema, Intension};
//! use toposem::extension::{ContainmentPolicy, Database, DomainCatalog, Value};
//!
//! let intension = Intension::analyse(employee_schema());
//! // R1 of the paper: worksfor is the only constructed entity type.
//! let constructed: Vec<&str> = intension
//!     .constructed_types()
//!     .iter()
//!     .map(|&e| intension.schema().type_name(e))
//!     .collect();
//! assert_eq!(constructed, vec!["worksfor"]);
//!
//! let mut db = Database::new(
//!     intension,
//!     DomainCatalog::employee_defaults(),
//!     ContainmentPolicy::Eager,
//! );
//! let manager = db.schema().type_id("manager").unwrap();
//! db.insert_fields(manager, &[
//!     ("name", Value::str("ann")),
//!     ("age", Value::Int(40)),
//!     ("depname", Value::str("sales")),
//!     ("budget", Value::Int(100_000)),
//! ]).unwrap();
//! // Containment: ann is automatically an employee and a person.
//! let person = db.schema().type_id("person").unwrap();
//! assert_eq!(db.extension(person).len(), 1);
//! ```

/// Finite topological spaces (bitsets, subbases, preorders, continuity).
pub mod topology {
    pub use toposem_topology::*;
}

/// The conceptual model: schemas, axioms, S/G topologies, contributors,
/// views, intensions.
pub mod core {
    pub use toposem_core::*;
}

/// Extensions: domains, instances, relations, containment, joins, the
/// Extension Axiom, evolution.
pub mod extension {
    pub use toposem_extension::*;
}

/// Functional dependencies over entity types: Armstrong calculus,
/// propagation, nucleus, mappings, keys, soundness/completeness harness.
pub mod fd {
    pub use toposem_fd::*;
}

/// §6 constraints: boolean algebras, nulls, MVDs, join dependencies.
pub mod constraints {
    pub use toposem_constraints::*;
}

/// Presheaves and the extension presheaf.
pub mod sheaf {
    pub use toposem_sheaf::*;
}

/// The enforcing storage engine, query algebra, and views.
pub mod storage {
    pub use toposem_storage::*;
}

/// Write-ahead logging, checkpointing, and crash recovery.
pub mod wal {
    pub use toposem_wal::*;
}

/// The cost-based query planner and vectorised executor.
pub mod planner {
    pub use toposem_planner::*;
}

/// Observability: per-operator execution profiles, the engine metrics
/// registry (Prometheus text export), and the query trace ring.
pub mod obs {
    pub use toposem_obs::*;
}

/// Concurrency & sessions: MVCC snapshot routing, per-connection
/// session state, and the line-protocol TCP front end.
pub mod server {
    pub use toposem_server::*;
}

/// Replication: WAL-segment shipping from a primary to read-only
/// followers through pluggable `SegmentTransport`s.
pub mod repl {
    pub use toposem_repl::*;
}

/// The Universal Relation baseline.
pub mod ur {
    pub use toposem_ur::*;
}

/// Design methodology, EAR import, subbase selection, synthesiser.
pub mod design {
    pub use toposem_design::*;
}
