//! The §2 design methodology as executable passes.
//!
//! The paper ends §2 with a recipe ("The axioms introduced so far can be
//! used in the database design process to obtain a concise description of
//! the database as follows: …"). Each bullet becomes a pass producing
//! [`Finding`]s; running them over a draft schema yields the same advice
//! the paper dispenses by hand.

use toposem_core::{view_like_types, GeneralisationTopology, Schema, TypeId};
use toposem_topology::BitSet;

/// A finding of the design process, with the paper's remedial advice.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Finding {
    /// Two entity types share an attribute set: synonyms or underspecified
    /// (recipe step 2).
    Synonyms {
        /// First type.
        a: TypeId,
        /// Second type.
        b: TypeId,
    },
    /// An entity type adds nothing over the union of other types: an
    /// entity view to remove (recipe step 5).
    ViewLike {
        /// The removable type.
        entity: TypeId,
    },
    /// An attribute occurs in exactly one entity type — fine — or in
    /// *zero* entity types: dead weight in the universe.
    UnusedAttribute {
        /// The unused attribute.
        attr: toposem_core::AttrId,
    },
    /// A pair of entity types overlaps on attributes without either
    /// containing the other and with no explicated intersection type: the
    /// Integrity-Axiom discipline (and FD completeness, see
    /// `toposem-fd::implication`) wants the shared unit explicated
    /// (recipe step 6).
    UnexplicatedIntersection {
        /// First type.
        a: TypeId,
        /// Second type.
        b: TypeId,
        /// The shared attribute set nobody explicates.
        shared: BitSet,
    },
    /// A relationship-looking type (compound, no extra attributes) whose
    /// designated contributors differ from the computed direct
    /// generalisations (recipe steps 3–4).
    ContributorMismatch {
        /// The compound type.
        entity: TypeId,
        /// The designer's designation.
        declared: Vec<TypeId>,
        /// The computed direct generalisations.
        computed: Vec<TypeId>,
    },
}

/// Runs every design pass over a schema.
pub fn run_design_process(schema: &Schema) -> Vec<Finding> {
    let mut findings = Vec::new();
    synonyms_pass(schema, &mut findings);
    view_pass(schema, &mut findings);
    unused_attribute_pass(schema, &mut findings);
    intersection_pass(schema, &mut findings);
    contributor_pass(schema, &mut findings);
    findings
}

fn synonyms_pass(schema: &Schema, findings: &mut Vec<Finding>) {
    for a in schema.type_ids() {
        for b in schema.type_ids() {
            if a < b && schema.attrs_of(a) == schema.attrs_of(b) {
                findings.push(Finding::Synonyms { a, b });
            }
        }
    }
}

fn view_pass(schema: &Schema, findings: &mut Vec<Finding>) {
    for entity in view_like_types(schema) {
        findings.push(Finding::ViewLike { entity });
    }
}

fn unused_attribute_pass(schema: &Schema, findings: &mut Vec<Finding>) {
    for attr in schema.attr_ids() {
        if schema.occurrence_set(attr).is_empty() {
            findings.push(Finding::UnusedAttribute { attr });
        }
    }
}

fn intersection_pass(schema: &Schema, findings: &mut Vec<Finding>) {
    for a in schema.type_ids() {
        for b in schema.type_ids() {
            if a >= b {
                continue;
            }
            let shared = schema.attrs_of(a).intersection(schema.attrs_of(b));
            if shared.is_empty()
                || schema.attrs_of(a).is_subset(schema.attrs_of(b))
                || schema.attrs_of(b).is_subset(schema.attrs_of(a))
            {
                continue;
            }
            let explicated = schema.type_ids().any(|t| schema.attrs_of(t) == &shared);
            if !explicated {
                findings.push(Finding::UnexplicatedIntersection { a, b, shared });
            }
        }
    }
}

fn contributor_pass(schema: &Schema, findings: &mut Vec<Finding>) {
    let gen = GeneralisationTopology::of_schema(schema);
    for e in schema.type_ids() {
        if let Some(declared) = &schema.entity_type(e).declared_contributors {
            let computed: Vec<TypeId> =
                toposem_core::contributors::computed_contributors(schema, &gen, e)
                    .iter()
                    .map(|i| TypeId(i as u32))
                    .collect();
            let mut d = declared.clone();
            d.sort_unstable();
            let mut c = computed.clone();
            c.sort_unstable();
            if d != c {
                findings.push(Finding::ContributorMismatch {
                    entity: e,
                    declared: declared.clone(),
                    computed,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::{employee_schema, SchemaBuilder};

    #[test]
    fn employee_schema_findings() {
        // The paper's schema triggers two classes of advice:
        // 1. worksfor is view-like (the recipe keeps it to designate the
        //    relationship);
        // 2. the intersection {depname} shared by employee/department and
        //    department/manager is never explicated as an entity type —
        //    the very discipline §5's completeness needs (and a finding
        //    the paper's own example would receive from its own recipe).
        let findings = run_design_process(&employee_schema());
        let views = findings
            .iter()
            .filter(|f| matches!(f, Finding::ViewLike { .. }))
            .count();
        let intersections = findings
            .iter()
            .filter(|f| matches!(f, Finding::UnexplicatedIntersection { .. }))
            .count();
        assert_eq!(views, 1);
        assert_eq!(intersections, 2);
        assert_eq!(findings.len(), 3);
    }

    #[test]
    fn unexplicated_intersection_detected() {
        let mut b = SchemaBuilder::new();
        for a in ["a", "b", "c"] {
            b.attribute(a, &format!("d-{a}"));
        }
        b.entity_type("x", &["a", "b"]);
        b.entity_type("y", &["b", "c"]);
        let (schema, violations) = b.build();
        assert!(violations.is_empty());
        let findings = run_design_process(&schema);
        assert!(findings
            .iter()
            .any(|f| matches!(f, Finding::UnexplicatedIntersection { .. })));
        // Explicating {b} clears it.
        let mut b2 = SchemaBuilder::new();
        for a in ["a", "b", "c"] {
            b2.attribute(a, &format!("d-{a}"));
        }
        b2.entity_type("x", &["a", "b"]);
        b2.entity_type("y", &["b", "c"]);
        b2.entity_type("shared", &["b"]);
        let schema2 = b2.build_strict().unwrap();
        assert!(!run_design_process(&schema2)
            .iter()
            .any(|f| matches!(f, Finding::UnexplicatedIntersection { .. })));
    }

    #[test]
    fn unused_attribute_detected() {
        let mut b = SchemaBuilder::new();
        b.attribute("used", "d1");
        b.attribute("dangling", "d2");
        b.entity_type("t", &["used"]);
        let (schema, _) = b.build();
        let findings = run_design_process(&schema);
        assert!(findings
            .iter()
            .any(|f| matches!(f, Finding::UnusedAttribute { .. })));
    }

    #[test]
    fn contributor_mismatch_detected() {
        let mut b = SchemaBuilder::new();
        for a in ["a", "b", "c"] {
            b.attribute(a, &format!("d-{a}"));
        }
        let x = b.entity_type("x", &["a"]);
        let _y = b.entity_type("y", &["b"]);
        let z = b.entity_type("z", &["c"]);
        // r = x ⊎ y ⊎ z but declared with only {x, z}: mismatch vs the
        // computed direct generalisations {x, y, z}.
        let r = b.relationship("r", &[x, z], &["b"]);
        let schema = b.build_strict().unwrap();
        let findings = run_design_process(&schema);
        assert!(findings.iter().any(|f| matches!(
            f,
            Finding::ContributorMismatch { entity, .. } if *entity == r
        )));
    }
}
