//! Dependency-driven decomposition (the §2 recipe's last bullet, made
//! algorithmic).
//!
//! "Thus a dependency might help us in two ways. First we check whether
//! the dependencies varies over entity types. [...] Second we can check
//! whether entity types mentioned in the dependency have been observed as
//! an entity already."
//!
//! This module runs the classical BCNF split at the entity-type level:
//! an FD `x → y` in context `h` whose left side is not a key of `h`
//! signals that `h` bundles two semantic units; splitting `A_h` into
//! `closure(A_x)` and `A_h − (closure(A_x) − A_x)` explicates them. On
//! the employee database the decomposition of `worksfor` under its
//! natural dependency recovers exactly the contributors `{employee,
//! department}` — the recipe converges with §3.3.

use toposem_core::{GeneralisationTopology, Schema, TypeId};
use toposem_fd::ArmstrongEngine;
use toposem_topology::BitSet;

/// A suggested decomposition component: an attribute set, plus the name
/// of the existing entity type with exactly that set when one exists
/// (the unit is already explicated).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Component {
    /// The attribute set of the component.
    pub attrs: BitSet,
    /// The already-declared entity type matching it, if any.
    pub existing: Option<TypeId>,
}

/// Decomposes the context's attribute set under `sigma` until every
/// component is dependency-local (no FD with a non-superkey left side
/// applies inside it). Returns the components; attribute sets may overlap
/// (on the FD left sides), exactly like classical BCNF.
pub fn decompose(
    schema: &Schema,
    gen: &GeneralisationTopology,
    context: TypeId,
    sigma: &[(TypeId, TypeId)],
) -> Vec<Component> {
    let engine = ArmstrongEngine::new(schema, gen, context);
    let mut worklist = vec![schema.attrs_of(context).clone()];
    let mut components = Vec::new();
    while let Some(attrs) = worklist.pop() {
        // Find a violating FD: lhs attrs ⊂ attrs, closure within attrs
        // strictly between lhs and attrs.
        let mut split = None;
        for &(x, _) in sigma {
            let lhs = schema.attrs_of(x);
            if !lhs.is_subset(&attrs) {
                continue;
            }
            let closed = engine.attr_closure(sigma, lhs).intersection(&attrs);
            if closed.is_proper_subset(&attrs) && lhs.is_proper_subset(&closed) {
                split = Some((lhs.clone(), closed));
                break;
            }
        }
        match split {
            Some((lhs, closed)) => {
                // Component 1: the closure; component 2: the rest plus the
                // shared left side.
                let rest = attrs.difference(&closed.difference(&lhs));
                worklist.push(closed);
                worklist.push(rest);
            }
            None => components.push(attrs),
        }
    }
    components.sort();
    components.dedup();
    components
        .into_iter()
        .map(|attrs| {
            let existing = schema.type_ids().find(|&t| schema.attrs_of(t) == &attrs);
            Component { attrs, existing }
        })
        .collect()
}

/// Components not yet explicated as entity types — the recipe's "there
/// should be entity types covering these attributes that have not been
/// made explicit".
pub fn missing_types(components: &[Component]) -> Vec<&Component> {
    components.iter().filter(|c| c.existing.is_none()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::SchemaBuilder;

    /// The employee schema *with the {depname} unit explicated*, which is
    /// what lets `depname → location` be stated as a type-level FD.
    fn explicated_employee_schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.attribute("name", "person-names");
        b.attribute("age", "ages");
        b.attribute("depname", "department-names");
        b.attribute("budget", "amounts");
        b.attribute("location", "locations");
        b.entity_type("employee", &["name", "age", "depname"]);
        b.entity_type("person", &["name", "age"]);
        b.entity_type("department", &["depname", "location"]);
        b.entity_type("manager", &["name", "age", "depname", "budget"]);
        b.entity_type("worksfor", &["name", "age", "depname", "location"]);
        b.entity_type("depkey", &["depname"]);
        b.build_strict().unwrap()
    }

    #[test]
    fn worksfor_decomposes_into_its_contributors() {
        let s = explicated_employee_schema();
        let gen = GeneralisationTopology::of_schema(&s);
        let worksfor = s.type_id("worksfor").unwrap();
        let department = s.type_id("department").unwrap();
        let employee = s.type_id("employee").unwrap();
        let depkey = s.type_id("depkey").unwrap();
        // The natural dependency: the department name determines the
        // location — expressible now that {depname} is explicated.
        let sigma = [(depkey, department)];
        let comps = decompose(&s, &gen, worksfor, &sigma);
        // The split peels off closure({depname}) = department and leaves
        // {name, age, depname} = employee: the recipe recovers exactly
        // the §3.3 contributors.
        let ids: Vec<Option<TypeId>> = comps.iter().map(|c| c.existing).collect();
        assert!(ids.contains(&Some(department)));
        assert!(ids.contains(&Some(employee)));
        assert_eq!(comps.len(), 2);
        assert!(
            missing_types(&comps).is_empty(),
            "both units are explicated"
        );
    }

    #[test]
    fn key_side_fd_needs_no_decomposition() {
        let s = explicated_employee_schema();
        let gen = GeneralisationTopology::of_schema(&s);
        let worksfor = s.type_id("worksfor").unwrap();
        let employee = s.type_id("employee").unwrap();
        let department = s.type_id("department").unwrap();
        // employee → department: employee is a key of worksfor, so the
        // context is already dependency-local.
        let comps = decompose(&s, &gen, worksfor, &[(employee, department)]);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].existing, Some(worksfor));
    }

    #[test]
    fn missing_unit_is_reported() {
        // A context bundling {a, b, c} with b → c (b not a key): the split
        // yields {b, c} and {a, b}, neither declared as an entity type.
        let mut b = SchemaBuilder::new();
        for x in ["a", "b", "c"] {
            b.attribute(x, &format!("d{x}"));
        }
        let tb = b.entity_type("tb", &["b"]);
        let tc = b.entity_type("tc", &["c"]);
        let all = b.entity_type("all", &["a", "b", "c"]);
        let schema = b.build_strict().unwrap();
        let gen = GeneralisationTopology::of_schema(&schema);
        let comps = decompose(&schema, &gen, all, &[(tb, tc)]);
        assert_eq!(comps.len(), 2);
        assert_eq!(missing_types(&comps).len(), 2);
    }

    #[test]
    fn no_fds_means_no_split() {
        let s = explicated_employee_schema();
        let gen = GeneralisationTopology::of_schema(&s);
        let manager = s.type_id("manager").unwrap();
        let comps = decompose(&s, &gen, manager, &[]);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].existing, Some(manager));
    }
}
