//! EAR (Entity-Attribute-Relationship) import: the Chen-model baseline
//! translated into axiom-conform schemas.
//!
//! §1: "The important contribution of the EAR model over the relational
//! data model is the distinction between entities and relationships […]
//! However, lack of formalisation of the EAR model makes the analysis of
//! a conceptual schema cumbersome." The translation demonstrates the
//! Relationship Axiom: an EAR relationship becomes just another entity
//! type (the union of its participants plus relationship attributes), and
//! its cardinality annotations become FD suggestions in the new type's
//! context.

use toposem_core::{GeneralisationTopology, Schema, SchemaBuilder, TypeId};
use toposem_fd::Fd;

/// Relationship cardinality in the EAR sense.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cardinality {
    /// 1:1 — each side determines the other.
    OneToOne,
    /// 1:n — the "n" side determines the "1" side.
    OneToMany,
    /// n:m — no functional constraint.
    ManyToMany,
}

/// An EAR entity.
#[derive(Clone, Debug)]
pub struct ErEntity {
    /// Entity name.
    pub name: String,
    /// `(attribute, domain)` pairs.
    pub attrs: Vec<(String, String)>,
}

/// An EAR relationship between exactly two entities (the common case; the
/// paper's argument does not depend on arity).
#[derive(Clone, Debug)]
pub struct ErRelationship {
    /// Relationship name.
    pub name: String,
    /// The "1"/left participant.
    pub left: String,
    /// The "n"/right participant.
    pub right: String,
    /// Relationship-own attributes.
    pub attrs: Vec<(String, String)>,
    /// Cardinality annotation.
    pub cardinality: Cardinality,
}

/// An EAR schema.
#[derive(Clone, Debug, Default)]
pub struct ErSchema {
    /// Entities.
    pub entities: Vec<ErEntity>,
    /// Relationships.
    pub relationships: Vec<ErRelationship>,
}

/// Errors during import.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ImportError {
    /// A relationship references an unknown entity.
    UnknownParticipant(String),
    /// The translated schema violates the design axioms.
    AxiomViolation(String),
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::UnknownParticipant(n) => write!(f, "unknown participant `{n}`"),
            ImportError::AxiomViolation(m) => write!(f, "axioms violated: {m}"),
        }
    }
}

impl std::error::Error for ImportError {}

/// The import result: the schema plus the FDs the cardinalities induce.
#[derive(Debug)]
pub struct Imported {
    /// The axiom-conform schema (relationships are entity types).
    pub schema: Schema,
    /// Cardinality-induced FDs, in each relationship's context.
    pub fds: Vec<Fd>,
}

/// Translates an EAR schema.
pub fn import(er: &ErSchema) -> Result<Imported, ImportError> {
    let mut b = SchemaBuilder::new();
    for e in &er.entities {
        for (a, d) in &e.attrs {
            b.attribute(a, d);
        }
    }
    for r in &er.relationships {
        for (a, d) in &r.attrs {
            b.attribute(a, d);
        }
    }
    let mut ids: std::collections::HashMap<&str, TypeId> = std::collections::HashMap::new();
    for e in &er.entities {
        let attr_names: Vec<&str> = e.attrs.iter().map(|(a, _)| a.as_str()).collect();
        ids.insert(e.name.as_str(), b.entity_type(&e.name, &attr_names));
    }
    let mut rel_plan: Vec<(TypeId, TypeId, TypeId, Cardinality)> = Vec::new();
    for r in &er.relationships {
        let left = *ids
            .get(r.left.as_str())
            .ok_or_else(|| ImportError::UnknownParticipant(r.left.clone()))?;
        let right = *ids
            .get(r.right.as_str())
            .ok_or_else(|| ImportError::UnknownParticipant(r.right.clone()))?;
        let extra: Vec<&str> = r.attrs.iter().map(|(a, _)| a.as_str()).collect();
        let rel = b.relationship(&r.name, &[left, right], &extra);
        rel_plan.push((rel, left, right, r.cardinality));
    }
    let schema = b.build_strict().map_err(|v| {
        ImportError::AxiomViolation(
            v.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; "),
        )
    })?;
    let gen = GeneralisationTopology::of_schema(&schema);
    let mut fds = Vec::new();
    for (rel, left, right, card) in rel_plan {
        match card {
            Cardinality::OneToOne => {
                fds.push(Fd::new(&gen, left, right, rel).expect("participants generalise"));
                fds.push(Fd::new(&gen, right, left, rel).expect("participants generalise"));
            }
            Cardinality::OneToMany => {
                // The "many" (right) side determines the "one" (left) side.
                fds.push(Fd::new(&gen, right, left, rel).expect("participants generalise"));
            }
            Cardinality::ManyToMany => {}
        }
    }
    Ok(Imported { schema, fds })
}

/// The employee database expressed as an EAR schema (worksfor as a 1:n
/// relationship, department side "1"). Importing it reproduces the
/// paper's schema — the executable form of the Relationship Axiom
/// argument.
pub fn employee_er() -> ErSchema {
    ErSchema {
        entities: vec![
            ErEntity {
                name: "employee".into(),
                attrs: vec![
                    ("name".into(), "person-names".into()),
                    ("age".into(), "ages".into()),
                    ("depname".into(), "department-names".into()),
                ],
            },
            ErEntity {
                name: "person".into(),
                attrs: vec![
                    ("name".into(), "person-names".into()),
                    ("age".into(), "ages".into()),
                ],
            },
            ErEntity {
                name: "department".into(),
                attrs: vec![
                    ("depname".into(), "department-names".into()),
                    ("location".into(), "locations".into()),
                ],
            },
            ErEntity {
                name: "manager".into(),
                attrs: vec![
                    ("name".into(), "person-names".into()),
                    ("age".into(), "ages".into()),
                    ("depname".into(), "department-names".into()),
                    ("budget".into(), "amounts".into()),
                ],
            },
        ],
        relationships: vec![ErRelationship {
            name: "worksfor".into(),
            left: "department".into(),
            right: "employee".into(),
            attrs: vec![],
            cardinality: Cardinality::OneToMany,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::employee_schema;

    #[test]
    fn employee_er_reproduces_paper_schema() {
        let imported = import(&employee_er()).unwrap();
        let reference = employee_schema();
        assert_eq!(imported.schema.type_count(), reference.type_count());
        for e in reference.type_ids() {
            let name = reference.type_name(e);
            let other = imported.schema.type_id(name).expect("same type names");
            let mut a: Vec<&str> = imported
                .schema
                .attr_set_names(imported.schema.attrs_of(other));
            let mut b: Vec<&str> = reference.attr_set_names(reference.attrs_of(e));
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "attribute set of {name}");
        }
    }

    #[test]
    fn one_to_many_induces_one_fd() {
        let imported = import(&employee_er()).unwrap();
        assert_eq!(imported.fds.len(), 1);
        let fd = imported.fds[0];
        let s = &imported.schema;
        assert_eq!(s.type_name(fd.lhs), "employee");
        assert_eq!(s.type_name(fd.rhs), "department");
        assert_eq!(s.type_name(fd.context), "worksfor");
    }

    #[test]
    fn one_to_one_induces_two_fds() {
        let mut er = employee_er();
        er.relationships[0].cardinality = Cardinality::OneToOne;
        let imported = import(&er).unwrap();
        assert_eq!(imported.fds.len(), 2);
    }

    #[test]
    fn many_to_many_induces_none() {
        let mut er = employee_er();
        er.relationships[0].cardinality = Cardinality::ManyToMany;
        let imported = import(&er).unwrap();
        assert!(imported.fds.is_empty());
    }

    #[test]
    fn unknown_participant_rejected() {
        let mut er = employee_er();
        er.relationships[0].left = "ghost".into();
        assert!(matches!(
            import(&er),
            Err(ImportError::UnknownParticipant(_))
        ));
    }
}
