//! Random schema and extension synthesis — the workload generator for the
//! benchmark harness.
//!
//! The paper has no workload; the synthesiser produces families of
//! schemas with controlled size and ISA density, and extensions with
//! controlled cardinality, so that every experiment can sweep the axes
//! that matter (entity-type count, hierarchy depth, relation size).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use toposem_core::{AttrId, Intension, Schema, SchemaBuilder};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, DomainSpec, Instance, Value};

/// Parameters of the schema synthesiser.
#[derive(Clone, Debug)]
pub struct SchemaParams {
    /// Size of the attribute universe.
    pub n_attrs: usize,
    /// Number of entity types to aim for (distinctness may cap it).
    pub n_types: usize,
    /// Probability that a new type extends an existing one (creating ISA
    /// edges) instead of drawing attributes independently.
    pub isa_bias: f64,
    /// Attribute-set width drawn uniformly from `1..=max_width`.
    pub max_width: usize,
    /// RNG seed (synthesis is deterministic given the parameters).
    pub seed: u64,
}

impl Default for SchemaParams {
    fn default() -> Self {
        SchemaParams {
            n_attrs: 12,
            n_types: 16,
            isa_bias: 0.5,
            max_width: 6,
            seed: 42,
        }
    }
}

/// Synthesises a schema. All attribute domains are integer-valued.
pub fn random_schema(params: &SchemaParams) -> Schema {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut b = SchemaBuilder::new();
    let attr_names: Vec<String> = (0..params.n_attrs).map(|i| format!("a{i}")).collect();
    for n in &attr_names {
        b.attribute(n, &format!("dom-{n}"));
    }
    let mut seen: std::collections::BTreeSet<Vec<usize>> = std::collections::BTreeSet::new();
    let mut sets: Vec<Vec<usize>> = Vec::new();
    let mut tries = 0;
    while sets.len() < params.n_types && tries < params.n_types * 20 {
        tries += 1;
        let set: Vec<usize> = if !sets.is_empty() && rng.gen_bool(params.isa_bias) {
            // Extend an existing set by 1-2 fresh attributes → ISA edge.
            let base = sets.choose(&mut rng).expect("nonempty").clone();
            let mut set = base;
            let extra = rng.gen_range(1..=2usize);
            for _ in 0..extra {
                let a = rng.gen_range(0..params.n_attrs);
                if !set.contains(&a) {
                    set.push(a);
                }
            }
            set.sort_unstable();
            set
        } else {
            let width = rng.gen_range(1..=params.max_width.min(params.n_attrs));
            let mut pool: Vec<usize> = (0..params.n_attrs).collect();
            pool.shuffle(&mut rng);
            let mut set: Vec<usize> = pool.into_iter().take(width).collect();
            set.sort_unstable();
            set
        };
        if seen.insert(set.clone()) {
            sets.push(set);
        }
    }
    for (i, set) in sets.iter().enumerate() {
        let names: Vec<&str> = set.iter().map(|&a| attr_names[a].as_str()).collect();
        b.entity_type(&format!("t{i}"), &names);
    }
    b.build_strict().expect("distinct attribute sets")
}

/// A domain catalog giving every synthesised attribute the integer range
/// `0..value_range`.
pub fn int_catalog(schema: &Schema, value_range: i64) -> DomainCatalog {
    let mut c = DomainCatalog::new();
    for a in schema.attr_ids() {
        c.bind(
            &schema.attr(a).domain,
            DomainSpec::IntRange(0, value_range - 1),
        );
    }
    c
}

/// Parameters of the extension synthesiser.
#[derive(Clone, Debug)]
pub struct ExtensionParams {
    /// Tuples inserted per entity type.
    pub tuples_per_type: usize,
    /// Attribute values drawn from `0..value_range`; smaller ranges create
    /// more shared projections and denser joins.
    pub value_range: i64,
    /// Containment policy of the produced database.
    pub policy: ContainmentPolicy,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExtensionParams {
    fn default() -> Self {
        ExtensionParams {
            tuples_per_type: 50,
            value_range: 8,
            policy: ContainmentPolicy::Eager,
            seed: 7,
        }
    }
}

/// Synthesises a database over `schema` with random extensions.
pub fn random_database(schema: &Schema, params: &ExtensionParams) -> Database {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let catalog = int_catalog(schema, params.value_range);
    let mut db = Database::new(Intension::analyse(schema.clone()), catalog, params.policy);
    for e in schema.type_ids() {
        for _ in 0..params.tuples_per_type {
            let fields: Vec<(AttrId, Value)> = schema
                .attrs_of(e)
                .iter()
                .map(|a| {
                    (
                        AttrId(a as u32),
                        Value::Int(rng.gen_range(0..params.value_range)),
                    )
                })
                .collect();
            db.insert(e, Instance::from_parts(fields));
        }
    }
    db
}

/// Convenience: synthesise schema and database in one call.
pub fn random_workload(
    schema_params: &SchemaParams,
    ext_params: &ExtensionParams,
) -> (Schema, Database) {
    let schema = random_schema(schema_params);
    let db = random_database(&schema, ext_params);
    (schema, db)
}

/// The ISA edge count of a schema — the density metric the sweeps report.
pub fn isa_edge_count(schema: &Schema) -> usize {
    let mut edges = 0;
    for a in schema.type_ids() {
        for b in schema.type_ids() {
            if a != b && schema.attrs_of(a).is_proper_subset(schema.attrs_of(b)) {
                edges += 1;
            }
        }
    }
    edges
}

/// Widens a schema universe multiplicatively: `scale_schema(p, k)` builds
/// parameters for a `k`-times larger instance along every axis the sweeps
/// vary.
pub fn scale_params(base: &SchemaParams, k: usize) -> SchemaParams {
    SchemaParams {
        n_attrs: base.n_attrs * k,
        n_types: base.n_types * k,
        isa_bias: base.isa_bias,
        max_width: base.max_width,
        seed: base.seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn synthesis_is_deterministic() {
        let p = SchemaParams::default();
        let a = random_schema(&p);
        let b = random_schema(&p);
        assert_eq!(a, b);
    }

    #[test]
    fn schemas_satisfy_axioms_and_have_isa_edges() {
        let p = SchemaParams {
            isa_bias: 0.8,
            ..Default::default()
        };
        let s = random_schema(&p);
        assert!(s.type_count() > 1);
        assert!(isa_edge_count(&s) > 0, "high bias must create hierarchy");
    }

    #[test]
    fn zero_bias_schema_still_valid() {
        let p = SchemaParams {
            isa_bias: 0.0,
            n_types: 8,
            ..Default::default()
        };
        let s = random_schema(&p);
        assert!(s.type_count() >= 1);
    }

    #[test]
    fn databases_maintain_containment() {
        let (_, db) = random_workload(
            &SchemaParams {
                n_attrs: 6,
                n_types: 6,
                ..Default::default()
            },
            &ExtensionParams {
                tuples_per_type: 10,
                ..Default::default()
            },
        );
        assert!(db.verify_containment().is_empty());
        assert!(db.total_stored() > 0);
    }

    #[test]
    fn extension_size_scales_with_parameter() {
        let p = SchemaParams {
            n_attrs: 6,
            n_types: 4,
            ..Default::default()
        };
        let s = random_schema(&p);
        let small = random_database(
            &s,
            &ExtensionParams {
                tuples_per_type: 5,
                ..Default::default()
            },
        );
        let large = random_database(
            &s,
            &ExtensionParams {
                tuples_per_type: 50,
                ..Default::default()
            },
        );
        assert!(large.total_stored() > small.total_stored());
    }

    #[test]
    fn scale_params_scales() {
        let base = SchemaParams::default();
        let big = scale_params(&base, 3);
        assert_eq!(big.n_attrs, base.n_attrs * 3);
        assert_eq!(big.n_types, base.n_types * 3);
    }
}
