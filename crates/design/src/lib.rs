//! # toposem-design
//!
//! Design-time tooling around the toposem model: the §2 design
//! methodology as executable passes, EAR-schema import (the Relationship
//! Axiom in action), designer-biased subbase selection (§3.1), and the
//! random schema/extension synthesiser that powers the benchmark
//! harness.

pub mod basis;
pub mod er_import;
pub mod normalize;
pub mod process;
pub mod synth;

pub use basis::{select_subbase, subbase_menu, Bias};
pub use er_import::{
    employee_er, import, Cardinality, ErEntity, ErRelationship, ErSchema, ImportError, Imported,
};
pub use normalize::{decompose, missing_types, Component};
pub use process::{run_design_process, Finding};
pub use synth::{
    int_catalog, isa_edge_count, random_database, random_schema, random_workload, scale_params,
    ExtensionParams, SchemaParams,
};
