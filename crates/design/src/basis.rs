//! Designer-biased subbase (basis) selection (§3.1).
//!
//! "Clearly, S doesn't have to be the smallest subbase. Nor is the
//! subbase per definition unique. […] This gives the freedom to choose a
//! subbase for T which reflects the bias to the Universe of Discourse."
//! The designer expresses bias as per-type weights; selection picks,
//! among all minimal generating subfamilies of the specialisation cover,
//! the heaviest.

use toposem_core::{Schema, SpecialisationTopology, TypeId};
use toposem_topology::SubbaseAnalysis;

/// A bias profile: weight per entity type (higher = more essential in the
/// designer's view of the Universe of Discourse).
#[derive(Clone, Debug)]
pub struct Bias {
    weights: Vec<f64>,
}

impl Bias {
    /// Uniform bias.
    pub fn uniform(schema: &Schema) -> Self {
        Bias {
            weights: vec![1.0; schema.type_count()],
        }
    }

    /// Sets the weight of one type.
    pub fn set(&mut self, e: TypeId, w: f64) -> &mut Self {
        self.weights[e.index()] = w;
        self
    }

    /// The weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

/// Selects the minimal generating subbase maximising total bias weight.
/// Returns the chosen primitive types; the rest are constructed.
pub fn select_subbase(schema: &Schema, bias: &Bias) -> Vec<TypeId> {
    let spec = SpecialisationTopology::of_schema(schema);
    let analysis = SubbaseAnalysis::new(schema.type_count(), spec.cover());
    analysis
        .best_minimal_by_weight(bias.weights())
        .map(|b| b.iter().map(|i| TypeId(i as u32)).collect())
        .unwrap_or_default()
}

/// All minimal subbase choices with their total weights, heaviest first —
/// the menu a design tool would show.
pub fn subbase_menu(schema: &Schema, bias: &Bias) -> Vec<(Vec<TypeId>, f64)> {
    let spec = SpecialisationTopology::of_schema(schema);
    let analysis = SubbaseAnalysis::new(schema.type_count(), spec.cover());
    let mut menu: Vec<(Vec<TypeId>, f64)> = analysis
        .all_minimal()
        .into_iter()
        .map(|b| {
            let w: f64 = b.iter().map(|i| bias.weights()[i]).sum();
            (b.iter().map(|i| TypeId(i as u32)).collect(), w)
        })
        .collect();
    menu.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    menu
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::employee_schema;

    #[test]
    fn employee_selection_matches_paper() {
        let s = employee_schema();
        let chosen = select_subbase(&s, &Bias::uniform(&s));
        let names: Vec<&str> = chosen.iter().map(|&e| s.type_name(e)).collect();
        // R1: the four primitive types; worksfor constructed.
        assert_eq!(names, vec!["employee", "person", "department", "manager"]);
    }

    #[test]
    fn menu_is_sorted_by_weight() {
        let s = employee_schema();
        let menu = subbase_menu(&s, &Bias::uniform(&s));
        assert!(!menu.is_empty());
        for w in menu.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn bias_changes_nothing_when_choice_is_forced() {
        // The employee schema has a unique minimal subbase, so bias cannot
        // alter the outcome — the paper's freedom only exists when S is
        // redundant in more than one way.
        let s = employee_schema();
        let mut bias = Bias::uniform(&s);
        bias.set(s.type_id("manager").unwrap(), 0.01);
        let chosen = select_subbase(&s, &bias);
        assert_eq!(chosen.len(), 4);
    }
}
