//! CRC-32 (IEEE 802.3 polynomial, reflected) for record framing.
//!
//! The container builds offline, so the checksum is implemented here
//! rather than pulled from a crate: a compile-time 256-entry table and
//! the standard byte-at-a-time update loop.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let base = crc32(data);
        let mut corrupted = data.to_vec();
        for i in 0..corrupted.len() {
            corrupted[i] ^= 1;
            assert_ne!(crc32(&corrupted), base, "flip at byte {i} undetected");
            corrupted[i] ^= 1;
        }
    }
}
