//! The segmented log: an append-only writer with group commit, atomic
//! checkpoint installation, and the torn-tail-tolerant scanner recovery
//! is built on.
//!
//! Layout of a log directory:
//!
//! ```text
//! <dir>/checkpoint.snap        meta line (JSON) + '\n' + snapshot payload
//! <dir>/seg-<first_lsn>.wal    20-byte header, then framed records
//! ```
//!
//! Segment files carry a magic/version header and the LSN of their first
//! record; names embed the same LSN zero-padded so lexicographic order is
//! log order. A checkpoint is installed atomically: the snapshot is
//! written to a temp file, fsynced, renamed over `checkpoint.snap`, and
//! only then are the now-redundant segments deleted — a crash between any
//! two steps leaves either the old checkpoint with the full log or the
//! new checkpoint with a (harmlessly replayable) prefix of it.

use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use toposem_obs::WalMetrics;

use crate::record::{decode_record, encode_record, Decoded, IndexDef, WalEntry, WalRecord};
use crate::{FlushPolicy, WalConfig, WalError};

const SEG_MAGIC: &[u8; 8] = b"TSWALSEG";
// Version 2: `CreateIndex` records carry an `IndexDef` (kind + attribute
// list) instead of a single attribute name, and checkpoint meta's
// `indexes` field holds `IndexDef`s. Version-1 logs are rejected with an
// explicit unsupported-version error rather than misdecoded (a v1
// `CreateIndex` payload would otherwise read as a torn/corrupt record
// and silently truncate the committed suffix behind it).
const SEG_VERSION: u32 = 2;
/// Length of a segment file's header: magic(8) + version(4) +
/// first_lsn(8). Record frames start at this offset — a replication
/// follower decoding shipped segment bytes skips exactly this prefix.
pub const SEG_HEADER_LEN: usize = 20;
const CKPT_MAGIC: &str = "TOPOSEM-WAL-CKPT";
const CKPT_VERSION: u32 = 2;
const CKPT_NAME: &str = "checkpoint.snap";
const CKPT_TMP_NAME: &str = "checkpoint.tmp";

/// The self-identifying header line of a checkpoint file.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CheckpointMeta {
    /// Format magic; always [`CheckpointMeta::MAGIC`].
    pub magic: String,
    /// Format version.
    pub version: u32,
    /// LSN the log restarts at: records with a smaller LSN are captured
    /// by the snapshot payload and must be skipped on replay.
    pub next_lsn: u64,
    /// First transaction id to allocate after recovery from this
    /// checkpoint.
    pub next_txn: u64,
    /// Index definitions live outside the snapshot payload; each names
    /// its entity, kind, and attribute list so recovery can rebuild
    /// hash, ordered, and composite indexes alike.
    pub indexes: Vec<IndexDef>,
    /// Declared functional dependencies, as named `(lhs, rhs, context)`
    /// triples, so recovery restores enforcement.
    pub fds: Vec<(String, String, String)>,
}

impl CheckpointMeta {
    /// The expected magic string.
    pub const MAGIC: &'static str = CKPT_MAGIC;
}

/// Everything a scan of a log directory yields: the checkpoint and the
/// valid record suffix.
#[derive(Debug)]
pub struct LogScan {
    /// Parsed checkpoint header.
    pub meta: CheckpointMeta,
    /// The checkpoint's snapshot payload (opaque to this crate; the
    /// storage layer decodes it).
    pub snapshot: Vec<u8>,
    /// Checksum-valid records with `lsn >= meta.next_lsn`, in log order.
    pub records: Vec<WalRecord>,
    /// Whether the log ended in a torn (incomplete or corrupt) record
    /// that was discarded.
    pub torn_tail: bool,
}

/// Where the valid portion of the final segment ends — used by
/// [`Wal::open`] to truncate a torn tail before appending.
#[derive(Debug)]
struct TailState {
    /// Path of the last segment, when one exists.
    last_segment: Option<PathBuf>,
    /// Byte length of its valid prefix (`None` when the whole file,
    /// header included, is unusable).
    valid_len: Option<u64>,
    /// One past the highest LSN seen anywhere in the scan.
    next_lsn: u64,
    /// One past the highest transaction id seen.
    next_txn: u64,
}

/// The canonical file name of the segment whose first record has
/// `first_lsn`. Zero-padded so lexicographic order is log order —
/// replication transports rely on this to ship segments in order.
pub fn segment_name(first_lsn: u64) -> String {
    format!("seg-{first_lsn:020}.wal")
}

/// The first LSN embedded in a segment file name (the inverse of
/// [`segment_name`]); `None` when the name is not a segment name. A
/// follower uses this to skip whole segments below its applied LSN.
pub fn segment_first_lsn(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("seg-")?.strip_suffix(".wal")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Paths of every segment file in `dir`, in log order (the zero-padded
/// names make lexicographic order log order). Public so a replication
/// shipper can enumerate sealed and live segments without reaching into
/// the directory layout by hand.
pub fn list_segments(dir: &Path) -> Result<Vec<PathBuf>, WalError> {
    let mut segs: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .map(|n| n.starts_with("seg-") && n.ends_with(".wal"))
                .unwrap_or(false)
        })
        .collect();
    // Names embed the zero-padded first LSN, so name order is log order.
    segs.sort();
    Ok(segs)
}

fn sync_dir(dir: &Path) {
    // Directory fsync makes the rename/create durable; failure here is
    // not actionable beyond what the file-level fsyncs already ensured.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

fn corrupt(segment: &Path, offset: usize, reason: &str) -> WalError {
    WalError::Corrupt {
        segment: segment.display().to_string(),
        offset: offset as u64,
        reason: reason.to_owned(),
    }
}

/// The version-stable prefix of a checkpoint header: decoded first so a
/// header whose *other* fields changed shape across versions still
/// reports "unsupported version N" instead of a decode error.
#[derive(Debug, Deserialize)]
struct CheckpointProbe {
    magic: String,
    version: u32,
}

/// Reads the checkpoint file of `dir`.
pub fn read_checkpoint(dir: &Path) -> Result<(CheckpointMeta, Vec<u8>), WalError> {
    let path = dir.join(CKPT_NAME);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(WalError::NoCheckpoint),
        Err(e) => return Err(WalError::Io(e)),
    };
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| WalError::BadCheckpoint("missing header line".into()))?;
    let probe: CheckpointProbe = serde_json::from_slice(&bytes[..nl])
        .map_err(|e| WalError::BadCheckpoint(format!("undecodable header: {e}")))?;
    if probe.magic != CKPT_MAGIC {
        return Err(WalError::BadCheckpoint(format!(
            "bad magic {:?}",
            probe.magic
        )));
    }
    if probe.version != CKPT_VERSION {
        return Err(WalError::BadCheckpoint(format!(
            "unsupported version {}",
            probe.version
        )));
    }
    let meta: CheckpointMeta = serde_json::from_slice(&bytes[..nl])
        .map_err(|e| WalError::BadCheckpoint(format!("undecodable header: {e}")))?;
    Ok((meta, bytes[nl + 1..].to_vec()))
}

fn scan_inner(dir: &Path) -> Result<(LogScan, TailState), WalError> {
    let (meta, snapshot) = read_checkpoint(dir)?;
    let segs = list_segments(dir)?;
    let mut records = Vec::new();
    let mut torn_tail = false;
    let mut tail = TailState {
        last_segment: segs.last().cloned(),
        valid_len: None,
        next_lsn: meta.next_lsn,
        next_txn: meta.next_txn,
    };
    for (i, seg) in segs.iter().enumerate() {
        let is_last = i + 1 == segs.len();
        let data = fs::read(seg)?;
        if data.len() < SEG_HEADER_LEN
            || &data[..8] != SEG_MAGIC
            || u32::from_le_bytes(data[8..12].try_into().expect("4 bytes")) != SEG_VERSION
        {
            if is_last {
                // A crash during segment creation can leave a header-less
                // file; the whole file is discardable.
                torn_tail = true;
                tail.valid_len = None;
                break;
            }
            return Err(corrupt(seg, 0, "bad segment header"));
        }
        let mut at = SEG_HEADER_LEN;
        loop {
            match decode_record(&data, at) {
                Decoded::End => break,
                Decoded::Record { rec, next } => {
                    tail.next_lsn = tail.next_lsn.max(rec.lsn + 1);
                    if let Some(txn) = rec.entry.txn() {
                        tail.next_txn = tail.next_txn.max(txn + 1);
                    }
                    if let WalEntry::Checkpoint { next_txn } = rec.entry {
                        tail.next_txn = tail.next_txn.max(next_txn);
                    }
                    // Records below the checkpoint LSN are pre-checkpoint
                    // leftovers (crash between checkpoint installation and
                    // segment deletion): already captured by the snapshot.
                    if rec.lsn >= meta.next_lsn {
                        records.push(rec);
                    }
                    at = next;
                }
                Decoded::Torn(reason) => {
                    if !is_last {
                        return Err(corrupt(seg, at, reason));
                    }
                    torn_tail = true;
                    break;
                }
            }
        }
        if is_last {
            tail.valid_len = Some(at as u64);
        }
    }
    Ok((
        LogScan {
            meta,
            snapshot,
            records,
            torn_tail,
        },
        tail,
    ))
}

/// Scans a log directory without modifying it: checkpoint, valid record
/// suffix, and whether the tail was torn. This is the read-only half of
/// recovery; [`Wal::open`] additionally truncates the torn tail so the
/// log can be appended to again.
pub fn scan(dir: impl AsRef<Path>) -> Result<LogScan, WalError> {
    scan_inner(dir.as_ref()).map(|(s, _)| s)
}

/// The append half of the write-ahead log: one open segment, rotation,
/// and the flush policy.
pub struct Wal {
    dir: PathBuf,
    cfg: WalConfig,
    writer: BufWriter<File>,
    seg_path: PathBuf,
    seg_len: u64,
    next_lsn: u64,
    next_txn: u64,
    pending_commits: usize,
    oldest_pending: Option<Instant>,
    metrics: Arc<WalMetrics>,
}

impl Wal {
    /// Creates a fresh log at `dir` (created if absent). Fails with
    /// [`WalError::AlreadyExists`] when the directory already holds a log
    /// — an existing log must be recovered with [`Wal::open`], never
    /// silently clobbered.
    pub fn create(dir: impl AsRef<Path>, cfg: WalConfig) -> Result<Wal, WalError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        if dir.join(CKPT_NAME).exists() || !list_segments(&dir)?.is_empty() {
            return Err(WalError::AlreadyExists);
        }
        let (writer, seg_path) = Self::new_segment(&dir, 0)?;
        Ok(Wal {
            dir,
            cfg,
            writer,
            seg_path,
            seg_len: SEG_HEADER_LEN as u64,
            next_lsn: 0,
            next_txn: 0,
            pending_commits: 0,
            oldest_pending: None,
            metrics: Arc::new(WalMetrics::default()),
        })
    }

    /// Opens an existing log for appending: scans it, truncates any torn
    /// tail so new records never follow garbage, and positions the writer
    /// after the last valid record. Returns the scan so the caller can
    /// replay it.
    pub fn open(dir: impl AsRef<Path>, cfg: WalConfig) -> Result<(Wal, LogScan), WalError> {
        let dir = dir.as_ref().to_path_buf();
        let (scan, tail) = scan_inner(&dir)?;
        let (writer, seg_path, seg_len) = match (&tail.last_segment, tail.valid_len) {
            (Some(seg), Some(valid)) => {
                let file = OpenOptions::new().write(true).open(seg)?;
                file.set_len(valid)?; // discard the torn suffix
                let mut writer = BufWriter::new(file);
                writer.seek_to_end()?;
                (writer, seg.clone(), valid)
            }
            (Some(seg), None) => {
                // Header-less husk left by a crash mid-creation.
                fs::remove_file(seg)?;
                let (w, p) = Self::new_segment(&dir, tail.next_lsn)?;
                (w, p, SEG_HEADER_LEN as u64)
            }
            (None, _) => {
                let (w, p) = Self::new_segment(&dir, tail.next_lsn)?;
                (w, p, SEG_HEADER_LEN as u64)
            }
        };
        Ok((
            Wal {
                dir,
                cfg,
                writer,
                seg_path,
                seg_len,
                next_lsn: tail.next_lsn,
                next_txn: tail.next_txn,
                pending_commits: 0,
                oldest_pending: None,
                metrics: Arc::new(WalMetrics::default()),
            },
            scan,
        ))
    }

    fn new_segment(dir: &Path, first_lsn: u64) -> Result<(BufWriter<File>, PathBuf), WalError> {
        let path = dir.join(segment_name(first_lsn));
        let file = File::create(&path)?;
        let mut writer = BufWriter::new(file);
        writer.write_all(SEG_MAGIC)?;
        writer.write_all(&SEG_VERSION.to_le_bytes())?;
        writer.write_all(&first_lsn.to_le_bytes())?;
        writer.flush()?;
        writer.get_ref().sync_all()?;
        sync_dir(dir);
        Ok((writer, path))
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The metrics this log records into (fresh per log unless
    /// [`Wal::set_metrics`] shares one).
    pub fn metrics(&self) -> &Arc<WalMetrics> {
        &self.metrics
    }

    /// Share a metrics registry with this log — the engine attaches its
    /// own [`WalMetrics`] here so WAL activity lands in the engine-wide
    /// snapshot. Counts recorded before the swap stay on the old
    /// registry.
    pub fn set_metrics(&mut self, metrics: Arc<WalMetrics>) {
        self.metrics = metrics;
    }

    /// The LSN the next appended record will get.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// The configured flush policy.
    pub fn flush_policy(&self) -> FlushPolicy {
        self.cfg.flush
    }

    /// Allocates a fresh transaction id.
    pub fn alloc_txn(&mut self) -> u64 {
        let t = self.next_txn;
        self.next_txn += 1;
        t
    }

    /// Appends one record (buffered; durability is governed by the flush
    /// policy via [`Wal::commit_appended`] and [`Wal::flush`]). Returns
    /// the record's LSN.
    pub fn append(&mut self, entry: WalEntry) -> Result<u64, WalError> {
        let lsn = self.next_lsn;
        let framed = encode_record(&WalRecord { lsn, entry })?;
        self.writer.write_all(&framed)?;
        self.next_lsn += 1;
        self.seg_len += framed.len() as u64;
        if self.seg_len >= self.cfg.segment_bytes {
            self.rotate()?;
        }
        Ok(lsn)
    }

    fn rotate(&mut self) -> Result<(), WalError> {
        self.flush()?;
        let (writer, seg_path) = Self::new_segment(&self.dir, self.next_lsn)?;
        self.writer = writer;
        self.seg_path = seg_path;
        self.seg_len = SEG_HEADER_LEN as u64;
        Ok(())
    }

    /// Applies the flush policy after a `Commit` record was appended:
    /// `PerCommit` fsyncs now, `GroupCommit` fsyncs once `max_batch`
    /// commits are pending or the oldest has waited `max_wait`, `NoSync`
    /// leaves durability to the OS.
    ///
    /// Under `GroupCommit` this call alone cannot bound latency: the
    /// deadline is only observed when *some* call re-enters the log. The
    /// engine runs a dedicated flusher thread that watches
    /// [`Wal::pending_flush_deadline`] and calls [`Wal::flush`] when the
    /// oldest pending commit's `max_wait` expires, so a lone committer is
    /// fsynced within `max_wait` wall-clock time instead of waiting for
    /// the next commit to arrive.
    pub fn commit_appended(&mut self) -> Result<(), WalError> {
        match self.cfg.flush {
            FlushPolicy::PerCommit => {
                self.metrics.group_commit_batch.record(1);
                self.flush()
            }
            FlushPolicy::NoSync => Ok(()),
            FlushPolicy::GroupCommit {
                max_batch,
                max_wait,
            } => {
                self.pending_commits += 1;
                if self.oldest_pending.is_none() {
                    self.oldest_pending = Some(Instant::now());
                }
                let due = self.pending_commits >= max_batch.max(1)
                    || self
                        .oldest_pending
                        .map(|t| t.elapsed() >= max_wait)
                        .unwrap_or(false);
                if due {
                    self.flush()
                } else {
                    Ok(())
                }
            }
        }
    }

    /// The instant by which the oldest pending group commit must be
    /// fsynced: `oldest_pending + max_wait` under `GroupCommit` with at
    /// least one unsynced commit, `None` otherwise (nothing pending, or a
    /// policy whose commits are never left waiting). A background flusher
    /// sleeps until this instant and then calls [`Wal::flush`].
    pub fn pending_flush_deadline(&self) -> Option<Instant> {
        match self.cfg.flush {
            FlushPolicy::GroupCommit { max_wait, .. } if self.pending_commits > 0 => {
                self.oldest_pending.map(|t| t + max_wait)
            }
            _ => None,
        }
    }

    /// Number of commits appended but not yet fsynced under the group
    /// commit policy.
    pub fn pending_commits(&self) -> usize {
        self.pending_commits
    }

    /// Flushes buffered records and fsyncs the segment, making every
    /// appended record durable regardless of policy. Records the batch
    /// size when pending group commits are drained.
    pub fn flush(&mut self) -> Result<(), WalError> {
        let t0 = Instant::now();
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        self.metrics.flushes.inc();
        self.metrics.fsync_ns.record(t0.elapsed().as_nanos() as u64);
        if self.pending_commits > 0 {
            self.metrics
                .group_commit_batch
                .record(self.pending_commits as u64);
        }
        self.pending_commits = 0;
        self.oldest_pending = None;
        Ok(())
    }

    /// Installs a checkpoint: atomically replaces `checkpoint.snap` with
    /// `snapshot` (plus a meta header naming `indexes` and the restart
    /// LSN), then truncates the log to a fresh segment holding a single
    /// `Checkpoint` record. The caller guarantees `snapshot` captures all
    /// committed state and that no transaction is in flight.
    pub fn checkpoint(
        &mut self,
        snapshot: &[u8],
        indexes: &[IndexDef],
        fds: &[(String, String, String)],
    ) -> Result<(), WalError> {
        let t0 = Instant::now();
        self.flush()?;
        let meta = CheckpointMeta {
            magic: CKPT_MAGIC.to_owned(),
            version: CKPT_VERSION,
            next_lsn: self.next_lsn,
            next_txn: self.next_txn,
            indexes: indexes.to_vec(),
            fds: fds.to_vec(),
        };
        let tmp = self.dir.join(CKPT_TMP_NAME);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(serde_json::to_string(&meta)?.as_bytes())?;
            f.write_all(b"\n")?;
            f.write_all(snapshot)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.dir.join(CKPT_NAME))?;
        sync_dir(&self.dir);
        // The snapshot now covers every logged record: drop old segments.
        // A new segment is created *first* so a crash never leaves the
        // directory segment-less (and so the current segment's name may
        // be reused in place when no records followed the last rotation).
        let old = list_segments(&self.dir)?;
        let (writer, seg_path) = Self::new_segment(&self.dir, self.next_lsn)?;
        self.writer = writer;
        self.seg_path = seg_path;
        self.seg_len = SEG_HEADER_LEN as u64;
        for p in old {
            if p != self.seg_path {
                fs::remove_file(p)?;
            }
        }
        sync_dir(&self.dir);
        let next_txn = self.next_txn;
        self.append(WalEntry::Checkpoint { next_txn })?;
        self.flush()?;
        self.metrics.checkpoints.inc();
        self.metrics
            .checkpoint_ns
            .record(t0.elapsed().as_nanos() as u64);
        Ok(())
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Best-effort: push buffered records to the OS so only an actual
        // crash (not a clean drop) can lose NoSync/GroupCommit windows.
        let _ = self.writer.flush();
    }
}

/// `BufWriter<File>` helper: position the underlying file at its end.
trait SeekToEnd {
    fn seek_to_end(&mut self) -> std::io::Result<()>;
}

impl SeekToEnd for BufWriter<File> {
    fn seek_to_end(&mut self) -> std::io::Result<()> {
        use std::io::{Seek, SeekFrom};
        self.seek(SeekFrom::End(0)).map(|_| ())
    }
}
