//! # toposem-wal
//!
//! Write-ahead logging, checkpointing, and crash recovery for the
//! toposem storage engine.
//!
//! The log is an append-only sequence of *logical* records
//! ([`WalEntry`]: `Begin`/`Insert`/`Delete`/`Commit`/`Abort`/
//! `Checkpoint`/`CreateIndex`) framed with a length prefix and a CRC-32
//! per record, split across rotating segment files. Durability of
//! commits is governed by a [`FlushPolicy`]: fsync per commit, group
//! commit (batched fsyncs), or no sync for tests. Checkpoints install a
//! full snapshot atomically (write-temp, fsync, rename) and truncate the
//! old segments; recovery loads the latest checkpoint, replays the
//! committed suffix, discards uncommitted transactions, and tolerates a
//! torn final record.
//!
//! This crate knows nothing about the database representation: the
//! checkpoint payload is opaque bytes, and replay is the storage layer's
//! job (it interprets the [`toposem_extension::LogicalOp`] carried by
//! `Insert`/`Delete` records). That keeps the dependency arrow pointing
//! from storage to here, mirroring how the engine treats the log as a
//! lower-level facility.

use std::time::Duration;

pub mod crc32;
pub mod log;
pub mod record;

pub use crate::log::{
    list_segments, read_checkpoint, scan, segment_first_lsn, segment_name, CheckpointMeta, LogScan,
    Wal, SEG_HEADER_LEN,
};
pub use crate::record::{decode_record, Decoded, IndexDef, IndexKindDef, WalEntry, WalRecord};

/// When commit records reach the disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushPolicy {
    /// fsync after every commit: each acknowledged commit survives a
    /// crash.
    PerCommit,
    /// Batch fsyncs: sync once `max_batch` commits are pending, or when
    /// a commit arrives and the oldest pending one has already waited
    /// `max_wait`. An acknowledged commit may be lost if a crash lands
    /// inside the window — the classic group-commit trade of durability
    /// lag for an order-of-magnitude throughput gain.
    ///
    /// The log itself only evaluates the `max_wait` deadline when the
    /// *next* commit (or an explicit [`Wal::flush`]) arrives, so the
    /// storage engine runs a dedicated flusher thread that watches
    /// [`Wal::pending_flush_deadline`] and fsyncs at the deadline: every
    /// acknowledged commit — including the final commits of a burst
    /// followed by idleness, or a lone committer — becomes durable
    /// within `max_wait` wall-clock time.
    GroupCommit {
        /// Pending-commit count that forces a sync.
        max_batch: usize,
        /// Longest a pending commit may wait for the batch to fill
        /// before the next commit forces a sync.
        max_wait: Duration,
    },
    /// Never fsync; durability is whatever the OS page cache provides.
    /// For tests and benchmarks.
    NoSync,
}

/// Configuration of a log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalConfig {
    /// Commit durability policy.
    pub flush: FlushPolicy,
    /// Rotate to a new segment once the current one reaches this size.
    pub segment_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            flush: FlushPolicy::PerCommit,
            segment_bytes: 4 * 1024 * 1024,
        }
    }
}

impl WalConfig {
    /// A test-friendly configuration: no fsync, small segments so
    /// rotation is exercised.
    pub fn no_sync() -> Self {
        WalConfig {
            flush: FlushPolicy::NoSync,
            segment_bytes: 64 * 1024,
        }
    }
}

/// Errors from log operations.
#[derive(Debug)]
pub enum WalError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A record failed to encode or decode.
    Encode(String),
    /// The directory holds no checkpoint — nothing to recover.
    NoCheckpoint,
    /// The checkpoint file's header is missing, malformed, or of an
    /// unsupported version.
    BadCheckpoint(String),
    /// A non-tail segment is corrupt (bad header, checksum, or framing);
    /// unlike a torn tail this cannot be explained by a crash mid-append.
    Corrupt {
        /// Offending segment path.
        segment: String,
        /// Byte offset of the bad frame.
        offset: u64,
        /// Diagnostic.
        reason: String,
    },
    /// [`Wal::create`] was pointed at a directory that already holds a
    /// log.
    AlreadyExists,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Encode(e) => write!(f, "wal record encoding error: {e}"),
            WalError::NoCheckpoint => write!(f, "no checkpoint found; nothing to recover"),
            WalError::BadCheckpoint(why) => write!(f, "bad checkpoint: {why}"),
            WalError::Corrupt {
                segment,
                offset,
                reason,
            } => write!(
                f,
                "corrupt wal segment {segment} at byte {offset}: {reason}"
            ),
            WalError::AlreadyExists => {
                write!(f, "directory already holds a log; open it instead")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<serde_json::Error> for WalError {
    fn from(e: serde_json::Error) -> Self {
        WalError::Encode(e.to_string())
    }
}
