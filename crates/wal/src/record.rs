//! Logical log records and their on-disk framing.
//!
//! Each record is framed as `[len: u32 LE][crc: u32 LE][payload]` where
//! the payload is the JSON encoding of a [`WalRecord`] and the CRC covers
//! the payload bytes only. Length-prefix framing plus a checksum lets
//! recovery distinguish a *torn* final record (crash mid-write) from a
//! clean end of log, and the JSON payload keeps records self-describing
//! and schema-name-stable: operations are logged *logically* (entity and
//! attribute names, not ids), so replay re-derives eager containment
//! propagations instead of trusting duplicated physical writes.

use serde::{Deserialize, Serialize};
use toposem_extension::LogicalOp;

use crate::crc32::crc32;
use crate::WalError;

/// Upper bound on a framed payload; anything larger is treated as
/// corruption rather than an allocation request.
pub const MAX_RECORD_LEN: usize = 1 << 26; // 64 MiB

/// One log record: a logical entry stamped with its log sequence number.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WalRecord {
    /// Position in the global log order; strictly increasing.
    pub lsn: u64,
    /// The logical operation.
    pub entry: WalEntry,
}

/// The kind of secondary index a [`IndexDef`] describes. The log only
/// names the kind; building the right structure is the storage layer's
/// job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndexKindDef {
    /// Hash index on a single attribute (point lookups).
    Hash,
    /// Ordered (BTree) index on a single attribute (point + range).
    Ordered,
    /// Composite ordered index over several attributes (prefix lookups).
    Composite,
}

/// A logged index definition: entity type, index kind, and the indexed
/// attributes — all by *name*, so the definition survives schema-id
/// renumbering (same rationale as [`LogicalOp`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IndexDef {
    /// Entity type name.
    pub entity: String,
    /// What structure backs the index.
    pub kind: IndexKindDef,
    /// Indexed attribute names; order is significant for composites.
    pub attrs: Vec<String>,
}

/// The logical operations the engine logs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WalEntry {
    /// A transaction started.
    Begin {
        /// Transaction id.
        txn: u64,
    },
    /// A validated insert of the *declared* instance; eager containment
    /// propagations are re-derived on replay, never logged.
    Insert {
        /// Owning transaction.
        txn: u64,
        /// The logical operation (entity + named fields).
        op: LogicalOp,
    },
    /// A cascading delete, logged as the instance the user addressed;
    /// the cascade is recomputed on replay.
    Delete {
        /// Owning transaction.
        txn: u64,
        /// The logical operation (entity + named fields).
        op: LogicalOp,
    },
    /// The transaction's durability point.
    Commit {
        /// Transaction id.
        txn: u64,
    },
    /// The transaction rolled back; recovery discards its operations.
    Abort {
        /// Transaction id.
        txn: u64,
    },
    /// A checkpoint was installed at this LSN: everything before it is
    /// captured by the checkpoint snapshot file.
    Checkpoint {
        /// First transaction id to be allocated after the checkpoint.
        next_txn: u64,
    },
    /// An index definition (non-transactional; named so it survives
    /// id renumbering). Carries the index kind and attribute list so
    /// recovery rebuilds ordered and composite indexes, not just hashes.
    CreateIndex {
        /// The logged definition.
        def: IndexDef,
    },
    /// An index was dropped (non-transactional). Recovery removes every
    /// accumulated definition matching `def`, so a create/drop/create
    /// sequence replays to exactly one live index.
    DropIndex {
        /// The dropped definition (entity, kind, attribute names).
        def: IndexDef,
    },
    /// A declared functional dependency `fd(lhs, rhs, context)`
    /// (non-transactional; entity type names, so recovery can restore
    /// enforcement).
    DeclareFd {
        /// Determining entity type name.
        lhs: String,
        /// Determined entity type name.
        rhs: String,
        /// Context entity type name.
        context: String,
    },
}

impl WalEntry {
    /// The owning transaction, for transactional entries.
    pub fn txn(&self) -> Option<u64> {
        match self {
            WalEntry::Begin { txn }
            | WalEntry::Insert { txn, .. }
            | WalEntry::Delete { txn, .. }
            | WalEntry::Commit { txn }
            | WalEntry::Abort { txn } => Some(*txn),
            WalEntry::Checkpoint { .. }
            | WalEntry::CreateIndex { .. }
            | WalEntry::DropIndex { .. }
            | WalEntry::DeclareFd { .. } => None,
        }
    }
}

/// Frames a record for appending.
pub fn encode_record(rec: &WalRecord) -> Result<Vec<u8>, WalError> {
    let payload = serde_json::to_vec(rec)?;
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Outcome of decoding one frame at an offset.
#[derive(Debug)]
pub enum Decoded {
    /// A whole, checksum-valid record; `next` is the offset just past it.
    Record {
        /// The decoded record.
        rec: WalRecord,
        /// Offset of the next frame.
        next: usize,
    },
    /// The buffer ends exactly here: a clean end of log.
    End,
    /// The tail is torn or corrupt from this offset on; the reason is
    /// diagnostic only.
    Torn(&'static str),
}

/// Decodes the frame starting at `at` in `buf`.
pub fn decode_record(buf: &[u8], at: usize) -> Decoded {
    let remaining = buf.len() - at;
    if remaining == 0 {
        return Decoded::End;
    }
    if remaining < 8 {
        return Decoded::Torn("truncated frame header");
    }
    let len = u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(buf[at + 4..at + 8].try_into().expect("4 bytes"));
    if len > MAX_RECORD_LEN {
        return Decoded::Torn("implausible record length");
    }
    if remaining - 8 < len {
        return Decoded::Torn("truncated payload");
    }
    let payload = &buf[at + 8..at + 8 + len];
    if crc32(payload) != crc {
        return Decoded::Torn("checksum mismatch");
    }
    match serde_json::from_slice::<WalRecord>(payload) {
        Ok(rec) => Decoded::Record {
            rec,
            next: at + 8 + len,
        },
        Err(_) => Decoded::Torn("undecodable payload"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_extension::Value;

    fn sample() -> WalRecord {
        WalRecord {
            lsn: 7,
            entry: WalEntry::Insert {
                txn: 3,
                op: LogicalOp {
                    entity: "employee".into(),
                    fields: vec![
                        ("name".into(), Value::str("ann")),
                        ("age".into(), Value::Int(40)),
                    ],
                },
            },
        }
    }

    #[test]
    fn roundtrip() {
        let rec = sample();
        let framed = encode_record(&rec).unwrap();
        match decode_record(&framed, 0) {
            Decoded::Record { rec: back, next } => {
                assert_eq!(back, rec);
                assert_eq!(next, framed.len());
            }
            other => panic!("expected record, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_is_torn_and_every_flip_detected() {
        let framed = encode_record(&sample()).unwrap();
        for cut in 1..framed.len() {
            match decode_record(&framed[..cut], 0) {
                Decoded::Torn(_) => {}
                other => panic!("cut at {cut} not torn: {other:?}"),
            }
        }
        let mut bad = framed.clone();
        for i in 8..bad.len() {
            bad[i] ^= 0x40;
            assert!(
                matches!(decode_record(&bad, 0), Decoded::Torn(_)),
                "payload flip at {i} undetected"
            );
            bad[i] ^= 0x40;
        }
    }

    #[test]
    fn clean_end_and_txn_accessor() {
        assert!(matches!(decode_record(&[], 0), Decoded::End));
        assert_eq!(WalEntry::Commit { txn: 9 }.txn(), Some(9));
        assert_eq!(WalEntry::Checkpoint { next_txn: 0 }.txn(), None);
    }
}
