//! Log-level integration tests: append/scan round trips, segment
//! rotation, checkpoint installation and truncation, torn-tail
//! tolerance, and reopening for append after a crash.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use toposem_extension::LogicalOp;
use toposem_wal::{scan, FlushPolicy, IndexDef, IndexKindDef, Wal, WalConfig, WalEntry, WalError};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "toposem-wal-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn op(entity: &str, name: &str) -> LogicalOp {
    LogicalOp {
        entity: entity.into(),
        fields: vec![("name".into(), toposem_extension::Value::str(name))],
    }
}

/// One committed single-insert transaction.
fn commit_one(wal: &mut Wal, name: &str) {
    let txn = wal.alloc_txn();
    wal.append(WalEntry::Begin { txn }).unwrap();
    wal.append(WalEntry::Insert {
        txn,
        op: op("person", name),
    })
    .unwrap();
    wal.append(WalEntry::Commit { txn }).unwrap();
    wal.commit_appended().unwrap();
}

fn last_segment(dir: &PathBuf) -> PathBuf {
    let mut segs: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.to_string_lossy().ends_with(".wal"))
        .collect();
    segs.sort();
    segs.pop().expect("at least one segment")
}

#[test]
fn append_checkpoint_scan_roundtrip() {
    let dir = temp_dir("roundtrip");
    let mut wal = Wal::create(&dir, WalConfig::default()).unwrap();
    wal.checkpoint(
        b"snapshot-0",
        &[IndexDef {
            entity: "person".into(),
            kind: IndexKindDef::Ordered,
            attrs: vec!["name".into()],
        }],
        &[],
    )
    .unwrap();
    commit_one(&mut wal, "ann");
    commit_one(&mut wal, "bob");
    drop(wal);

    let s = scan(&dir).unwrap();
    assert_eq!(s.snapshot, b"snapshot-0");
    assert_eq!(
        s.meta.indexes,
        vec![IndexDef {
            entity: "person".into(),
            kind: IndexKindDef::Ordered,
            attrs: vec!["name".into()],
        }]
    );
    assert!(!s.torn_tail);
    // Checkpoint marker + 2 × (Begin, Insert, Commit).
    assert_eq!(s.records.len(), 7);
    assert!(matches!(s.records[0].entry, WalEntry::Checkpoint { .. }));
    let lsns: Vec<u64> = s.records.iter().map(|r| r.lsn).collect();
    let want: Vec<u64> = (s.meta.next_lsn..s.meta.next_lsn + 7).collect();
    assert_eq!(lsns, want, "LSNs are dense and start at the checkpoint");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn create_refuses_existing_log_and_scan_requires_checkpoint() {
    let dir = temp_dir("create");
    // A directory that never existed has nothing to recover.
    assert!(matches!(scan(&dir), Err(WalError::NoCheckpoint)));
    let wal = Wal::create(&dir, WalConfig::default()).unwrap();
    drop(wal);
    assert!(matches!(
        Wal::create(&dir, WalConfig::default()),
        Err(WalError::AlreadyExists)
    ));
    // A segment without a checkpoint is unrecoverable by design: the
    // engine always checkpoints at bootstrap.
    assert!(matches!(scan(&dir), Err(WalError::NoCheckpoint)));
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn version_1_checkpoint_is_rejected_explicitly() {
    // A pre-IndexDef (version 1) checkpoint header must fail with an
    // explicit unsupported-version error — not an opaque decode error,
    // and never a silent misread (its `indexes` field has a different
    // shape).
    let dir = temp_dir("v1-ckpt");
    fs::create_dir_all(&dir).unwrap();
    fs::write(
        dir.join("checkpoint.snap"),
        concat!(
            "{\"magic\":\"TOPOSEM-WAL-CKPT\",\"version\":1,\"next_lsn\":0,",
            "\"next_txn\":0,\"indexes\":[[\"person\",\"name\"]],\"fds\":[]}\npayload"
        ),
    )
    .unwrap();
    match scan(&dir) {
        Err(WalError::BadCheckpoint(why)) => {
            assert!(
                why.contains("unsupported version 1"),
                "expected an unsupported-version error, got: {why}"
            );
        }
        other => panic!("v1 checkpoint must be rejected, got {other:?}"),
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn segments_rotate_and_scan_in_order() {
    let dir = temp_dir("rotate");
    let cfg = WalConfig {
        flush: FlushPolicy::NoSync,
        segment_bytes: 512, // force frequent rotation
    };
    let mut wal = Wal::create(&dir, cfg).unwrap();
    wal.checkpoint(b"base", &[], &[]).unwrap();
    for i in 0..40 {
        commit_one(&mut wal, &format!("w{i}"));
    }
    drop(wal);
    let n_segs = fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .to_string_lossy()
                .ends_with(".wal")
        })
        .count();
    assert!(n_segs > 3, "expected rotation, got {n_segs} segment(s)");
    let s = scan(&dir).unwrap();
    assert_eq!(s.records.len(), 1 + 40 * 3);
    let lsns: Vec<u64> = s.records.iter().map(|r| r.lsn).collect();
    let mut sorted = lsns.clone();
    sorted.sort_unstable();
    assert_eq!(lsns, sorted, "cross-segment scan preserves log order");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_truncates_old_segments() {
    let dir = temp_dir("truncate");
    let cfg = WalConfig {
        flush: FlushPolicy::NoSync,
        segment_bytes: 512,
    };
    let mut wal = Wal::create(&dir, cfg).unwrap();
    wal.checkpoint(b"base", &[], &[]).unwrap();
    for i in 0..40 {
        commit_one(&mut wal, &format!("w{i}"));
    }
    wal.checkpoint(b"base-2", &[], &[]).unwrap();
    commit_one(&mut wal, "after");
    drop(wal);
    let n_segs = fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .to_string_lossy()
                .ends_with(".wal")
        })
        .count();
    assert_eq!(n_segs, 1, "checkpoint must drop pre-checkpoint segments");
    let s = scan(&dir).unwrap();
    assert_eq!(s.snapshot, b"base-2");
    // Only the checkpoint marker and the post-checkpoint transaction.
    assert_eq!(s.records.len(), 4);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_tail_is_tolerated_and_truncated_on_open() {
    let dir = temp_dir("torn");
    let mut wal = Wal::create(&dir, WalConfig::no_sync()).unwrap();
    wal.checkpoint(b"base", &[], &[]).unwrap();
    commit_one(&mut wal, "ann");
    commit_one(&mut wal, "bob");
    drop(wal);
    // Tear the final record: chop 3 bytes off the segment.
    let seg = last_segment(&dir);
    let full = fs::metadata(&seg).unwrap().len();
    let f = fs::OpenOptions::new().write(true).open(&seg).unwrap();
    f.set_len(full - 3).unwrap();
    drop(f);

    let s = scan(&dir).unwrap();
    assert!(s.torn_tail);
    // bob's Commit was the final record; his transaction is discarded.
    assert_eq!(
        s.records.len(),
        6,
        "checkpoint + ann txn + bob Begin/Insert"
    );

    // Reopen for append: the torn suffix is cut, and new appends land
    // cleanly after the last valid record.
    let (mut wal, s2) = Wal::open(&dir, WalConfig::no_sync()).unwrap();
    assert_eq!(s2.records.len(), 6);
    commit_one(&mut wal, "carol");
    drop(wal);
    let s3 = scan(&dir).unwrap();
    assert!(!s3.torn_tail, "tail was repaired on open");
    assert_eq!(s3.records.len(), 9);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn scan_skips_preckpt_leftovers_after_interrupted_checkpoint() {
    // Simulate a crash after the checkpoint file was installed but
    // before old segments were deleted: recovery must not double-apply.
    let dir = temp_dir("leftover");
    let mut wal = Wal::create(&dir, WalConfig::no_sync()).unwrap();
    wal.checkpoint(b"base", &[], &[]).unwrap();
    commit_one(&mut wal, "ann");
    // Copy the pre-checkpoint segment aside, checkpoint, then restore
    // the old segment next to the new one.
    let old_seg = last_segment(&dir);
    let stash = dir.join("stash");
    fs::copy(&old_seg, &stash).unwrap();
    wal.checkpoint(b"with-ann", &[], &[]).unwrap();
    drop(wal);
    let revived = dir.join(old_seg.file_name().unwrap());
    fs::rename(&stash, &revived).unwrap();

    let s = scan(&dir).unwrap();
    assert_eq!(s.snapshot, b"with-ann");
    // Every surviving record is at or above the checkpoint LSN: ann's
    // transaction (already inside the snapshot) is filtered out.
    assert!(s.records.iter().all(|r| r.lsn >= s.meta.next_lsn));
    assert_eq!(s.records.len(), 1, "only the checkpoint marker remains");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn group_commit_defers_then_flushes_on_batch() {
    let dir = temp_dir("group");
    let cfg = WalConfig {
        flush: FlushPolicy::GroupCommit {
            max_batch: 4,
            max_wait: std::time::Duration::from_secs(3600),
        },
        segment_bytes: 1 << 20,
    };
    let mut wal = Wal::create(&dir, cfg).unwrap();
    wal.checkpoint(b"base", &[], &[]).unwrap();
    for i in 0..10 {
        commit_one(&mut wal, &format!("w{i}"));
    }
    // All ten committed transactions are readable after drop (the drop
    // flushes buffers; group commit only defers fsync, and the scan goes
    // through the page cache anyway).
    drop(wal);
    let s = scan(&dir).unwrap();
    let commits = s
        .records
        .iter()
        .filter(|r| matches!(r.entry, WalEntry::Commit { .. }))
        .count();
    assert_eq!(commits, 10);
    fs::remove_dir_all(&dir).unwrap();
}
