//! Human-readable intension reports: Markdown summaries and Graphviz DOT
//! renderings of the ISA hierarchy (the tooling face of the paper's
//! diagrams).

use std::fmt::Write as _;

use crate::intension::Intension;

/// A Markdown report of an intension: the T1-style table, both set
/// families, the subbase split, and the contributors — the paper's §2–3
/// analysis for an arbitrary schema.
pub fn markdown_report(intension: &Intension) -> String {
    let s = intension.schema();
    let mut out = String::new();
    let _ = writeln!(out, "# Intension report\n");
    let _ = writeln!(
        out,
        "{} attributes, {} entity types.\n",
        s.attr_count(),
        s.type_count()
    );

    let _ = writeln!(out, "## Entity types\n");
    let _ = writeln!(out, "| entity | attribute set | kind | contributors |");
    let _ = writeln!(out, "|---|---|---|---|");
    for e in s.type_ids() {
        let kind = if intension.is_primitive(e) {
            "primitive"
        } else {
            "constructed"
        };
        let co: Vec<&str> = intension
            .contributors_of(e)
            .iter()
            .map(|&c| s.type_name(c))
            .collect();
        let _ = writeln!(
            out,
            "| {} | {{{}}} | {} | {} |",
            s.type_name(e),
            s.attr_set_names(s.attrs_of(e)).join(", "),
            kind,
            if co.is_empty() {
                "—".to_owned()
            } else {
                co.join(", ")
            }
        );
    }

    let _ = writeln!(out, "\n## Specialisation sets\n");
    for e in s.type_ids() {
        let _ = writeln!(
            out,
            "- `S_{}` = {{{}}}",
            s.type_name(e),
            s.type_set_names(intension.specialisation().s_set(e))
                .join(", ")
        );
    }

    let _ = writeln!(out, "\n## Generalisation sets\n");
    for e in s.type_ids() {
        let _ = writeln!(
            out,
            "- `G_{}` = {{{}}}",
            s.type_name(e),
            s.type_set_names(intension.generalisation().g_set(e))
                .join(", ")
        );
    }

    let _ = writeln!(out, "\n## ISA hierarchy (direct edges)\n");
    for (sub, sup) in intension.specialisation().isa_edges() {
        let _ = writeln!(out, "- {} ISA {}", s.type_name(sub), s.type_name(sup));
    }
    out
}

/// A Graphviz DOT rendering of the ISA Hasse diagram, primitive types as
/// boxes and constructed types as ellipses (the paper's Venn diagram as a
/// graph).
pub fn dot_isa_diagram(intension: &Intension) -> String {
    let s = intension.schema();
    let mut out = String::new();
    let _ = writeln!(out, "digraph isa {{");
    let _ = writeln!(out, "  rankdir=BT;");
    for e in s.type_ids() {
        let shape = if intension.is_primitive(e) {
            "box"
        } else {
            "ellipse"
        };
        let _ = writeln!(
            out,
            "  \"{}\" [shape={}, label=\"{}\\n{{{}}}\"];",
            s.type_name(e),
            shape,
            s.type_name(e),
            s.attr_set_names(s.attrs_of(e)).join(", ")
        );
    }
    for (sub, sup) in intension.specialisation().isa_edges() {
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\";",
            s.type_name(sub),
            s.type_name(sup)
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::employee::employee_schema;

    #[test]
    fn markdown_contains_key_facts() {
        let i = Intension::analyse(employee_schema());
        let md = markdown_report(&i);
        assert!(md.contains("| worksfor |"));
        assert!(md.contains("constructed"));
        assert!(md.contains("employee, department")); // contributors
        assert!(md.contains("`S_person` = {employee, person, manager, worksfor}"));
        assert!(md.contains("manager ISA employee"));
    }

    #[test]
    fn dot_is_wellformed() {
        let i = Intension::analyse(employee_schema());
        let dot = dot_isa_diagram(&i);
        assert!(dot.starts_with("digraph isa {"));
        assert!(dot.trim_end().ends_with('}'));
        // Primitive types boxed, constructed elliptical.
        assert!(dot.contains("\"person\" [shape=box"));
        assert!(dot.contains("\"worksfor\" [shape=ellipse"));
        assert_eq!(dot.matches(" -> ").count(), 4); // the 4 ISA edges
    }
}
