//! The generalisation topology of §3.2 — the dual construction.
//!
//! Define `Ā_e = A − A_e` and `V̄_a = {e ∈ E | a ∉ A_e}`. The minimal
//! element of the generated lattice containing `e` is
//!
//! ```text
//! G_e = ∩_{a ∉ A_e} V̄_a = { f ∈ E | A_f ⊆ A_e }
//! ```
//!
//! — the set of *generalisations* of `e`. The paper stresses that `S_x` and
//! `G_x` are **not** each other's complements (`S_person ∪ G_person ≠ E`,
//! `S_person ∩ G_person = {person}`) but satisfy the duality corollary
//! `y ∈ S_x ⇔ x ∈ G_y`.

use serde::{Deserialize, Serialize};
use toposem_topology::{BitSet, FiniteSpace, Preorder};

use crate::ident::{AttrId, TypeId};
use crate::schema::Schema;

/// The generalisation topology on the entity types of a schema.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GeneralisationTopology {
    space: FiniteSpace,
    /// `v_bar_sets[a] = V̄_a`.
    v_bar_sets: Vec<BitSet>,
}

impl GeneralisationTopology {
    /// Builds the dual topology from a schema.
    pub fn of_schema(schema: &Schema) -> Self {
        let v_bar_sets: Vec<BitSet> = schema
            .attr_ids()
            .map(|a| schema.co_occurrence_set(a))
            .collect();
        let space = FiniteSpace::from_subbase(schema.type_count(), &v_bar_sets);
        GeneralisationTopology { space, v_bar_sets }
    }

    /// The underlying finite space.
    pub fn space(&self) -> &FiniteSpace {
        &self.space
    }

    /// The subbase member `V̄_a`.
    pub fn v_bar_set(&self, a: AttrId) -> &BitSet {
        &self.v_bar_sets[a.index()]
    }

    /// The full dual subbase.
    pub fn subbase(&self) -> &[BitSet] {
        &self.v_bar_sets
    }

    /// `G_e`: the generalisations of `e` (including `e`) — the minimal
    /// open neighbourhood of `e` in the dual topology.
    pub fn g_set(&self, e: TypeId) -> &BitSet {
        self.space.min_neighbourhood(e.index())
    }

    /// `f ∈ G_e`? (Is `f` a generalisation of `e`?)
    pub fn is_generalisation(&self, f: TypeId, e: TypeId) -> bool {
        self.g_set(e).contains(f.index())
    }

    /// The cover `G = {G_e | e ∈ E}` in type-id order.
    pub fn cover(&self) -> Vec<BitSet> {
        (0..self.space.len())
            .map(|i| self.space.min_neighbourhood(i).clone())
            .collect()
    }

    /// The generalisation preorder (dual of the ISA order).
    pub fn order(&self) -> Preorder {
        Preorder::of_space(&self.space)
    }

    /// Verifies `E = ∪_e G_e`.
    pub fn verify_cover(&self) -> bool {
        let n = self.space.len();
        let mut u = BitSet::empty(n);
        for i in 0..n {
            u.union_with(self.space.min_neighbourhood(i));
        }
        u.is_full() || n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::employee::employee_schema;
    use crate::specialisation::SpecialisationTopology;

    fn topo() -> (Schema, GeneralisationTopology) {
        let s = employee_schema();
        let t = GeneralisationTopology::of_schema(&s);
        (s, t)
    }

    /// F3: the §3.2 diagrams, checked set by set.
    #[test]
    fn g_sets_match_paper_diagrams() {
        let (s, t) = topo();
        let g = |n: &str| s.type_set_names(t.g_set(s.type_id(n).unwrap()));

        // G_manager = {employee, person, manager}
        assert_eq!(g("manager"), vec!["employee", "person", "manager"]);
        // G_worksfor = {employee, person, department, worksfor}
        assert_eq!(
            g("worksfor"),
            vec!["employee", "person", "department", "worksfor"]
        );
        // G_department = {department}
        assert_eq!(g("department"), vec!["department"]);
        // G_person = {person}; G_employee = {employee, person}
        assert_eq!(g("person"), vec!["person"]);
        assert_eq!(g("employee"), vec!["employee", "person"]);
    }

    /// R2: the duality corollary `y ∈ S_x ⇔ x ∈ G_y`.
    #[test]
    fn duality_corollary() {
        let s = employee_schema();
        let spec = SpecialisationTopology::of_schema(&s);
        let gen = GeneralisationTopology::of_schema(&s);
        for x in s.type_ids() {
            for y in s.type_ids() {
                assert_eq!(
                    spec.s_set(x).contains(y.index()),
                    gen.g_set(y).contains(x.index()),
                    "duality fails at x={}, y={}",
                    s.type_name(x),
                    s.type_name(y)
                );
            }
        }
    }

    /// R2: S and G are *not* complements — the paper's person
    /// counterexample.
    #[test]
    fn s_and_g_are_not_complements() {
        let s = employee_schema();
        let spec = SpecialisationTopology::of_schema(&s);
        let gen = GeneralisationTopology::of_schema(&s);
        let person = s.type_id("person").unwrap();
        let union = spec.s_set(person).union(gen.g_set(person));
        assert!(!union.is_full(), "S_person ∪ G_person ≠ E");
        let inter = spec.s_set(person).intersection(gen.g_set(person));
        assert_eq!(s.type_set_names(&inter), vec!["person"]);
    }

    #[test]
    fn g_e_is_minimal_open_containing_e() {
        let (s, t) = topo();
        for e in s.type_ids() {
            let ge = t.g_set(e);
            assert!(ge.contains(e.index()));
            assert!(t.space().is_open(ge));
            for o in t.space().all_opens() {
                if o.contains(e.index()) {
                    assert!(ge.is_subset(&o));
                }
            }
        }
    }

    #[test]
    fn proper_subset_hierarchy_in_dual() {
        let (s, t) = topo();
        // y ∈ G_x and y ≠ x ⇒ G_y ⊂ G_x (the paper's §3.2 remark).
        for x in s.type_ids() {
            for y in s.type_ids() {
                if x != y && t.is_generalisation(y, x) {
                    assert!(t.g_set(y).is_proper_subset(t.g_set(x)));
                }
            }
        }
    }

    #[test]
    fn cover_property_holds() {
        let (_, t) = topo();
        assert!(t.verify_cover());
        assert!(t.space().is_t0());
    }

    #[test]
    fn v_bar_sets_form_subbase() {
        let (_, t) = topo();
        assert!(t.space().is_subbase(t.subbase()));
    }
}
