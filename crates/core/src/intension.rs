//! The database intension: schema + both topologies + subbase choice.
//!
//! §3: "the formal description of the database semantics, the conceptual
//! model, starts with the complete list of property names and entity
//! types". [`Intension`] derives from the schema everything the paper
//! constructs: the specialisation and generalisation topologies, the ISA
//! order, the contributors, and a chosen subbase `R_T` splitting entity
//! types into *primitive* and *constructed* ones.

use serde::{Deserialize, Serialize};
use toposem_topology::{BitSet, SubbaseAnalysis};

use crate::contributors;
use crate::generalisation::GeneralisationTopology;
use crate::ident::TypeId;
use crate::schema::Schema;
use crate::specialisation::SpecialisationTopology;

/// A fully analysed conceptual model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Intension {
    schema: Schema,
    spec: SpecialisationTopology,
    gen: GeneralisationTopology,
    /// The chosen subbase `R_T` as a set of entity types (indices into E).
    chosen_subbase: BitSet,
}

impl Intension {
    /// Analyses a schema, choosing as subbase the greedy-minimal generating
    /// subfamily of the cover `S = {S_e}` (preferring to *drop*
    /// later-declared types, which mirrors a designer marking derived
    /// relationships as constructed).
    pub fn analyse(schema: Schema) -> Self {
        let spec = SpecialisationTopology::of_schema(&schema);
        let gen = GeneralisationTopology::of_schema(&schema);
        let analysis = SubbaseAnalysis::new(schema.type_count(), spec.cover());
        let chosen_subbase = analysis.greedy_minimal();
        Intension {
            schema,
            spec,
            gen,
            chosen_subbase,
        }
    }

    /// Analyses a schema with an explicit designer-chosen subbase. Returns
    /// `None` when the choice does not generate the entity-type topology.
    pub fn analyse_with_subbase(schema: Schema, subbase: &[TypeId]) -> Option<Self> {
        let spec = SpecialisationTopology::of_schema(&schema);
        let gen = GeneralisationTopology::of_schema(&schema);
        let analysis = SubbaseAnalysis::new(schema.type_count(), spec.cover());
        let chosen = BitSet::from_indices(schema.type_count(), subbase.iter().map(|t| t.index()));
        if !analysis.generates(&chosen) {
            return None;
        }
        Some(Intension {
            schema,
            spec,
            gen,
            chosen_subbase: chosen,
        })
    }

    /// The underlying schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Restores the schema's lookup indices after deserialisation.
    pub fn rebuild_indices(&mut self) {
        self.schema.rebuild_indices();
    }

    /// The specialisation topology.
    pub fn specialisation(&self) -> &SpecialisationTopology {
        &self.spec
    }

    /// The generalisation topology.
    pub fn generalisation(&self) -> &GeneralisationTopology {
        &self.gen
    }

    /// The chosen subbase `R_T` (primitive entity types).
    pub fn subbase_types(&self) -> Vec<TypeId> {
        self.chosen_subbase
            .iter()
            .map(|i| TypeId(i as u32))
            .collect()
    }

    /// The constructed entity types: `E \ R_T` — "the entity types not in
    /// the subbase are called constructed types".
    pub fn constructed_types(&self) -> Vec<TypeId> {
        self.schema
            .type_ids()
            .filter(|e| !self.chosen_subbase.contains(e.index()))
            .collect()
    }

    /// Is `e` primitive (in the chosen subbase)?
    pub fn is_primitive(&self, e: TypeId) -> bool {
        self.chosen_subbase.contains(e.index())
    }

    /// The effective contributor set `CO_e`.
    pub fn contributors_of(&self, e: TypeId) -> Vec<TypeId> {
        contributors::contributors(&self.schema, &self.gen, e)
            .iter()
            .map(|i| TypeId(i as u32))
            .collect()
    }

    /// The independent fragments of the schema: connected components of
    /// the specialisation space. Types in different fragments share no
    /// attributes (directly or transitively) and can evolve and be stored
    /// independently.
    pub fn fragments(&self) -> Vec<Vec<TypeId>> {
        toposem_topology::components(self.spec.space())
            .into_iter()
            .map(|c| c.iter().map(|i| TypeId(i as u32)).collect())
            .collect()
    }

    /// All minimal subbases of the specialisation cover — the design
    /// freedom of §3.1 ("choose a subbase for T which reflects the bias to
    /// the Universe of Discourse"). Exponential; design-time only.
    pub fn all_minimal_subbases(&self) -> Vec<Vec<TypeId>> {
        let analysis = SubbaseAnalysis::new(self.schema.type_count(), self.spec.cover());
        analysis
            .all_minimal()
            .into_iter()
            .map(|b| b.iter().map(|i| TypeId(i as u32)).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::employee::employee_schema;

    fn intension() -> Intension {
        Intension::analyse(employee_schema())
    }

    /// R1: the paper's chosen subbase
    /// `R_T = {person, department, employee, manager}` with `worksfor` the
    /// only constructed element.
    #[test]
    fn paper_subbase_is_valid_and_worksfor_is_constructed() {
        let s = employee_schema();
        let names = ["person", "department", "employee", "manager"];
        let ids: Vec<TypeId> = names.iter().map(|n| s.type_id(n).unwrap()).collect();
        let i = Intension::analyse_with_subbase(s, &ids).expect("paper subbase generates T");
        let constructed: Vec<&str> = i
            .constructed_types()
            .iter()
            .map(|&e| i.schema().type_name(e))
            .collect();
        assert_eq!(constructed, vec!["worksfor"]);
        for n in names {
            assert!(i.is_primitive(i.schema().type_id(n).unwrap()));
        }
    }

    #[test]
    fn default_analysis_also_drops_worksfor() {
        // The greedy choice drops the highest-indexed redundant S_e, which
        // for the paper schema is exactly S_worksfor = S_employee ∩
        // S_department.
        let i = intension();
        let constructed: Vec<&str> = i
            .constructed_types()
            .iter()
            .map(|&e| i.schema().type_name(e))
            .collect();
        assert_eq!(constructed, vec!["worksfor"]);
    }

    #[test]
    fn non_generating_subbase_is_rejected() {
        let s = employee_schema();
        let person = s.type_id("person").unwrap();
        assert!(Intension::analyse_with_subbase(s, &[person]).is_none());
    }

    #[test]
    fn minimal_subbases_enumerate_designer_freedom() {
        let i = intension();
        let all = i.all_minimal_subbases();
        // Every minimal subbase generates and includes the four primitive
        // types (worksfor's S-set is the only derivable one).
        assert!(!all.is_empty());
        for sb in &all {
            let names: Vec<&str> = sb.iter().map(|&e| i.schema().type_name(e)).collect();
            assert!(
                !names.contains(&"worksfor"),
                "worksfor is never needed: {names:?}"
            );
        }
    }

    #[test]
    fn employee_schema_is_one_fragment() {
        let i = intension();
        assert_eq!(i.fragments().len(), 1);
    }

    #[test]
    fn disjoint_domains_split_into_fragments() {
        let mut b = crate::schema::SchemaBuilder::new();
        b.attribute("a", "d1");
        b.attribute("b", "d2");
        b.attribute("x", "d3");
        b.attribute("y", "d4");
        b.entity_type("t1", &["a"]);
        b.entity_type("t2", &["a", "b"]);
        b.entity_type("u1", &["x"]);
        b.entity_type("u2", &["x", "y"]);
        let i = Intension::analyse(b.build_strict().unwrap());
        let frags = i.fragments();
        assert_eq!(frags.len(), 2);
        assert!(frags.iter().all(|f| f.len() == 2));
    }

    #[test]
    fn contributors_via_intension() {
        let i = intension();
        let worksfor = i.schema().type_id("worksfor").unwrap();
        let co: Vec<&str> = i
            .contributors_of(worksfor)
            .iter()
            .map(|&c| i.schema().type_name(c))
            .collect();
        assert_eq!(co, vec!["employee", "department"]);
    }
}
