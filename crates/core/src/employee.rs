//! The paper's running example: the prototype employee database (p.5).
//!
//! ```text
//! A = {name, depname, budget, age, location}
//! E = {employee, person, department, manager, worksfor}
//!
//! entity       attribute set
//! employee     {name, age, depname}
//! person       {name, age}
//! department   {depname, location}
//! manager      {name, age, depname, budget}
//! worksfor     {name, age, depname, location}
//! ```
//!
//! "The semantic distinction between persons' name and departments' name
//! has been made explicit" — hence `name` (a person name) and `depname`
//! (a department name) are distinct attributes over distinct atomic value
//! sets.

use crate::schema::{Schema, SchemaBuilder};

/// Builds the employee schema exactly as printed in the paper.
///
/// `worksfor` is declared as a relationship contributed by `employee` and
/// `department` (the paper designates these in §3.3); its attribute set is
/// the union of its contributors' sets with the common attribute `depname`
/// occurring once, and no extra relationship attributes. `manager` is a
/// plain entity type — its contributor set is *computed* as its direct
/// generalisations, `{employee}`.
pub fn employee_schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.attribute("name", "person-names");
    b.attribute("age", "ages");
    b.attribute("depname", "department-names");
    b.attribute("budget", "amounts");
    b.attribute("location", "locations");

    let employee = b.entity_type("employee", &["name", "age", "depname"]);
    b.entity_type("person", &["name", "age"]);
    let department = b.entity_type("department", &["depname", "location"]);
    b.entity_type("manager", &["name", "age", "depname", "budget"]);
    b.relationship("worksfor", &[employee, department], &[]);

    b.build_strict()
        .expect("the paper's employee schema satisfies all axioms")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_builds_with_five_types() {
        let s = employee_schema();
        assert_eq!(s.type_count(), 5);
        assert_eq!(s.attr_count(), 5);
    }

    #[test]
    fn worksfor_is_an_entity_type_with_designated_contributors() {
        let s = employee_schema();
        let worksfor = s.type_id("worksfor").unwrap();
        let contributors = s
            .entity_type(worksfor)
            .declared_contributors
            .as_ref()
            .unwrap();
        let names: Vec<&str> = contributors.iter().map(|&c| s.type_name(c)).collect();
        assert_eq!(names, vec!["employee", "department"]);
    }
}
