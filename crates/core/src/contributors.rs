//! Contributors of compound entity types (§3.3).
//!
//! The Extension Axiom says the information in a compound entity is
//! determined by its contributors. The designer may designate contributors
//! explicitly; with well-chosen attributes the designation coincides with
//!
//! ```text
//! CO_e = { f ∈ G_e | f ≠ e, ¬∃ g ∈ G_e \ {e,f} . f ∈ G_g }
//! ```
//!
//! — "the contributers are the direct generalisations of an entity type":
//! the lower covers of `e` in the generalisation (subset) order.

use toposem_topology::BitSet;

use crate::generalisation::GeneralisationTopology;
use crate::ident::TypeId;
use crate::schema::Schema;

/// Computes `CO_e` as the direct generalisations of `e`.
///
/// `f` is a direct generalisation when `A_f ⊂ A_e` and no other entity type
/// `g` sits strictly between (`A_f ⊂ A_g ⊂ A_e`).
pub fn computed_contributors(schema: &Schema, gen: &GeneralisationTopology, e: TypeId) -> BitSet {
    let n = schema.type_count();
    let ge = gen.g_set(e);
    BitSet::from_indices(
        n,
        ge.iter().filter(|&fi| {
            let f = TypeId(fi as u32);
            if f == e {
                return false;
            }
            // No strictly intermediate g.
            !ge.iter().any(|gi| {
                let g = TypeId(gi as u32);
                g != e && g != f && gen.is_generalisation(f, g)
            })
        }),
    )
}

/// The effective contributor set of `e`: the designer's designation when
/// present (Relationship declarations record one), otherwise the computed
/// direct generalisations.
pub fn contributors(schema: &Schema, gen: &GeneralisationTopology, e: TypeId) -> BitSet {
    if let Some(declared) = &schema.entity_type(e).declared_contributors {
        BitSet::from_indices(schema.type_count(), declared.iter().map(|c| c.index()))
    } else {
        computed_contributors(schema, gen, e)
    }
}

/// Checks the contributor Property of §3.3: every contributor must be a
/// proper generalisation (`f ∈ G_e`, `f ≠ e`). Returns offending type ids.
pub fn property_violations(
    schema: &Schema,
    gen: &GeneralisationTopology,
    e: TypeId,
) -> Vec<TypeId> {
    contributors(schema, gen, e)
        .iter()
        .map(|i| TypeId(i as u32))
        .filter(|&f| f == e || !gen.is_generalisation(f, e))
        .collect()
}

/// An entity type is *compound* when it has at least one proper
/// generalisation — "every entity that has a generalisation can be seen as
/// a compound entity".
pub fn is_compound(gen: &GeneralisationTopology, e: TypeId) -> bool {
    gen.g_set(e).card() > 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::employee::employee_schema;

    fn setup() -> (Schema, GeneralisationTopology) {
        let s = employee_schema();
        let g = GeneralisationTopology::of_schema(&s);
        (s, g)
    }

    /// R3: CO_worksfor = {employee, department} — and *not* person, which
    /// is an indirect generalisation via employee.
    #[test]
    fn worksfor_contributors_match_paper() {
        let (s, g) = setup();
        let worksfor = s.type_id("worksfor").unwrap();
        let computed = computed_contributors(&s, &g, worksfor);
        assert_eq!(s.type_set_names(&computed), vec!["employee", "department"]);
        // The declared designation agrees with the computed definition —
        // "by choosing the attributes carefully, the designer can achieve
        // that the definition captures exactly the contributers".
        let effective = contributors(&s, &g, worksfor);
        assert_eq!(computed, effective);
    }

    #[test]
    fn manager_contributors_are_employee_only() {
        let (s, g) = setup();
        let manager = s.type_id("manager").unwrap();
        let co = contributors(&s, &g, manager);
        assert_eq!(s.type_set_names(&co), vec!["employee"]);
    }

    #[test]
    fn primitive_types_have_no_contributors() {
        let (s, g) = setup();
        for n in ["person", "department"] {
            let e = s.type_id(n).unwrap();
            assert!(contributors(&s, &g, e).is_empty(), "{n} is primitive");
            assert!(!is_compound(&g, e));
        }
        for n in ["employee", "manager", "worksfor"] {
            assert!(is_compound(&g, s.type_id(n).unwrap()));
        }
    }

    #[test]
    fn contributor_property_holds_for_paper_schema() {
        let (s, g) = setup();
        for e in s.type_ids() {
            assert!(property_violations(&s, &g, e).is_empty());
        }
    }

    #[test]
    fn contributors_are_lower_covers_of_generalisation_order() {
        // Cross-check against the Hasse diagram of the dual preorder: the
        // computed CO_e must be exactly the direct covers below e.
        let (s, g) = setup();
        let order = g.order();
        for e in s.type_ids() {
            let co = computed_contributors(&s, &g, e);
            let covers: Vec<usize> = order.lower_covers(e.index());
            assert_eq!(co.to_vec(), covers, "type {}", s.type_name(e));
        }
    }
}
