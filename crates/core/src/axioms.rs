//! The six design axioms of §2, as data.
//!
//! The axioms are partly *structural* (the types of this crate make them
//! unrepresentable to violate: a relationship **is** an entity type, a view
//! **is** a set of entity types) and partly *checked* (validators emit
//! [`AxiomViolation`]s with the remedial advice the paper gives in its
//! design-process recipe).

use serde::{Deserialize, Serialize};

/// One of the six design axioms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DesignAxiom {
    /// "Each attribute has a single non-decomposable semantic
    /// interpretation."
    Attribute,
    /// "No two entity types can have the same set of property names."
    EntityType,
    /// "A relationship is an entity type."
    Relationship,
    /// "The extension of a compound entity type is fully determined by its
    /// contributers."
    Extension,
    /// "An entity view type is a set of entity types."
    View,
    /// "An integrity constraint is a predicate over entity types and
    /// implies an entity type."
    Integrity,
}

impl DesignAxiom {
    /// The axiom's statement, verbatim from the paper.
    pub fn statement(self) -> &'static str {
        match self {
            DesignAxiom::Attribute => {
                "Each attribute has a single non-decomposable semantic interpretation."
            }
            DesignAxiom::EntityType => {
                "No two entity types can have the same set of property names."
            }
            DesignAxiom::Relationship => "A relationship is an entity type.",
            DesignAxiom::Extension => {
                "The extension of a compound entity type is fully determined by its contributers."
            }
            DesignAxiom::View => "An entity view type is a set of entity types.",
            DesignAxiom::Integrity => {
                "An integrity constraint is a predicate over entity types and implies an entity type."
            }
        }
    }

    /// All six axioms, in the paper's order.
    pub fn all() -> [DesignAxiom; 6] {
        [
            DesignAxiom::Attribute,
            DesignAxiom::EntityType,
            DesignAxiom::Relationship,
            DesignAxiom::Extension,
            DesignAxiom::View,
            DesignAxiom::Integrity,
        ]
    }
}

impl std::fmt::Display for DesignAxiom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            DesignAxiom::Attribute => "Attribute Axiom",
            DesignAxiom::EntityType => "Entity Type Axiom",
            DesignAxiom::Relationship => "Relationship Axiom",
            DesignAxiom::Extension => "Extension Axiom",
            DesignAxiom::View => "View Axiom",
            DesignAxiom::Integrity => "Integrity Axiom",
        };
        f.write_str(name)
    }
}

/// A recorded violation of a design axiom, with remedial advice.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AxiomViolation {
    /// Which axiom was violated.
    pub axiom: DesignAxiom,
    /// Human-readable diagnosis (includes the paper's suggested fix where
    /// one exists).
    pub message: String,
}

impl std::fmt::Display for AxiomViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.axiom, self.message)
    }
}

impl std::error::Error for AxiomViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statements_are_the_papers() {
        assert!(DesignAxiom::Relationship
            .statement()
            .contains("is an entity type"));
        assert_eq!(DesignAxiom::all().len(), 6);
    }

    #[test]
    fn display_formats() {
        let v = AxiomViolation {
            axiom: DesignAxiom::View,
            message: "bad view".into(),
        };
        assert_eq!(v.to_string(), "View Axiom: bad view");
    }
}
