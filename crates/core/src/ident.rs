//! Identifiers for the symbolic name space.
//!
//! §2 of the paper: "any model needs a symbolic name space, the
//! non-literals, and value space, the literals". Attributes and entity types
//! are interned into dense ids so the attribute sets and entity-type sets
//! can live in bitset universes.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Dense id of an attribute (a property name bound to an atomic value set).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrId(pub u32);

/// Dense id of an entity type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TypeId(pub u32);

impl AttrId {
    /// The id as a bitset/vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TypeId {
    /// The id as a bitset/vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A string interner mapping names to dense indices, preserving insertion
/// order.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NameTable {
    names: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, u32>,
}

impl NameTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its index; existing names return their
    /// original index.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), i);
        i
    }

    /// Looks up an existing name.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// Resolves an index back to its name.
    pub fn name(&self, i: u32) -> &str {
        &self.names[i as usize]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(index, name)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_str()))
    }

    /// Rebuilds the lookup index after deserialisation (serde skips it).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = NameTable::new();
        let a = t.intern("name");
        let b = t.intern("age");
        let a2 = t.intern("name");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.name(a), "name");
        assert_eq!(t.get("age"), Some(b));
        assert_eq!(t.get("missing"), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn iteration_in_insertion_order() {
        let mut t = NameTable::new();
        t.intern("c");
        t.intern("a");
        t.intern("b");
        let names: Vec<&str> = t.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["c", "a", "b"]);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut t = NameTable::new();
        t.intern("x");
        t.intern("y");
        let json = serde_json::to_string(&t).unwrap();
        let mut back: NameTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get("x"), None); // index skipped by serde
        back.rebuild_index();
        assert_eq!(back.get("x"), Some(0));
        assert_eq!(back.get("y"), Some(1));
    }
}
