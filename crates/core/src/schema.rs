//! Conceptual schemas: the finite attribute universe `A` and the set of
//! entity types `E`, each a *named subset of A* (§2, §3).
//!
//! "We define an entity as nothing more than a name for a set of attributes.
//! [...] The entity name itself does not carry additional semantic
//! information." The schema therefore stores exactly that: property names
//! bound to atomic value sets (Attribute Axiom), and named attribute sets
//! (entity types), with the Entity Type Axiom enforced at construction.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use toposem_topology::BitSet;

use crate::axioms::{AxiomViolation, DesignAxiom};
use crate::ident::{AttrId, NameTable, TypeId};

/// Declaration of a single attribute: a property name associated with a
/// named atomic value set (its domain).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributeDef {
    /// The property name, e.g. `"depname"`.
    pub name: String,
    /// The name of the atomic value set the attribute draws from, e.g.
    /// `"department-names"`. The Attribute Axiom requires exactly one.
    pub domain: String,
}

/// Declaration of an entity type: a name for a set of attributes.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntityTypeDef {
    /// The designer-chosen name (synonym-level only; carries no semantics).
    pub name: String,
    /// The attribute set `A_e` as a subset of the attribute universe.
    pub attrs: BitSet,
    /// Contributor override: `Some` when the designer designates the
    /// contributing entity types explicitly (§3.3); `None` means "compute
    /// the direct generalisations".
    pub declared_contributors: Option<Vec<TypeId>>,
}

/// A validated conceptual schema: the pair `(A, E)`.
///
/// Construction goes through [`SchemaBuilder`], which enforces the
/// Attribute and Entity Type axioms and records any violation with a
/// diagnosis mirroring the paper's design-process advice.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    attr_names: NameTable,
    attrs: Vec<AttributeDef>,
    type_names: NameTable,
    types: Vec<EntityTypeDef>,
}

impl Schema {
    /// Number of attributes `|A|`.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// Number of entity types `|E|`.
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// Looks up an attribute by name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attr_names.get(name).map(AttrId)
    }

    /// Looks up an entity type by name.
    pub fn type_id(&self, name: &str) -> Option<TypeId> {
        self.type_names.get(name).map(TypeId)
    }

    /// The attribute definition for `id`.
    pub fn attr(&self, id: AttrId) -> &AttributeDef {
        &self.attrs[id.index()]
    }

    /// The entity type definition for `id`.
    pub fn entity_type(&self, id: TypeId) -> &EntityTypeDef {
        &self.types[id.index()]
    }

    /// The attribute name for `id`.
    pub fn attr_name(&self, id: AttrId) -> &str {
        &self.attrs[id.index()].name
    }

    /// The entity type name for `id`.
    pub fn type_name(&self, id: TypeId) -> &str {
        &self.types[id.index()].name
    }

    /// The attribute set `A_e` of entity type `e`.
    pub fn attrs_of(&self, e: TypeId) -> &BitSet {
        &self.types[e.index()].attrs
    }

    /// Iterates all attribute ids.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> {
        (0..self.attrs.len() as u32).map(AttrId)
    }

    /// Iterates all entity type ids.
    pub fn type_ids(&self) -> impl Iterator<Item = TypeId> {
        (0..self.types.len() as u32).map(TypeId)
    }

    /// Resolves attribute names of an attribute set, in id order.
    pub fn attr_set_names(&self, set: &BitSet) -> Vec<&str> {
        set.iter().map(|i| self.attrs[i].name.as_str()).collect()
    }

    /// Resolves entity type names of a type set, in id order.
    pub fn type_set_names(&self, set: &BitSet) -> Vec<&str> {
        set.iter().map(|i| self.types[i].name.as_str()).collect()
    }

    /// `V_a = { e ∈ E | a ∈ A_e }` — the entity types using attribute `a`
    /// (§3.1). This family is the subbase of the specialisation topology.
    pub fn occurrence_set(&self, a: AttrId) -> BitSet {
        BitSet::from_indices(
            self.types.len(),
            self.type_ids()
                .filter(|&e| self.attrs_of(e).contains(a.index()))
                .map(|e| e.index()),
        )
    }

    /// `V̄_a = { e ∈ E | a ∉ A_e }` — the dual subbase of the
    /// generalisation topology (§3.2).
    pub fn co_occurrence_set(&self, a: AttrId) -> BitSet {
        self.occurrence_set(a).complement()
    }

    /// `A_e ⊆ A_f`? (f specialises e; equivalently `f ∈ S_e`, `e ∈ G_f`.)
    pub fn is_specialisation(&self, f: TypeId, e: TypeId) -> bool {
        self.attrs_of(e).is_subset(self.attrs_of(f))
    }

    /// Restores internal lookup indices after deserialisation.
    pub fn rebuild_indices(&mut self) {
        self.attr_names.rebuild_index();
        self.type_names.rebuild_index();
    }
}

/// Incrementally builds a [`Schema`], enforcing the design axioms.
#[derive(Clone, Debug, Default)]
pub struct SchemaBuilder {
    attr_names: NameTable,
    attrs: Vec<AttributeDef>,
    type_names: NameTable,
    types: Vec<EntityTypeDef>,
    violations: Vec<AxiomViolation>,
    /// Attribute-set → first type declared with it (for synonym detection).
    seen_attr_sets: HashMap<Vec<usize>, TypeId>,
}

impl SchemaBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares an attribute with its atomic value set.
    ///
    /// Attribute Axiom: "Each attribute has a single non-decomposable
    /// semantic interpretation." Re-declaring a name with a *different*
    /// domain is the tell-tale of an attribute playing multiple semantic
    /// roles and is recorded as a violation (the fix the paper prescribes is
    /// one name per role).
    pub fn attribute(&mut self, name: &str, domain: &str) -> AttrId {
        if let Some(existing) = self.attr_names.get(name) {
            let prior = &self.attrs[existing as usize];
            if prior.domain != domain {
                self.violations.push(AxiomViolation {
                    axiom: DesignAxiom::Attribute,
                    message: format!(
                        "attribute `{name}` bound to two atomic value sets \
                         (`{}` and `{domain}`): it plays multiple semantic \
                         roles; introduce one attribute per role",
                        prior.domain
                    ),
                });
            }
            return AttrId(existing);
        }
        let id = self.attr_names.intern(name);
        self.attrs.push(AttributeDef {
            name: name.to_owned(),
            domain: domain.to_owned(),
        });
        AttrId(id)
    }

    /// Declares an entity type over previously declared attributes.
    ///
    /// Entity Type Axiom: "No two entity types can have the same set of
    /// property names." A duplicate attribute set is recorded as a violation
    /// naming both types (the paper: they are synonyms — drop one — or the
    /// design is underspecified — add a role attribute).
    pub fn entity_type(&mut self, name: &str, attr_names: &[&str]) -> TypeId {
        let ids: Vec<AttrId> = attr_names
            .iter()
            .map(|a| {
                self.attr_names.get(a).map(AttrId).unwrap_or_else(|| {
                    self.violations.push(AxiomViolation {
                        axiom: DesignAxiom::Attribute,
                        message: format!(
                            "entity type `{name}` references undeclared attribute `{a}`"
                        ),
                    });
                    // Intern it with an unknown domain so building proceeds.
                    let id = self.attr_names.intern(a);
                    self.attrs.push(AttributeDef {
                        name: (*a).to_owned(),
                        domain: "<undeclared>".to_owned(),
                    });
                    AttrId(id)
                })
            })
            .collect();
        self.entity_type_by_ids(name, &ids)
    }

    /// Declares an entity type from attribute ids.
    pub fn entity_type_by_ids(&mut self, name: &str, attrs: &[AttrId]) -> TypeId {
        if attrs.is_empty() {
            self.violations.push(AxiomViolation {
                axiom: DesignAxiom::EntityType,
                message: format!(
                    "entity type `{name}` has no attributes: it is fully \
                     underspecified (an entity is a name for a set of attributes)"
                ),
            });
        }
        if let Some(existing) = self.type_names.get(name) {
            self.violations.push(AxiomViolation {
                axiom: DesignAxiom::EntityType,
                message: format!("entity type name `{name}` declared twice"),
            });
            return TypeId(existing);
        }
        let id = TypeId(self.type_names.intern(name));
        // The attribute universe may still grow, so store indices and build
        // bitsets at `build()` time.
        let mut key: Vec<usize> = attrs.iter().map(|a| a.index()).collect();
        key.sort_unstable();
        key.dedup();
        if let Some(&prior) = self.seen_attr_sets.get(&key) {
            self.violations.push(AxiomViolation {
                axiom: DesignAxiom::EntityType,
                message: format!(
                    "entity types `{}` and `{name}` have identical attribute \
                     sets: either they are synonyms (drop one) or the design \
                     is underspecified (add a role attribute)",
                    self.types[prior.index()].name
                ),
            });
        } else {
            self.seen_attr_sets.insert(key.clone(), id);
        }
        self.types.push(EntityTypeDef {
            name: name.to_owned(),
            // Placeholder universe; fixed up in build().
            attrs: BitSet::from_indices(
                self.attrs.len().max(key.iter().max().map_or(0, |m| m + 1)),
                key,
            ),
            declared_contributors: None,
        });
        id
    }

    /// Declares a relationship: per the Relationship Axiom it *is* an entity
    /// type whose attribute set is the union of its contributors' attribute
    /// sets plus the given relationship attributes. The contributors are
    /// recorded as designated (§3.3).
    pub fn relationship(
        &mut self,
        name: &str,
        contributors: &[TypeId],
        extra_attrs: &[&str],
    ) -> TypeId {
        let mut attr_ids: Vec<AttrId> = Vec::new();
        for &c in contributors {
            let def = &self.types[c.index()];
            attr_ids.extend(def.attrs.iter().map(|i| AttrId(i as u32)));
        }
        for a in extra_attrs {
            let id = self.attr_names.get(a).map(AttrId).unwrap_or_else(|| {
                self.violations.push(AxiomViolation {
                    axiom: DesignAxiom::Attribute,
                    message: format!("relationship `{name}` references undeclared attribute `{a}`"),
                });
                let id = self.attr_names.intern(a);
                self.attrs.push(AttributeDef {
                    name: (*a).to_owned(),
                    domain: "<undeclared>".to_owned(),
                });
                AttrId(id)
            });
            attr_ids.push(id);
        }
        let id = self.entity_type_by_ids(name, &attr_ids);
        self.types[id.index()].declared_contributors = Some(contributors.to_vec());
        id
    }

    /// Finishes the schema. Returns the schema together with all recorded
    /// axiom violations; callers wanting strictness use
    /// [`SchemaBuilder::build_strict`].
    pub fn build(mut self) -> (Schema, Vec<AxiomViolation>) {
        let universe = self.attrs.len();
        // Re-normalise every attribute set to the final universe size.
        for t in &mut self.types {
            let members: Vec<usize> = t.attrs.iter().collect();
            t.attrs = BitSet::from_indices(universe, members);
        }
        // Validate designated contributors: each must be a generalisation
        // (Extension Axiom precondition / contributor Property of §3.3).
        let types_snapshot = self.types.clone();
        for (i, t) in types_snapshot.iter().enumerate() {
            if let Some(contributors) = &t.declared_contributors {
                for &c in contributors {
                    if c.index() == i {
                        self.violations.push(AxiomViolation {
                            axiom: DesignAxiom::Extension,
                            message: format!(
                                "entity type `{}` lists itself as a contributor",
                                t.name
                            ),
                        });
                        continue;
                    }
                    let ca = &types_snapshot[c.index()].attrs;
                    if !ca.is_subset(&t.attrs) {
                        self.violations.push(AxiomViolation {
                            axiom: DesignAxiom::Extension,
                            message: format!(
                                "contributor `{}` of `{}` is not a generalisation \
                                 (its attributes are not a subset)",
                                types_snapshot[c.index()].name,
                                t.name
                            ),
                        });
                    }
                }
            }
        }
        let schema = Schema {
            attr_names: self.attr_names,
            attrs: self.attrs,
            type_names: self.type_names,
            types: self.types,
        };
        (schema, self.violations)
    }

    /// Builds, failing on any axiom violation.
    pub fn build_strict(self) -> Result<Schema, Vec<AxiomViolation>> {
        let (schema, violations) = self.build();
        if violations.is_empty() {
            Ok(schema)
        } else {
            Err(violations)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::employee::employee_schema;

    #[test]
    fn employee_schema_matches_paper_table() {
        // T1: the p.5 table of the paper.
        let s = employee_schema();
        assert_eq!(s.attr_count(), 5);
        assert_eq!(s.type_count(), 5);
        let expect = [
            ("employee", vec!["name", "age", "depname"]),
            ("person", vec!["name", "age"]),
            ("department", vec!["depname", "location"]),
            ("manager", vec!["name", "age", "depname", "budget"]),
            ("worksfor", vec!["name", "age", "depname", "location"]),
        ];
        for (tname, attrs) in expect {
            let id = s.type_id(tname).unwrap();
            let mut got = s.attr_set_names(s.attrs_of(id));
            got.sort_unstable();
            let mut want = attrs.clone();
            want.sort_unstable();
            assert_eq!(got, want, "attribute set of {tname}");
        }
    }

    #[test]
    fn entity_type_axiom_rejects_duplicate_attr_sets() {
        let mut b = SchemaBuilder::new();
        b.attribute("name", "strings");
        b.attribute("age", "numbers");
        b.entity_type("person", &["name", "age"]);
        b.entity_type("human", &["name", "age"]);
        let err = b.build_strict().unwrap_err();
        assert!(err.iter().any(|v| v.axiom == DesignAxiom::EntityType
            && v.message.contains("identical attribute sets")));
    }

    #[test]
    fn attribute_axiom_rejects_conflicting_domains() {
        let mut b = SchemaBuilder::new();
        b.attribute("name", "person-names");
        b.attribute("name", "department-names");
        let (_, violations) = b.build();
        assert!(violations
            .iter()
            .any(|v| v.axiom == DesignAxiom::Attribute
                && v.message.contains("multiple semantic roles")));
    }

    #[test]
    fn redeclaring_attribute_with_same_domain_is_fine() {
        let mut b = SchemaBuilder::new();
        let a1 = b.attribute("name", "strings");
        let a2 = b.attribute("name", "strings");
        assert_eq!(a1, a2);
        b.entity_type("person", &["name"]);
        assert!(b.build_strict().is_ok());
    }

    #[test]
    fn undeclared_attribute_is_reported() {
        let mut b = SchemaBuilder::new();
        b.entity_type("ghost", &["spooky"]);
        let (_, violations) = b.build();
        assert!(violations
            .iter()
            .any(|v| v.message.contains("undeclared attribute `spooky`")));
    }

    #[test]
    fn empty_entity_type_is_reported() {
        let mut b = SchemaBuilder::new();
        b.entity_type("nothing", &[]);
        let (_, violations) = b.build();
        assert!(violations
            .iter()
            .any(|v| v.message.contains("no attributes")));
    }

    #[test]
    fn duplicate_type_name_is_reported() {
        let mut b = SchemaBuilder::new();
        b.attribute("x", "d");
        b.attribute("y", "d2");
        b.entity_type("t", &["x"]);
        b.entity_type("t", &["y"]);
        let (_, violations) = b.build();
        assert!(violations
            .iter()
            .any(|v| v.message.contains("declared twice")));
    }

    #[test]
    fn relationship_takes_union_of_contributors() {
        let s = employee_schema();
        let worksfor = s.type_id("worksfor").unwrap();
        let employee = s.type_id("employee").unwrap();
        let department = s.type_id("department").unwrap();
        let union = s.attrs_of(employee).union(s.attrs_of(department));
        assert_eq!(s.attrs_of(worksfor), &union);
        assert_eq!(
            s.entity_type(worksfor).declared_contributors,
            Some(vec![employee, department])
        );
    }

    #[test]
    fn common_attribute_occurs_once_in_relationship() {
        // §2: "when two entity types that participate in a relationship have
        // an attribute in common, that attribute occurs only once".
        let mut b = SchemaBuilder::new();
        b.attribute("k", "keys");
        b.attribute("p", "ps");
        b.attribute("q", "qs");
        let t1 = b.entity_type("t1", &["k", "p"]);
        let t2 = b.entity_type("t2", &["k", "q"]);
        let r = b.relationship("r", &[t1, t2], &[]);
        let s = b.build_strict().unwrap();
        assert_eq!(s.attrs_of(r).card(), 3);
    }

    #[test]
    fn bad_contributor_designation_is_reported() {
        let mut b = SchemaBuilder::new();
        b.attribute("x", "d");
        b.attribute("y", "d2");
        let t1 = b.entity_type("t1", &["x"]);
        let _t2 = b.entity_type("t2", &["y"]);
        // t3 = {y} plus contributor t1 = {x}: not a subset after we tamper.
        let t3 = b.entity_type("t3", &["x", "y"]);
        b.types[t3.index()].declared_contributors = Some(vec![t1, t3]);
        let (_, violations) = b.build();
        assert!(violations
            .iter()
            .any(|v| v.message.contains("lists itself as a contributor")));
    }

    #[test]
    fn occurrence_sets_match_paper() {
        let s = employee_schema();
        // V_name = {employee, person, manager, worksfor}
        let v_name = s.occurrence_set(s.attr_id("name").unwrap());
        let names = s.type_set_names(&v_name);
        assert_eq!(names, vec!["employee", "person", "manager", "worksfor"]);
        // V_location = {department, worksfor}
        let v_loc = s.occurrence_set(s.attr_id("location").unwrap());
        assert_eq!(s.type_set_names(&v_loc), vec!["department", "worksfor"]);
        // Dual: V̄_location = complement
        assert_eq!(
            s.co_occurrence_set(s.attr_id("location").unwrap()),
            v_loc.complement()
        );
    }

    #[test]
    fn specialisation_relation_matches_subsets() {
        let s = employee_schema();
        let person = s.type_id("person").unwrap();
        let employee = s.type_id("employee").unwrap();
        let manager = s.type_id("manager").unwrap();
        assert!(s.is_specialisation(employee, person));
        assert!(s.is_specialisation(manager, employee));
        assert!(s.is_specialisation(manager, person));
        assert!(!s.is_specialisation(person, employee));
    }

    #[test]
    fn serde_roundtrip() {
        let s = employee_schema();
        let json = serde_json::to_string(&s).unwrap();
        let mut back: Schema = serde_json::from_str(&json).unwrap();
        back.rebuild_indices();
        assert_eq!(back.type_id("manager"), s.type_id("manager"));
        assert_eq!(back.attr_count(), 5);
    }
}
