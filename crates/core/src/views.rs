//! Entity view types (§2, View Axiom).
//!
//! "An entity view type is a set of entity types." Views are pure
//! aggregation: no projection is allowed, so every view decomposes uniquely
//! into its constituent entity types and "all information about its
//! constituents remains available" — which is what makes view updates
//! uniquely translatable (§6).

use serde::{Deserialize, Serialize};
use toposem_topology::BitSet;

use crate::axioms::{AxiomViolation, DesignAxiom};
use crate::ident::TypeId;
use crate::schema::Schema;

/// A named set of entity types.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViewType {
    /// User-convenience name of the cluster.
    pub name: String,
    /// The constituent entity types (subset of `E`).
    pub members: BitSet,
}

impl ViewType {
    /// Builds a view from member type ids, validating the View Axiom
    /// structurally (members must exist in the schema; a view must be
    /// non-empty to denote anything).
    pub fn new(schema: &Schema, name: &str, members: &[TypeId]) -> Result<Self, AxiomViolation> {
        if members.is_empty() {
            return Err(AxiomViolation {
                axiom: DesignAxiom::View,
                message: format!("view `{name}` has no constituent entity types"),
            });
        }
        for &m in members {
            if m.index() >= schema.type_count() {
                return Err(AxiomViolation {
                    axiom: DesignAxiom::View,
                    message: format!("view `{name}` references unknown entity type id {m}"),
                });
            }
        }
        Ok(ViewType {
            name: name.to_owned(),
            members: BitSet::from_indices(schema.type_count(), members.iter().map(|m| m.index())),
        })
    }

    /// The unique decomposition of the view: its member entity types. This
    /// is trivial *by construction* — which is the point of the View Axiom.
    pub fn decompose(&self) -> Vec<TypeId> {
        self.members.iter().map(|i| TypeId(i as u32)).collect()
    }

    /// Number of constituents.
    pub fn len(&self) -> usize {
        self.members.card()
    }

    /// True when the view has no members (unreachable through `new`).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Routes an update targeted at entity type `target` to the unique
    /// constituent responsible for it. `None` when the target is not a
    /// constituent — such an update is not expressible against this view,
    /// by design.
    pub fn route_update(&self, target: TypeId) -> Option<TypeId> {
        self.members.contains(target.index()).then_some(target)
    }

    /// The set of attributes visible through the view: the union of the
    /// members' attribute sets. A user "sees only part of a view object",
    /// but the decomposition retains full update information.
    pub fn visible_attrs(&self, schema: &Schema) -> BitSet {
        let mut u = BitSet::empty(schema.attr_count());
        for m in self.decompose() {
            u.union_with(schema.attrs_of(m));
        }
        u
    }
}

/// Detects entity types that are *entity views in disguise*: a type whose
/// attribute set is exactly the union of other types' attribute sets and
/// which adds no attribute of its own. The design recipe of §2 says
/// "Remove all entities that are entity views" — unless removing one loses
/// information, which means attributes were missing anyway.
pub fn view_like_types(schema: &Schema) -> Vec<TypeId> {
    schema
        .type_ids()
        .filter(|&e| {
            let ae = schema.attrs_of(e);
            let mut u = BitSet::empty(schema.attr_count());
            for f in schema.type_ids() {
                if f != e && schema.attrs_of(f).is_subset(ae) {
                    u.union_with(schema.attrs_of(f));
                }
            }
            &u == ae
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::employee::employee_schema;

    #[test]
    fn view_construction_and_decomposition() {
        let s = employee_schema();
        let emp = s.type_id("employee").unwrap();
        let dep = s.type_id("department").unwrap();
        let v = ViewType::new(&s, "staffing", &[emp, dep]).unwrap();
        assert_eq!(v.len(), 2);
        assert_eq!(v.decompose(), vec![emp, dep]);
    }

    #[test]
    fn empty_view_is_rejected() {
        let s = employee_schema();
        let err = ViewType::new(&s, "void", &[]).unwrap_err();
        assert_eq!(err.axiom, DesignAxiom::View);
    }

    #[test]
    fn unknown_member_is_rejected() {
        let s = employee_schema();
        let err = ViewType::new(&s, "bad", &[TypeId(99)]).unwrap_err();
        assert_eq!(err.axiom, DesignAxiom::View);
    }

    #[test]
    fn update_routing_is_unique() {
        let s = employee_schema();
        let emp = s.type_id("employee").unwrap();
        let dep = s.type_id("department").unwrap();
        let mgr = s.type_id("manager").unwrap();
        let v = ViewType::new(&s, "staffing", &[emp, dep]).unwrap();
        assert_eq!(v.route_update(emp), Some(emp));
        assert_eq!(v.route_update(mgr), None);
    }

    #[test]
    fn visible_attrs_is_union() {
        let s = employee_schema();
        let emp = s.type_id("employee").unwrap();
        let dep = s.type_id("department").unwrap();
        let v = ViewType::new(&s, "staffing", &[emp, dep]).unwrap();
        let mut names = s.attr_set_names(&v.visible_attrs(&s));
        names.sort_unstable();
        assert_eq!(names, vec!["age", "depname", "location", "name"]);
    }

    #[test]
    fn worksfor_is_view_like() {
        // worksfor = employee ∪ department with no extra attribute, so the
        // §2 recipe flags it as removable (the paper keeps it to designate
        // the relationship explicitly).
        let s = employee_schema();
        let v = view_like_types(&s);
        let names: Vec<&str> = v.iter().map(|&e| s.type_name(e)).collect();
        assert_eq!(names, vec!["worksfor"]);
    }
}
