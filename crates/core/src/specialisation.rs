//! The specialisation topology of §3.1.
//!
//! With each attribute `a` associate `V_a = {e ∈ E | a ∈ A_e}`. The family
//! `V = {V_a}` is a subbase; the minimal element of the generated lattice
//! containing `e` is
//!
//! ```text
//! S_e = ∩_{a ∈ A_e} V_a = { f ∈ E | A_e ⊆ A_f }
//! ```
//!
//! — the set of *specialisations* of `e`, the root of an ISA hierarchy.
//! Since `E = ∪ S_e`, the family `S = {S_e}` is an open cover and a subbase
//! of a topology `T` on `E`; ISA hierarchies are exactly proper subset
//! hierarchies in `T`.

use serde::{Deserialize, Serialize};
use toposem_topology::{BitSet, FiniteSpace, Preorder};

use crate::ident::{AttrId, TypeId};
use crate::schema::Schema;

/// The specialisation topology on the entity types of a schema.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpecialisationTopology {
    /// The topological space on points = entity types, generated from the
    /// attribute-occurrence subbase `{V_a}`.
    space: FiniteSpace,
    /// The subbase, indexed by attribute id: `v_sets[a] = V_a`.
    v_sets: Vec<BitSet>,
}

impl SpecialisationTopology {
    /// Builds the topology from a schema.
    pub fn of_schema(schema: &Schema) -> Self {
        let v_sets: Vec<BitSet> = schema
            .attr_ids()
            .map(|a| schema.occurrence_set(a))
            .collect();
        let space = FiniteSpace::from_subbase(schema.type_count(), &v_sets);
        SpecialisationTopology { space, v_sets }
    }

    /// The underlying finite space.
    pub fn space(&self) -> &FiniteSpace {
        &self.space
    }

    /// The subbase member `V_a`.
    pub fn v_set(&self, a: AttrId) -> &BitSet {
        &self.v_sets[a.index()]
    }

    /// The full attribute-occurrence subbase.
    pub fn subbase(&self) -> &[BitSet] {
        &self.v_sets
    }

    /// `S_e`: the set of specialisations of `e` (including `e` itself) —
    /// the minimal open neighbourhood of `e`.
    pub fn s_set(&self, e: TypeId) -> &BitSet {
        self.space.min_neighbourhood(e.index())
    }

    /// `f ∈ S_e`? (Is `f` a specialisation of `e`?)
    pub fn is_specialisation(&self, f: TypeId, e: TypeId) -> bool {
        self.s_set(e).contains(f.index())
    }

    /// The cover `S = {S_e | e ∈ E}` in type-id order.
    pub fn cover(&self) -> Vec<BitSet> {
        (0..self.space.len())
            .map(|i| self.space.min_neighbourhood(i).clone())
            .collect()
    }

    /// The ISA preorder induced by the topology: `x ≤ y` iff
    /// `x ∈ S_y` (x specialises y). The Entity Type Axiom makes it a
    /// partial order (the space is T0).
    pub fn isa_order(&self) -> Preorder {
        Preorder::of_space(&self.space)
    }

    /// Direct ISA edges `(sub, super)` — the Hasse diagram of the
    /// specialisation order.
    pub fn isa_edges(&self) -> Vec<(TypeId, TypeId)> {
        self.isa_order()
            .covers()
            .into_iter()
            .map(|(x, y)| (TypeId(x as u32), TypeId(y as u32)))
            .collect()
    }

    /// Verifies `E = ∪_e S_e` (the cover property the paper states before
    /// declaring `S` a subbase).
    pub fn verify_cover(&self) -> bool {
        let n = self.space.len();
        let mut u = BitSet::empty(n);
        for i in 0..n {
            u.union_with(self.space.min_neighbourhood(i));
        }
        u.is_full() || n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::employee::employee_schema;

    fn topo() -> (Schema, SpecialisationTopology) {
        let s = employee_schema();
        let t = SpecialisationTopology::of_schema(&s);
        (s, t)
    }

    /// F2: the Venn diagram of §3.1 — checked set by set.
    #[test]
    fn s_sets_match_paper_venn_diagram() {
        let (s, t) = topo();
        let by_name = |n: &str| t.s_set(s.type_id(n).unwrap());
        let names = |b: &BitSet| s.type_set_names(b);

        // S_person = {employee, person, manager, worksfor}: everything with
        // name and age.
        assert_eq!(
            names(by_name("person")),
            vec!["employee", "person", "manager", "worksfor"]
        );
        // S_employee = {employee, manager, worksfor}
        assert_eq!(
            names(by_name("employee")),
            vec!["employee", "manager", "worksfor"]
        );
        // S_department = {department, worksfor}
        assert_eq!(names(by_name("department")), vec!["department", "worksfor"]);
        // S_manager = {manager}; S_worksfor = {worksfor}
        assert_eq!(names(by_name("manager")), vec!["manager"]);
        assert_eq!(names(by_name("worksfor")), vec!["worksfor"]);
    }

    #[test]
    fn s_e_is_minimal_open_containing_e() {
        let (s, t) = topo();
        for e in s.type_ids() {
            let se = t.s_set(e);
            assert!(se.contains(e.index()));
            assert!(t.space().is_open(se));
            // Any open containing e contains S_e.
            for o in t.space().all_opens() {
                if o.contains(e.index()) {
                    assert!(se.is_subset(&o));
                }
            }
        }
    }

    #[test]
    fn isa_follows_proper_subset_hierarchy() {
        let (s, t) = topo();
        // y ∈ S_x and y ≠ x ⇒ x ∉ S_y (Entity Type Axiom consequence
        // stated in §3.1).
        for x in s.type_ids() {
            for y in s.type_ids() {
                if x != y && t.is_specialisation(y, x) {
                    assert!(!t.is_specialisation(x, y));
                    assert!(t.s_set(y).is_proper_subset(t.s_set(x)));
                }
            }
        }
    }

    #[test]
    fn space_is_t0() {
        let (_, t) = topo();
        // Entity Type Axiom ⇒ distinct attribute sets ⇒ T0.
        assert!(t.space().is_t0());
        assert!(t.isa_order().is_partial_order());
    }

    #[test]
    fn cover_property_holds() {
        let (_, t) = topo();
        assert!(t.verify_cover());
    }

    #[test]
    fn isa_edges_match_expected_hierarchy() {
        let (s, t) = topo();
        let mut edges: Vec<(String, String)> = t
            .isa_edges()
            .into_iter()
            .map(|(sub, sup)| (s.type_name(sub).to_owned(), s.type_name(sup).to_owned()))
            .collect();
        edges.sort();
        // manager ISA employee, employee ISA person, worksfor ISA employee,
        // worksfor ISA department.
        assert_eq!(
            edges,
            vec![
                ("employee".to_owned(), "person".to_owned()),
                ("manager".to_owned(), "employee".to_owned()),
                ("worksfor".to_owned(), "department".to_owned()),
                ("worksfor".to_owned(), "employee".to_owned()),
            ]
        );
    }

    #[test]
    fn v_sets_form_subbase_of_space() {
        let (_, t) = topo();
        assert!(t.space().is_subbase(t.subbase()));
    }
}
