//! Property-based tests of the §3 constructions over randomly generated
//! schemas: the duality corollary, the subset-hierarchy characterisation,
//! and the contributor definition are checked on arbitrary attribute
//! assignments, not just the employee example.

use proptest::prelude::*;
use toposem_core::{
    contributors::{computed_contributors, contributors},
    GeneralisationTopology, Schema, SchemaBuilder, SpecialisationTopology, TypeId,
};

/// Builds a random schema over `n_attrs` attributes and up to `max_types`
/// entity types with distinct non-empty attribute sets.
fn random_schema(n_attrs: usize, max_types: usize) -> impl Strategy<Value = Schema> {
    prop::collection::btree_set(1u32..(1 << n_attrs), 1..=max_types).prop_map(move |masks| {
        let mut b = SchemaBuilder::new();
        let attr_names: Vec<String> = (0..n_attrs).map(|i| format!("a{i}")).collect();
        for name in &attr_names {
            b.attribute(name, &format!("dom-{name}"));
        }
        for (t, mask) in masks.iter().enumerate() {
            let attrs: Vec<&str> = (0..n_attrs)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| attr_names[i].as_str())
                .collect();
            b.entity_type(&format!("t{t}"), &attrs);
        }
        b.build_strict().expect("distinct masks satisfy the axioms")
    })
}

proptest! {
    /// §3.1: S_e = { f | A_e ⊆ A_f } — the topological construction must
    /// coincide with the direct subset characterisation.
    #[test]
    fn s_set_equals_superset_types(schema in random_schema(5, 10)) {
        let spec = SpecialisationTopology::of_schema(&schema);
        for e in schema.type_ids() {
            for f in schema.type_ids() {
                let by_subset = schema.attrs_of(e).is_subset(schema.attrs_of(f));
                prop_assert_eq!(spec.s_set(e).contains(f.index()), by_subset);
            }
        }
    }

    /// §3.2: G_e = { f | A_f ⊆ A_e }.
    #[test]
    fn g_set_equals_subset_types(schema in random_schema(5, 10)) {
        let gen = GeneralisationTopology::of_schema(&schema);
        for e in schema.type_ids() {
            for f in schema.type_ids() {
                let by_subset = schema.attrs_of(f).is_subset(schema.attrs_of(e));
                prop_assert_eq!(gen.g_set(e).contains(f.index()), by_subset);
            }
        }
    }

    /// R2 on random schemas: y ∈ S_x ⇔ x ∈ G_y.
    #[test]
    fn duality_corollary(schema in random_schema(5, 10)) {
        let spec = SpecialisationTopology::of_schema(&schema);
        let gen = GeneralisationTopology::of_schema(&schema);
        for x in schema.type_ids() {
            for y in schema.type_ids() {
                prop_assert_eq!(
                    spec.s_set(x).contains(y.index()),
                    gen.g_set(y).contains(x.index())
                );
            }
        }
    }

    /// §3.1: ISA hierarchies are *proper* subset hierarchies: y ∈ S_x,
    /// y ≠ x ⇒ x ∉ S_y (forced by the Entity Type Axiom).
    #[test]
    fn isa_is_antisymmetric(schema in random_schema(5, 10)) {
        let spec = SpecialisationTopology::of_schema(&schema);
        prop_assert!(spec.space().is_t0());
        for x in schema.type_ids() {
            for y in schema.type_ids() {
                if x != y && spec.s_set(x).contains(y.index()) {
                    prop_assert!(!spec.s_set(y).contains(x.index()));
                }
            }
        }
    }

    /// Both families cover E (so they are subbases of topologies).
    #[test]
    fn covers_hold(schema in random_schema(5, 10)) {
        let spec = SpecialisationTopology::of_schema(&schema);
        let gen = GeneralisationTopology::of_schema(&schema);
        prop_assert!(spec.verify_cover());
        prop_assert!(gen.verify_cover());
    }

    /// §3.3: the computed CO_e are exactly the maximal proper
    /// generalisations (no g strictly between f and e), and satisfy the
    /// contributor Property.
    #[test]
    fn contributors_are_direct_generalisations(schema in random_schema(5, 10)) {
        let gen = GeneralisationTopology::of_schema(&schema);
        for e in schema.type_ids() {
            let co = computed_contributors(&schema, &gen, e);
            for fi in co.iter() {
                let f = TypeId(fi as u32);
                // Property: f ∈ G_e, f ≠ e.
                prop_assert!(f != e);
                prop_assert!(gen.is_generalisation(f, e));
                // Directness: nothing strictly between.
                for g in schema.type_ids() {
                    if g != e && g != f {
                        let between = schema.attrs_of(f).is_proper_subset(schema.attrs_of(g))
                            && schema.attrs_of(g).is_proper_subset(schema.attrs_of(e));
                        prop_assert!(!between, "found intermediate type");
                    }
                }
            }
        }
    }

    /// Effective contributors default to the computed ones when no
    /// designation exists.
    #[test]
    fn effective_contributors_default_to_computed(schema in random_schema(4, 8)) {
        let gen = GeneralisationTopology::of_schema(&schema);
        for e in schema.type_ids() {
            prop_assert_eq!(
                contributors(&schema, &gen, e),
                computed_contributors(&schema, &gen, e)
            );
        }
    }

    /// The specialisation and generalisation orders are mutually dual:
    /// covers of one are reversed covers of the other.
    #[test]
    fn hasse_duality(schema in random_schema(4, 8)) {
        let spec = SpecialisationTopology::of_schema(&schema);
        let gen = GeneralisationTopology::of_schema(&schema);
        let mut s_edges = spec.isa_order().covers();
        let mut g_edges: Vec<(usize, usize)> = gen
            .order()
            .covers()
            .into_iter()
            .map(|(x, y)| (y, x))
            .collect();
        s_edges.sort_unstable();
        g_edges.sort_unstable();
        prop_assert_eq!(s_edges, g_edges);
    }
}
