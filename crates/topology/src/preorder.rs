//! The specialisation preorder of a finite space, and its Hasse diagram.
//!
//! ISA hierarchies in the paper are "proper subset hierarchies" of the
//! minimal open sets (§3.1); the *direct* specialisations/generalisations —
//! needed for the contributor definition of §3.3 — are exactly the covering
//! edges of the Hasse diagram of the specialisation preorder.

use serde::{Deserialize, Serialize};

use crate::bitset::BitSet;
use crate::space::FiniteSpace;

/// The specialisation preorder `x ≤ y ⇔ x ∈ U(y)` of a finite space, with
/// precomputed covering (Hasse) edges on its partial-order quotient.
///
/// When the space is T0 the preorder is a partial order and the quotient is
/// trivial; schemas satisfying the Entity Type Axiom always yield T0 spaces.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Preorder {
    n: usize,
    /// `down[y]` = all x with x ≤ y (the minimal neighbourhood of y).
    down: Vec<BitSet>,
}

impl Preorder {
    /// Extracts the specialisation preorder of a space.
    pub fn of_space(space: &FiniteSpace) -> Self {
        Preorder {
            n: space.len(),
            down: (0..space.len())
                .map(|y| space.min_neighbourhood(y).clone())
                .collect(),
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when there are no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `x ≤ y`?
    pub fn le(&self, x: usize, y: usize) -> bool {
        self.down[y].contains(x)
    }

    /// `x < y` (strictly below)?
    pub fn lt(&self, x: usize, y: usize) -> bool {
        x != y && self.le(x, y) && !self.le(y, x)
    }

    /// Two points are equivalent when each is ≤ the other. In a T0 space
    /// this only happens for `x == y`.
    pub fn equivalent(&self, x: usize, y: usize) -> bool {
        self.le(x, y) && self.le(y, x)
    }

    /// True when the preorder is antisymmetric, i.e. an actual partial
    /// order (equivalently the space is T0).
    pub fn is_partial_order(&self) -> bool {
        for x in 0..self.n {
            for y in (x + 1)..self.n {
                if self.equivalent(x, y) {
                    return false;
                }
            }
        }
        true
    }

    /// All strict lower bounds of `y`.
    pub fn strict_down_set(&self, y: usize) -> BitSet {
        BitSet::from_indices(self.n, (0..self.n).filter(|&x| self.lt(x, y)))
    }

    /// All strict upper bounds of `x`.
    pub fn strict_up_set(&self, x: usize) -> BitSet {
        BitSet::from_indices(self.n, (0..self.n).filter(|&y| self.lt(x, y)))
    }

    /// Covering pairs `(x, y)`: `x < y` with nothing strictly between.
    /// These are the Hasse diagram edges, drawn with `y` above `x`.
    pub fn covers(&self) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        for y in 0..self.n {
            for x in 0..self.n {
                if self.lt(x, y) && self.is_cover(x, y) {
                    edges.push((x, y));
                }
            }
        }
        edges
    }

    /// Is `y` a direct cover of `x` (x < y with no z in between)?
    pub fn is_cover(&self, x: usize, y: usize) -> bool {
        self.lt(x, y) && !(0..self.n).any(|z| self.lt(x, z) && self.lt(z, y))
    }

    /// The elements directly above `x` (its covers).
    pub fn upper_covers(&self, x: usize) -> Vec<usize> {
        (0..self.n).filter(|&y| self.is_cover(x, y)).collect()
    }

    /// The elements directly below `y`.
    pub fn lower_covers(&self, y: usize) -> Vec<usize> {
        (0..self.n).filter(|&x| self.is_cover(x, y)).collect()
    }

    /// Maximal elements (no strict upper bound).
    pub fn maximal(&self) -> Vec<usize> {
        (0..self.n)
            .filter(|&x| self.strict_up_set(x).is_empty())
            .collect()
    }

    /// Minimal elements (no strict lower bound).
    pub fn minimal(&self) -> Vec<usize> {
        (0..self.n)
            .filter(|&x| self.strict_down_set(x).is_empty())
            .collect()
    }

    /// A topological (linear) extension of the *strict* order: if `x < y`
    /// then `x` precedes `y`. Equivalent points (possible only in non-T0
    /// spaces) are ordered by index. Deterministic.
    pub fn linear_extension(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.n);
        let mut placed = BitSet::empty(self.n);
        while order.len() < self.n {
            for x in 0..self.n {
                if placed.contains(x) {
                    continue;
                }
                // Place x when everything strictly below is placed. The
                // strict order is acyclic even for preorders, so at least
                // one unplaced point always qualifies per pass.
                let below = self.strict_down_set(x);
                if below.is_subset(&placed) {
                    placed.insert(x);
                    order.push(x);
                }
            }
        }
        order
    }

    /// Longest chain length ending at `x` (depth in the hierarchy, with
    /// minimal elements at depth 0).
    pub fn depth(&self, x: usize) -> usize {
        let mut memo = vec![None; self.n];
        self.depth_memo(x, &mut memo)
    }

    fn depth_memo(&self, x: usize, memo: &mut Vec<Option<usize>>) -> usize {
        if let Some(d) = memo[x] {
            return d;
        }
        let d = self
            .lower_covers(x)
            .into_iter()
            .map(|c| self.depth_memo(c, memo) + 1)
            .max()
            .unwrap_or(0);
        memo[x] = Some(d);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond: 0 < 1, 0 < 2, 1 < 3, 2 < 3 (as specialisation).
    fn diamond() -> Preorder {
        // Build via subbase on 4 points so down-sets are:
        // down(0)={0}, down(1)={0,1}, down(2)={0,2}, down(3)={0,1,2,3}
        let space = FiniteSpace::from_min_neighbourhoods(vec![
            BitSet::from_indices(4, [0]),
            BitSet::from_indices(4, [0, 1]),
            BitSet::from_indices(4, [0, 2]),
            BitSet::from_indices(4, [0, 1, 2, 3]),
        ])
        .unwrap();
        Preorder::of_space(&space)
    }

    #[test]
    fn diamond_structure() {
        let p = diamond();
        assert!(p.is_partial_order());
        assert!(p.le(0, 3));
        assert!(p.lt(0, 1));
        assert!(!p.le(1, 2));
        let mut covers = p.covers();
        covers.sort();
        assert_eq!(covers, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(p.maximal(), vec![3]);
        assert_eq!(p.minimal(), vec![0]);
        assert_eq!(p.depth(0), 0);
        assert_eq!(p.depth(3), 2);
    }

    #[test]
    fn covers_skip_transitive_edges() {
        let p = diamond();
        // 0 < 3 but via 1 (or 2), so not a cover.
        assert!(!p.is_cover(0, 3));
        assert_eq!(p.upper_covers(0), vec![1, 2]);
        assert_eq!(p.lower_covers(3), vec![1, 2]);
    }

    #[test]
    fn linear_extension_respects_order() {
        let p = diamond();
        let order = p.linear_extension();
        let pos = |x: usize| order.iter().position(|&v| v == x).unwrap();
        for x in 0..4 {
            for y in 0..4 {
                if p.lt(x, y) {
                    assert!(pos(x) < pos(y));
                }
            }
        }
    }

    #[test]
    fn discrete_space_is_antichain() {
        let p = Preorder::of_space(&FiniteSpace::discrete(5));
        assert!(p.is_partial_order());
        assert!(p.covers().is_empty());
        assert_eq!(p.maximal().len(), 5);
        assert_eq!(p.minimal().len(), 5);
    }

    #[test]
    fn indiscrete_space_is_one_equivalence_class() {
        let p = Preorder::of_space(&FiniteSpace::indiscrete(3));
        assert!(!p.is_partial_order());
        assert!(p.equivalent(0, 2));
    }

    #[test]
    fn linear_extension_handles_equivalence_classes() {
        let p = Preorder::of_space(&FiniteSpace::indiscrete(2));
        // All points equivalent: index order.
        assert_eq!(p.linear_extension(), vec![0, 1]);
    }
}
