//! Connected components of finite spaces.
//!
//! In a finite (Alexandrov) space, connectedness coincides with
//! path-connectedness through the specialisation preorder: two points are
//! in the same component iff they are linked by a zig-zag of order
//! relations. Applied to the entity-type space this decomposes a schema
//! into its independent fragments — sub-schemas sharing no attributes —
//! which evolve and store independently.

use crate::bitset::BitSet;
use crate::space::FiniteSpace;

/// The connected components of a space, each as a point set, ordered by
/// smallest member.
pub fn components(space: &FiniteSpace) -> Vec<BitSet> {
    let n = space.len();
    let mut seen = BitSet::empty(n);
    let mut out = Vec::new();
    for start in 0..n {
        if seen.contains(start) {
            continue;
        }
        // Flood fill through the symmetric closure of the minimal
        // neighbourhood relation.
        let mut comp = BitSet::empty(n);
        let mut frontier = vec![start];
        while let Some(p) = frontier.pop() {
            if !comp.insert(p) {
                continue;
            }
            for q in space.min_neighbourhood(p).iter() {
                if !comp.contains(q) {
                    frontier.push(q);
                }
            }
            for q in 0..n {
                if space.min_neighbourhood(q).contains(p) && !comp.contains(q) {
                    frontier.push(q);
                }
            }
        }
        seen.union_with(&comp);
        out.push(comp);
    }
    out
}

/// Is the space connected (at most one component)?
pub fn is_connected(space: &FiniteSpace) -> bool {
    components(space).len() <= 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discrete_space_has_singleton_components() {
        let d = FiniteSpace::discrete(4);
        let comps = components(&d);
        assert_eq!(comps.len(), 4);
        assert!(comps.iter().all(|c| c.card() == 1));
        assert!(!is_connected(&d));
    }

    #[test]
    fn indiscrete_space_is_connected() {
        assert!(is_connected(&FiniteSpace::indiscrete(5)));
    }

    #[test]
    fn two_fragment_space() {
        // {0,1} linked, {2,3} linked, no cross edges.
        let sp = FiniteSpace::from_subbase(
            4,
            &[
                BitSet::from_indices(4, [0, 1]),
                BitSet::from_indices(4, [1]),
                BitSet::from_indices(4, [2, 3]),
                BitSet::from_indices(4, [3]),
            ],
        );
        let comps = components(&sp);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].to_vec(), vec![0, 1]);
        assert_eq!(comps[1].to_vec(), vec![2, 3]);
    }

    #[test]
    fn zigzag_connects() {
        // 0 ← 1 → 2: 1's neighbourhood contains both ends.
        let sp = FiniteSpace::from_min_neighbourhoods(vec![
            BitSet::from_indices(3, [0]),
            BitSet::from_indices(3, [0, 1, 2]),
            BitSet::from_indices(3, [2]),
        ])
        .unwrap();
        assert!(is_connected(&sp));
    }

    #[test]
    fn empty_space_is_connected() {
        assert!(is_connected(&FiniteSpace::discrete(0)));
        assert!(components(&FiniteSpace::discrete(0)).is_empty());
    }

    #[test]
    fn components_partition_the_space() {
        let sp = FiniteSpace::from_subbase(
            6,
            &[
                BitSet::from_indices(6, [0, 1, 2]),
                BitSet::from_indices(6, [3, 4]),
                BitSet::from_indices(6, [5]),
            ],
        );
        let comps = components(&sp);
        let mut union = BitSet::empty(6);
        let mut total = 0;
        for c in &comps {
            assert!(union.is_disjoint(c), "components must be disjoint");
            union.union_with(c);
            total += c.card();
        }
        assert_eq!(total, 6);
        assert!(union.is_full());
    }
}
