//! The lattice of open sets of a finite space.
//!
//! §3 of the paper leans on the fact that the open sets of the entity-type
//! topology form a complete (distributive) lattice: entity types can be
//! "phrased in terms of other entity types using a finite union/intersection
//! expression over elements from the subbase". The join-irreducible opens
//! are exactly the minimal neighbourhoods `S_e`, which is why the paper can
//! talk about *the* primitive entities of a schema.

use crate::bitset::BitSet;
use crate::space::FiniteSpace;

/// The (finite, distributive) lattice of open sets of a space, materialised.
///
/// Exponential in the worst case; fine for schema-sized spaces and for tests.
#[derive(Clone, Debug)]
pub struct OpenLattice {
    space: FiniteSpace,
    opens: Vec<BitSet>,
}

impl OpenLattice {
    /// Materialises all opens of `space`.
    pub fn of_space(space: &FiniteSpace) -> Self {
        OpenLattice {
            space: space.clone(),
            opens: space.all_opens(),
        }
    }

    /// All open sets, in ascending `BitSet` order.
    pub fn opens(&self) -> &[BitSet] {
        &self.opens
    }

    /// Number of opens.
    pub fn len(&self) -> usize {
        self.opens.len()
    }

    /// True when only ∅ exists (the empty space).
    pub fn is_empty(&self) -> bool {
        self.opens.is_empty()
    }

    /// Lattice meet = set intersection (open in any topology).
    pub fn meet(&self, a: &BitSet, b: &BitSet) -> BitSet {
        debug_assert!(self.space.is_open(a) && self.space.is_open(b));
        a.intersection(b)
    }

    /// Lattice join = set union.
    pub fn join(&self, a: &BitSet, b: &BitSet) -> BitSet {
        debug_assert!(self.space.is_open(a) && self.space.is_open(b));
        a.union(b)
    }

    /// Bottom element ∅.
    pub fn bottom(&self) -> BitSet {
        BitSet::empty(self.space.len())
    }

    /// Top element: the whole space.
    pub fn top(&self) -> BitSet {
        BitSet::full(self.space.len())
    }

    /// Join-irreducible opens: non-empty opens that are not the union of
    /// two strictly smaller opens. In a finite space these are exactly the
    /// minimal neighbourhoods `U(x)` (one per equivalence class of points).
    pub fn join_irreducibles(&self) -> Vec<BitSet> {
        self.opens
            .iter()
            .filter(|o| !o.is_empty())
            .filter(|o| {
                // o is join-irreducible iff the union of all opens strictly
                // below it is strictly smaller than o.
                let mut below = BitSet::empty(self.space.len());
                for p in &self.opens {
                    if p.is_proper_subset(o) {
                        below.union_with(p);
                    }
                }
                below != **o
            })
            .cloned()
            .collect()
    }

    /// Every open is the union of the minimal neighbourhoods of its points;
    /// returns that canonical decomposition (deduplicated, ascending).
    pub fn decompose(&self, open: &BitSet) -> Vec<BitSet> {
        assert!(self.space.is_open(open), "decompose expects an open set");
        let mut parts: Vec<BitSet> = open
            .iter()
            .map(|x| self.space.min_neighbourhood(x).clone())
            .collect();
        parts.sort();
        parts.dedup();
        // Drop parts subsumed by other parts to get the irredundant cover.
        let keep: Vec<BitSet> = parts
            .iter()
            .filter(|p| !parts.iter().any(|q| p.is_proper_subset(q)))
            .cloned()
            .collect();
        keep
    }

    /// Checks distributivity on the materialised lattice (always true for a
    /// topology; exposed for the test suite as an executable sanity law).
    pub fn verify_distributive(&self) -> bool {
        for a in &self.opens {
            for b in &self.opens {
                for c in &self.opens {
                    let lhs = self.meet(a, &self.join(b, c));
                    let rhs = self.join(&self.meet(a, b), &self.meet(a, c));
                    if lhs != rhs {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_space() -> FiniteSpace {
        FiniteSpace::from_subbase(
            4,
            &[
                BitSet::from_indices(4, [0, 1]),
                BitSet::from_indices(4, [1, 2]),
                BitSet::from_indices(4, [2, 3]),
            ],
        )
    }

    #[test]
    fn lattice_has_top_and_bottom() {
        let l = OpenLattice::of_space(&sample_space());
        assert!(l.opens().contains(&l.bottom()));
        assert!(l.opens().contains(&l.top()));
    }

    #[test]
    fn join_irreducibles_are_min_neighbourhoods() {
        let sp = sample_space();
        let l = OpenLattice::of_space(&sp);
        let mut ji = l.join_irreducibles();
        ji.sort();
        let mut mn: Vec<BitSet> = (0..sp.len())
            .map(|x| sp.min_neighbourhood(x).clone())
            .collect();
        mn.sort();
        mn.dedup();
        assert_eq!(ji, mn);
    }

    #[test]
    fn decompose_reconstructs_open() {
        let sp = sample_space();
        let l = OpenLattice::of_space(&sp);
        for o in l.opens() {
            let parts = l.decompose(o);
            let mut u = BitSet::empty(sp.len());
            for p in &parts {
                u.union_with(p);
            }
            assert_eq!(&u, o, "decomposition must cover the open exactly");
            // Irredundant: no part inside another.
            for (i, p) in parts.iter().enumerate() {
                for (j, q) in parts.iter().enumerate() {
                    if i != j {
                        assert!(!p.is_subset(q));
                    }
                }
            }
        }
    }

    #[test]
    fn lattice_is_distributive() {
        let l = OpenLattice::of_space(&sample_space());
        assert!(l.verify_distributive());
    }

    #[test]
    fn discrete_lattice_is_powerset() {
        let l = OpenLattice::of_space(&FiniteSpace::discrete(3));
        assert_eq!(l.len(), 8);
        assert_eq!(l.join_irreducibles().len(), 3); // the singletons
    }

    #[test]
    fn indiscrete_lattice_is_two_element() {
        let l = OpenLattice::of_space(&FiniteSpace::indiscrete(3));
        assert_eq!(l.len(), 2);
        assert_eq!(l.join_irreducibles().len(), 1); // just the top
    }
}
