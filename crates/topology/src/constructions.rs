//! Space constructions: subspaces, products, and quotients.
//!
//! Schema evolution (§1) restricts the intension space to surviving
//! entity types (subspace), combines independent schema fragments
//! (product), and collapses synonym classes (quotient). Each construction
//! is given in minimal-neighbourhood form with its universal-property
//! tests in the suite.

use crate::bitset::BitSet;
use crate::maps::PointMap;
use crate::space::FiniteSpace;

/// The subspace induced on `points` (listed in the order they become the
/// new indices). Minimal neighbourhood of a kept point is the
/// intersection of its old neighbourhood with the kept set.
pub fn subspace(space: &FiniteSpace, points: &[usize]) -> FiniteSpace {
    let keep = BitSet::from_indices(space.len(), points.iter().copied());
    let pos: std::collections::HashMap<usize, usize> = points
        .iter()
        .enumerate()
        .map(|(new, &old)| (old, new))
        .collect();
    let nbhds = points
        .iter()
        .map(|&old| {
            BitSet::from_indices(
                points.len(),
                space
                    .min_neighbourhood(old)
                    .intersection(&keep)
                    .iter()
                    .map(|o| pos[&o]),
            )
        })
        .collect();
    FiniteSpace::from_min_neighbourhoods(nbhds).expect("subspace of a valid space is valid")
}

/// The inclusion map of a subspace back into the ambient space.
pub fn subspace_inclusion(space: &FiniteSpace, points: &[usize]) -> PointMap {
    PointMap::new(points.to_vec(), space.len()).expect("points are ambient indices")
}

/// The product space `X × Y`: points are pairs `(x, y)` numbered
/// `x * |Y| + y`; minimal neighbourhoods are products of minimal
/// neighbourhoods (finite products of Alexandrov spaces are Alexandrov).
pub fn product(x: &FiniteSpace, y: &FiniteSpace) -> FiniteSpace {
    let (nx, ny) = (x.len(), y.len());
    let n = nx * ny;
    let mut nbhds = Vec::with_capacity(n);
    for i in 0..nx {
        for j in 0..ny {
            let ui = x.min_neighbourhood(i);
            let uj = y.min_neighbourhood(j);
            let mut u = BitSet::empty(n);
            for a in ui.iter() {
                for b in uj.iter() {
                    u.insert(a * ny + b);
                }
            }
            nbhds.push(u);
        }
    }
    FiniteSpace::from_min_neighbourhoods(nbhds).expect("product preserves validity")
}

/// The two projection maps of a product built by [`product`].
pub fn product_projections(x: &FiniteSpace, y: &FiniteSpace) -> (PointMap, PointMap) {
    let ny = y.len();
    let n = x.len() * ny;
    let p1 = PointMap::new((0..n).map(|k| k / ny).collect(), x.len()).expect("in range");
    let p2 = PointMap::new((0..n).map(|k| k % ny).collect(), ny).expect("in range");
    (p1, p2)
}

/// The quotient by an equivalence relation given as a class index per
/// point (classes must be numbered `0..k` densely). The quotient of an
/// Alexandrov space by the T0-identification (equal minimal
/// neighbourhoods) is again a space; for arbitrary equivalences the result
/// is the finest topology making the projection continuous.
pub fn quotient(space: &FiniteSpace, class_of: &[usize]) -> (FiniteSpace, PointMap) {
    assert_eq!(class_of.len(), space.len(), "one class per point");
    let k = class_of.iter().copied().max().map_or(0, |m| m + 1);
    // U(class c) = image of the union of the members' neighbourhoods,
    // saturated: iterate until each class-neighbourhood is a union of
    // whole classes and transitively coherent.
    let mut nbhds: Vec<BitSet> = vec![BitSet::empty(k); k];
    for p in 0..space.len() {
        let c = class_of[p];
        for q in space.min_neighbourhood(p).iter() {
            nbhds[c].insert(class_of[q]);
        }
    }
    // Transitive saturation: if d ∈ U(c) then U(d) ⊆ U(c).
    loop {
        let mut grew = false;
        for c in 0..k {
            let members = nbhds[c].clone();
            for d in members.iter() {
                let ud = nbhds[d].clone();
                if !ud.is_subset(&nbhds[c]) {
                    nbhds[c].union_with(&ud);
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    let q = FiniteSpace::from_min_neighbourhoods(nbhds).expect("saturated family is coherent");
    let proj = PointMap::new(class_of.to_vec(), k).expect("dense classes");
    (q, proj)
}

/// The T0 reflection (Kolmogorov quotient): identify points with equal
/// minimal neighbourhoods. Returns the quotient space and projection.
pub fn t0_reflection(space: &FiniteSpace) -> (FiniteSpace, PointMap) {
    let mut class_of = Vec::with_capacity(space.len());
    let mut reps: Vec<BitSet> = Vec::new();
    for p in 0..space.len() {
        let u = space.min_neighbourhood(p);
        match reps.iter().position(|r| r == u) {
            Some(c) => class_of.push(c),
            None => {
                class_of.push(reps.len());
                reps.push(u.clone());
            }
        }
    }
    quotient(space, &class_of)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FiniteSpace {
        FiniteSpace::from_subbase(
            4,
            &[
                BitSet::from_indices(4, [0, 1]),
                BitSet::from_indices(4, [1, 2]),
                BitSet::from_indices(4, [2, 3]),
            ],
        )
    }

    #[test]
    fn subspace_inclusion_is_embedding() {
        let x = sample();
        let points = [0usize, 1, 3];
        let sub = subspace(&x, &points);
        let inc = subspace_inclusion(&x, &points);
        assert!(inc.is_continuous(&sub, &x));
        assert!(inc.is_embedding(&sub, &x));
    }

    #[test]
    fn full_subspace_is_identity() {
        let x = sample();
        let sub = subspace(&x, &[0, 1, 2, 3]);
        assert_eq!(sub, x);
    }

    #[test]
    fn product_projections_are_continuous_and_open() {
        let x = FiniteSpace::discrete(2);
        let y = sample();
        let p = product(&x, &y);
        assert_eq!(p.len(), 8);
        let (p1, p2) = product_projections(&x, &y);
        assert!(p1.is_continuous(&p, &x));
        assert!(p2.is_continuous(&p, &y));
        assert!(p1.is_open_map(&p, &x));
        assert!(p2.is_open_map(&p, &y));
    }

    #[test]
    fn product_with_point_is_homeomorphic_copy() {
        let x = sample();
        let pt = FiniteSpace::discrete(1);
        let p = product(&x, &pt);
        // x × {*} ≅ x via the first projection.
        let (p1, _) = product_projections(&x, &pt);
        assert!(p1.is_homeomorphism(&p, &x));
    }

    #[test]
    fn quotient_projection_is_continuous() {
        let x = sample();
        // Collapse points 0 and 1.
        let (q, proj) = quotient(&x, &[0, 0, 1, 2]);
        assert_eq!(q.len(), 3);
        assert!(proj.is_continuous(&x, &q));
        assert!(proj.is_surjective());
    }

    #[test]
    fn t0_reflection_of_t0_space_is_identity_shape() {
        let x = sample();
        assert!(x.is_t0());
        let (q, proj) = t0_reflection(&x);
        assert_eq!(q.len(), x.len());
        assert!(proj.is_homeomorphism(&x, &q));
    }

    #[test]
    fn t0_reflection_collapses_indiscrete() {
        let x = FiniteSpace::indiscrete(4);
        let (q, proj) = t0_reflection(&x);
        assert_eq!(q.len(), 1);
        assert!(proj.is_continuous(&x, &q));
        assert!(q.is_t0());
    }

    #[test]
    fn quotient_is_finest_making_projection_continuous() {
        // Any open of the quotient must pull back open; conversely any
        // saturated open of X must descend. Checked on a small example.
        let x = sample();
        let classes = [0usize, 1, 1, 2];
        let (q, proj) = quotient(&x, &classes);
        for o in q.all_opens() {
            assert!(x.is_open(&proj.preimage(&o)));
        }
        for o in x.all_opens() {
            // Saturated: union of whole classes.
            let saturated = (0..x.len()).all(|p| {
                !o.contains(p) || (0..x.len()).all(|r| classes[r] != classes[p] || o.contains(r))
            });
            if saturated {
                let image = proj.image(&o);
                assert!(q.is_open(&image), "saturated open must descend");
            }
        }
    }
}
