//! Dense bitsets over a fixed finite universe.
//!
//! Entity-type attribute sets, specialisation sets `S_e`, and open sets of
//! the entity-type topology are all subsets of small finite universes, so a
//! word-parallel bitset is the natural representation. All set algebra used
//! by the paper (`∩`, `∪`, `⊆`, complement) is a handful of word operations.

use std::fmt;

use serde::{Deserialize, Serialize};

const WORD_BITS: usize = 64;

/// A subset of the finite universe `{0, 1, ..., len-1}`.
///
/// The universe size (`len`) is fixed at construction; all binary operations
/// require both operands to share it and panic otherwise (mixing universes is
/// always a logic error in this codebase).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BitSet {
    len: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// The empty subset of a universe with `len` elements.
    pub fn empty(len: usize) -> Self {
        BitSet {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// The full universe `{0, ..., len-1}`.
    pub fn full(len: usize) -> Self {
        let mut s = Self::empty(len);
        for i in 0..len {
            s.insert(i);
        }
        s
    }

    /// A singleton `{i}` in a universe with `len` elements.
    pub fn singleton(len: usize, i: usize) -> Self {
        let mut s = Self::empty(len);
        s.insert(i);
        s
    }

    /// Builds a subset of a `len`-element universe from listed members.
    pub fn from_indices<I: IntoIterator<Item = usize>>(len: usize, iter: I) -> Self {
        let mut s = Self::empty(len);
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// Size of the universe this set lives in (not the cardinality).
    pub fn universe_len(&self) -> usize {
        self.len
    }

    /// Number of members.
    pub fn card(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when the set has no members.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True when the set is the whole universe.
    pub fn is_full(&self) -> bool {
        self.card() == self.len
    }

    /// Membership test. Panics if `i` is outside the universe.
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.len, "index {i} outside universe of {}", self.len);
        self.words[i / WORD_BITS] & (1 << (i % WORD_BITS)) != 0
    }

    /// Adds `i`; returns whether it was newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "index {i} outside universe of {}", self.len);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1 << (i % WORD_BITS);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Removes `i`; returns whether it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "index {i} outside universe of {}", self.len);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1 << (i % WORD_BITS);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    fn check_same_universe(&self, other: &BitSet) {
        assert_eq!(
            self.len, other.len,
            "bitset universe mismatch: {} vs {}",
            self.len, other.len
        );
    }

    /// `self ∩ other`.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        self.check_same_universe(other);
        BitSet {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// `self ∪ other`.
    pub fn union(&self, other: &BitSet) -> BitSet {
        self.check_same_universe(other);
        BitSet {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    /// `self \ other`.
    pub fn difference(&self, other: &BitSet) -> BitSet {
        self.check_same_universe(other);
        BitSet {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & !b)
                .collect(),
        }
    }

    /// Symmetric difference `self Δ other`.
    pub fn symmetric_difference(&self, other: &BitSet) -> BitSet {
        self.check_same_universe(other);
        BitSet {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a ^ b)
                .collect(),
        }
    }

    /// Complement within the universe.
    pub fn complement(&self) -> BitSet {
        let mut out = BitSet {
            len: self.len,
            words: self.words.iter().map(|w| !w).collect(),
        };
        out.clear_tail();
        out
    }

    /// In-place `self ∩= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        self.check_same_universe(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place `self ∪= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        self.check_same_universe(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place `self \= other`.
    pub fn subtract(&mut self, other: &BitSet) {
        self.check_same_universe(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// `self ⊆ other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.check_same_universe(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// `self ⊂ other` (subset and not equal).
    pub fn is_proper_subset(&self, other: &BitSet) -> bool {
        self.is_subset(other) && self != other
    }

    /// `self ⊇ other`.
    pub fn is_superset(&self, other: &BitSet) -> bool {
        other.is_subset(self)
    }

    /// True when the two sets share no member.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.check_same_universe(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// True when the two sets share at least one member.
    pub fn intersects(&self, other: &BitSet) -> bool {
        !self.is_disjoint(other)
    }

    /// Iterates over members in increasing order.
    pub fn iter(&self) -> BitSetIter<'_> {
        BitSetIter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The smallest member, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }

    /// Collects members into a `Vec` (mostly for tests and display).
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Zeroes bits beyond `len` so that equality/hash stay canonical.
    fn clear_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, i) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

/// Iterator over the members of a [`BitSet`].
pub struct BitSetIter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for BitSetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = BitSetIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = BitSet::empty(10);
        let f = BitSet::full(10);
        assert!(e.is_empty());
        assert!(!e.is_full());
        assert!(f.is_full());
        assert_eq!(f.card(), 10);
        assert_eq!(e.card(), 0);
        assert!(e.is_subset(&f));
        assert!(!f.is_subset(&e));
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::empty(100);
        assert!(s.insert(3));
        assert!(s.insert(64));
        assert!(s.insert(99));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(s.contains(64));
        assert!(s.contains(99));
        assert!(!s.contains(0));
        assert_eq!(s.card(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.to_vec(), vec![3, 99]);
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_indices(8, [0, 1, 2, 3]);
        let b = BitSet::from_indices(8, [2, 3, 4, 5]);
        assert_eq!(a.intersection(&b).to_vec(), vec![2, 3]);
        assert_eq!(a.union(&b).to_vec(), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(a.difference(&b).to_vec(), vec![0, 1]);
        assert_eq!(a.symmetric_difference(&b).to_vec(), vec![0, 1, 4, 5]);
        assert_eq!(a.complement().to_vec(), vec![4, 5, 6, 7]);
    }

    #[test]
    fn complement_is_canonical_at_word_boundary() {
        // Universe of 65 elements straddles a word boundary; the complement
        // must not set bits beyond the universe.
        let s = BitSet::from_indices(65, [0, 64]);
        let c = s.complement();
        assert_eq!(c.card(), 63);
        assert_eq!(c.complement(), s);
        assert_eq!(BitSet::full(65).complement(), BitSet::empty(65));
    }

    #[test]
    fn subset_relations() {
        let a = BitSet::from_indices(6, [1, 2]);
        let b = BitSet::from_indices(6, [1, 2, 4]);
        assert!(a.is_subset(&b));
        assert!(a.is_proper_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(b.is_superset(&a));
        assert!(a.is_subset(&a));
        assert!(!a.is_proper_subset(&a));
    }

    #[test]
    fn disjointness() {
        let a = BitSet::from_indices(6, [0, 1]);
        let b = BitSet::from_indices(6, [2, 3]);
        assert!(a.is_disjoint(&b));
        assert!(!a.intersects(&b));
        let c = BitSet::from_indices(6, [1, 2]);
        assert!(!a.is_disjoint(&c));
        assert!(a.intersects(&c));
    }

    #[test]
    fn iteration_order_is_increasing() {
        let s = BitSet::from_indices(200, [199, 0, 70, 5]);
        assert_eq!(s.to_vec(), vec![0, 5, 70, 199]);
        assert_eq!(s.first(), Some(0));
        assert_eq!(BitSet::empty(4).first(), None);
    }

    #[test]
    fn in_place_ops_match_pure_ops() {
        let a = BitSet::from_indices(10, [0, 2, 4, 6]);
        let b = BitSet::from_indices(10, [4, 5, 6, 7]);
        let mut x = a.clone();
        x.intersect_with(&b);
        assert_eq!(x, a.intersection(&b));
        let mut y = a.clone();
        y.union_with(&b);
        assert_eq!(y, a.union(&b));
        let mut z = a.clone();
        z.subtract(&b);
        assert_eq!(z, a.difference(&b));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn mixing_universes_panics() {
        let a = BitSet::empty(4);
        let b = BitSet::empty(5);
        let _ = a.union(&b);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_range_contains_panics() {
        let s = BitSet::empty(4);
        let _ = s.contains(4);
    }

    #[test]
    fn zero_sized_universe() {
        let e = BitSet::empty(0);
        assert!(e.is_empty());
        assert!(e.is_full()); // vacuously: card == len == 0
        assert_eq!(e.complement(), e);
    }
}
