//! Maps between finite spaces: continuity, openness, embeddings.
//!
//! The paper describes the relation between database intension and extension
//! as "an injective mapping between two topological spaces" (§1) and studies
//! schema evolution through information-preserving maps. This module gives
//! those notions executable form.

use serde::{Deserialize, Serialize};

use crate::bitset::BitSet;
use crate::space::FiniteSpace;

/// A total function `f : X → Y` between the point sets of two finite spaces,
/// stored as `f[x] = y`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PointMap {
    map: Vec<usize>,
    codomain_len: usize,
}

/// Errors raised when a point map is malformed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MapError {
    /// Image point out of range of the codomain.
    ImageOutOfRange {
        point: usize,
        image: usize,
        codomain: usize,
    },
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::ImageOutOfRange {
                point,
                image,
                codomain,
            } => write!(
                f,
                "f({point}) = {image} lies outside the codomain of {codomain} points"
            ),
        }
    }
}

impl std::error::Error for MapError {}

impl PointMap {
    /// Builds a map given the image of each domain point and the codomain
    /// size.
    pub fn new(map: Vec<usize>, codomain_len: usize) -> Result<Self, MapError> {
        for (point, &image) in map.iter().enumerate() {
            if image >= codomain_len {
                return Err(MapError::ImageOutOfRange {
                    point,
                    image,
                    codomain: codomain_len,
                });
            }
        }
        Ok(PointMap { map, codomain_len })
    }

    /// The identity map on `n` points.
    pub fn identity(n: usize) -> Self {
        PointMap {
            map: (0..n).collect(),
            codomain_len: n,
        }
    }

    /// Domain size.
    pub fn domain_len(&self) -> usize {
        self.map.len()
    }

    /// Codomain size.
    pub fn codomain_len(&self) -> usize {
        self.codomain_len
    }

    /// Applies the map to a point.
    pub fn apply(&self, x: usize) -> usize {
        self.map[x]
    }

    /// Forward image of a set.
    pub fn image(&self, s: &BitSet) -> BitSet {
        BitSet::from_indices(self.codomain_len, s.iter().map(|x| self.map[x]))
    }

    /// Preimage of a set.
    pub fn preimage(&self, s: &BitSet) -> BitSet {
        BitSet::from_indices(
            self.map.len(),
            (0..self.map.len()).filter(|&x| s.contains(self.map[x])),
        )
    }

    /// True when no two domain points share an image.
    pub fn is_injective(&self) -> bool {
        let mut seen = BitSet::empty(self.codomain_len);
        self.map.iter().all(|&y| seen.insert(y))
    }

    /// True when every codomain point is hit.
    pub fn is_surjective(&self) -> bool {
        let mut seen = BitSet::empty(self.codomain_len);
        for &y in &self.map {
            seen.insert(y);
        }
        seen.is_full()
    }

    /// Composition `g ∘ self` (apply `self` first).
    pub fn then(&self, g: &PointMap) -> PointMap {
        assert_eq!(
            self.codomain_len,
            g.domain_len(),
            "composition domain mismatch"
        );
        PointMap {
            map: self.map.iter().map(|&y| g.apply(y)).collect(),
            codomain_len: g.codomain_len,
        }
    }

    /// Continuity: `f` is continuous iff the preimage of every open is open;
    /// on finite spaces this reduces to `f(U_X(x)) ⊆ U_Y(f(x))` for all `x`
    /// (equivalently, `f` is monotone for the specialisation preorders).
    pub fn is_continuous(&self, dom: &FiniteSpace, cod: &FiniteSpace) -> bool {
        assert_eq!(dom.len(), self.domain_len(), "domain space size mismatch");
        assert_eq!(cod.len(), self.codomain_len, "codomain space size mismatch");
        (0..dom.len()).all(|x| {
            let fx = self.map[x];
            dom.min_neighbourhood(x)
                .iter()
                .all(|x2| cod.min_neighbourhood(fx).contains(self.map[x2]))
        })
    }

    /// Open map: the image of every open set is open. Checked on the
    /// generating minimal neighbourhoods (images of unions are unions of
    /// images, so this suffices).
    pub fn is_open_map(&self, dom: &FiniteSpace, cod: &FiniteSpace) -> bool {
        assert_eq!(dom.len(), self.domain_len(), "domain space size mismatch");
        (0..dom.len()).all(|x| cod.is_open(&self.image(dom.min_neighbourhood(x))))
    }

    /// Topological embedding: injective, continuous, and a homeomorphism
    /// onto its image (opens of the domain are exactly restricted opens of
    /// the codomain).
    pub fn is_embedding(&self, dom: &FiniteSpace, cod: &FiniteSpace) -> bool {
        if !self.is_injective() || !self.is_continuous(dom, cod) {
            return false;
        }
        // Embedding condition: the subspace topology induced on the image
        // matches the domain topology, i.e. U_X(x) = f⁻¹(U_Y(f(x))) for
        // every x (the ⊆ direction is continuity; ⊇ is checked here).
        (0..dom.len()).all(|x| {
            let back = self.preimage(cod.min_neighbourhood(self.map[x]));
            back.is_subset(dom.min_neighbourhood(x))
        })
    }

    /// Homeomorphism: continuous bijection with continuous inverse.
    pub fn is_homeomorphism(&self, dom: &FiniteSpace, cod: &FiniteSpace) -> bool {
        if dom.len() != cod.len() || !self.is_injective() || !self.is_surjective() {
            return false;
        }
        if !self.is_continuous(dom, cod) {
            return false;
        }
        let mut inv = vec![0usize; self.codomain_len];
        for (x, &y) in self.map.iter().enumerate() {
            inv[y] = x;
        }
        let inverse = PointMap {
            map: inv,
            codomain_len: self.map.len(),
        };
        inverse.is_continuous(cod, dom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sierpinski() -> FiniteSpace {
        FiniteSpace::from_min_neighbourhoods(vec![BitSet::full(2), BitSet::singleton(2, 1)])
            .unwrap()
    }

    #[test]
    fn identity_is_homeomorphism() {
        let s = sierpinski();
        let id = PointMap::identity(2);
        assert!(id.is_continuous(&s, &s));
        assert!(id.is_open_map(&s, &s));
        assert!(id.is_homeomorphism(&s, &s));
        assert!(id.is_embedding(&s, &s));
    }

    #[test]
    fn swap_on_sierpinski_is_not_continuous() {
        let s = sierpinski();
        let swap = PointMap::new(vec![1, 0], 2).unwrap();
        // Preimage of the open {1} is {0}, which is not open.
        assert!(!swap.is_continuous(&s, &s));
        assert!(!swap.is_homeomorphism(&s, &s));
    }

    #[test]
    fn constant_maps_are_continuous() {
        let s = sierpinski();
        let d = FiniteSpace::discrete(3);
        for target in 0..2 {
            let c = PointMap::new(vec![target; 3], 2).unwrap();
            assert!(c.is_continuous(&d, &s));
        }
    }

    #[test]
    fn any_map_from_discrete_is_continuous() {
        let d = FiniteSpace::discrete(4);
        let s = sierpinski();
        let f = PointMap::new(vec![0, 1, 1, 0], 2).unwrap();
        assert!(f.is_continuous(&d, &s));
        assert!(!f.is_injective());
        assert!(f.is_surjective());
    }

    #[test]
    fn any_map_to_indiscrete_is_continuous() {
        let i = FiniteSpace::indiscrete(2);
        let d = FiniteSpace::discrete(2);
        let f = PointMap::new(vec![1, 0], 2).unwrap();
        assert!(f.is_continuous(&d, &i));
        // But the inverse direction (indiscrete → discrete) is not, unless
        // constant.
        assert!(!f.is_continuous(&i, &d));
    }

    #[test]
    fn image_preimage_adjunction() {
        let f = PointMap::new(vec![0, 0, 1, 2], 3).unwrap();
        let s = BitSet::from_indices(4, [0, 2]);
        let t = BitSet::from_indices(3, [0, 1]);
        // f(S) ⊆ T ⇔ S ⊆ f⁻¹(T)
        assert_eq!(f.image(&s).is_subset(&t), s.is_subset(&f.preimage(&t)));
        assert_eq!(f.image(&s).to_vec(), vec![0, 1]);
        assert_eq!(f.preimage(&t).to_vec(), vec![0, 1, 2]);
    }

    #[test]
    fn injective_surjective_detection() {
        let inj = PointMap::new(vec![2, 0], 3).unwrap();
        assert!(inj.is_injective());
        assert!(!inj.is_surjective());
        let surj = PointMap::new(vec![0, 1, 1], 2).unwrap();
        assert!(!surj.is_injective());
        assert!(surj.is_surjective());
    }

    #[test]
    fn composition() {
        let f = PointMap::new(vec![1, 2], 3).unwrap();
        let g = PointMap::new(vec![0, 0, 1], 2).unwrap();
        let h = f.then(&g);
        assert_eq!(h.apply(0), 0);
        assert_eq!(h.apply(1), 1);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(PointMap::new(vec![3], 3).is_err());
    }

    #[test]
    fn embedding_of_open_subspace() {
        // X = Sierpiński embedded into Y = subbase-generated 3-point space
        // where Y's points 1,2 replicate the Sierpiński structure.
        let y = FiniteSpace::from_subbase(
            3,
            &[
                BitSet::from_indices(3, [1, 2]),
                BitSet::from_indices(3, [2]),
            ],
        );
        let x = sierpinski();
        let f = PointMap::new(vec![1, 2], 3).unwrap();
        assert!(f.is_continuous(&x, &y));
        assert!(f.is_embedding(&x, &y));
    }
}
