//! Property-based tests of the topological laws over randomly generated
//! subbases. These stand in for the proofs the paper omits ("Actually the
//! model is introduced informally; proofs are omitted").

use proptest::prelude::*;
use toposem_topology::{BitSet, FiniteSpace, OpenLattice, PointMap, Preorder, SubbaseAnalysis};

const N: usize = 8;

/// Strategy: a subset of an `n`-point universe as a bitmask.
fn subset(n: usize) -> impl Strategy<Value = BitSet> {
    prop::bits::u64::between(0, n)
        .prop_map(move |mask| BitSet::from_indices(n, (0..n).filter(|&i| mask & (1 << i) != 0)))
}

/// Strategy: a random subbase of up to 6 subsets.
fn random_subbase(n: usize) -> impl Strategy<Value = Vec<BitSet>> {
    prop::collection::vec(subset(n), 0..6)
}

/// Strategy: a random finite space generated from a random subbase.
fn random_space(n: usize) -> impl Strategy<Value = FiniteSpace> {
    random_subbase(n).prop_map(move |sb| FiniteSpace::from_subbase(n, &sb))
}

proptest! {
    #[test]
    fn generated_space_validates(sb in random_subbase(N)) {
        let sp = FiniteSpace::from_subbase(N, &sb);
        // The minimal-neighbourhood family must satisfy the characterising
        // invariants (re-validated through the checked constructor).
        let rebuilt = FiniteSpace::from_min_neighbourhoods(
            (0..N).map(|x| sp.min_neighbourhood(x).clone()).collect(),
        );
        prop_assert!(rebuilt.is_ok());
        prop_assert_eq!(rebuilt.unwrap(), sp);
    }

    #[test]
    fn min_neighbourhoods_are_open(sp in random_space(N)) {
        for x in 0..N {
            prop_assert!(sp.is_open(sp.min_neighbourhood(x)));
        }
    }

    #[test]
    fn interior_is_largest_open_subset(sp in random_space(N), s in subset(N)) {
        let i = sp.interior(&s);
        prop_assert!(sp.is_open(&i));
        prop_assert!(i.is_subset(&s));
        // Any open subset of s is inside the interior.
        for o in sp.all_opens() {
            if o.is_subset(&s) {
                prop_assert!(o.is_subset(&i));
            }
        }
    }

    #[test]
    fn closure_is_smallest_closed_superset(sp in random_space(N), s in subset(N)) {
        let c = sp.closure(&s);
        prop_assert!(sp.is_closed(&c));
        prop_assert!(s.is_subset(&c));
        for o in sp.all_opens() {
            let closed = o.complement();
            if s.is_subset(&closed) {
                prop_assert!(c.is_subset(&closed));
            }
        }
    }

    #[test]
    fn kuratowski_laws(sp in random_space(N), s in subset(N), t in subset(N)) {
        // cl(∅) = ∅
        prop_assert!(sp.closure(&BitSet::empty(N)).is_empty());
        // cl(s ∪ t) = cl(s) ∪ cl(t)
        prop_assert_eq!(
            sp.closure(&s.union(&t)),
            sp.closure(&s).union(&sp.closure(&t))
        );
        // int/cl duality
        prop_assert_eq!(sp.interior(&s), sp.closure(&s.complement()).complement());
    }

    #[test]
    fn opens_closed_under_ops(sp in random_space(6)) {
        let opens = sp.all_opens();
        prop_assert!(opens.contains(&BitSet::empty(6)));
        prop_assert!(opens.contains(&BitSet::full(6)));
        for a in &opens {
            for b in &opens {
                prop_assert!(opens.contains(&a.union(b)));
                prop_assert!(opens.contains(&a.intersection(b)));
            }
        }
    }

    #[test]
    fn specialisation_preorder_is_reflexive_transitive(sp in random_space(N)) {
        let p = Preorder::of_space(&sp);
        for x in 0..N {
            prop_assert!(p.le(x, x));
            for y in 0..N {
                for z in 0..N {
                    if p.le(x, y) && p.le(y, z) {
                        prop_assert!(p.le(x, z));
                    }
                }
            }
        }
    }

    #[test]
    fn up_set_is_closure_of_singleton(sp in random_space(N)) {
        for x in 0..N {
            prop_assert_eq!(sp.up_set(x), sp.closure(&BitSet::singleton(N, x)));
        }
    }

    #[test]
    fn lattice_distributivity(sp in random_space(5)) {
        let l = OpenLattice::of_space(&sp);
        prop_assert!(l.verify_distributive());
    }

    #[test]
    fn greedy_minimal_subbase_generates(sb in random_subbase(N)) {
        let a = SubbaseAnalysis::new(N, sb);
        let min = a.greedy_minimal();
        prop_assert!(a.generates(&min));
        // Minimality: removing any kept member changes the topology.
        for i in min.iter() {
            let mut trial = min.clone();
            trial.remove(i);
            prop_assert!(!a.generates(&trial));
        }
    }

    #[test]
    fn all_minimal_members_generate_and_are_minimal(sb in random_subbase(5)) {
        let a = SubbaseAnalysis::new(5, sb);
        for m in a.all_minimal() {
            prop_assert!(a.generates(&m));
            for i in m.iter() {
                let mut trial = m.clone();
                trial.remove(i);
                prop_assert!(!a.generates(&trial));
            }
        }
    }

    #[test]
    fn continuity_composes(
        sb1 in random_subbase(5),
        sb2 in random_subbase(5),
        sb3 in random_subbase(5),
        f in prop::collection::vec(0usize..5, 5),
        g in prop::collection::vec(0usize..5, 5),
    ) {
        let x = FiniteSpace::from_subbase(5, &sb1);
        let y = FiniteSpace::from_subbase(5, &sb2);
        let z = FiniteSpace::from_subbase(5, &sb3);
        let f = PointMap::new(f, 5).unwrap();
        let g = PointMap::new(g, 5).unwrap();
        if f.is_continuous(&x, &y) && g.is_continuous(&y, &z) {
            prop_assert!(f.then(&g).is_continuous(&x, &z));
        }
    }

    #[test]
    fn continuity_iff_preimages_of_opens_open(
        sb1 in random_subbase(5),
        sb2 in random_subbase(5),
        f in prop::collection::vec(0usize..5, 5),
    ) {
        let x = FiniteSpace::from_subbase(5, &sb1);
        let y = FiniteSpace::from_subbase(5, &sb2);
        let f = PointMap::new(f, 5).unwrap();
        let by_def = y.all_opens().iter().all(|o| x.is_open(&f.preimage(o)));
        prop_assert_eq!(f.is_continuous(&x, &y), by_def);
    }

    #[test]
    fn hasse_covers_reconstruct_order(sp in random_space(6)) {
        let p = Preorder::of_space(&sp);
        if !p.is_partial_order() {
            return Ok(()); // covers only meaningful on partial orders
        }
        // Transitive closure of covers must equal the strict order.
        let covers = p.covers();
        let mut reach = vec![BitSet::empty(6); 6];
        for &(x, y) in &covers {
            reach[x].insert(y);
        }
        // Floyd-Warshall style closure.
        for _ in 0..6 {
            for x in 0..6 {
                let ys = reach[x].clone();
                for y in ys.iter() {
                    let up = reach[y].clone();
                    reach[x].union_with(&up);
                }
            }
        }
        #[allow(clippy::needless_range_loop)]
        for x in 0..6 {
            for y in 0..6 {
                prop_assert_eq!(p.lt(x, y), reach[x].contains(y), "x={} y={}", x, y);
            }
        }
    }
}

proptest! {
    /// Subspace inclusions are always embeddings.
    #[test]
    fn subspace_inclusion_is_embedding(sb in random_subbase(N), keep_mask in 1u64..(1 << N)) {
        let sp = FiniteSpace::from_subbase(N, &sb);
        let points: Vec<usize> = (0..N).filter(|&i| keep_mask & (1 << i) != 0).collect();
        let sub = toposem_topology::subspace(&sp, &points);
        let inc = toposem_topology::subspace_inclusion(&sp, &points);
        prop_assert!(inc.is_continuous(&sub, &sp));
        prop_assert!(inc.is_embedding(&sub, &sp));
    }

    /// Product projections are continuous open surjections.
    #[test]
    fn product_projections_behave(sb1 in random_subbase(4), sb2 in random_subbase(3)) {
        let x = FiniteSpace::from_subbase(4, &sb1);
        let y = FiniteSpace::from_subbase(3, &sb2);
        let p = toposem_topology::product(&x, &y);
        let (p1, p2) = toposem_topology::product_projections(&x, &y);
        prop_assert!(p1.is_continuous(&p, &x));
        prop_assert!(p2.is_continuous(&p, &y));
        prop_assert!(p1.is_open_map(&p, &x));
        prop_assert!(p2.is_open_map(&p, &y));
        prop_assert!(p1.is_surjective());
        prop_assert!(p2.is_surjective());
    }

    /// The T0 reflection is T0 and its projection is continuous.
    #[test]
    fn t0_reflection_laws(sb in random_subbase(N)) {
        let sp = FiniteSpace::from_subbase(N, &sb);
        let (q, proj) = toposem_topology::t0_reflection(&sp);
        prop_assert!(q.is_t0());
        prop_assert!(proj.is_continuous(&sp, &q));
        prop_assert!(proj.is_surjective());
        // Reflecting twice changes nothing.
        let (q2, _) = toposem_topology::t0_reflection(&q);
        prop_assert_eq!(q2.len(), q.len());
    }

    /// Components partition the space and each is connected.
    #[test]
    fn components_partition(sb in random_subbase(N)) {
        let sp = FiniteSpace::from_subbase(N, &sb);
        let comps = toposem_topology::components(&sp);
        let mut union = BitSet::empty(N);
        for c in &comps {
            prop_assert!(union.is_disjoint(c));
            union.union_with(c);
            // Each component, as a subspace, is connected.
            let pts: Vec<usize> = c.iter().collect();
            let sub = toposem_topology::subspace(&sp, &pts);
            prop_assert!(toposem_topology::is_connected(&sub));
        }
        prop_assert!(union.is_full());
    }
}
