//! The chase: deciding whether a set of functional dependencies implies a
//! join dependency.
//!
//! §6 announces the study of join dependencies; the classical decision
//! tool is the tableau chase (Aho–Beeri–Ullman, contemporaneous with the
//! paper). Lifted to the entity-type setting: to decide whether the FDs
//! Σ of a context `h` imply `*(e₁, …, eₖ)`, build one tableau row per
//! component (distinguished symbols on the component's attribute set,
//! fresh symbols elsewhere), chase with the attribute images of Σ, and
//! accept iff some row becomes fully distinguished.

use toposem_core::{Schema, TypeId};
use toposem_topology::BitSet;

use crate::jd::JoinDependency;

/// One tableau: `rows × attrs` symbol matrix. Symbol 0 is the
/// distinguished variable of its column; higher symbols are fresh.
struct Tableau {
    attrs: Vec<usize>,
    rows: Vec<Vec<u32>>,
}

impl Tableau {
    /// The initial tableau of a JD: one row per component.
    fn for_jd(schema: &Schema, jd: &JoinDependency) -> Tableau {
        let context_attrs: Vec<usize> = schema.attrs_of(jd.context).iter().collect();
        let mut next_fresh = 1u32;
        let rows = jd
            .components
            .iter()
            .map(|&c| {
                let comp = schema.attrs_of(c);
                context_attrs
                    .iter()
                    .map(|&a| {
                        if comp.contains(a) {
                            0
                        } else {
                            let v = next_fresh;
                            next_fresh += 1;
                            v
                        }
                    })
                    .collect()
            })
            .collect();
        Tableau {
            attrs: context_attrs,
            rows,
        }
    }

    /// Column position of an attribute id, if the context carries it.
    fn col(&self, attr: usize) -> Option<usize> {
        self.attrs.iter().position(|&a| a == attr)
    }

    /// Applies one FD (attribute-level `lhs → rhs`) everywhere; returns
    /// whether anything changed.
    fn apply_fd(&mut self, lhs: &BitSet, rhs: &BitSet) -> bool {
        let lhs_cols: Vec<usize> = lhs.iter().filter_map(|a| self.col(a)).collect();
        if lhs_cols.len() != lhs.card() {
            return false; // FD mentions attributes outside the context
        }
        let rhs_cols: Vec<usize> = rhs.iter().filter_map(|a| self.col(a)).collect();
        let mut changed = false;
        for i in 0..self.rows.len() {
            for j in (i + 1)..self.rows.len() {
                if lhs_cols.iter().all(|&c| self.rows[i][c] == self.rows[j][c]) {
                    for &c in &rhs_cols {
                        let (a, b) = (self.rows[i][c], self.rows[j][c]);
                        if a != b {
                            // Equate: replace the larger symbol by the
                            // smaller throughout the column (distinguished
                            // symbols win).
                            let (keep, drop) = if a < b { (a, b) } else { (b, a) };
                            for row in &mut self.rows {
                                if row[c] == drop {
                                    row[c] = keep;
                                }
                            }
                            changed = true;
                        }
                    }
                }
            }
        }
        changed
    }

    /// Is some row fully distinguished?
    fn has_distinguished_row(&self) -> bool {
        self.rows.iter().any(|r| r.iter().all(|&v| v == 0))
    }
}

/// Decides Σ ⊨ `jd` by the chase. `sigma` is given over entity types of
/// the JD's context, read attribute-wise.
pub fn fds_imply_jd(schema: &Schema, sigma: &[(TypeId, TypeId)], jd: &JoinDependency) -> bool {
    let mut tableau = Tableau::for_jd(schema, jd);
    loop {
        let mut changed = false;
        for &(x, y) in sigma {
            changed |= tableau.apply_fd(schema.attrs_of(x), schema.attrs_of(y));
        }
        if tableau.has_distinguished_row() {
            return true;
        }
        if !changed {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::SchemaBuilder;

    /// The employee schema with the {depname} unit explicated — required
    /// to state `depname → location` as an entity-type FD, which is the
    /// dependency that actually makes the worksfor decomposition lossless.
    fn explicated_schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.attribute("name", "person-names");
        b.attribute("age", "ages");
        b.attribute("depname", "department-names");
        b.attribute("location", "locations");
        b.entity_type("employee", &["name", "age", "depname"]);
        b.entity_type("department", &["depname", "location"]);
        b.entity_type("worksfor", &["name", "age", "depname", "location"]);
        b.entity_type("depkey", &["depname"]);
        b.build_strict().unwrap()
    }

    fn worksfor_jd(schema: &Schema) -> JoinDependency {
        JoinDependency {
            components: vec![
                schema.type_id("employee").unwrap(),
                schema.type_id("department").unwrap(),
            ],
            context: schema.type_id("worksfor").unwrap(),
        }
    }

    #[test]
    fn depname_to_location_implies_the_contributor_jd() {
        // The classical B → C example lifted: depname → department (i.e.
        // depname → location) makes employee ⋈ department lossless.
        let s = explicated_schema();
        let depkey = s.type_id("depkey").unwrap();
        let department = s.type_id("department").unwrap();
        assert!(fds_imply_jd(&s, &[(depkey, department)], &worksfor_jd(&s)));
    }

    #[test]
    fn employee_to_department_does_not_imply_it() {
        // Subtle and true: name,age,depname → location does NOT make the
        // decomposition lossless. Witness: (ann,40,sales,amsterdam) and
        // (bob,30,sales,utrecht) satisfy the FD (distinct employees) yet
        // the join manufactures (ann,40,sales,utrecht).
        let s = explicated_schema();
        let employee = s.type_id("employee").unwrap();
        let department = s.type_id("department").unwrap();
        assert!(!fds_imply_jd(
            &s,
            &[(employee, department)],
            &worksfor_jd(&s)
        ));
    }

    #[test]
    fn empty_sigma_does_not_imply_the_jd() {
        let s = explicated_schema();
        assert!(!fds_imply_jd(&s, &[], &worksfor_jd(&s)));
    }

    #[test]
    fn department_to_employee_does_not_imply_it() {
        // depname,location → name,age also fails: the same witness
        // satisfies it vacuously (distinct department tuples).
        let s = explicated_schema();
        let employee = s.type_id("employee").unwrap();
        let department = s.type_id("department").unwrap();
        assert!(!fds_imply_jd(
            &s,
            &[(department, employee)],
            &worksfor_jd(&s)
        ));
    }

    #[test]
    fn chase_verdicts_match_runtime_witnesses() {
        // Dynamic confirmation of both verdicts on the witness data.
        use crate::jd::check_jd;
        use toposem_core::Intension;
        use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, DomainSpec, Value};
        let s = explicated_schema();
        let employee = s.type_id("employee").unwrap();
        let department = s.type_id("department").unwrap();
        let worksfor = s.type_id("worksfor").unwrap();
        let jd = worksfor_jd(&s);

        let mut catalog = DomainCatalog::new();
        catalog
            .bind("person-names", DomainSpec::AnyStr)
            .bind("ages", DomainSpec::IntRange(0, 150))
            .bind("department-names", DomainSpec::AnyStr)
            .bind("locations", DomainSpec::AnyStr);
        let mut db = Database::new(
            Intension::analyse(s.clone()),
            catalog,
            ContainmentPolicy::Eager,
        );
        for (n, a, d, l) in [
            ("ann", 40, "sales", "amsterdam"),
            ("bob", 30, "sales", "utrecht"),
        ] {
            db.insert_fields(
                worksfor,
                &[
                    ("name", Value::str(n)),
                    ("age", Value::Int(a)),
                    ("depname", Value::str(d)),
                    ("location", Value::str(l)),
                ],
            )
            .unwrap();
        }
        // The witness satisfies employee → department…
        let fd = toposem_fd::Fd::unchecked(employee, department, worksfor);
        assert!(toposem_fd::check_fd(&db, &fd).holds());
        // …and violates the JD: employee → department really does not
        // imply it, exactly as the chase said.
        assert!(!check_jd(&db, &jd).holds);
        // Whereas it violates depname → location, consistent with that FD
        // implying the JD.
        let depkey = s.type_id("depkey").unwrap();
        let fd2 = toposem_fd::Fd::unchecked(depkey, department, worksfor);
        assert!(!toposem_fd::check_fd(&db, &fd2).holds());
    }
}
