//! # toposem-constraints
//!
//! The constraint extensions sketched in §6 of Siebes & Kersten 1987:
//! finite boolean algebras as domain structure, null values / incomplete
//! information with context-independent semantics, multi-valued
//! dependencies as domain constraints, join dependencies, and a general
//! domain-constraint checker subsuming them all plus subset dependencies.

pub mod boolean_algebra;
pub mod chase;
pub mod domain_constraint;
pub mod jd;
pub mod mvd;
pub mod null;

pub use boolean_algebra::{BaElement, BooleanAlgebra};
pub use chase::fds_imply_jd;
pub use domain_constraint::{
    check_constraint, check_constraints, ConstraintViolation, DomainConstraint,
};
pub use jd::{check_jd, contributor_jd, JdReport, JoinDependency};
pub use mvd::{complement_mvd, fd_implies_mvd, mvd_holds_as_product, mvd_holds_pairwise, Mvd};
pub use null::{IncompleteRelation, PartialTuple};
