//! Domain constraints (§6): restrictions on the allowable sub-domains of
//! an entity type's extension, subsuming value restrictions, MVDs (product
//! shape) and subset dependencies.
//!
//! The Integrity Axiom reading: every constraint is a predicate over
//! entity types and *implies an entity type* — each variant below names
//! the entity types it constrains, and checking is always a pure function
//! of their extensions.

use toposem_core::{AttrId, TypeId};
use toposem_extension::{Database, DomainSpec};

use crate::jd::{check_jd, JoinDependency};
use crate::mvd::{mvd_holds_as_product, Mvd};

/// A domain constraint over entity types.
#[derive(Clone, Debug)]
pub enum DomainConstraint {
    /// Values of `attr` within the extension of `entity` must lie in the
    /// (narrower) value set `allowed`.
    AttributeRange {
        /// Constrained entity type.
        entity: TypeId,
        /// Constrained attribute.
        attr: AttrId,
        /// The allowed sub-domain.
        allowed: DomainSpec,
    },
    /// The product-shape constraint: an MVD (§6 "multi-valued dependencies
    /// are a special case of domain constraints").
    ProductShape(Mvd),
    /// A join dependency.
    Lossless(JoinDependency),
    /// Subset dependency: the `sub`'s projection lies inside `sup`'s
    /// extension ("each manager should be an employee") — the constraint
    /// the paper represents intensionally as a subset hierarchy.
    Subset {
        /// The specialised type.
        sub: TypeId,
        /// The general type (a generalisation of `sub`).
        sup: TypeId,
    },
}

/// A violation report: which constraint and a short diagnosis.
#[derive(Clone, Debug)]
pub struct ConstraintViolation {
    /// Index of the violated constraint in the checked list.
    pub index: usize,
    /// Diagnosis.
    pub message: String,
}

/// Checks a single constraint against the database.
pub fn check_constraint(db: &Database, c: &DomainConstraint) -> Result<(), String> {
    let schema = db.schema();
    match c {
        DomainConstraint::AttributeRange {
            entity,
            attr,
            allowed,
        } => {
            for t in db.extension(*entity).iter() {
                if let Some(v) = t.get(*attr) {
                    if !allowed.contains(v) {
                        return Err(format!(
                            "value {v} of attribute `{}` in `{}` outside the allowed sub-domain",
                            schema.attr_name(*attr),
                            schema.type_name(*entity),
                        ));
                    }
                }
            }
            Ok(())
        }
        DomainConstraint::ProductShape(mvd) => {
            if mvd_holds_as_product(db, mvd) {
                Ok(())
            } else {
                Err(format!(
                    "extension of `{}` is not product-shaped over `{}` →→ `{}`",
                    schema.type_name(mvd.context),
                    schema.type_name(mvd.lhs),
                    schema.type_name(mvd.rhs),
                ))
            }
        }
        DomainConstraint::Lossless(jd) => {
            let report = check_jd(db, jd);
            if report.holds {
                Ok(())
            } else {
                Err(format!(
                    "join dependency violated in `{}`: {} spurious, {} missing",
                    schema.type_name(jd.context),
                    report.spurious,
                    report.missing,
                ))
            }
        }
        DomainConstraint::Subset { sub, sup } => {
            let projected = db
                .extension(*sub)
                .project_to_type(schema, *sub, *sup)
                .map_err(|e| e.to_string())?;
            if projected.is_subset(&db.extension(*sup)) {
                Ok(())
            } else {
                Err(format!(
                    "subset dependency violated: `{}` ⊄ `{}`",
                    schema.type_name(*sub),
                    schema.type_name(*sup),
                ))
            }
        }
    }
}

/// Checks a list of constraints; returns every violation.
pub fn check_constraints(db: &Database, cs: &[DomainConstraint]) -> Vec<ConstraintViolation> {
    cs.iter()
        .enumerate()
        .filter_map(|(index, c)| {
            check_constraint(db, c)
                .err()
                .map(|message| ConstraintViolation { index, message })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::{employee_schema, Intension};
    use toposem_extension::{ContainmentPolicy, DomainCatalog, Value};

    fn loaded_db() -> Database {
        let mut d = Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        );
        let s = d.schema().clone();
        d.insert_fields(
            s.type_id("manager").unwrap(),
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
                ("budget", Value::Int(100)),
            ],
        )
        .unwrap();
        d
    }

    #[test]
    fn attribute_range_constraint() {
        let d = loaded_db();
        let s = d.schema();
        let ok = DomainConstraint::AttributeRange {
            entity: s.type_id("manager").unwrap(),
            attr: s.attr_id("age").unwrap(),
            allowed: DomainSpec::IntRange(18, 67),
        };
        assert!(check_constraint(&d, &ok).is_ok());
        let bad = DomainConstraint::AttributeRange {
            entity: s.type_id("manager").unwrap(),
            attr: s.attr_id("age").unwrap(),
            allowed: DomainSpec::IntRange(18, 30),
        };
        assert!(check_constraint(&d, &bad).is_err());
    }

    #[test]
    fn subset_constraint_follows_containment() {
        let d = loaded_db();
        let s = d.schema();
        let c = DomainConstraint::Subset {
            sub: s.type_id("manager").unwrap(),
            sup: s.type_id("employee").unwrap(),
        };
        assert!(check_constraint(&d, &c).is_ok());
    }

    #[test]
    fn subset_constraint_detects_orphans() {
        let mut d = loaded_db();
        let s = d.schema().clone();
        let manager = s.type_id("manager").unwrap();
        // Bulk-load an orphan manager.
        let orphan = toposem_extension::Instance::new(
            &s,
            d.catalog(),
            manager,
            &[
                ("name", Value::str("eve")),
                ("age", Value::Int(33)),
                ("depname", Value::str("admin")),
                ("budget", Value::Int(5)),
            ],
        )
        .unwrap();
        d.insert_unchecked(manager, orphan);
        let c = DomainConstraint::Subset {
            sub: manager,
            sup: s.type_id("employee").unwrap(),
        };
        assert!(check_constraint(&d, &c).is_err());
    }

    #[test]
    fn check_constraints_reports_indices() {
        let d = loaded_db();
        let s = d.schema();
        let cs = vec![
            DomainConstraint::AttributeRange {
                entity: s.type_id("manager").unwrap(),
                attr: s.attr_id("budget").unwrap(),
                allowed: DomainSpec::IntRange(0, 10),
            },
            DomainConstraint::Subset {
                sub: s.type_id("manager").unwrap(),
                sup: s.type_id("person").unwrap(),
            },
        ];
        let violations = check_constraints(&d, &cs);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].index, 0);
    }
}
