//! Join dependencies over entity types (§6 "currently we investigate …
//! join-dependencies").
//!
//! A join dependency `*(e₁, …, eₖ)` in context `h` (all `eᵢ ∈ G_h`)
//! requires the context relation to be reconstructible from its
//! projections: `R_h = π_{e₁}(R_h) ⋈ … ⋈ π_{eₖ}(R_h)`. The Extension
//! Axiom is precisely the join dependency over the contributors plus
//! injectivity, so the checker here generalises `check_extension_axiom`.

use toposem_core::TypeId;
use toposem_extension::{multi_join, Database, Relation};
use toposem_topology::BitSet;

/// A join dependency `*(components)` in a context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinDependency {
    /// The component entity types (each a generalisation of the context).
    pub components: Vec<TypeId>,
    /// The constrained context.
    pub context: TypeId,
}

/// Result of a JD check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JdReport {
    /// Does the dependency hold?
    pub holds: bool,
    /// Tuples produced by the join but absent from the context projection
    /// (spurious tuples — the lossy-join anomaly).
    pub spurious: usize,
    /// Context tuples not reproduced by the join (only possible when the
    /// components fail to cover the context's attributes).
    pub missing: usize,
}

/// Checks `jd` against the current data. The comparison happens on the
/// attribute union of the components (the context may carry extra
/// attributes, which a JD cannot constrain).
pub fn check_jd(db: &Database, jd: &JoinDependency) -> JdReport {
    let schema = db.schema();
    let universe = schema.attr_count();
    let rel = db.extension(jd.context);
    let mut covered = BitSet::empty(universe);
    for &c in &jd.components {
        covered.union_with(schema.attrs_of(c));
    }
    let base: Relation = rel.project(&covered);
    let projections: Vec<Relation> = jd
        .components
        .iter()
        .map(|&c| rel.project(schema.attrs_of(c)))
        .collect();
    let refs: Vec<&Relation> = projections.iter().collect();
    let joined = multi_join(universe, &refs);
    let spurious = joined.iter().filter(|t| !base.contains(t)).count();
    let missing = base.iter().filter(|t| !joined.contains(t)).count();
    JdReport {
        holds: spurious == 0 && missing == 0,
        spurious,
        missing,
    }
}

/// The Extension Axiom's JD: the context joined over its contributors.
pub fn contributor_jd(db: &Database, e: TypeId) -> JoinDependency {
    JoinDependency {
        components: db.intension().contributors_of(e),
        context: e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::{employee_schema, Intension};
    use toposem_extension::{ContainmentPolicy, DomainCatalog, Value};

    fn db_with_worksfor(rows: &[(&str, i64, &str, &str)]) -> Database {
        let mut d = Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        );
        let s = d.schema().clone();
        for (name, age, dep, loc) in rows {
            d.insert_fields(
                s.type_id("worksfor").unwrap(),
                &[
                    ("name", Value::str(name)),
                    ("age", Value::Int(*age)),
                    ("depname", Value::str(dep)),
                    ("location", Value::str(loc)),
                ],
            )
            .unwrap();
        }
        d
    }

    #[test]
    fn lossless_case_holds() {
        // One employee per department: the join is lossless.
        let d = db_with_worksfor(&[
            ("ann", 40, "sales", "amsterdam"),
            ("bob", 30, "research", "utrecht"),
        ]);
        let s = d.schema();
        let jd = contributor_jd(&d, s.type_id("worksfor").unwrap());
        let report = check_jd(&d, &jd);
        assert!(report.holds, "{report:?}");
    }

    #[test]
    fn lossy_join_produces_spurious_tuples() {
        // ann works for sales@amsterdam, bob for sales@utrecht: the sales
        // department exists at two locations, so employee ⋈ department
        // manufactures (ann, utrecht) and (bob, amsterdam).
        let d = db_with_worksfor(&[
            ("ann", 40, "sales", "amsterdam"),
            ("bob", 30, "sales", "utrecht"),
        ]);
        let s = d.schema();
        let jd = contributor_jd(&d, s.type_id("worksfor").unwrap());
        let report = check_jd(&d, &jd);
        assert!(!report.holds);
        assert_eq!(report.spurious, 2);
        assert_eq!(report.missing, 0);
    }

    #[test]
    fn empty_relation_holds_vacuously() {
        let d = db_with_worksfor(&[]);
        let s = d.schema();
        let jd = contributor_jd(&d, s.type_id("worksfor").unwrap());
        assert!(check_jd(&d, &jd).holds);
    }

    #[test]
    fn custom_component_jd() {
        let d = db_with_worksfor(&[
            ("ann", 40, "sales", "amsterdam"),
            ("bob", 30, "research", "utrecht"),
        ]);
        let s = d.schema();
        // *(person, department) in worksfor: persons × departments must
        // reconstruct — fails because person ⋈ department is a cross
        // product (no shared attributes).
        let jd = JoinDependency {
            components: vec![
                s.type_id("person").unwrap(),
                s.type_id("department").unwrap(),
            ],
            context: s.type_id("worksfor").unwrap(),
        };
        let report = check_jd(&d, &jd);
        assert!(!report.holds);
        assert_eq!(report.spurious, 2); // the two cross pairs
    }
}
