//! Finite boolean algebras (§6, after Rasiowa & Sikorski \[10\]).
//!
//! "Imposing a structure on the domain, a boolean algebra structure,
//! results in a formal definition of null values and incomplete
//! information." Every finite boolean algebra is isomorphic to the power
//! set of its atoms, so elements are represented as atom bitsets; the
//! laws then come for free and are re-verified by the test suite as
//! executable documentation.

use serde::{Deserialize, Serialize};
use toposem_topology::BitSet;

/// A finite boolean algebra presented by its atoms (named for
/// diagnostics). Elements are atom subsets.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BooleanAlgebra {
    atom_names: Vec<String>,
}

/// An element of a [`BooleanAlgebra`]: a join of atoms.
pub type BaElement = BitSet;

impl BooleanAlgebra {
    /// An algebra over the given atom names.
    pub fn new(atom_names: Vec<String>) -> Self {
        BooleanAlgebra { atom_names }
    }

    /// An algebra with `n` anonymous atoms.
    pub fn with_atoms(n: usize) -> Self {
        BooleanAlgebra {
            atom_names: (0..n).map(|i| format!("atom{i}")).collect(),
        }
    }

    /// Number of atoms.
    pub fn atom_count(&self) -> usize {
        self.atom_names.len()
    }

    /// Number of elements, `2^atoms`.
    pub fn element_count(&self) -> usize {
        1usize << self.atom_names.len()
    }

    /// The name of atom `i`.
    pub fn atom_name(&self, i: usize) -> &str {
        &self.atom_names[i]
    }

    /// The atom element `{i}`.
    pub fn atom(&self, i: usize) -> BaElement {
        BitSet::singleton(self.atom_count(), i)
    }

    /// Bottom `0` (the empty join).
    pub fn bottom(&self) -> BaElement {
        BitSet::empty(self.atom_count())
    }

    /// Top `1` (the join of all atoms).
    pub fn top(&self) -> BaElement {
        BitSet::full(self.atom_count())
    }

    /// Meet `x ∧ y`.
    pub fn meet(&self, x: &BaElement, y: &BaElement) -> BaElement {
        x.intersection(y)
    }

    /// Join `x ∨ y`.
    pub fn join(&self, x: &BaElement, y: &BaElement) -> BaElement {
        x.union(y)
    }

    /// Complement `¬x`.
    pub fn not(&self, x: &BaElement) -> BaElement {
        x.complement()
    }

    /// Relative pseudo-complement / implication `x → y = ¬x ∨ y`.
    pub fn implies(&self, x: &BaElement, y: &BaElement) -> BaElement {
        self.join(&self.not(x), y)
    }

    /// The order `x ≤ y ⇔ x ∧ y = x`.
    pub fn le(&self, x: &BaElement, y: &BaElement) -> bool {
        x.is_subset(y)
    }

    /// Is `x` an atom (minimal nonzero element)?
    pub fn is_atom(&self, x: &BaElement) -> bool {
        x.card() == 1
    }

    /// Enumerates every element (exponential; test-sized algebras only).
    pub fn elements(&self) -> Vec<BaElement> {
        let n = self.atom_count();
        assert!(n <= 20, "element enumeration is for small algebras");
        (0u64..(1 << n))
            .map(|mask| BitSet::from_indices(n, (0..n).filter(|&i| mask & (1 << i) != 0)))
            .collect()
    }

    /// Checks every boolean-algebra law on the materialised element set —
    /// executable documentation used by the test suite.
    pub fn verify_laws(&self) -> bool {
        let els = self.elements();
        let top = self.top();
        let bot = self.bottom();
        for x in &els {
            if self.join(x, &self.not(x)) != top || self.meet(x, &self.not(x)) != bot {
                return false;
            }
            for y in &els {
                // Commutativity and absorption.
                if self.meet(x, y) != self.meet(y, x) || self.join(x, y) != self.join(y, x) {
                    return false;
                }
                if self.join(x, &self.meet(x, y)) != *x || self.meet(x, &self.join(x, y)) != *x {
                    return false;
                }
                for z in &els {
                    // Distributivity both ways.
                    if self.meet(x, &self.join(y, z))
                        != self.join(&self.meet(x, y), &self.meet(x, z))
                    {
                        return false;
                    }
                    if self.join(x, &self.meet(y, z))
                        != self.meet(&self.join(x, y), &self.join(x, z))
                    {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laws_hold() {
        assert!(BooleanAlgebra::with_atoms(3).verify_laws());
        assert!(BooleanAlgebra::with_atoms(0).verify_laws());
        assert!(BooleanAlgebra::with_atoms(1).verify_laws());
    }

    #[test]
    fn structure() {
        let ba = BooleanAlgebra::new(vec!["red".into(), "green".into(), "blue".into()]);
        assert_eq!(ba.atom_count(), 3);
        assert_eq!(ba.element_count(), 8);
        assert_eq!(ba.atom_name(1), "green");
        assert!(ba.is_atom(&ba.atom(0)));
        assert!(!ba.is_atom(&ba.top()));
        assert!(!ba.is_atom(&ba.bottom()));
        assert!(ba.le(&ba.atom(0), &ba.top()));
        assert!(ba.le(&ba.bottom(), &ba.atom(2)));
    }

    #[test]
    fn implication_is_residuation() {
        // x ∧ y ≤ z  ⇔  x ≤ (y → z)
        let ba = BooleanAlgebra::with_atoms(3);
        for x in ba.elements() {
            for y in ba.elements() {
                for z in ba.elements() {
                    let lhs = ba.le(&ba.meet(&x, &y), &z);
                    let rhs = ba.le(&x, &ba.implies(&y, &z));
                    assert_eq!(lhs, rhs);
                }
            }
        }
    }

    #[test]
    fn de_morgan() {
        let ba = BooleanAlgebra::with_atoms(4);
        for x in ba.elements() {
            for y in ba.elements() {
                assert_eq!(ba.not(&ba.meet(&x, &y)), ba.join(&ba.not(&x), &ba.not(&y)));
                assert_eq!(ba.not(&ba.join(&x, &y)), ba.meet(&ba.not(&x), &ba.not(&y)));
            }
        }
    }
}
