//! Multi-valued dependencies as domain constraints (§6).
//!
//! "It can be shown that multi-valued dependencies are a special case of
//! domain constraints." The classical MVD `X →→ Y` in a relation over
//! `X ∪ Y ∪ Z` says that within every `X`-group the `Y` and `Z` parts
//! vary independently — i.e. each group is a *product* `Y-part × Z-part`.
//! Requiring every group to have product shape is a constraint on the
//! allowable sub-domains of the group, which is exactly a domain
//! constraint; [`mvd_holds_pairwise`] and [`mvd_holds_as_product`] give
//! both formulations and the test suite proves them equivalent on data.

use toposem_core::TypeId;
use toposem_extension::{Database, Instance};

/// An entity-type MVD `mvd(lhs, rhs, context)`: within the context's
/// relation, `A_lhs →→ A_rhs`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mvd {
    /// The group-by side `X` (an entity type).
    pub lhs: TypeId,
    /// The multivalued side `Y` (an entity type).
    pub rhs: TypeId,
    /// The context entity type whose relation is constrained.
    pub context: TypeId,
}

/// Classical pairwise formulation: for every `t1, t2` agreeing on `X`
/// there is `t3` with `t3[XY] = t1[XY]` and `t3[Z] = t2[Z]`.
pub fn mvd_holds_pairwise(db: &Database, mvd: &Mvd) -> bool {
    let schema = db.schema();
    let universe = schema.attr_count();
    let x = schema.attrs_of(mvd.lhs).clone();
    let y = schema.attrs_of(mvd.rhs).difference(&x);
    let all = schema.attrs_of(mvd.context).clone();
    let z = all.difference(&x.union(&y));
    let rel = db.extension(mvd.context);
    let tuples: Vec<&Instance> = rel.iter().collect();
    let _ = universe;
    for t1 in &tuples {
        for t2 in &tuples {
            if t1.project(&x) != t2.project(&x) {
                continue;
            }
            // Need t3 = t1[X Y] ⊎ t2[Z].
            let want_xy = t1.project(&x.union(&y));
            let want_z = t2.project(&z);
            let found = tuples
                .iter()
                .any(|t3| t3.project(&x.union(&y)) == want_xy && t3.project(&z) == want_z);
            if !found {
                return false;
            }
        }
    }
    true
}

/// Domain-constraint formulation: every `X`-group of the context relation
/// equals the product of its `Y`-projection and its `Z`-projection.
pub fn mvd_holds_as_product(db: &Database, mvd: &Mvd) -> bool {
    let schema = db.schema();
    let x = schema.attrs_of(mvd.lhs).clone();
    let y = schema.attrs_of(mvd.rhs).difference(&x);
    let all = schema.attrs_of(mvd.context).clone();
    let z = all.difference(&x.union(&y));
    let rel = db.extension(mvd.context);
    // Group by X projection.
    let mut groups: std::collections::HashMap<Instance, Vec<&Instance>> =
        std::collections::HashMap::new();
    for t in rel.iter() {
        groups.entry(t.project(&x)).or_default().push(t);
    }
    for (key, members) in groups {
        let ys: std::collections::BTreeSet<Instance> =
            members.iter().map(|t| t.project(&y)).collect();
        let zs: std::collections::BTreeSet<Instance> =
            members.iter().map(|t| t.project(&z)).collect();
        // The group must be exactly {key} × ys × zs.
        if members.len() != ys.len() * zs.len() {
            return false;
        }
        let group: std::collections::BTreeSet<Instance> =
            members.iter().map(|t| (*t).clone()).collect();
        for yv in &ys {
            for zv in &zs {
                let rebuilt = key.merge(&yv.merge(zv));
                if !group.contains(&rebuilt) {
                    return false;
                }
            }
        }
    }
    true
}

/// Every FD is an MVD: convenience check used by tests and the MVD
/// inference examples.
pub fn fd_implies_mvd(db: &Database, lhs: TypeId, rhs: TypeId, context: TypeId) -> bool {
    let fd = toposem_fd::Fd::unchecked(lhs, rhs, context);
    if !toposem_fd::check_fd(db, &fd).holds() {
        return true; // vacuous: premise fails
    }
    mvd_holds_pairwise(db, &Mvd { lhs, rhs, context })
}

/// The complementation rule: `X →→ Y` iff `X →→ Z` where `Z` is the rest
/// of the context's attributes. Returns the complement MVD for checking.
pub fn complement_mvd(db: &Database, mvd: &Mvd) -> Option<Mvd> {
    let schema = db.schema();
    let x = schema.attrs_of(mvd.lhs);
    let y = schema.attrs_of(mvd.rhs).difference(x);
    let z = schema.attrs_of(mvd.context).difference(&x.union(&y));
    // The complement is expressible only when some entity type has
    // attribute set X ∪ Z (the Integrity Axiom: explicate it!).
    let want = x.union(&z);
    schema
        .type_ids()
        .find(|&t| schema.attrs_of(t) == &want)
        .map(|t| Mvd {
            lhs: mvd.lhs,
            rhs: t,
            context: mvd.context,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::{employee_schema, Intension};
    use toposem_extension::{ContainmentPolicy, DomainCatalog, Value};

    fn db_with_worksfor(rows: &[(&str, i64, &str, &str)]) -> Database {
        let mut d = Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        );
        let s = d.schema().clone();
        for (name, age, dep, loc) in rows {
            d.insert_fields(
                s.type_id("worksfor").unwrap(),
                &[
                    ("name", Value::str(name)),
                    ("age", Value::Int(*age)),
                    ("depname", Value::str(dep)),
                    ("location", Value::str(loc)),
                ],
            )
            .unwrap();
        }
        d
    }

    fn mvd_dep_person(d: &Database) -> Mvd {
        let s = d.schema();
        Mvd {
            lhs: s.type_id("department").unwrap(),
            rhs: s.type_id("person").unwrap(),
            context: s.type_id("worksfor").unwrap(),
        }
    }

    #[test]
    fn product_shaped_group_satisfies_mvd() {
        // Department determines its set of people independently of… there
        // is no Z left beyond X ∪ Y here: X = {depname, location},
        // Y = {name, age}, Z = ∅ — trivially product-shaped.
        let d = db_with_worksfor(&[
            ("ann", 40, "sales", "amsterdam"),
            ("bob", 30, "sales", "amsterdam"),
        ]);
        let m = mvd_dep_person(&d);
        assert!(mvd_holds_pairwise(&d, &m));
        assert!(mvd_holds_as_product(&d, &m));
    }

    #[test]
    fn genuine_mvd_with_nonempty_z() {
        // X = person {name, age}, Y = department-name part… use
        // lhs = person, rhs = department: X = {name,age},
        // Y = {depname, location}, Z = ∅ again. To get nonempty Z use
        // lhs = person, rhs = employee: Y = {depname}, Z = {location}.
        let s_rows: &[(&str, i64, &str, &str)] = &[
            // ann: departments {sales, research} × locations {amsterdam, utrecht}
            ("ann", 40, "sales", "amsterdam"),
            ("ann", 40, "sales", "utrecht"),
            ("ann", 40, "research", "amsterdam"),
            ("ann", 40, "research", "utrecht"),
        ];
        let d = db_with_worksfor(s_rows);
        let s = d.schema();
        let m = Mvd {
            lhs: s.type_id("person").unwrap(),
            rhs: s.type_id("employee").unwrap(),
            context: s.type_id("worksfor").unwrap(),
        };
        assert!(mvd_holds_pairwise(&d, &m));
        assert!(mvd_holds_as_product(&d, &m));
    }

    #[test]
    fn violated_mvd_detected_by_both_formulations() {
        // ann's (depname, location) pairs are NOT a product: sales only in
        // amsterdam, research only in utrecht.
        let d = db_with_worksfor(&[
            ("ann", 40, "sales", "amsterdam"),
            ("ann", 40, "research", "utrecht"),
        ]);
        let s = d.schema();
        let m = Mvd {
            lhs: s.type_id("person").unwrap(),
            rhs: s.type_id("employee").unwrap(),
            context: s.type_id("worksfor").unwrap(),
        };
        assert!(!mvd_holds_pairwise(&d, &m));
        assert!(!mvd_holds_as_product(&d, &m));
    }

    #[test]
    fn formulations_agree_on_random_like_data() {
        for rows in [
            vec![("ann", 40, "sales", "amsterdam")],
            vec![
                ("ann", 40, "sales", "amsterdam"),
                ("ann", 40, "sales", "utrecht"),
                ("bob", 30, "research", "utrecht"),
            ],
            vec![
                ("ann", 40, "sales", "amsterdam"),
                ("ann", 40, "research", "amsterdam"),
                ("ann", 40, "sales", "utrecht"),
            ],
        ] {
            let d = db_with_worksfor(&rows);
            let s = d.schema();
            let m = Mvd {
                lhs: s.type_id("person").unwrap(),
                rhs: s.type_id("employee").unwrap(),
                context: s.type_id("worksfor").unwrap(),
            };
            assert_eq!(
                mvd_holds_pairwise(&d, &m),
                mvd_holds_as_product(&d, &m),
                "formulations diverged on {rows:?}"
            );
        }
    }

    #[test]
    fn fd_is_a_special_mvd() {
        let d = db_with_worksfor(&[
            ("ann", 40, "sales", "amsterdam"),
            ("bob", 30, "research", "utrecht"),
        ]);
        let s = d.schema();
        assert!(fd_implies_mvd(
            &d,
            s.type_id("employee").unwrap(),
            s.type_id("department").unwrap(),
            s.type_id("worksfor").unwrap(),
        ));
    }

    #[test]
    fn complement_requires_explicated_type() {
        let d = db_with_worksfor(&[]);
        let s = d.schema();
        // X = employee {name,age,depname}, Y = department ⇒ Y\X = {location},
        // Z = ∅ ⇒ complement needs a type over X ∪ ∅ = employee itself.
        let m = Mvd {
            lhs: s.type_id("employee").unwrap(),
            rhs: s.type_id("department").unwrap(),
            context: s.type_id("worksfor").unwrap(),
        };
        let c = complement_mvd(&d, &m).expect("employee explicates X ∪ Z");
        assert_eq!(c.rhs, s.type_id("employee").unwrap());
        // X = person, Y = employee ⇒ Z = {location}; X ∪ Z = {name, age,
        // location} is NOT an entity type: complement inexpressible.
        let m2 = Mvd {
            lhs: s.type_id("person").unwrap(),
            rhs: s.type_id("employee").unwrap(),
            context: s.type_id("worksfor").unwrap(),
        };
        assert!(complement_mvd(&d, &m2).is_none());
    }
}
