//! Null values and incomplete information via boolean-algebra domains
//! (§6).
//!
//! "In our approach, the null interpretation can be defined independent of
//! the entity type structure and its semantics carry over to functional
//! dependencies." A *partial value* over a finite atomic value set is an
//! element of the boolean algebra over that set: the set of values the
//! attribute might have.
//!
//! - a **known** value is an atom;
//! - the **unknown** null is the top (any value possible);
//! - **partial knowledge** is any other nonempty element;
//! - the **inconsistent** state is the bottom.
//!
//! Information states are compared by the *information order*: `x` is at
//! least as informative as `y` when `x ≤ y` in the algebra (fewer
//! possibilities = more information). FD semantics then comes in two
//! context-independent flavours — certain (holds in every completion) and
//! possible (holds in some completion) — both defined purely on the
//! algebra, never on the entity-type structure, which is the paper's
//! advertised contrast with Reiter's context-dependent nulls.

use serde::{Deserialize, Serialize};
use toposem_topology::BitSet;

use crate::boolean_algebra::{BaElement, BooleanAlgebra};

/// A tuple of partial values over a fixed list of attribute algebras.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PartialTuple {
    values: Vec<BaElement>,
}

impl PartialTuple {
    /// Builds a partial tuple; one element per attribute.
    pub fn new(values: Vec<BaElement>) -> Self {
        PartialTuple { values }
    }

    /// The partial value of attribute `i`.
    pub fn value(&self, i: usize) -> &BaElement {
        &self.values[i]
    }

    /// Width (number of attributes).
    pub fn width(&self) -> usize {
        self.values.len()
    }

    /// Is any attribute in the inconsistent (bottom) state?
    pub fn is_inconsistent(&self) -> bool {
        self.values.iter().any(|v| v.is_empty())
    }

    /// Is every attribute fully known (an atom)?
    pub fn is_total(&self) -> bool {
        self.values.iter().all(|v| v.card() == 1)
    }

    /// Information order: `self` refines `other` when every attribute
    /// state of `self` is at least as informative.
    pub fn refines(&self, other: &PartialTuple) -> bool {
        self.values.len() == other.values.len()
            && self
                .values
                .iter()
                .zip(&other.values)
                .all(|(a, b)| a.is_subset(b))
    }

    /// The meet of two information states: combine knowledge
    /// attribute-wise (may become inconsistent).
    pub fn combine(&self, other: &PartialTuple) -> PartialTuple {
        assert_eq!(self.values.len(), other.values.len());
        PartialTuple {
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| a.intersection(b))
                .collect(),
        }
    }

    /// All total completions of this tuple (cartesian product of the
    /// possibilities; exponential, test-sized data only).
    pub fn completions(&self) -> Vec<PartialTuple> {
        let mut out = vec![Vec::new()];
        for v in &self.values {
            let mut next = Vec::new();
            for prefix in &out {
                for atom in v.iter() {
                    let mut p = prefix.clone();
                    p.push(BitSet::singleton(v.universe_len(), atom));
                    next.push(p);
                }
            }
            out = next;
        }
        out.into_iter().map(PartialTuple::new).collect()
    }

    /// Projects onto the attribute positions in `keep`.
    pub fn project(&self, keep: &[usize]) -> PartialTuple {
        PartialTuple {
            values: keep.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }
}

/// A relation of partial tuples over a shared list of attribute algebras.
#[derive(Clone, Debug, Default)]
pub struct IncompleteRelation {
    algebras: Vec<BooleanAlgebra>,
    tuples: Vec<PartialTuple>,
}

impl IncompleteRelation {
    /// An empty incomplete relation over the given attribute algebras.
    pub fn new(algebras: Vec<BooleanAlgebra>) -> Self {
        IncompleteRelation {
            algebras,
            tuples: Vec::new(),
        }
    }

    /// The attribute algebras.
    pub fn algebras(&self) -> &[BooleanAlgebra] {
        &self.algebras
    }

    /// Adds a tuple (must match width and atom counts).
    pub fn insert(&mut self, t: PartialTuple) {
        assert_eq!(t.width(), self.algebras.len(), "tuple width mismatch");
        for (i, v) in (0..t.width()).map(|i| (i, t.value(i))) {
            assert_eq!(
                v.universe_len(),
                self.algebras[i].atom_count(),
                "attribute {i} algebra mismatch"
            );
        }
        self.tuples.push(t);
    }

    /// The stored tuples.
    pub fn tuples(&self) -> &[PartialTuple] {
        &self.tuples
    }

    /// FD `lhs → rhs` under **state semantics**: information states are
    /// compared as values (null = null); the check is the classical one
    /// over states. Context-independent by construction.
    pub fn fd_holds_state(&self, lhs: &[usize], rhs: &[usize]) -> bool {
        let mut seen: std::collections::HashMap<PartialTuple, PartialTuple> =
            std::collections::HashMap::new();
        for t in &self.tuples {
            let k = t.project(lhs);
            let v = t.project(rhs);
            match seen.get(&k) {
                None => {
                    seen.insert(k, v);
                }
                Some(prev) if *prev == v => {}
                Some(_) => return false,
            }
        }
        true
    }

    /// FD `lhs → rhs` under **certain semantics**: the FD holds in *every*
    /// total completion of the relation. Exponential in the amount of
    /// incompleteness; intended for small test relations.
    pub fn fd_holds_certain(&self, lhs: &[usize], rhs: &[usize]) -> bool {
        self.all_completions()
            .iter()
            .all(|rel| Self::total_fd_holds(rel, lhs, rhs))
    }

    /// FD `lhs → rhs` under **possible semantics**: some completion
    /// satisfies it.
    pub fn fd_holds_possible(&self, lhs: &[usize], rhs: &[usize]) -> bool {
        self.all_completions()
            .iter()
            .any(|rel| Self::total_fd_holds(rel, lhs, rhs))
    }

    fn all_completions(&self) -> Vec<Vec<PartialTuple>> {
        let mut rels: Vec<Vec<PartialTuple>> = vec![Vec::new()];
        for t in &self.tuples {
            let comps = t.completions();
            let mut next = Vec::new();
            for rel in &rels {
                for c in &comps {
                    let mut r = rel.clone();
                    r.push(c.clone());
                    next.push(r);
                }
            }
            rels = next;
        }
        rels
    }

    fn total_fd_holds(rel: &[PartialTuple], lhs: &[usize], rhs: &[usize]) -> bool {
        let mut seen: std::collections::HashMap<PartialTuple, PartialTuple> =
            std::collections::HashMap::new();
        for t in rel {
            let k = t.project(lhs);
            let v = t.project(rhs);
            match seen.get(&k) {
                None => {
                    seen.insert(k, v);
                }
                Some(prev) if *prev == v => {}
                Some(_) => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_attr_relation() -> IncompleteRelation {
        IncompleteRelation::new(vec![
            BooleanAlgebra::with_atoms(2),
            BooleanAlgebra::with_atoms(2),
        ])
    }

    fn known(rel: &IncompleteRelation, i: usize, atom: usize) -> BaElement {
        rel.algebras()[i].atom(atom)
    }

    fn unknown(rel: &IncompleteRelation, i: usize) -> BaElement {
        rel.algebras()[i].top()
    }

    #[test]
    fn information_order() {
        let rel = two_attr_relation();
        let total = PartialTuple::new(vec![known(&rel, 0, 0), known(&rel, 1, 1)]);
        let nully = PartialTuple::new(vec![known(&rel, 0, 0), unknown(&rel, 1)]);
        assert!(total.is_total());
        assert!(!nully.is_total());
        assert!(total.refines(&nully));
        assert!(!nully.refines(&total));
        assert!(!total.is_inconsistent());
        let combined = total.combine(&nully);
        assert_eq!(combined, total);
        // Conflicting knowledge is inconsistent.
        let other = PartialTuple::new(vec![known(&rel, 0, 1), known(&rel, 1, 1)]);
        assert!(total.combine(&other).is_inconsistent());
    }

    #[test]
    fn completions_enumerate_possibilities() {
        let rel = two_attr_relation();
        let nully = PartialTuple::new(vec![known(&rel, 0, 0), unknown(&rel, 1)]);
        let comps = nully.completions();
        assert_eq!(comps.len(), 2);
        assert!(comps.iter().all(|c| c.is_total()));
        let total = PartialTuple::new(vec![known(&rel, 0, 0), known(&rel, 1, 1)]);
        assert_eq!(total.completions(), vec![total.clone()]);
    }

    #[test]
    fn state_fd_treats_nulls_as_values() {
        let mut rel = two_attr_relation();
        // Two tuples with the same known lhs and the same *unknown* rhs
        // state: under state semantics the FD holds (null = null).
        let a = PartialTuple::new(vec![known(&rel, 0, 0), unknown(&rel, 1)]);
        rel.insert(a.clone());
        rel.insert(a);
        assert!(rel.fd_holds_state(&[0], &[1]));
        // Under certain semantics it fails: completions can diverge.
        assert!(!rel.fd_holds_certain(&[0], &[1]));
        // But it possibly holds.
        assert!(rel.fd_holds_possible(&[0], &[1]));
    }

    #[test]
    fn certain_fd_on_total_data_is_classical() {
        let mut rel = two_attr_relation();
        rel.insert(PartialTuple::new(vec![
            known(&rel, 0, 0),
            known(&rel, 1, 0),
        ]));
        rel.insert(PartialTuple::new(vec![
            known(&rel, 0, 1),
            known(&rel, 1, 1),
        ]));
        assert!(rel.fd_holds_state(&[0], &[1]));
        assert!(rel.fd_holds_certain(&[0], &[1]));
        // Introduce a genuine violation.
        rel.insert(PartialTuple::new(vec![
            known(&rel, 0, 0),
            known(&rel, 1, 1),
        ]));
        assert!(!rel.fd_holds_state(&[0], &[1]));
        assert!(!rel.fd_holds_certain(&[0], &[1]));
        assert!(!rel.fd_holds_possible(&[0], &[1]));
    }

    #[test]
    fn certain_implies_possible() {
        let mut rel = two_attr_relation();
        rel.insert(PartialTuple::new(vec![unknown(&rel, 0), known(&rel, 1, 0)]));
        rel.insert(PartialTuple::new(vec![known(&rel, 0, 1), unknown(&rel, 1)]));
        for lhs in [[0], [1]] {
            for rhs in [[0], [1]] {
                if rel.fd_holds_certain(&lhs, &rhs) {
                    assert!(rel.fd_holds_possible(&lhs, &rhs));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut rel = two_attr_relation();
        rel.insert(PartialTuple::new(vec![BitSet::singleton(2, 0)]));
    }
}
