//! Physical plans: operator selection and the vectorised executor.
//!
//! Planning walks the rewritten [`Logical`] tree bottom-up, choosing access
//! paths (index seek vs. sequential scan) and hash-join / intersection
//! build sides by cost. Execution is a push-based batch pipeline: scans
//! emit [`BATCH_SIZE`]-tuple batches into operator sinks, so selections and
//! projections are applied a batch at a time without materialising
//! intermediate relations (hash joins materialise their build side only).
//! With the `parallel` feature, qualifying sequential scans fan out across
//! threads.

use toposem_core::{AttrId, TypeId};
use toposem_extension::{Database, Value};
use toposem_storage::{HashIndex, Statistics};

use crate::cost::{estimate, Estimate};
use crate::logical::Logical;

/// Tuples per executor batch.
pub const BATCH_SIZE: usize = 1024;

/// A physical operator tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Physical {
    /// Produces nothing.
    Empty {
        /// Result type.
        ty: TypeId,
    },
    /// Full scan of an extension with a fused conjunctive filter.
    SeqScan {
        /// Scanned type.
        ty: TypeId,
        /// Fused equality predicates (may be empty).
        preds: Vec<(AttrId, Value)>,
    },
    /// Hash-index point lookup with a residual filter.
    IndexSeek {
        /// Scanned type.
        ty: TypeId,
        /// Indexed attribute.
        attr: AttrId,
        /// Sought value.
        value: Value,
        /// Predicates not covered by the index.
        residual: Vec<(AttrId, Value)>,
    },
    /// Batch-wise conjunctive filter over a composite input (filters over
    /// plain scans are fused into the scan instead).
    Filter {
        /// Input operator.
        input: Box<Physical>,
        /// Conjunction of equality predicates.
        preds: Vec<(AttrId, Value)>,
    },
    /// Projection onto a generalisation.
    Project {
        /// Input operator.
        input: Box<Physical>,
        /// Target type.
        to: TypeId,
    },
    /// Hash join; `build` is materialised into a hash table keyed on the
    /// shared attributes, `probe` streams.
    HashJoin {
        /// Materialised side (chosen smaller by cost).
        build: Box<Physical>,
        /// Streaming side.
        probe: Box<Physical>,
        /// Declared output type.
        ty: TypeId,
    },
    /// Bag concatenation; the final set collection deduplicates.
    Union {
        /// Left input.
        left: Box<Physical>,
        /// Right input.
        right: Box<Physical>,
        /// Result type.
        ty: TypeId,
    },
    /// Set intersection; `build` is materialised into a membership set.
    Intersect {
        /// Materialised side (chosen smaller by cost).
        build: Box<Physical>,
        /// Streaming side.
        probe: Box<Physical>,
        /// Result type.
        ty: TypeId,
    },
}

impl Physical {
    /// The entity type of this operator's output.
    pub fn ty(&self) -> TypeId {
        match self {
            Physical::Empty { ty }
            | Physical::SeqScan { ty, .. }
            | Physical::IndexSeek { ty, .. }
            | Physical::HashJoin { ty, .. }
            | Physical::Union { ty, .. }
            | Physical::Intersect { ty, .. } => *ty,
            Physical::Filter { input, .. } => input.ty(),
            Physical::Project { to, .. } => *to,
        }
    }

    /// Renders the plan as an indented EXPLAIN tree with estimates.
    pub fn explain(&self, db: &Database, stats: &Statistics) -> String {
        let mut out = String::new();
        self.explain_into(db, stats, 0, &mut out);
        out
    }

    fn explain_into(&self, db: &Database, stats: &Statistics, depth: usize, out: &mut String) {
        let schema = db.schema();
        let Estimate { rows, cost } = estimate(self, stats);
        let pad = "  ".repeat(depth);
        let render_preds = |preds: &[(AttrId, Value)]| {
            preds
                .iter()
                .map(|(a, v)| format!("{}={}", schema.attr_name(*a), v))
                .collect::<Vec<_>>()
                .join(" ∧ ")
        };
        let line = match self {
            Physical::Empty { ty } => format!("Empty [{}]", schema.type_name(*ty)),
            Physical::SeqScan { ty, preds } if preds.is_empty() => {
                format!("SeqScan {}", schema.type_name(*ty))
            }
            Physical::SeqScan { ty, preds } => {
                format!(
                    "SeqScan {} filter {}",
                    schema.type_name(*ty),
                    render_preds(preds)
                )
            }
            Physical::IndexSeek {
                ty,
                attr,
                value,
                residual,
            } => {
                let mut s = format!(
                    "IndexSeek {}.{} = {}",
                    schema.type_name(*ty),
                    schema.attr_name(*attr),
                    value
                );
                if !residual.is_empty() {
                    s.push_str(&format!(" residual {}", render_preds(residual)));
                }
                s
            }
            Physical::Filter { preds, .. } => format!("Filter {}", render_preds(preds)),
            Physical::Project { to, .. } => format!("Project → {}", schema.type_name(*to)),
            Physical::HashJoin { ty, .. } => format!("HashJoin [{}]", schema.type_name(*ty)),
            Physical::Union { ty, .. } => format!("Union [{}]", schema.type_name(*ty)),
            Physical::Intersect { ty, .. } => {
                format!("Intersect [{}]", schema.type_name(*ty))
            }
        };
        out.push_str(&format!("{pad}{line}  (rows≈{rows:.1}, cost≈{cost:.1})\n"));
        match self {
            Physical::Filter { input, .. } | Physical::Project { input, .. } => {
                input.explain_into(db, stats, depth + 1, out)
            }
            Physical::HashJoin { build, probe, .. } | Physical::Intersect { build, probe, .. } => {
                build.explain_into(db, stats, depth + 1, out);
                probe.explain_into(db, stats, depth + 1, out);
            }
            Physical::Union { left, right, .. } => {
                left.explain_into(db, stats, depth + 1, out);
                right.explain_into(db, stats, depth + 1, out);
            }
            _ => {}
        }
    }
}

/// Compiles a rewritten logical plan into a physical plan, choosing access
/// paths and build sides by cost.
pub fn plan(
    logical: &Logical,
    db: &Database,
    indexes: &[Option<HashIndex>],
    stats: &Statistics,
) -> Physical {
    match logical {
        Logical::Empty { ty } => Physical::Empty { ty: *ty },
        Logical::Scan { ty } => Physical::SeqScan {
            ty: *ty,
            preds: Vec::new(),
        },
        Logical::Select { input, preds } => match input.as_ref() {
            // Access-path selection happens where a filter meets a scan.
            Logical::Scan { ty } => {
                let seq = Physical::SeqScan {
                    ty: *ty,
                    preds: preds.clone(),
                };
                match index_path(*ty, preds, db, indexes) {
                    Some(seek) if estimate(&seek, stats).cost < estimate(&seq, stats).cost => seek,
                    _ => seq,
                }
            }
            // The rewrite pass pushes selections to the leaves, so a
            // residual filter over a composite input is rare (e.g. a
            // selection the pushdown could not fully sink); it gets a
            // batch-wise Filter operator.
            _ => Physical::Filter {
                input: Box::new(plan(input, db, indexes, stats)),
                preds: preds.clone(),
            },
        },
        Logical::Project { input, to } => Physical::Project {
            input: Box::new(plan(input, db, indexes, stats)),
            to: *to,
        },
        Logical::Join { left, right, ty } => {
            let l = plan(left, db, indexes, stats);
            let r = plan(right, db, indexes, stats);
            let (build, probe) = if estimate(&l, stats).rows <= estimate(&r, stats).rows {
                (l, r)
            } else {
                (r, l)
            };
            Physical::HashJoin {
                build: Box::new(build),
                probe: Box::new(probe),
                ty: *ty,
            }
        }
        Logical::Union { left, right } => {
            let ty = left.ty();
            Physical::Union {
                left: Box::new(plan(left, db, indexes, stats)),
                right: Box::new(plan(right, db, indexes, stats)),
                ty,
            }
        }
        Logical::Intersect { left, right } => {
            let ty = left.ty();
            let l = plan(left, db, indexes, stats);
            let r = plan(right, db, indexes, stats);
            let (build, probe) = if estimate(&l, stats).rows <= estimate(&r, stats).rows {
                (l, r)
            } else {
                (r, l)
            };
            Physical::Intersect {
                build: Box::new(build),
                probe: Box::new(probe),
                ty,
            }
        }
    }
}

/// An index-seek plan for `preds` over `ty`, when the engine holds a
/// usable index. Indexes mirror *stored* relations, which equal semantic
/// extensions only under eager containment — the planner refuses the index
/// path otherwise.
fn index_path(
    ty: TypeId,
    preds: &[(AttrId, Value)],
    db: &Database,
    indexes: &[Option<HashIndex>],
) -> Option<Physical> {
    if db.policy() != toposem_extension::ContainmentPolicy::Eager {
        return None;
    }
    let idx = indexes.get(ty.index())?.as_ref()?;
    let (i, (attr, value)) = preds
        .iter()
        .enumerate()
        .find(|(_, (a, _))| *a == idx.attr())?;
    let mut residual = preds.to_vec();
    residual.remove(i);
    Some(Physical::IndexSeek {
        ty,
        attr: *attr,
        value: value.clone(),
        residual,
    })
}
