//! Physical plans: operator selection and the vectorised executor.
//!
//! Planning walks the rewritten [`Logical`] tree bottom-up, choosing access
//! paths (hash/ordered index seeks, ordered range seeks, composite prefix
//! seeks, index-only scans, or sequential scans) and hash-join /
//! intersection build sides by cost. Execution is a push-based batch
//! pipeline: scans emit [`BATCH_SIZE`]-tuple batches into operator sinks,
//! so selections and projections are applied a batch at a time without
//! materialising intermediate relations (hash joins materialise their
//! build side only). With the `parallel` feature, qualifying sequential
//! scans fan out across threads.

use toposem_core::{AttrId, TypeId};
use toposem_extension::{Database, Value};
use toposem_storage::{Index, Predicate, Statistics};

use crate::cost::{estimate, Estimate};
use crate::logical::Logical;

/// Tuples per executor batch.
pub const BATCH_SIZE: usize = 1024;

/// A physical operator tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Physical {
    /// Produces nothing.
    Empty {
        /// Result type.
        ty: TypeId,
    },
    /// Full scan of an extension with a fused conjunctive filter.
    SeqScan {
        /// Scanned type.
        ty: TypeId,
        /// Fused predicates (may be empty).
        preds: Vec<(AttrId, Predicate)>,
    },
    /// Single-attribute index point lookup (hash or ordered index) with a
    /// residual filter.
    IndexSeek {
        /// Scanned type.
        ty: TypeId,
        /// Indexed attribute.
        attr: AttrId,
        /// Sought value.
        value: Value,
        /// Predicates not covered by the index.
        residual: Vec<(AttrId, Predicate)>,
    },
    /// Ordered-index range seek: walks only the BTree range between the
    /// bounds (`(value, inclusive)`; `None` = unbounded).
    IndexRangeSeek {
        /// Scanned type.
        ty: TypeId,
        /// Indexed attribute.
        attr: AttrId,
        /// Lower bound.
        lo: Option<(Value, bool)>,
        /// Upper bound.
        hi: Option<(Value, bool)>,
        /// Predicates not covered by the range.
        residual: Vec<(AttrId, Predicate)>,
    },
    /// Composite-index prefix seek: equality constants for a prefix of
    /// the index's attribute list select a contiguous key range.
    CompositeSeek {
        /// Scanned type.
        ty: TypeId,
        /// The index's full attribute list (identifies the index).
        attrs: Vec<AttrId>,
        /// Equality constants for `attrs[..prefix.len()]`.
        prefix: Vec<Value>,
        /// Predicates not covered by the prefix.
        residual: Vec<(AttrId, Predicate)>,
    },
    /// Index-only (covering) scan: the projection target's attributes are
    /// all index key attributes, so results are built from index keys
    /// without touching base tuples.
    IndexOnlyScan {
        /// Scanned (base) type.
        ty: TypeId,
        /// Projection target (a generalisation of `ty`).
        to: TypeId,
        /// The covering index's attribute list (identifies the index).
        key_attrs: Vec<AttrId>,
        /// Predicates over key attributes, evaluated on the keys.
        preds: Vec<(AttrId, Predicate)>,
    },
    /// Batch-wise conjunctive filter over a composite input (filters over
    /// plain scans are fused into the scan instead).
    Filter {
        /// Input operator.
        input: Box<Physical>,
        /// Conjunction of predicates.
        preds: Vec<(AttrId, Predicate)>,
    },
    /// Projection onto a generalisation.
    Project {
        /// Input operator.
        input: Box<Physical>,
        /// Target type.
        to: TypeId,
    },
    /// Hash join; `build` is materialised into a hash table keyed on the
    /// shared attributes, `probe` streams.
    HashJoin {
        /// Materialised side (chosen smaller by cost).
        build: Box<Physical>,
        /// Streaming side.
        probe: Box<Physical>,
        /// Declared output type.
        ty: TypeId,
    },
    /// Bag concatenation; the final set collection deduplicates.
    Union {
        /// Left input.
        left: Box<Physical>,
        /// Right input.
        right: Box<Physical>,
        /// Result type.
        ty: TypeId,
    },
    /// Set intersection; `build` is materialised into a membership set.
    Intersect {
        /// Materialised side (chosen smaller by cost).
        build: Box<Physical>,
        /// Streaming side.
        probe: Box<Physical>,
        /// Result type.
        ty: TypeId,
    },
}

impl Physical {
    /// The entity type of this operator's output.
    pub fn ty(&self) -> TypeId {
        match self {
            Physical::Empty { ty }
            | Physical::SeqScan { ty, .. }
            | Physical::IndexSeek { ty, .. }
            | Physical::IndexRangeSeek { ty, .. }
            | Physical::CompositeSeek { ty, .. }
            | Physical::HashJoin { ty, .. }
            | Physical::Union { ty, .. }
            | Physical::Intersect { ty, .. } => *ty,
            Physical::Filter { input, .. } => input.ty(),
            Physical::IndexOnlyScan { to, .. } | Physical::Project { to, .. } => *to,
        }
    }

    /// Renders the plan as an indented EXPLAIN tree with estimates.
    pub fn explain(&self, db: &Database, stats: &Statistics) -> String {
        let mut out = String::new();
        self.explain_into(db, stats, 0, &mut out);
        out
    }

    fn explain_into(&self, db: &Database, stats: &Statistics, depth: usize, out: &mut String) {
        let schema = db.schema();
        let Estimate { rows, cost } = estimate(self, stats);
        let pad = "  ".repeat(depth);
        let render_preds = |preds: &[(AttrId, Predicate)]| {
            preds
                .iter()
                .map(|(a, p)| format!("{} {}", schema.attr_name(*a), p))
                .collect::<Vec<_>>()
                .join(" ∧ ")
        };
        let render_range = |lo: &Option<(Value, bool)>, hi: &Option<(Value, bool)>| {
            let lo_s = match lo {
                Some((v, true)) => format!("[{v}"),
                Some((v, false)) => format!("({v}"),
                None => "(-∞".to_owned(),
            };
            let hi_s = match hi {
                Some((v, true)) => format!("{v}]"),
                Some((v, false)) => format!("{v})"),
                None => "+∞)".to_owned(),
            };
            format!("{lo_s}, {hi_s}")
        };
        let line = match self {
            Physical::Empty { ty } => format!("Empty [{}]", schema.type_name(*ty)),
            Physical::SeqScan { ty, preds } if preds.is_empty() => {
                format!("SeqScan {}", schema.type_name(*ty))
            }
            Physical::SeqScan { ty, preds } => {
                format!(
                    "SeqScan {} filter {}",
                    schema.type_name(*ty),
                    render_preds(preds)
                )
            }
            Physical::IndexSeek {
                ty,
                attr,
                value,
                residual,
            } => {
                let mut s = format!(
                    "IndexSeek {}.{} = {}",
                    schema.type_name(*ty),
                    schema.attr_name(*attr),
                    value
                );
                if !residual.is_empty() {
                    s.push_str(&format!(" residual {}", render_preds(residual)));
                }
                s
            }
            Physical::IndexRangeSeek {
                ty,
                attr,
                lo,
                hi,
                residual,
            } => {
                let mut s = format!(
                    "IndexRangeSeek {}.{} ∈ {}",
                    schema.type_name(*ty),
                    schema.attr_name(*attr),
                    render_range(lo, hi)
                );
                if !residual.is_empty() {
                    s.push_str(&format!(" residual {}", render_preds(residual)));
                }
                s
            }
            Physical::CompositeSeek {
                ty,
                attrs,
                prefix,
                residual,
            } => {
                let cols = attrs
                    .iter()
                    .map(|a| schema.attr_name(*a))
                    .collect::<Vec<_>>()
                    .join(",");
                let vals = prefix
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                let mut s = format!(
                    "CompositeSeek {}({cols}) prefix = ({vals})",
                    schema.type_name(*ty)
                );
                if !residual.is_empty() {
                    s.push_str(&format!(" residual {}", render_preds(residual)));
                }
                s
            }
            Physical::IndexOnlyScan {
                ty,
                to,
                key_attrs,
                preds,
            } => {
                let cols = key_attrs
                    .iter()
                    .map(|a| schema.attr_name(*a))
                    .collect::<Vec<_>>()
                    .join(",");
                let mut s = format!(
                    "IndexOnlyScan {}({cols}) → {}",
                    schema.type_name(*ty),
                    schema.type_name(*to)
                );
                if !preds.is_empty() {
                    s.push_str(&format!(" filter {}", render_preds(preds)));
                }
                s
            }
            Physical::Filter { preds, .. } => format!("Filter {}", render_preds(preds)),
            Physical::Project { to, .. } => format!("Project → {}", schema.type_name(*to)),
            Physical::HashJoin { ty, .. } => format!("HashJoin [{}]", schema.type_name(*ty)),
            Physical::Union { ty, .. } => format!("Union [{}]", schema.type_name(*ty)),
            Physical::Intersect { ty, .. } => {
                format!("Intersect [{}]", schema.type_name(*ty))
            }
        };
        out.push_str(&format!("{pad}{line}  (rows≈{rows:.1}, cost≈{cost:.1})\n"));
        match self {
            Physical::Filter { input, .. } | Physical::Project { input, .. } => {
                input.explain_into(db, stats, depth + 1, out)
            }
            Physical::HashJoin { build, probe, .. } | Physical::Intersect { build, probe, .. } => {
                build.explain_into(db, stats, depth + 1, out);
                probe.explain_into(db, stats, depth + 1, out);
            }
            Physical::Union { left, right, .. } => {
                left.explain_into(db, stats, depth + 1, out);
                right.explain_into(db, stats, depth + 1, out);
            }
            _ => {}
        }
    }
}

/// Compiles a rewritten logical plan into a physical plan, choosing access
/// paths and build sides by cost.
pub fn plan(
    logical: &Logical,
    db: &Database,
    indexes: &[Vec<Index>],
    stats: &Statistics,
) -> Physical {
    match logical {
        Logical::Empty { ty } => Physical::Empty { ty: *ty },
        Logical::Scan { ty } => Physical::SeqScan {
            ty: *ty,
            preds: Vec::new(),
        },
        Logical::Select { input, preds } => match input.as_ref() {
            // Access-path selection happens where a filter meets a scan.
            Logical::Scan { ty } => cheapest_scan(*ty, preds, db, indexes, stats),
            // The rewrite pass pushes selections to the leaves, so a
            // residual filter over a composite input is rare (e.g. a
            // selection the pushdown could not fully sink); it gets a
            // batch-wise Filter operator.
            _ => Physical::Filter {
                input: Box::new(plan(input, db, indexes, stats)),
                preds: preds.clone(),
            },
        },
        Logical::Project { input, to } => {
            // A covering index can answer the projection from its keys
            // alone when the target's attributes (and every predicate)
            // are key attributes: an index-only scan.
            let fallback = |input: &Logical| Physical::Project {
                input: Box::new(plan(input, db, indexes, stats)),
                to: *to,
            };
            let (ty, preds): (TypeId, &[(AttrId, Predicate)]) = match input.as_ref() {
                Logical::Scan { ty } => (*ty, &[]),
                Logical::Select {
                    input: sel_in,
                    preds,
                } => match sel_in.as_ref() {
                    Logical::Scan { ty } => (*ty, preds.as_slice()),
                    _ => return fallback(input),
                },
                _ => return fallback(input),
            };
            let fb = fallback(input);
            match index_only_path(ty, *to, preds, db, indexes) {
                Some(ios) if estimate(&ios, stats).cost < estimate(&fb, stats).cost => ios,
                _ => fb,
            }
        }
        Logical::Join { left, right, ty } => {
            let l = plan(left, db, indexes, stats);
            let r = plan(right, db, indexes, stats);
            let (build, probe) = if estimate(&l, stats).rows <= estimate(&r, stats).rows {
                (l, r)
            } else {
                (r, l)
            };
            Physical::HashJoin {
                build: Box::new(build),
                probe: Box::new(probe),
                ty: *ty,
            }
        }
        Logical::Union { left, right } => {
            let ty = left.ty();
            Physical::Union {
                left: Box::new(plan(left, db, indexes, stats)),
                right: Box::new(plan(right, db, indexes, stats)),
                ty,
            }
        }
        Logical::Intersect { left, right } => {
            let ty = left.ty();
            let l = plan(left, db, indexes, stats);
            let r = plan(right, db, indexes, stats);
            let (build, probe) = if estimate(&l, stats).rows <= estimate(&r, stats).rows {
                (l, r)
            } else {
                (r, l)
            };
            Physical::Intersect {
                build: Box::new(build),
                probe: Box::new(probe),
                ty,
            }
        }
    }
}

/// Indexes mirror *stored* relations, which equal semantic extensions
/// only under eager containment — every index path refuses otherwise.
fn indexes_usable<'a>(ty: TypeId, db: &Database, indexes: &'a [Vec<Index>]) -> Option<&'a [Index]> {
    if db.policy() != toposem_extension::ContainmentPolicy::Eager {
        return None;
    }
    indexes.get(ty.index()).map(Vec::as_slice)
}

/// The cheapest access path for a conjunctive selection over a scan:
/// every usable index path is generated and costed against the fused
/// sequential scan.
fn cheapest_scan(
    ty: TypeId,
    preds: &[(AttrId, Predicate)],
    db: &Database,
    indexes: &[Vec<Index>],
    stats: &Statistics,
) -> Physical {
    let mut best = Physical::SeqScan {
        ty,
        preds: preds.to_vec(),
    };
    let mut best_cost = estimate(&best, stats).cost;
    let Some(type_indexes) = indexes_usable(ty, db, indexes) else {
        return best;
    };
    for idx in type_indexes {
        let candidate = match idx {
            Index::Hash(h) => hash_path(ty, h.attr(), preds),
            Index::Ord(o) => ord_path(ty, o.attr(), preds),
            Index::Composite(c) => composite_path(ty, c.attrs(), preds),
        };
        if let Some(c) = candidate {
            let cost = estimate(&c, stats).cost;
            if cost < best_cost {
                best = c;
                best_cost = cost;
            }
        }
    }
    best
}

/// A hash point seek when some equality predicate targets the hash
/// index's attribute.
fn hash_path(ty: TypeId, attr: AttrId, preds: &[(AttrId, Predicate)]) -> Option<Physical> {
    let (i, value) = preds
        .iter()
        .enumerate()
        .find_map(|(i, (a, p))| (*a == attr).then(|| p.as_eq().map(|v| (i, v.clone())))?)?;
    let mut residual = preds.to_vec();
    residual.remove(i);
    Some(Physical::IndexSeek {
        ty,
        attr,
        value,
        residual,
    })
}

/// An ordered-index path: all predicates on the indexed attribute are
/// intersected into one [`toposem_storage::Interval`] (the same
/// bound-merge the rewriter's emptiness proof uses); a degenerate
/// `[v, v]` becomes a point seek, anything else a range seek. Remaining
/// predicates stay residual.
fn ord_path(ty: TypeId, attr: AttrId, preds: &[(AttrId, Predicate)]) -> Option<Physical> {
    let (on_attr, residual): (Vec<_>, Vec<_>) =
        preds.iter().cloned().partition(|(a, _)| *a == attr);
    if on_attr.is_empty() {
        return None;
    }
    let mut interval = toposem_storage::Interval::full();
    for (_, p) in &on_attr {
        interval.tighten(p);
    }
    if let (Some((l, true)), Some((h, true))) = (&interval.lo, &interval.hi) {
        if l == h {
            return Some(Physical::IndexSeek {
                ty,
                attr,
                value: l.clone(),
                residual,
            });
        }
    }
    Some(Physical::IndexRangeSeek {
        ty,
        attr,
        lo: interval.lo,
        hi: interval.hi,
        residual,
    })
}

/// A composite prefix seek: the longest prefix of the index's attribute
/// list whose every attribute carries an equality predicate. Predicates
/// consumed by the prefix are dropped; everything else stays residual.
fn composite_path(ty: TypeId, attrs: &[AttrId], preds: &[(AttrId, Predicate)]) -> Option<Physical> {
    let mut prefix = Vec::new();
    let mut consumed = vec![false; preds.len()];
    for key_attr in attrs {
        let hit = preds
            .iter()
            .enumerate()
            .find_map(|(i, (a, p))| (a == key_attr).then(|| p.as_eq().map(|v| (i, v.clone())))?);
        match hit {
            Some((i, v)) => {
                prefix.push(v);
                consumed[i] = true;
            }
            None => break,
        }
    }
    if prefix.is_empty() {
        return None;
    }
    let residual: Vec<_> = preds
        .iter()
        .enumerate()
        .filter(|(i, _)| !consumed[*i])
        .map(|(_, p)| p.clone())
        .collect();
    Some(Physical::CompositeSeek {
        ty,
        attrs: attrs.to_vec(),
        prefix,
        residual,
    })
}

/// An index-only scan for `π_to(σ_preds(ty))`, when some index's key
/// attributes cover both the projection target and every predicate.
fn index_only_path(
    ty: TypeId,
    to: TypeId,
    preds: &[(AttrId, Predicate)],
    db: &Database,
    indexes: &[Vec<Index>],
) -> Option<Physical> {
    let type_indexes = indexes_usable(ty, db, indexes)?;
    let schema = db.schema();
    let target = schema.attrs_of(to);
    type_indexes.iter().find_map(|idx| {
        let key_attrs = idx.attrs();
        let covers_target = target.iter().all(|a| key_attrs.contains(&AttrId(a as u32)));
        let covers_preds = preds.iter().all(|(a, _)| key_attrs.contains(a));
        (covers_target && covers_preds).then(|| Physical::IndexOnlyScan {
            ty,
            to,
            key_attrs,
            preds: preds.to_vec(),
        })
    })
}
