//! Physical plans: property-aware operator selection and join ordering.
//!
//! Planning walks the rewritten [`Logical`] tree bottom-up, but instead of
//! a single plan per node it derives a *candidate set*: alternative
//! physical plans annotated with their cost and their **output ordering**
//! ([`SortKeys`]), pruned to the non-dominated frontier (a candidate
//! survives when no cheaper candidate provides at least its order). Orders
//! originate at access paths — `IndexRangeSeek` and `CompositeSeek` walk
//! BTrees in key order, and a `SeqScan` streams the canonical
//! `BTreeSet`-backed relation in attribute-id-lexicographic order — and
//! are propagated through order-preserving operators (`Filter`, `Project`
//! prefixes, hash-join probe sides). A **`MergeJoin`** consumes matching
//! orders from both inputs; a **`Sort`** enforcer (n·log n) establishes an
//! order only when no candidate carries one cheaply enough. Order
//! matching is *equality-aware*: an attribute pinned by an equality
//! predicate is constant across the input, so it is skipped in both the
//! available and the required key sequence before the prefix check
//! ([`order_satisfies_with_bound`]).
//!
//! Multi-way joins are reordered by a **DPsize** dynamic program over the
//! *sanctioned* join lattice: a subset of relations is combinable only
//! when its attribute union is itself a declared entity type (the
//! Relationship Axiom survives into physical planning). Each DP entry
//! keeps its non-dominated (cost, order) frontier, so a merge-join
//!-friendly order can win the final plan even when locally more
//! expensive. Above [`PlannerOptions::dp_max_leaves`] relations the
//! enumeration falls back to a greedy cheapest-pair heuristic.
//!
//! Execution is a push-based batch pipeline: scans emit
//! [`BATCH_SIZE`]-tuple batches into operator sinks; hash joins
//! materialise their build side, merge joins and sorts their inputs.
//! With the `parallel` feature, every pipeline runs morsel-parallel —
//! partitioned hash joins, parallel set operations, parallel sort runs,
//! and fused filter/project scans — on a scoped worker pool whose
//! outputs merge back in morsel order (see [`crate::exec`]), and the
//! cost model discounts partitionable operators by the degree the
//! dispatcher would use (`explain` renders it as `par≈N`).

use std::collections::BTreeSet;

use toposem_core::{AttrId, TypeId};
use toposem_extension::{Database, Value};
use toposem_storage::{Index, Interval, Predicate, SortDir, SortKeys, Statistics};

use crate::cost::{estimate, Estimate};
use crate::logical::Logical;

/// Tuples per executor batch.
pub const BATCH_SIZE: usize = 1024;

/// Hard ceiling on the DP enumeration width, whatever
/// [`PlannerOptions::dp_max_leaves`] asks for: the subset table holds
/// 2^n frontiers and the masks are `u32`, so wider joins must take the
/// greedy path instead of overflowing.
const DP_LEAF_HARD_CAP: usize = 16;

/// Planner knobs. The defaults enable everything; benchmarks and the
/// differential oracle switch individual features off to compare plans
/// (e.g. the left-deep hash-join baseline in `q3_join_order`).
#[derive(Clone, Copy, Debug)]
pub struct PlannerOptions {
    /// Reorder >2-way joins (DPsize up to `dp_max_leaves`, greedy above).
    pub reorder_joins: bool,
    /// Consider `MergeJoin` (with `Sort` enforcers when order is absent).
    pub merge_joins: bool,
    /// Largest relation count the DP enumerates exhaustively.
    pub dp_max_leaves: usize,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            reorder_joins: true,
            merge_joins: true,
            dp_max_leaves: 8,
        }
    }
}

/// A physical operator tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Physical {
    /// Produces nothing.
    Empty {
        /// Result type.
        ty: TypeId,
    },
    /// Full scan of an extension with a fused conjunctive filter. Emits
    /// the canonical relation order: tuples ascend lexicographically by
    /// attribute id, then value.
    SeqScan {
        /// Scanned type.
        ty: TypeId,
        /// Fused predicates (may be empty).
        preds: Vec<(AttrId, Predicate)>,
    },
    /// Single-attribute index point lookup (hash or ordered index) with a
    /// residual filter.
    IndexSeek {
        /// Scanned type.
        ty: TypeId,
        /// Indexed attribute.
        attr: AttrId,
        /// Sought value.
        value: Value,
        /// Predicates not covered by the index.
        residual: Vec<(AttrId, Predicate)>,
    },
    /// Ordered-index range seek: walks only the BTree range between the
    /// bounds (`(value, inclusive)`; `None` = unbounded). Unbounded on
    /// both sides it is the *ordered full scan* — chosen when the order
    /// it emits pays downstream.
    IndexRangeSeek {
        /// Scanned type.
        ty: TypeId,
        /// Indexed attribute.
        attr: AttrId,
        /// Lower bound.
        lo: Option<(Value, bool)>,
        /// Upper bound.
        hi: Option<(Value, bool)>,
        /// Predicates not covered by the range.
        residual: Vec<(AttrId, Predicate)>,
    },
    /// Composite-index seek: equality constants for a prefix of the
    /// index's attribute list, optionally extended by a *range* on the
    /// next key attribute, select one contiguous key range.
    CompositeSeek {
        /// Scanned type.
        ty: TypeId,
        /// The index's full attribute list (identifies the index).
        attrs: Vec<AttrId>,
        /// Equality constants for `attrs[..prefix.len()]`.
        prefix: Vec<Value>,
        /// Range on `attrs[prefix.len()]`, when one was consumed.
        suffix: Option<Interval>,
        /// Predicates not covered by the prefix or suffix.
        residual: Vec<(AttrId, Predicate)>,
    },
    /// Index-only (covering) scan: the projection target's attributes are
    /// all index key attributes, so results are built from index keys
    /// without touching base tuples.
    IndexOnlyScan {
        /// Scanned (base) type.
        ty: TypeId,
        /// Projection target (a generalisation of `ty`).
        to: TypeId,
        /// The covering index's attribute list (identifies the index).
        key_attrs: Vec<AttrId>,
        /// Whether the backing index walks its keys in order (ordered /
        /// composite, not hash) — the executor must then pick an ordered
        /// index and the output carries the key order.
        ordered: bool,
        /// Predicates over key attributes, evaluated on the keys.
        preds: Vec<(AttrId, Predicate)>,
    },
    /// Batch-wise conjunctive filter over a composite input (filters over
    /// plain scans are fused into the scan instead). Order-preserving.
    Filter {
        /// Input operator.
        input: Box<Physical>,
        /// Conjunction of predicates.
        preds: Vec<(AttrId, Predicate)>,
    },
    /// Projection onto a generalisation. Preserves the prefix of the
    /// input order whose attributes survive the projection.
    Project {
        /// Input operator.
        input: Box<Physical>,
        /// Target type.
        to: TypeId,
    },
    /// Hash join; `build` is materialised into a hash table keyed on the
    /// shared attributes, `probe` streams (probe order is preserved).
    HashJoin {
        /// Materialised side (chosen smaller by cost).
        build: Box<Physical>,
        /// Streaming side.
        probe: Box<Physical>,
        /// Shared attributes (the natural-join key), in id order.
        keys: Vec<AttrId>,
        /// Declared output type.
        ty: TypeId,
    },
    /// Merge join: both inputs arrive sorted on `keys` (ascending); equal
    /// key groups are matched pairwise. Output is sorted on `keys`.
    MergeJoin {
        /// Left input (sorted on `keys`).
        left: Box<Physical>,
        /// Right input (sorted on `keys`).
        right: Box<Physical>,
        /// Shared attributes (the natural-join key), in id order.
        keys: Vec<AttrId>,
        /// Declared output type.
        ty: TypeId,
    },
    /// Sort enforcer: materialises its input and emits it ordered by
    /// `keys`. Inserted only when a required order is not otherwise
    /// available (or cheaper to establish than to carry).
    Sort {
        /// Input operator.
        input: Box<Physical>,
        /// Sort keys, applied left to right.
        keys: SortKeys,
    },
    /// Bag concatenation; the final set collection deduplicates.
    Union {
        /// Left input.
        left: Box<Physical>,
        /// Right input.
        right: Box<Physical>,
        /// Result type.
        ty: TypeId,
    },
    /// Set intersection; `build` is materialised into a membership set
    /// (probe order is preserved).
    Intersect {
        /// Materialised side (chosen smaller by cost).
        build: Box<Physical>,
        /// Streaming side.
        probe: Box<Physical>,
        /// Result type.
        ty: TypeId,
    },
}

impl Physical {
    /// The entity type of this operator's output.
    pub fn ty(&self) -> TypeId {
        match self {
            Physical::Empty { ty }
            | Physical::SeqScan { ty, .. }
            | Physical::IndexSeek { ty, .. }
            | Physical::IndexRangeSeek { ty, .. }
            | Physical::CompositeSeek { ty, .. }
            | Physical::HashJoin { ty, .. }
            | Physical::MergeJoin { ty, .. }
            | Physical::Union { ty, .. }
            | Physical::Intersect { ty, .. } => *ty,
            Physical::Filter { input, .. } | Physical::Sort { input, .. } => input.ty(),
            Physical::IndexOnlyScan { to, .. } | Physical::Project { to, .. } => *to,
        }
    }

    /// The physical property this operator guarantees of its output: the
    /// sort keys its tuples ascend by (empty = no guaranteed order).
    ///
    /// Orders are born at ordered access paths (BTree walks, the
    /// canonical `BTreeSet` relation order behind `SeqScan`) and at
    /// `Sort`/`MergeJoin`; `Filter` passes its input order through,
    /// `Project` keeps the prefix that survives the projection, and
    /// `HashJoin`/`Intersect` preserve their *probe* side (probe tuples
    /// stream in order and keep their attribute values in the merged
    /// output).
    pub fn ordering(&self, db: &Database) -> SortKeys {
        let schema = db.schema();
        let asc = |attrs: &[AttrId]| attrs.iter().map(|a| (*a, SortDir::Asc)).collect();
        match self {
            Physical::Empty { .. } | Physical::Union { .. } => Vec::new(),
            // Relations are BTreeSets of instances whose fields sort by
            // attribute id, so a full scan ascends lexicographically by
            // every attribute of the type, in id order.
            Physical::SeqScan { ty, .. } => schema
                .attrs_of(*ty)
                .iter()
                .map(|a| (AttrId(a as u32), SortDir::Asc))
                .collect(),
            Physical::IndexSeek { attr, .. } | Physical::IndexRangeSeek { attr, .. } => {
                vec![(*attr, SortDir::Asc)]
            }
            Physical::CompositeSeek { attrs, .. } => asc(attrs),
            Physical::IndexOnlyScan {
                to,
                key_attrs,
                ordered,
                ..
            } => {
                if *ordered {
                    let target = schema.attrs_of(*to);
                    key_attrs
                        .iter()
                        .take_while(|a| target.contains(a.index()))
                        .map(|a| (*a, SortDir::Asc))
                        .collect()
                } else {
                    Vec::new()
                }
            }
            Physical::Filter { input, .. } => input.ordering(db),
            Physical::Project { input, to } => {
                let target = schema.attrs_of(*to);
                input
                    .ordering(db)
                    .into_iter()
                    .take_while(|(a, _)| target.contains(a.index()))
                    .collect()
            }
            Physical::HashJoin { probe, .. } | Physical::Intersect { probe, .. } => {
                probe.ordering(db)
            }
            Physical::MergeJoin { keys, .. } => asc(keys),
            Physical::Sort { keys, .. } => keys.clone(),
        }
    }

    /// Attributes this operator holds *constant*: an equality predicate
    /// somewhere below pins every emitted tuple to the same value. A
    /// constant attribute is order-trivial — any output order sorts by
    /// it in any direction — so it may be skipped when matching a
    /// required order prefix (see [`order_satisfies_with_bound`]).
    ///
    /// The set is conservative: joins propagate both sides (joined
    /// tuples keep their constituents' values), `Union` propagates
    /// nothing (the two branches may pin different values), and
    /// attributes projected away are harmless to keep — they can no
    /// longer appear in an order requirement over the output type.
    pub fn eq_bound_attrs(&self) -> BTreeSet<AttrId> {
        fn eq_preds(preds: &[(AttrId, Predicate)], out: &mut BTreeSet<AttrId>) {
            for (a, p) in preds {
                if p.as_eq().is_some() {
                    out.insert(*a);
                }
            }
        }
        let mut out = BTreeSet::new();
        match self {
            Physical::Empty { .. } | Physical::Union { .. } => {}
            Physical::SeqScan { preds, .. } | Physical::IndexOnlyScan { preds, .. } => {
                eq_preds(preds, &mut out)
            }
            Physical::IndexSeek { attr, residual, .. } => {
                out.insert(*attr);
                eq_preds(residual, &mut out);
            }
            Physical::IndexRangeSeek { residual, .. } => eq_preds(residual, &mut out),
            Physical::CompositeSeek {
                attrs,
                prefix,
                suffix,
                residual,
                ..
            } => {
                out.extend(attrs[..prefix.len()].iter().copied());
                // A degenerate range suffix `[v, v]` pins its attribute
                // just like an equality prefix entry would.
                if let Some(iv) = suffix {
                    if let (Some((l, true)), Some((h, true))) = (&iv.lo, &iv.hi) {
                        if l == h {
                            out.insert(attrs[prefix.len()]);
                        }
                    }
                }
                eq_preds(residual, &mut out);
            }
            Physical::Filter { input, preds } => {
                out = input.eq_bound_attrs();
                eq_preds(preds, &mut out);
            }
            Physical::Project { input, .. } | Physical::Sort { input, .. } => {
                out = input.eq_bound_attrs()
            }
            Physical::HashJoin { build, probe, .. } | Physical::Intersect { build, probe, .. } => {
                out = build.eq_bound_attrs();
                out.extend(probe.eq_bound_attrs());
            }
            Physical::MergeJoin { left, right, .. } => {
                out = left.eq_bound_attrs();
                out.extend(right.eq_bound_attrs());
            }
        }
        out
    }

    /// Renders the plan as an indented EXPLAIN tree with estimates.
    pub fn explain(&self, db: &Database, stats: &Statistics) -> String {
        let mut out = String::new();
        self.explain_into(db, stats, 0, &mut out);
        out
    }

    fn explain_into(&self, db: &Database, stats: &Statistics, depth: usize, out: &mut String) {
        let Estimate { rows, cost } = estimate(self, stats);
        let pad = "  ".repeat(depth);
        let line = self.describe(db);
        // Partitionable operators report the degree of parallelism the
        // morsel dispatcher would use (only shown when > 1, which needs
        // the `parallel` feature, multiple threads, and enough rows).
        let par = crate::cost::parallel_degree(self, stats, &crate::exec::ExecOptions::default());
        if par > 1 {
            out.push_str(&format!(
                "{pad}{line}  (rows≈{rows:.1}, cost≈{cost:.1}, par≈{par})\n"
            ));
        } else {
            out.push_str(&format!("{pad}{line}  (rows≈{rows:.1}, cost≈{cost:.1})\n"));
        }
        for child in self.children() {
            child.explain_into(db, stats, depth + 1, out);
        }
    }

    /// The operator's direct children, in the order `explain` renders
    /// them. Profiling relies on this order: node ids are assigned
    /// pre-order (root = 0, then each child's subtree depth-first).
    pub fn children(&self) -> Vec<&Physical> {
        match self {
            Physical::Filter { input, .. }
            | Physical::Project { input, .. }
            | Physical::Sort { input, .. } => vec![input],
            Physical::HashJoin { build, probe, .. } | Physical::Intersect { build, probe, .. } => {
                vec![build, probe]
            }
            Physical::MergeJoin { left, right, .. } | Physical::Union { left, right, .. } => {
                vec![left, right]
            }
            _ => Vec::new(),
        }
    }

    /// Number of operators in this subtree, itself included.
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// Renders this operator's one-line description (the `explain` line
    /// without the cost annotations).
    pub fn describe(&self, db: &Database) -> String {
        let schema = db.schema();
        let render_preds = |preds: &[(AttrId, Predicate)]| {
            preds
                .iter()
                .map(|(a, p)| format!("{} {}", schema.attr_name(*a), p))
                .collect::<Vec<_>>()
                .join(" ∧ ")
        };
        let render_range = |lo: &Option<(Value, bool)>, hi: &Option<(Value, bool)>| {
            let lo_s = match lo {
                Some((v, true)) => format!("[{v}"),
                Some((v, false)) => format!("({v}"),
                None => "(-∞".to_owned(),
            };
            let hi_s = match hi {
                Some((v, true)) => format!("{v}]"),
                Some((v, false)) => format!("{v})"),
                None => "+∞)".to_owned(),
            };
            format!("{lo_s}, {hi_s}")
        };
        let render_attrs = |attrs: &[AttrId]| {
            attrs
                .iter()
                .map(|a| schema.attr_name(*a))
                .collect::<Vec<_>>()
                .join(",")
        };
        match self {
            Physical::Empty { ty } => format!("Empty [{}]", schema.type_name(*ty)),
            Physical::SeqScan { ty, preds } if preds.is_empty() => {
                format!("SeqScan {}", schema.type_name(*ty))
            }
            Physical::SeqScan { ty, preds } => {
                format!(
                    "SeqScan {} filter {}",
                    schema.type_name(*ty),
                    render_preds(preds)
                )
            }
            Physical::IndexSeek {
                ty,
                attr,
                value,
                residual,
            } => {
                let mut s = format!(
                    "IndexSeek {}.{} = {}",
                    schema.type_name(*ty),
                    schema.attr_name(*attr),
                    value
                );
                if !residual.is_empty() {
                    s.push_str(&format!(" residual {}", render_preds(residual)));
                }
                s
            }
            Physical::IndexRangeSeek {
                ty,
                attr,
                lo,
                hi,
                residual,
            } => {
                let mut s = format!(
                    "IndexRangeSeek {}.{} ∈ {}",
                    schema.type_name(*ty),
                    schema.attr_name(*attr),
                    render_range(lo, hi)
                );
                if !residual.is_empty() {
                    s.push_str(&format!(" residual {}", render_preds(residual)));
                }
                s
            }
            Physical::CompositeSeek {
                ty,
                attrs,
                prefix,
                suffix,
                residual,
            } => {
                let vals = prefix
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                let mut s = format!(
                    "CompositeSeek {}({}) prefix = ({vals})",
                    schema.type_name(*ty),
                    render_attrs(attrs),
                );
                if let Some(iv) = suffix {
                    s.push_str(&format!(
                        " range {} ∈ {}",
                        schema.attr_name(attrs[prefix.len()]),
                        render_range(&iv.lo, &iv.hi)
                    ));
                }
                if !residual.is_empty() {
                    s.push_str(&format!(" residual {}", render_preds(residual)));
                }
                s
            }
            Physical::IndexOnlyScan {
                ty,
                to,
                key_attrs,
                preds,
                ..
            } => {
                let mut s = format!(
                    "IndexOnlyScan {}({}) → {}",
                    schema.type_name(*ty),
                    render_attrs(key_attrs),
                    schema.type_name(*to)
                );
                if !preds.is_empty() {
                    s.push_str(&format!(" filter {}", render_preds(preds)));
                }
                s
            }
            Physical::Filter { preds, .. } => format!("Filter {}", render_preds(preds)),
            Physical::Project { to, .. } => format!("Project → {}", schema.type_name(*to)),
            Physical::HashJoin { ty, keys, .. } => format!(
                "HashJoin [{}] on ({})",
                schema.type_name(*ty),
                render_attrs(keys)
            ),
            Physical::MergeJoin { ty, keys, .. } => format!(
                "MergeJoin [{}] on ({})",
                schema.type_name(*ty),
                render_attrs(keys)
            ),
            Physical::Sort { keys, .. } => {
                let ks = keys
                    .iter()
                    .map(|(a, d)| format!("{} {d}", schema.attr_name(*a)))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("Sort by ({ks})")
            }
            Physical::Union { ty, .. } => format!("Union [{}]", schema.type_name(*ty)),
            Physical::Intersect { ty, .. } => {
                format!("Intersect [{}]", schema.type_name(*ty))
            }
        }
    }
}

/// Does an available ordering `avail` satisfy a required one? Required
/// keys must form a prefix of the available keys, directions included.
pub fn order_satisfies(avail: &[(AttrId, SortDir)], req: &[(AttrId, SortDir)]) -> bool {
    req.len() <= avail.len() && avail[..req.len()] == *req
}

/// [`order_satisfies`] modulo a set of equality-*bound* attributes: a
/// bound attribute is constant across the input, so a required key on
/// it is satisfied by any order (in either direction), and an available
/// key on it adds no real grouping — both sides are filtered down to
/// their unbound keys before the prefix check. This is what lets a
/// composite walk of `(depname, age)` under `depname = 'sales'` serve
/// `ORDER BY age` without a `Sort` enforcer.
pub fn order_satisfies_with_bound(
    avail: &[(AttrId, SortDir)],
    req: &[(AttrId, SortDir)],
    bound: &BTreeSet<AttrId>,
) -> bool {
    if bound.is_empty() {
        return order_satisfies(avail, req);
    }
    let unbound = |keys: &[(AttrId, SortDir)]| -> SortKeys {
        keys.iter()
            .filter(|(a, _)| !bound.contains(a))
            .copied()
            .collect()
    };
    order_satisfies(&unbound(avail), &unbound(req))
}

/// One candidate plan: a physical tree plus its estimated cost/rows and
/// the output order it guarantees.
#[derive(Clone, Debug)]
struct Cand {
    phys: Physical,
    rows: f64,
    cost: f64,
    order: SortKeys,
}

impl Cand {
    fn new(phys: Physical, db: &Database, stats: &Statistics) -> Cand {
        let Estimate { rows, cost } = estimate(&phys, stats);
        let order = phys.ordering(db);
        Cand {
            phys,
            rows,
            cost,
            order,
        }
    }
}

/// `a` makes `b` redundant: at most as expensive, at least as ordered.
fn dominates(a: &Cand, b: &Cand) -> bool {
    a.cost <= b.cost && order_satisfies(&a.order, &b.order)
}

/// Reduces a candidate set to its non-dominated frontier (first survivor
/// wins ties, so pruning is deterministic).
fn prune(cands: Vec<Cand>) -> Vec<Cand> {
    let mut out: Vec<Cand> = Vec::new();
    'next: for c in cands {
        for kept in &out {
            if dominates(kept, &c) {
                continue 'next;
            }
        }
        out.retain(|kept| !dominates(&c, kept));
        out.push(c);
    }
    out
}

/// The cheapest candidate (sets are non-empty by construction).
fn cheapest(cands: &[Cand]) -> &Cand {
    cands
        .iter()
        .min_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite costs"))
        .expect("candidate sets are non-empty")
}

/// Compiles a rewritten logical plan into a physical plan, choosing
/// access paths, join orders, and join algorithms by cost under the
/// default [`PlannerOptions`].
pub fn plan(
    logical: &Logical,
    db: &Database,
    indexes: &[Vec<Index>],
    stats: &Statistics,
) -> Physical {
    plan_with(logical, db, indexes, stats, &PlannerOptions::default())
}

/// [`plan`] with explicit [`PlannerOptions`] — benchmarks and tests use
/// this to pin a baseline (e.g. no reordering, hash joins only).
pub fn plan_with(
    logical: &Logical,
    db: &Database,
    indexes: &[Vec<Index>],
    stats: &Statistics,
    opts: &PlannerOptions,
) -> Physical {
    let cands = candidates(logical, db, indexes, stats, opts);
    cheapest(&cands).phys.clone()
}

/// The non-dominated candidate set for a logical node.
fn candidates(
    logical: &Logical,
    db: &Database,
    indexes: &[Vec<Index>],
    stats: &Statistics,
    opts: &PlannerOptions,
) -> Vec<Cand> {
    let cand = |p: Physical| Cand::new(p, db, stats);
    match logical {
        Logical::Empty { ty } => vec![cand(Physical::Empty { ty: *ty })],
        Logical::Scan { ty } => scan_candidates(*ty, &[], db, indexes, stats),
        Logical::Select { input, preds } => match input.as_ref() {
            // Access-path selection happens where a filter meets a scan.
            Logical::Scan { ty } => scan_candidates(*ty, preds, db, indexes, stats),
            // The rewrite pass pushes selections to the leaves, so a
            // residual filter over a composite input is rare; it wraps
            // every input candidate (Filter preserves order).
            _ => prune(
                candidates(input, db, indexes, stats, opts)
                    .into_iter()
                    .map(|c| {
                        cand(Physical::Filter {
                            input: Box::new(c.phys),
                            preds: preds.clone(),
                        })
                    })
                    .collect(),
            ),
        },
        Logical::Project { input, to } => {
            let mut out: Vec<Cand> = candidates(input, db, indexes, stats, opts)
                .into_iter()
                .map(|c| {
                    cand(Physical::Project {
                        input: Box::new(c.phys),
                        to: *to,
                    })
                })
                .collect();
            // A covering index can answer the projection from its keys
            // alone when the target's attributes (and every predicate)
            // are key attributes: an index-only scan.
            let (ty, preds): (TypeId, &[(AttrId, Predicate)]) = match input.as_ref() {
                Logical::Scan { ty } => (*ty, &[]),
                Logical::Select {
                    input: sel_in,
                    preds,
                } => match sel_in.as_ref() {
                    Logical::Scan { ty } => (*ty, preds.as_slice()),
                    _ => return prune(out),
                },
                _ => return prune(out),
            };
            out.extend(
                index_only_paths(ty, *to, preds, db, indexes)
                    .into_iter()
                    .map(cand),
            );
            prune(out)
        }
        Logical::Join { .. } => join_candidates(logical, db, indexes, stats, opts),
        Logical::Union { left, right } => {
            let ty = left.ty();
            let l = candidates(left, db, indexes, stats, opts);
            let r = candidates(right, db, indexes, stats, opts);
            vec![cand(Physical::Union {
                left: Box::new(cheapest(&l).phys.clone()),
                right: Box::new(cheapest(&r).phys.clone()),
                ty,
            })]
        }
        Logical::Intersect { left, right } => {
            let ty = left.ty();
            let l = candidates(left, db, indexes, stats, opts);
            let r = candidates(right, db, indexes, stats, opts);
            let (lc, rc) = (cheapest(&l), cheapest(&r));
            let (build, probe) = if lc.rows <= rc.rows {
                (lc, rc)
            } else {
                (rc, lc)
            };
            vec![cand(Physical::Intersect {
                build: Box::new(build.phys.clone()),
                probe: Box::new(probe.phys.clone()),
                ty,
            })]
        }
        Logical::OrderBy { input, keys } => {
            let inner = candidates(input, db, indexes, stats, opts);
            // Candidates already carrying the required order pass
            // through; the cheapest overall gets a Sort enforcer. The
            // frontier then decides whether carrying the order (perhaps
            // via a pricier access path) beats establishing it.
            let sorted = cand(Physical::Sort {
                input: Box::new(cheapest(&inner).phys.clone()),
                keys: keys.clone(),
            });
            let mut out: Vec<Cand> = inner
                .into_iter()
                .filter(|c| order_satisfies_with_bound(&c.order, keys, &c.phys.eq_bound_attrs()))
                .collect();
            out.push(sorted);
            prune(out)
        }
    }
}

/// Indexes mirror *stored* relations, which equal semantic extensions
/// only under eager containment — every index path refuses otherwise.
fn indexes_usable<'a>(ty: TypeId, db: &Database, indexes: &'a [Vec<Index>]) -> Option<&'a [Index]> {
    if db.policy() != toposem_extension::ContainmentPolicy::Eager {
        return None;
    }
    indexes.get(ty.index()).map(Vec::as_slice)
}

/// Candidate access paths for a conjunctive selection over a scan: the
/// fused sequential scan, every index path the predicates can use, and —
/// for ordered/composite indexes the predicates *cannot* use — the
/// ordered full walk with the whole conjunction residual, which exists
/// purely for the order it emits.
fn scan_candidates(
    ty: TypeId,
    preds: &[(AttrId, Predicate)],
    db: &Database,
    indexes: &[Vec<Index>],
    stats: &Statistics,
) -> Vec<Cand> {
    let cand = |p: Physical| Cand::new(p, db, stats);
    let mut out = vec![cand(Physical::SeqScan {
        ty,
        preds: preds.to_vec(),
    })];
    let Some(type_indexes) = indexes_usable(ty, db, indexes) else {
        return prune(out);
    };
    for idx in type_indexes {
        let candidate = match idx {
            Index::Hash(h) => hash_path(ty, h.attr(), preds),
            Index::Ord(o) => ord_path(ty, o.attr(), preds).or(Some(Physical::IndexRangeSeek {
                ty,
                attr: o.attr(),
                lo: None,
                hi: None,
                residual: preds.to_vec(),
            })),
            Index::Composite(c) => {
                composite_path(ty, c.attrs(), preds).or(Some(Physical::CompositeSeek {
                    ty,
                    attrs: c.attrs().to_vec(),
                    prefix: Vec::new(),
                    suffix: None,
                    residual: preds.to_vec(),
                }))
            }
        };
        if let Some(c) = candidate {
            out.push(cand(c));
        }
    }
    prune(out)
}

/// A hash point seek when some equality predicate targets the hash
/// index's attribute.
fn hash_path(ty: TypeId, attr: AttrId, preds: &[(AttrId, Predicate)]) -> Option<Physical> {
    let (i, value) = preds
        .iter()
        .enumerate()
        .find_map(|(i, (a, p))| (*a == attr).then(|| p.as_eq().map(|v| (i, v.clone())))?)?;
    let mut residual = preds.to_vec();
    residual.remove(i);
    Some(Physical::IndexSeek {
        ty,
        attr,
        value,
        residual,
    })
}

/// An ordered-index path: all predicates on the indexed attribute are
/// intersected into one [`toposem_storage::Interval`] (the same
/// bound-merge the rewriter's emptiness proof uses); a degenerate
/// `[v, v]` becomes a point seek, anything else a range seek. Remaining
/// predicates stay residual.
fn ord_path(ty: TypeId, attr: AttrId, preds: &[(AttrId, Predicate)]) -> Option<Physical> {
    let (on_attr, residual): (Vec<_>, Vec<_>) =
        preds.iter().cloned().partition(|(a, _)| *a == attr);
    if on_attr.is_empty() {
        return None;
    }
    let mut interval = Interval::full();
    for (_, p) in &on_attr {
        interval.tighten(p);
    }
    if let (Some((l, true)), Some((h, true))) = (&interval.lo, &interval.hi) {
        if l == h {
            return Some(Physical::IndexSeek {
                ty,
                attr,
                value: l.clone(),
                residual,
            });
        }
    }
    Some(Physical::IndexRangeSeek {
        ty,
        attr,
        lo: interval.lo,
        hi: interval.hi,
        residual,
    })
}

/// A composite seek: the longest prefix of the index's attribute list
/// whose every attribute carries an equality predicate, optionally
/// extended by the intersected *range* predicates on the next key
/// attribute (equality prefix + range suffix address one contiguous
/// composite key range). Consumed predicates are dropped; everything
/// else stays residual.
fn composite_path(ty: TypeId, attrs: &[AttrId], preds: &[(AttrId, Predicate)]) -> Option<Physical> {
    let mut prefix = Vec::new();
    let mut consumed = vec![false; preds.len()];
    for key_attr in attrs {
        let hit = preds
            .iter()
            .enumerate()
            .find_map(|(i, (a, p))| (a == key_attr).then(|| p.as_eq().map(|v| (i, v.clone())))?);
        match hit {
            Some((i, v)) => {
                prefix.push(v);
                consumed[i] = true;
            }
            None => break,
        }
    }
    let mut suffix = None;
    if let Some(next) = attrs.get(prefix.len()) {
        let mut interval = Interval::full();
        let mut any = false;
        for (i, (a, p)) in preds.iter().enumerate() {
            if a == next && !consumed[i] {
                interval.tighten(p);
                consumed[i] = true;
                any = true;
            }
        }
        if any {
            suffix = Some(interval);
        }
    }
    if prefix.is_empty() && suffix.is_none() {
        return None;
    }
    let residual: Vec<_> = preds
        .iter()
        .enumerate()
        .filter(|(i, _)| !consumed[*i])
        .map(|(_, p)| p.clone())
        .collect();
    Some(Physical::CompositeSeek {
        ty,
        attrs: attrs.to_vec(),
        prefix,
        suffix,
        residual,
    })
}

/// Index-only scans for `π_to(σ_preds(ty))`: one per index whose key
/// attributes cover both the projection target and every predicate.
fn index_only_paths(
    ty: TypeId,
    to: TypeId,
    preds: &[(AttrId, Predicate)],
    db: &Database,
    indexes: &[Vec<Index>],
) -> Vec<Physical> {
    let Some(type_indexes) = indexes_usable(ty, db, indexes) else {
        return Vec::new();
    };
    let schema = db.schema();
    let target = schema.attrs_of(to);
    type_indexes
        .iter()
        .filter_map(|idx| {
            let key_attrs = idx.attrs();
            let covers_target = target.iter().all(|a| key_attrs.contains(&AttrId(a as u32)));
            let covers_preds = preds.iter().all(|(a, _)| key_attrs.contains(a));
            (covers_target && covers_preds).then(|| Physical::IndexOnlyScan {
                ty,
                to,
                key_attrs,
                ordered: !matches!(idx, Index::Hash(_)),
                preds: preds.to_vec(),
            })
        })
        .collect()
}

/// The shared attributes (natural-join key) of two types, in id order.
fn shared_keys(db: &Database, a: TypeId, b: TypeId) -> Vec<AttrId> {
    let schema = db.schema();
    schema
        .attrs_of(a)
        .intersection(schema.attrs_of(b))
        .iter()
        .map(|i| AttrId(i as u32))
        .collect()
}

/// Joins two candidate sets into the candidate set of their join:
/// hash-join variants pairing each side's order-carrying candidates with
/// the other side's cheapest (the probe side's order survives), plus —
/// when the sides share attributes — a merge join whose inputs either
/// carry the key order already or get a `Sort` enforcer, whichever is
/// cheaper per side.
fn join_pair(
    lc: &[Cand],
    rc: &[Cand],
    ty: TypeId,
    keys: &[AttrId],
    db: &Database,
    stats: &Statistics,
    opts: &PlannerOptions,
) -> Vec<Cand> {
    let cand = |p: Physical| Cand::new(p, db, stats);
    let mut out = Vec::new();
    let lbest = cheapest(lc);
    let rbest = cheapest(rc);
    let hash = |a: &Cand, b: &Cand| {
        let (build, probe) = if a.rows <= b.rows { (a, b) } else { (b, a) };
        Physical::HashJoin {
            build: Box::new(build.phys.clone()),
            probe: Box::new(probe.phys.clone()),
            keys: keys.to_vec(),
            ty,
        }
    };
    for r in rc {
        out.push(cand(hash(lbest, r)));
    }
    for l in lc {
        out.push(cand(hash(l, rbest)));
    }
    if opts.merge_joins && !keys.is_empty() {
        // A merge join is an equi-join on the whole key set, so *any*
        // ordering of the keys works as long as both sides sort by the
        // same one: an index ordered (b, a) satisfies an (a, b) join
        // without a Sort. Emit one candidate per key permutation (both
        // sides sharing it) and let pruning keep the non-dominated ones.
        for perm in key_orders(keys) {
            let req: SortKeys = perm.iter().map(|a| (*a, SortDir::Asc)).collect();
            let sorted_input = |side: &[Cand]| -> Physical {
                // Cheapest candidate already in order, or the cheapest
                // overall behind a Sort enforcer — whichever estimates
                // lower.
                let enforced = cand(Physical::Sort {
                    input: Box::new(cheapest(side).phys.clone()),
                    keys: req.clone(),
                });
                match side
                    .iter()
                    .filter(|c| {
                        order_satisfies_with_bound(&c.order, &req, &c.phys.eq_bound_attrs())
                    })
                    .min_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite costs"))
                {
                    Some(carried) if carried.cost <= enforced.cost => carried.phys.clone(),
                    _ => enforced.phys,
                }
            };
            out.push(cand(Physical::MergeJoin {
                left: Box::new(sorted_input(lc)),
                right: Box::new(sorted_input(rc)),
                keys: perm,
                ty,
            }));
        }
    }
    prune(out)
}

/// Key orderings a merge join may sort by: every permutation for up to
/// three keys, only the canonical order above that (k! candidates per
/// join would bloat the frontier for wide compound keys, which rarely
/// have a matching index order anyway).
fn key_orders(keys: &[AttrId]) -> Vec<Vec<AttrId>> {
    if keys.len() > 3 {
        return vec![keys.to_vec()];
    }
    fn rec(ks: &mut Vec<AttrId>, i: usize, out: &mut Vec<Vec<AttrId>>) {
        if i + 1 >= ks.len() {
            out.push(ks.clone());
            return;
        }
        for j in i..ks.len() {
            ks.swap(i, j);
            rec(ks, i + 1, out);
            ks.swap(i, j);
        }
    }
    let mut orders = Vec::new();
    rec(&mut keys.to_vec(), 0, &mut orders);
    orders
}

/// Collects the non-join leaves of a join tree, left to right.
fn flatten_joins<'a>(node: &'a Logical, out: &mut Vec<&'a Logical>) {
    if let Logical::Join { left, right, .. } = node {
        flatten_joins(left, out);
        flatten_joins(right, out);
    } else {
        out.push(node);
    }
}

/// Candidates for a join tree: DPsize reordering over the sanctioned
/// subset lattice when enabled and small enough, a greedy cheapest-pair
/// heuristic above the DP budget, and the tree as written otherwise
/// (also the fallback when the heuristics cannot complete — the
/// as-written nesting is sanctioned by construction).
fn join_candidates(
    node: &Logical,
    db: &Database,
    indexes: &[Vec<Index>],
    stats: &Statistics,
    opts: &PlannerOptions,
) -> Vec<Cand> {
    let Logical::Join { left, right, ty } = node else {
        unreachable!("join_candidates takes a join node");
    };
    if opts.reorder_joins {
        let mut leaves = Vec::new();
        flatten_joins(node, &mut leaves);
        if leaves.len() > 2 {
            let leaf_cands: Vec<Vec<Cand>> = leaves
                .iter()
                .map(|l| candidates(l, db, indexes, stats, opts))
                .collect();
            let leaf_tys: Vec<TypeId> = leaves.iter().map(|l| l.ty()).collect();
            // `dp_max_leaves` is a public knob; the DP's u32 subset masks
            // (and its 2^n entry table) cap it hard regardless of what
            // the caller asked for — wider joins go greedy.
            let dp_cap = opts.dp_max_leaves.min(DP_LEAF_HARD_CAP);
            let reordered = if leaves.len() <= dp_cap {
                dp_join(&leaf_cands, &leaf_tys, db, stats, opts)
            } else {
                greedy_join(&leaf_cands, &leaf_tys, db, stats, opts)
            };
            if let Some(cands) = reordered {
                return cands;
            }
        }
    }
    // As written: left then right, one binary join.
    let lc = candidates(left, db, indexes, stats, opts);
    let rc = candidates(right, db, indexes, stats, opts);
    let keys = shared_keys(db, left.ty(), right.ty());
    join_pair(&lc, &rc, *ty, &keys, db, stats, opts)
}

/// The declared entity type covering a set of joined types, if any —
/// the sanction check that gates every DP/greedy combination.
fn union_type(db: &Database, tys: &[TypeId]) -> Option<TypeId> {
    let schema = db.schema();
    let mut union = schema.attrs_of(tys[0]).clone();
    for t in &tys[1..] {
        union.union_with(schema.attrs_of(*t));
    }
    schema.type_ids().find(|t| schema.attrs_of(*t) == &union)
}

/// DPsize join enumeration: for every sanctioned subset of the leaves,
/// in order of subset size, the non-dominated (cost, order) frontier
/// over all ways of splitting it into two smaller sanctioned subsets.
/// Returns the full set's frontier (always reachable: the as-written
/// nesting is one of the enumerated splits).
fn dp_join(
    leaf_cands: &[Vec<Cand>],
    leaf_tys: &[TypeId],
    db: &Database,
    stats: &Statistics,
    opts: &PlannerOptions,
) -> Option<Vec<Cand>> {
    let n = leaf_cands.len();
    let full: u32 = (1u32 << n) - 1;
    let mut entries: Vec<Option<(TypeId, Vec<Cand>)>> = vec![None; (full + 1) as usize];
    for i in 0..n {
        entries[1 << i] = Some((leaf_tys[i], leaf_cands[i].clone()));
    }
    let mut masks: Vec<u32> = (1..=full).filter(|m| m.count_ones() >= 2).collect();
    masks.sort_by_key(|m| m.count_ones());
    for mask in masks {
        let tys: Vec<TypeId> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| leaf_tys[i])
            .collect();
        let Some(ty) = union_type(db, &tys) else {
            continue;
        };
        let mut acc: Vec<Cand> = Vec::new();
        // Every unordered split {s, mask\s} with both halves planned.
        let mut s = (mask - 1) & mask;
        while s > 0 {
            let t = mask ^ s;
            if s < t {
                if let (Some((sty, sc)), Some((tty, tc))) =
                    (&entries[s as usize], &entries[t as usize])
                {
                    let keys = shared_keys(db, *sty, *tty);
                    acc.extend(join_pair(sc, tc, ty, &keys, db, stats, opts));
                }
            }
            s = (s - 1) & mask;
        }
        if !acc.is_empty() {
            entries[mask as usize] = Some((ty, prune(acc)));
        }
    }
    entries[full as usize].take().map(|(_, cands)| cands)
}

/// Greedy fallback for joins too wide for the DP: repeatedly fuse the
/// sanctioned pair whose join is cheapest, until one plan remains.
/// Returns `None` when no sanctioned pair exists at some step (the
/// caller then compiles the tree as written).
fn greedy_join(
    leaf_cands: &[Vec<Cand>],
    leaf_tys: &[TypeId],
    db: &Database,
    stats: &Statistics,
    opts: &PlannerOptions,
) -> Option<Vec<Cand>> {
    let mut pool: Vec<(TypeId, Vec<Cand>)> = leaf_tys
        .iter()
        .copied()
        .zip(leaf_cands.iter().cloned())
        .collect();
    while pool.len() > 1 {
        let mut best: Option<(usize, usize, TypeId, Vec<Cand>)> = None;
        for i in 0..pool.len() {
            for j in i + 1..pool.len() {
                let Some(ty) = union_type(db, &[pool[i].0, pool[j].0]) else {
                    continue;
                };
                let keys = shared_keys(db, pool[i].0, pool[j].0);
                let joined = join_pair(&pool[i].1, &pool[j].1, ty, &keys, db, stats, opts);
                let cost = cheapest(&joined).cost;
                if best
                    .as_ref()
                    .is_none_or(|(_, _, _, b)| cost < cheapest(b).cost)
                {
                    best = Some((i, j, ty, joined));
                }
            }
        }
        let (i, j, ty, joined) = best?;
        // Remove the higher index first so the lower stays valid.
        pool.remove(j);
        pool.remove(i);
        pool.push((ty, joined));
    }
    pool.pop().map(|(_, cands)| cands)
}
