//! The unified query-execution API: one [`QueryRequest`] builder, one
//! [`QueryTarget`] trait.
//!
//! The planner grew entry points combinatorially — planned/profiled/
//! snapshot × plain/ordered/with-options — nine methods across three
//! traits for what is a single pipeline with four switches. This module
//! collapses them: a [`QueryRequest`] carries the query plus every
//! switch (ordering, [`ExecOptions`], profiling, and a read
//! [`Consistency`]), and anything that can answer queries implements
//! [`QueryTarget`] — the live [`Engine`], a pinned
//! [`EngineSnapshot`] (via [`PinnedSnapshot`]), and a replication
//! follower's read-only handle. The old traits survive as thin shims
//! over this path, so every call site shares one plan cache, one trace
//! ring, and one metrics pipeline.
//!
//! ```
//! use toposem_core::{employee_schema, Intension};
//! use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Value};
//! use toposem_planner::{QueryRequest, QueryTarget};
//! use toposem_storage::{Engine, Query};
//!
//! let eng = Engine::new(Database::new(
//!     Intension::analyse(employee_schema()),
//!     DomainCatalog::employee_defaults(),
//!     ContainmentPolicy::Eager,
//! ));
//! let (employee, depname) = eng.with_db(|db| {
//!     let s = db.schema();
//!     (s.type_id("employee").unwrap(), s.attr_id("depname").unwrap())
//! });
//! eng.insert(employee, &[
//!     ("name", Value::str("ann")),
//!     ("age", Value::Int(40)),
//!     ("depname", Value::str("sales")),
//! ]).unwrap();
//!
//! let q = Query::scan(employee).select(depname, Value::str("sales"));
//! let resp = eng.run(&QueryRequest::new(q.clone())).unwrap();
//! assert_eq!(resp.ty, employee);
//! assert_eq!(resp.rows.len(), 1);
//!
//! // Same pipeline, different switches: profiled and ordered.
//! let resp = eng.run(&QueryRequest::new(q).profiled()).unwrap();
//! assert!(resp.profile.is_some());
//! ```

use std::sync::Arc;

use toposem_core::TypeId;
use toposem_extension::{Instance, Relation};
use toposem_obs::QueryProfile;
use toposem_storage::{Engine, EngineSnapshot, Query, QueryError};

use crate::exec::{self, ExecOptions};
use crate::with_planned_profiled;

/// How current the read must be.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Consistency {
    /// The target's current state: the live engine's latest committed
    /// epoch (or, inside a transaction, its own uncommitted writes); on
    /// a replica, whatever it has applied so far.
    #[default]
    Latest,
    /// Pin the target's current committed snapshot for this execution —
    /// on a [`PinnedSnapshot`] target, the pinned epoch itself.
    Snapshot,
    /// Require the target to have applied at least this LSN; a replica
    /// that has not errs with [`QueryError::Stale`] (a follower handle
    /// may first wait out its configured staleness bound). Trivially
    /// satisfied on a primary, which is the source of LSNs.
    AtLeast(u64),
}

/// One query plus every execution switch — the argument every
/// [`QueryTarget`] takes.
#[derive(Clone, Debug)]
pub struct QueryRequest {
    query: Query,
    ordered: bool,
    opts: ExecOptions,
    profile: bool,
    consistency: Consistency,
}

impl QueryRequest {
    /// A request with the defaults: unordered set result, process-default
    /// [`ExecOptions`], no profile, [`Consistency::Latest`].
    pub fn new(query: Query) -> Self {
        QueryRequest {
            query,
            ordered: false,
            opts: ExecOptions::default(),
            profile: false,
            consistency: Consistency::Latest,
        }
    }

    /// Return the result as a sequence honouring the query's root
    /// `OrderBy` (the planner carries or enforces the order).
    pub fn ordered(mut self) -> Self {
        self.ordered = true;
        self
    }

    /// Execute with explicit [`ExecOptions`] (thread ceiling, morsel
    /// size). Options govern execution only — never plan choice.
    pub fn with_options(mut self, opts: ExecOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Also assemble the annotated [`QueryProfile`] tree
    /// (`EXPLAIN ANALYZE`); execution itself is unchanged.
    pub fn profiled(mut self) -> Self {
        self.profile = true;
        self
    }

    /// Set the read-consistency requirement.
    pub fn with_consistency(mut self, c: Consistency) -> Self {
        self.consistency = c;
        self
    }

    /// Shorthand for [`Consistency::AtLeast`].
    pub fn at_least(self, lsn: u64) -> Self {
        self.with_consistency(Consistency::AtLeast(lsn))
    }

    /// The query to execute.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Whether an ordered sequence was requested.
    pub fn is_ordered(&self) -> bool {
        self.ordered
    }

    /// The execution options.
    pub fn options(&self) -> &ExecOptions {
        &self.opts
    }

    /// Whether the caller wants the assembled profile.
    pub fn wants_profile(&self) -> bool {
        self.profile
    }

    /// The read-consistency requirement.
    pub fn consistency(&self) -> Consistency {
        self.consistency
    }
}

/// Result rows: a set for plain requests, a presentation-ordered
/// sequence for [`QueryRequest::ordered`] ones.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryRows {
    /// An unordered result relation.
    Set(Relation),
    /// A deduplicated sequence in the requested order.
    Seq(Vec<Instance>),
}

impl QueryRows {
    /// Number of result tuples.
    pub fn len(&self) -> usize {
        match self {
            QueryRows::Set(rel) => rel.len(),
            QueryRows::Seq(seq) => seq.len(),
        }
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate the tuples (in presentation order for `Seq`).
    pub fn iter(&self) -> Box<dyn Iterator<Item = &Instance> + '_> {
        match self {
            QueryRows::Set(rel) => Box::new(rel.iter()),
            QueryRows::Seq(seq) => Box::new(seq.iter()),
        }
    }

    /// The relation, when this is a set result.
    pub fn set(self) -> Option<Relation> {
        match self {
            QueryRows::Set(rel) => Some(rel),
            QueryRows::Seq(_) => None,
        }
    }

    /// The sequence, when this is an ordered result.
    pub fn seq(self) -> Option<Vec<Instance>> {
        match self {
            QueryRows::Set(_) => None,
            QueryRows::Seq(seq) => Some(seq),
        }
    }
}

/// What a [`QueryTarget`] returns: the result's entity type, the rows,
/// and — when requested (or the query crossed the slow threshold) — the
/// assembled profile.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// Entity type of the result (every sanctioned query has one).
    pub ty: TypeId,
    /// The result tuples.
    pub rows: QueryRows,
    /// The annotated profile, present when
    /// [`QueryRequest::profiled`] was set (and sometimes when the query
    /// was slow enough to profile anyway).
    pub profile: Option<Arc<QueryProfile>>,
}

/// Anything that can answer a [`QueryRequest`]: the live [`Engine`], a
/// pinned snapshot, a replication follower.
pub trait QueryTarget {
    /// Plan (or hit the plan cache), execute, observe, and return.
    fn run(&self, req: &QueryRequest) -> Result<QueryResponse, QueryError>;
}

/// The shared execution body: everything lands on
/// [`with_planned_profiled`] with an optional pinned snapshot. The
/// deprecated trait shims in the crate root call this directly.
pub(crate) fn run_with(
    eng: &Engine,
    req: &QueryRequest,
    pinned: Option<&Arc<EngineSnapshot>>,
) -> Result<QueryResponse, QueryError> {
    if req.is_ordered() {
        let (ty, seq, profile) = with_planned_profiled(
            eng,
            req.query(),
            pinned,
            req.wants_profile(),
            |physical, db, indexes, prof| {
                exec::execute_ordered_profiled_with(physical, db, indexes, req.options(), prof)
            },
            |seq| seq.len() as u64,
        )?;
        Ok(QueryResponse {
            ty,
            rows: QueryRows::Seq(seq),
            profile,
        })
    } else {
        let (ty, rel, profile) = with_planned_profiled(
            eng,
            req.query(),
            pinned,
            req.wants_profile(),
            |physical, db, indexes, prof| {
                exec::execute_profiled_with(physical, db, indexes, req.options(), prof)
            },
            |rel| rel.len() as u64,
        )?;
        Ok(QueryResponse {
            ty,
            rows: QueryRows::Set(rel),
            profile,
        })
    }
}

impl QueryTarget for Engine {
    fn run(&self, req: &QueryRequest) -> Result<QueryResponse, QueryError> {
        match req.consistency() {
            Consistency::Latest => run_with(self, req, None),
            // `snapshot()` is None while a transaction is active — the
            // txn's own reads must see its writes, so fall through to
            // the locked path, same as Latest.
            Consistency::Snapshot => match self.snapshot() {
                Some(snap) => run_with(self, req, Some(&snap)),
                None => run_with(self, req, None),
            },
            Consistency::AtLeast(lsn) => {
                // A primary is the source of LSNs: trivially satisfied.
                // A bare replica engine checks its watermark; waiting
                // out a staleness bound is the follower handle's job.
                if self.is_read_only() && self.applied_lsn() < lsn {
                    return Err(QueryError::Stale {
                        want_lsn: lsn,
                        applied_lsn: self.applied_lsn(),
                    });
                }
                run_with(self, req, None)
            }
        }
    }
}

/// An [`EngineSnapshot`] paired with the engine that produced it — the
/// snapshot target for [`QueryTarget`]. The pairing is what lets a
/// pinned read still share the engine's plan cache, metrics, and trace
/// ring (an `EngineSnapshot` alone has no back-reference).
#[derive(Clone)]
pub struct PinnedSnapshot {
    engine: Arc<Engine>,
    snap: Arc<EngineSnapshot>,
}

impl PinnedSnapshot {
    /// Pin `snap` (captured from `engine` via [`Engine::snapshot`]) as
    /// a query target.
    pub fn new(engine: Arc<Engine>, snap: Arc<EngineSnapshot>) -> Self {
        PinnedSnapshot { engine, snap }
    }

    /// Capture the engine's current committed snapshot as a target.
    /// `None` while a transaction is active on the engine handle.
    pub fn capture(engine: &Arc<Engine>) -> Option<Self> {
        let snap = engine.snapshot()?;
        Some(PinnedSnapshot {
            engine: Arc::clone(engine),
            snap,
        })
    }

    /// The pinned snapshot.
    pub fn snapshot(&self) -> &Arc<EngineSnapshot> {
        &self.snap
    }

    /// The engine the snapshot came from.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }
}

impl QueryTarget for PinnedSnapshot {
    fn run(&self, req: &QueryRequest) -> Result<QueryResponse, QueryError> {
        // Latest *and* Snapshot both mean the pinned epoch here — that
        // is the whole point of pinning. An LSN floor cannot be
        // verified against an epoch-pinned snapshot, so `AtLeast` is
        // answered from the pin as well; session layers route such
        // requests before pinning.
        run_with(&self.engine, req, Some(&self.snap))
    }
}
