//! Zipping raw execution counters with planner estimates.
//!
//! The executor fills a flat [`PlanProfile`] (one atomic slot per
//! operator, addressed pre-order); this module walks the plan tree a
//! second time and zips each operator's description and cost-model
//! estimate with its observed counters into the [`OpProfile`] tree that
//! `explain_analyze` renders.
//!
//! The same walk drives the feedback loop:
//! [`collect_feedback`] compares each cardinality-bearing operator's
//! estimate against the rows it actually produced and derives the
//! [`FeedbackObservation`]s that the engine's
//! [`SelectivityFeedback`](toposem_obs::SelectivityFeedback) cache
//! folds into corrections — plus the query's worst q-error for the
//! watchdog histogram.

use toposem_core::{AttrId, TypeId};
use toposem_extension::Database;
use toposem_obs::{q_error, FeedbackKey, FeedbackObservation, OpProfile, PlanProfile, PredClass};
use toposem_storage::{Predicate, Statistics};

use crate::cost::estimate;
use crate::physical::Physical;

/// Builds the annotated operator tree for `plan` from the counters the
/// executor accumulated into `profile` (sized to `plan.node_count()`).
/// Estimates are read through `stats` — corrections included, when
/// feedback is attached — and factored into `static × correction`
/// against a feedback-stripped copy so the rendering can show
/// `est≈static×corr` for feedback-steered nodes.
pub fn build_op_profile(
    plan: &Physical,
    db: &Database,
    stats: &Statistics,
    profile: &PlanProfile,
) -> OpProfile {
    debug_assert_eq!(profile.len(), plan.node_count(), "profile sized to plan");
    let raw = stats.without_feedback();
    let mut id = 0;
    build(plan, db, stats, &raw, profile, &mut id)
}

fn build(
    plan: &Physical,
    db: &Database,
    stats: &Statistics,
    raw: &Statistics,
    profile: &PlanProfile,
    id: &mut usize,
) -> OpProfile {
    let snap = profile.node(*id).snapshot();
    *id += 1;
    let children: Vec<OpProfile> = plan
        .children()
        .into_iter()
        .map(|c| build(c, db, stats, raw, profile, id))
        .collect();
    let mut detail: Vec<(&'static str, String)> = Vec::new();
    match plan {
        Physical::SeqScan { .. }
        | Physical::IndexSeek { .. }
        | Physical::IndexRangeSeek { .. }
        | Physical::CompositeSeek { .. } => {
            detail.push(("scanned", snap.rows_in.to_string()));
        }
        Physical::IndexOnlyScan { .. } => detail.push(("keys", snap.rows_in.to_string())),
        Physical::HashJoin { .. } => {
            detail.push(("build", children[0].stats.rows.to_string()));
            detail.push(("probe", children[1].stats.rows.to_string()));
            detail.push(("partitions", snap.partitions.to_string()));
            detail.push(("max_partition", snap.max_partition.to_string()));
        }
        Physical::Intersect { .. } => {
            detail.push(("build", children[0].stats.rows.to_string()));
            detail.push(("probe", children[1].stats.rows.to_string()));
        }
        Physical::MergeJoin { .. } => {
            detail.push(("left", children[0].stats.rows.to_string()));
            detail.push(("right", children[1].stats.rows.to_string()));
        }
        Physical::Sort { .. } => detail.push(("runs", snap.runs.to_string())),
        _ => {}
    }
    if snap.morsels > 0 {
        detail.push(("morsels", snap.morsels.to_string()));
    }
    if snap.vec_batches > 0 {
        detail.push(("vec", snap.vec_batches.to_string()));
    }
    let est_rows = estimate(plan, stats).rows;
    let static_rows = estimate(plan, raw).rows;
    let corr = if static_rows > 0.0 {
        est_rows / static_rows
    } else {
        1.0
    };
    OpProfile {
        label: plan.describe(db),
        est_rows,
        corr,
        stats: snap,
        detail,
        children,
    }
}

/// Walks `plan` zipped with its execution counters and derives, per
/// cardinality-bearing operator, an observed-vs-estimated
/// [`FeedbackObservation`] keyed the same way the cost model reads its
/// corrections (per fused predicate for scans/seeks/filters, the output
/// type × dominant key for joins). Returns the observations plus the
/// query's worst per-operator q-error (≥ 1.0; 1.0 for an empty plan).
///
/// Estimates are taken through `stats` *with* corrections applied, so
/// each observation carries only the residual error — folding it in
/// converges instead of double-counting.
pub fn collect_feedback(
    plan: &Physical,
    stats: &Statistics,
    profile: &PlanProfile,
) -> (f64, Vec<FeedbackObservation>) {
    debug_assert_eq!(profile.len(), plan.node_count(), "profile sized to plan");
    let mut max_q = 1.0_f64;
    let mut out = Vec::new();
    let mut id = 0;
    collect(plan, stats, profile, &mut id, &mut max_q, &mut out);
    (max_q, out)
}

fn collect(
    plan: &Physical,
    stats: &Statistics,
    profile: &PlanProfile,
    id: &mut usize,
    max_q: &mut f64,
    out: &mut Vec<FeedbackObservation>,
) {
    let snap = profile.node(*id).snapshot();
    *id += 1;
    if snap.calls > 0 {
        let est_rows = estimate(plan, stats).rows;
        *max_q = max_q.max(q_error(est_rows, snap.rows));
        let keys = feedback_keys(plan, stats);
        if !keys.is_empty() {
            out.push(FeedbackObservation {
                keys,
                est_rows,
                act_rows: snap.rows as f64,
            });
        }
    }
    for c in plan.children() {
        collect(c, stats, profile, id, max_q, out);
    }
}

fn pred_key(ty: TypeId, attr: AttrId, pred: &Predicate) -> FeedbackKey {
    FeedbackKey {
        ty: ty.index() as u32,
        attr: attr.index() as u32,
        class: if pred.as_eq().is_some() {
            PredClass::Eq
        } else {
            PredClass::Range
        },
    }
}

fn eq_key(ty: TypeId, attr: AttrId) -> FeedbackKey {
    FeedbackKey {
        ty: ty.index() as u32,
        attr: attr.index() as u32,
        class: PredClass::Eq,
    }
}

fn range_key(ty: TypeId, attr: AttrId) -> FeedbackKey {
    FeedbackKey {
        ty: ty.index() as u32,
        attr: attr.index() as u32,
        class: PredClass::Range,
    }
}

/// The feedback keys behind one operator's cardinality estimate —
/// mirroring exactly which `(type, attribute, class)` selectivities the
/// cost model multiplied to produce it, so corrections land where the
/// next estimate will read them. Operators whose row count is not a
/// selectivity product (projections, sorts, unions) contribute nothing.
fn feedback_keys(plan: &Physical, stats: &Statistics) -> Vec<FeedbackKey> {
    match plan {
        Physical::SeqScan { ty, preds } | Physical::IndexOnlyScan { ty, preds, .. } => {
            preds.iter().map(|(a, p)| pred_key(*ty, *a, p)).collect()
        }
        Physical::Filter { input, preds } => {
            let ty = input.ty();
            preds.iter().map(|(a, p)| pred_key(ty, *a, p)).collect()
        }
        Physical::IndexSeek {
            ty, attr, residual, ..
        } => std::iter::once(eq_key(*ty, *attr))
            .chain(residual.iter().map(|(a, p)| pred_key(*ty, *a, p)))
            .collect(),
        Physical::IndexRangeSeek {
            ty,
            attr,
            lo,
            hi,
            residual,
        } => {
            // Unbounded on both sides the seek is an ordered full scan:
            // no range selectivity was charged, so there is nothing to
            // correct on `attr`.
            let range = (lo.is_some() || hi.is_some()).then(|| range_key(*ty, *attr));
            range
                .into_iter()
                .chain(residual.iter().map(|(a, p)| pred_key(*ty, *a, p)))
                .collect()
        }
        Physical::CompositeSeek {
            ty,
            attrs,
            prefix,
            suffix,
            residual,
        } => attrs[..prefix.len()]
            .iter()
            .map(|a| eq_key(*ty, *a))
            .chain(
                suffix
                    .is_some()
                    .then(|| attrs.get(prefix.len()).map(|a| range_key(*ty, *a)))
                    .flatten(),
            )
            .chain(residual.iter().map(|(a, p)| pred_key(*ty, *a, p)))
            .collect(),
        Physical::HashJoin {
            build,
            probe,
            keys,
            ty,
        }
        | Physical::MergeJoin {
            left: build,
            right: probe,
            keys,
            ty,
        } => vec![FeedbackKey {
            ty: ty.index() as u32,
            attr: stats
                .dominant_join_key(build.ty(), probe.ty(), keys)
                .map_or(FeedbackKey::NO_ATTR, |a| a.index() as u32),
            class: PredClass::Join,
        }],
        _ => Vec::new(),
    }
}
