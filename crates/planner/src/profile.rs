//! Zipping raw execution counters with planner estimates.
//!
//! The executor fills a flat [`PlanProfile`] (one atomic slot per
//! operator, addressed pre-order); this module walks the plan tree a
//! second time and zips each operator's description and cost-model
//! estimate with its observed counters into the [`OpProfile`] tree that
//! `explain_analyze` renders.

use toposem_extension::Database;
use toposem_obs::{OpProfile, PlanProfile};
use toposem_storage::Statistics;

use crate::cost::estimate;
use crate::physical::Physical;

/// Builds the annotated operator tree for `plan` from the counters the
/// executor accumulated into `profile` (sized to `plan.node_count()`).
pub fn build_op_profile(
    plan: &Physical,
    db: &Database,
    stats: &Statistics,
    profile: &PlanProfile,
) -> OpProfile {
    debug_assert_eq!(profile.len(), plan.node_count(), "profile sized to plan");
    let mut id = 0;
    build(plan, db, stats, profile, &mut id)
}

fn build(
    plan: &Physical,
    db: &Database,
    stats: &Statistics,
    profile: &PlanProfile,
    id: &mut usize,
) -> OpProfile {
    let snap = profile.node(*id).snapshot();
    *id += 1;
    let children: Vec<OpProfile> = plan
        .children()
        .into_iter()
        .map(|c| build(c, db, stats, profile, id))
        .collect();
    let mut detail: Vec<(&'static str, String)> = Vec::new();
    match plan {
        Physical::SeqScan { .. }
        | Physical::IndexSeek { .. }
        | Physical::IndexRangeSeek { .. }
        | Physical::CompositeSeek { .. } => {
            detail.push(("scanned", snap.rows_in.to_string()));
        }
        Physical::IndexOnlyScan { .. } => detail.push(("keys", snap.rows_in.to_string())),
        Physical::HashJoin { .. } => {
            detail.push(("build", children[0].stats.rows.to_string()));
            detail.push(("probe", children[1].stats.rows.to_string()));
            detail.push(("partitions", snap.partitions.to_string()));
            detail.push(("max_partition", snap.max_partition.to_string()));
        }
        Physical::Intersect { .. } => {
            detail.push(("build", children[0].stats.rows.to_string()));
            detail.push(("probe", children[1].stats.rows.to_string()));
        }
        Physical::MergeJoin { .. } => {
            detail.push(("left", children[0].stats.rows.to_string()));
            detail.push(("right", children[1].stats.rows.to_string()));
        }
        Physical::Sort { .. } => detail.push(("runs", snap.runs.to_string())),
        _ => {}
    }
    if snap.morsels > 0 {
        detail.push(("morsels", snap.morsels.to_string()));
    }
    OpProfile {
        label: plan.describe(db),
        est_rows: estimate(plan, stats).rows,
        stats: snap,
        detail,
        children,
    }
}
