//! The logical plan: a typed, normalised form of the sanctioned-path
//! [`Query`] algebra, plus the rewrite pass.
//!
//! Every node carries its entity type, computed once during lowering (which
//! also runs the sanction checks via [`Query::entity_type`]). The rewrites —
//! selection pushdown, select-merge, idempotent set operations, and
//! dead-branch elimination — all preserve each subplan's entity type, which
//! is the paper's core invariant: a plan node without an entity type would
//! be a recombination of attributes the topology never sanctioned.
//! [`Logical::verify_types`] re-derives every node's type from its children
//! so tests (and debug builds) can prove the invariant held.

use toposem_core::{AttrId, TypeId};
use toposem_extension::Database;
use toposem_storage::{Predicate, Query, QueryError, SortKeys};

/// A typed logical plan node.
#[derive(Clone, Debug, PartialEq)]
pub enum Logical {
    /// A provably empty relation of the given type (dead branch).
    Empty {
        /// Entity type of the (empty) result.
        ty: TypeId,
    },
    /// The full extension of an entity type.
    Scan {
        /// Scanned entity type.
        ty: TypeId,
    },
    /// Conjunctive selection (equality and range predicates);
    /// type-preserving.
    Select {
        /// Input plan.
        input: Box<Logical>,
        /// Conjunction of single-attribute predicates.
        preds: Vec<(AttrId, Predicate)>,
    },
    /// Projection onto a generalisation.
    Project {
        /// Input plan.
        input: Box<Logical>,
        /// Target (generalisation) type.
        to: TypeId,
    },
    /// Natural join whose attribute union is the declared type `ty`.
    Join {
        /// Left input.
        left: Box<Logical>,
        /// Right input.
        right: Box<Logical>,
        /// The declared entity type of the combined attribute set.
        ty: TypeId,
    },
    /// Same-type union.
    Union {
        /// Left input.
        left: Box<Logical>,
        /// Right input.
        right: Box<Logical>,
    },
    /// Same-type intersection.
    Intersect {
        /// Left input.
        left: Box<Logical>,
        /// Right input.
        right: Box<Logical>,
    },
    /// A required output ordering — only ever the root of a plan
    /// (ordering an intermediate set is meaningless, so lowering drops
    /// nested `OrderBy` nodes). The physical planner satisfies it with
    /// an order-carrying access path when one exists and a `Sort`
    /// enforcer otherwise.
    OrderBy {
        /// Input plan.
        input: Box<Logical>,
        /// Required sort keys, applied left to right.
        keys: SortKeys,
    },
}

impl Logical {
    /// The entity type of this plan's result.
    pub fn ty(&self) -> TypeId {
        match self {
            Logical::Empty { ty } | Logical::Scan { ty } | Logical::Join { ty, .. } => *ty,
            Logical::Select { input, .. }
            | Logical::OrderBy { input, .. }
            | Logical::Union { left: input, .. }
            | Logical::Intersect { left: input, .. } => input.ty(),
            Logical::Project { to, .. } => *to,
        }
    }

    /// Lowers a [`Query`] into a typed logical plan, running the full
    /// sanction validation first (so lowering itself cannot go wrong) and
    /// merging nested selections along the way.
    pub fn lower(q: &Query, db: &Database) -> Result<Logical, QueryError> {
        q.entity_type(db)?;
        // Only the root ordering is observable (results are sets);
        // collapse a stack of root `OrderBy`s to the outermost keys and
        // drop any nested ones during lowering.
        let (keys, inner) = match q {
            Query::OrderBy { input, keys } => {
                let mut inner = input.as_ref();
                while let Query::OrderBy { input, .. } = inner {
                    inner = input.as_ref();
                }
                (keys.clone(), inner)
            }
            _ => (Vec::new(), q),
        };
        let mut plan = Self::lower_validated(inner);
        plan.patch_join_types(db);
        Ok(if keys.is_empty() {
            plan
        } else {
            Logical::OrderBy {
                input: Box::new(plan),
                keys,
            }
        })
    }

    fn lower_validated(q: &Query) -> Logical {
        match q {
            Query::Scan(e) => Logical::Scan { ty: *e },
            Query::Select { input, attr, pred } => {
                let mut preds = vec![(*attr, pred.clone())];
                let mut inner = input.as_ref();
                // Select-merge: collapse Select chains into one predicate
                // list (deepest predicate first, order is irrelevant for a
                // conjunction).
                while let Query::Select { input, attr, pred } = inner {
                    preds.push((*attr, pred.clone()));
                    inner = input.as_ref();
                }
                preds.reverse();
                Logical::Select {
                    input: Box::new(Self::lower_validated(inner)),
                    preds,
                }
            }
            Query::Project { input, to } => Logical::Project {
                input: Box::new(Self::lower_validated(input)),
                to: *to,
            },
            Query::Join(a, b) => {
                // Resolving the combined type needs the schema, which this
                // recursion does not carry; `patch_join_types` fills every
                // join's type immediately after (both are called only from
                // `lower`).
                Logical::Join {
                    left: Box::new(Self::lower_validated(a)),
                    right: Box::new(Self::lower_validated(b)),
                    ty: TypeId(u32::MAX), // patched by `patch_join_types`
                }
            }
            Query::Union(a, b) => Logical::Union {
                left: Box::new(Self::lower_validated(a)),
                right: Box::new(Self::lower_validated(b)),
            },
            Query::Intersect(a, b) => Logical::Intersect {
                left: Box::new(Self::lower_validated(a)),
                right: Box::new(Self::lower_validated(b)),
            },
            // Non-root orderings are meaningless over sets.
            Query::OrderBy { input, .. } => Self::lower_validated(input),
        }
    }

    /// Patches join output types (which need the schema) after
    /// `lower_validated`. Called by [`Logical::lower`] — kept separate so
    /// the recursion stays readable.
    fn patch_join_types(&mut self, db: &Database) {
        match self {
            Logical::Join { left, right, ty } => {
                left.patch_join_types(db);
                right.patch_join_types(db);
                let schema = db.schema();
                let combined = schema
                    .attrs_of(left.ty())
                    .union(schema.attrs_of(right.ty()));
                *ty = schema
                    .type_ids()
                    .find(|&t| schema.attrs_of(t) == &combined)
                    .expect("validated join has a declared type");
            }
            Logical::Select { input, .. }
            | Logical::Project { input, .. }
            | Logical::OrderBy { input, .. } => input.patch_join_types(db),
            Logical::Union { left, right } | Logical::Intersect { left, right } => {
                left.patch_join_types(db);
                right.patch_join_types(db);
            }
            Logical::Empty { .. } | Logical::Scan { .. } => {}
        }
    }

    /// Recomputes the entity type of every node from its children and the
    /// schema, confirming the sanction invariant still holds. Returns the
    /// root type; panics (with a description) when any node's structure
    /// stopped being sanctioned — rewrites must make this impossible.
    pub fn verify_types(&self, db: &Database) -> TypeId {
        let schema = db.schema();
        match self {
            Logical::Empty { ty } | Logical::Scan { ty } => *ty,
            Logical::Select { input, preds } => {
                let t = input.verify_types(db);
                for (a, _) in preds {
                    assert!(
                        schema.attrs_of(t).contains(a.index()),
                        "selection attribute {a} outside type {t}"
                    );
                }
                t
            }
            Logical::Project { input, to } => {
                let from = input.verify_types(db);
                assert!(
                    schema.attrs_of(*to).is_subset(schema.attrs_of(from)),
                    "projection target {to} is not a generalisation of {from}"
                );
                *to
            }
            Logical::Join { left, right, ty } => {
                let tl = left.verify_types(db);
                let tr = right.verify_types(db);
                let combined = schema.attrs_of(tl).union(schema.attrs_of(tr));
                assert!(
                    schema.attrs_of(*ty) == &combined,
                    "join output {ty} does not cover its inputs' attributes"
                );
                *ty
            }
            Logical::Union { left, right } | Logical::Intersect { left, right } => {
                let tl = left.verify_types(db);
                let tr = right.verify_types(db);
                assert_eq!(tl, tr, "set operation over distinct types");
                tl
            }
            Logical::OrderBy { input, keys } => {
                let t = input.verify_types(db);
                for (a, _) in keys {
                    assert!(
                        schema.attrs_of(t).contains(a.index()),
                        "sort key {a} outside type {t}"
                    );
                }
                t
            }
        }
    }

    /// The rewrite pass: selection pushdown, dead-branch elimination, and
    /// idempotent set-operation removal, to fixpoint. Every rule preserves
    /// node types (checked by `verify_types` in tests).
    pub fn rewrite(self, db: &Database) -> Logical {
        let mut plan = self;
        loop {
            let (next, changed) = plan.rewrite_once(db);
            plan = next;
            if !changed {
                return plan;
            }
        }
    }

    fn rewrite_once(self, db: &Database) -> (Logical, bool) {
        let schema = db.schema();
        match self {
            Logical::Select { input, preds } => {
                let (input, mut changed) = input.rewrite_once(db);
                if preds.is_empty() {
                    return (input, true);
                }
                // Contradictory conjunction: per attribute, the
                // intersection of all predicate intervals is empty
                // (covers two different equality constants, disjoint
                // ranges, an equality outside a range, and inverted
                // `Between`s alike).
                if conjunction_unsatisfiable(&preds) {
                    return (Logical::Empty { ty: input.ty() }, true);
                }
                // Semantic optimization: a predicate no member of the
                // attribute's declared domain can satisfy never matches a
                // domain-validated tuple, so the branch is provably
                // empty. This assumes extensions honour their domains —
                // true for everything inserted through the engine;
                // `Database::insert_unchecked` bulk loads bypass
                // validation and must be audited before planned
                // execution (see `PlannedExecution`).
                if preds.iter().any(|(a, p)| domain_excludes(db, *a, p)) {
                    return (Logical::Empty { ty: input.ty() }, true);
                }
                let node = match input {
                    Logical::Empty { ty } => {
                        changed = true;
                        Logical::Empty { ty }
                    }
                    // Push below a projection: predicates mention only
                    // attributes of `to`, all present below.
                    Logical::Project { input, to } => {
                        changed = true;
                        Logical::Project {
                            input: Box::new(Logical::Select { input, preds }),
                            to,
                        }
                    }
                    // Push into every join side that carries the attribute;
                    // shared attributes agree across merged tuples, so
                    // filtering either side is equivalent to filtering the
                    // merge.
                    Logical::Join { left, right, ty } => {
                        changed = true;
                        let la = schema.attrs_of(left.ty());
                        let ra = schema.attrs_of(right.ty());
                        let lp: Vec<_> = preds
                            .iter()
                            .filter(|(a, _)| la.contains(a.index()))
                            .cloned()
                            .collect();
                        let rp: Vec<_> = preds
                            .iter()
                            .filter(|(a, _)| ra.contains(a.index()))
                            .cloned()
                            .collect();
                        Logical::Join {
                            left: Box::new(Logical::Select {
                                input: left,
                                preds: lp,
                            }),
                            right: Box::new(Logical::Select {
                                input: right,
                                preds: rp,
                            }),
                            ty,
                        }
                    }
                    // Push through set operations into both branches.
                    Logical::Union { left, right } => {
                        changed = true;
                        Logical::Union {
                            left: Box::new(Logical::Select {
                                input: left,
                                preds: preds.clone(),
                            }),
                            right: Box::new(Logical::Select {
                                input: right,
                                preds,
                            }),
                        }
                    }
                    Logical::Intersect { left, right } => {
                        changed = true;
                        Logical::Intersect {
                            left: Box::new(Logical::Select {
                                input: left,
                                preds: preds.clone(),
                            }),
                            right: Box::new(Logical::Select {
                                input: right,
                                preds,
                            }),
                        }
                    }
                    // Merge stacked selections produced by other rewrites.
                    Logical::Select {
                        input,
                        preds: inner,
                    } => {
                        changed = true;
                        let mut merged = inner;
                        merged.extend(preds);
                        Logical::Select {
                            input,
                            preds: merged,
                        }
                    }
                    other => Logical::Select {
                        input: Box::new(other),
                        preds,
                    },
                };
                (node, changed)
            }
            Logical::Project { input, to } => {
                let (input, changed) = input.rewrite_once(db);
                match input {
                    Logical::Empty { .. } => (Logical::Empty { ty: to }, true),
                    // Collapse projection towers: only the final target
                    // matters (each step is a further generalisation).
                    Logical::Project { input, .. } => (Logical::Project { input, to }, true),
                    // A projection onto the input's own type is the
                    // identity.
                    other if other.ty() == to => (other, true),
                    other => (
                        Logical::Project {
                            input: Box::new(other),
                            to,
                        },
                        changed,
                    ),
                }
            }
            Logical::Join { left, right, ty } => {
                let (left, cl) = left.rewrite_once(db);
                let (right, cr) = right.rewrite_once(db);
                if matches!(left, Logical::Empty { .. }) || matches!(right, Logical::Empty { .. }) {
                    return (Logical::Empty { ty }, true);
                }
                (
                    Logical::Join {
                        left: Box::new(left),
                        right: Box::new(right),
                        ty,
                    },
                    cl || cr,
                )
            }
            Logical::Union { left, right } => {
                let (left, cl) = left.rewrite_once(db);
                let (right, cr) = right.rewrite_once(db);
                if matches!(left, Logical::Empty { .. }) {
                    return (right, true);
                }
                if matches!(right, Logical::Empty { .. }) {
                    return (left, true);
                }
                if left == right {
                    return (left, true);
                }
                (
                    Logical::Union {
                        left: Box::new(left),
                        right: Box::new(right),
                    },
                    cl || cr,
                )
            }
            Logical::Intersect { left, right } => {
                let (left, cl) = left.rewrite_once(db);
                let (right, cr) = right.rewrite_once(db);
                if matches!(left, Logical::Empty { .. }) {
                    return (Logical::Empty { ty: left.ty() }, true);
                }
                if matches!(right, Logical::Empty { .. }) {
                    return (Logical::Empty { ty: right.ty() }, true);
                }
                if left == right {
                    return (left, true);
                }
                (
                    Logical::Intersect {
                        left: Box::new(left),
                        right: Box::new(right),
                    },
                    cl || cr,
                )
            }
            Logical::OrderBy { input, keys } => {
                let (input, changed) = input.rewrite_once(db);
                // Ordering an empty result is vacuous.
                if matches!(input, Logical::Empty { .. }) {
                    return (input, true);
                }
                (
                    Logical::OrderBy {
                        input: Box::new(input),
                        keys,
                    },
                    changed,
                )
            }
            leaf @ (Logical::Empty { .. } | Logical::Scan { .. }) => (leaf, false),
        }
    }
}

/// True when no single value can satisfy every predicate some attribute
/// carries: per attribute the predicates are intersected as
/// [`toposem_storage::Interval`]s under the total [`Ord`] on values
/// (equality is the degenerate interval), and an empty intersection
/// proves the conjunction unsatisfiable.
fn conjunction_unsatisfiable(preds: &[(AttrId, Predicate)]) -> bool {
    use std::collections::HashMap;
    use toposem_storage::Interval;
    let mut intervals: HashMap<AttrId, Interval> = HashMap::new();
    for (a, p) in preds {
        if p.is_empty() {
            return true;
        }
        intervals
            .entry(*a)
            .or_insert_with(Interval::full)
            .tighten(p);
    }
    intervals.values().any(Interval::is_empty)
}

/// True when no member of `a`'s declared domain satisfies `p`: equality
/// against the membership test directly; ranges over integer-range
/// domains analytically (no enumeration — a bound integer range may be
/// huge); other *finite* domains by checking every member. Unbounded
/// domains are never excluded.
fn domain_excludes(db: &Database, a: AttrId, p: &Predicate) -> bool {
    use toposem_extension::{DomainSpec, Value};
    let schema = db.schema();
    if let Some(v) = p.as_eq() {
        return !db.catalog().admits(schema, a, v);
    }
    let spec = db.catalog().domain_of(schema, a);
    match spec {
        // The integers of [lo, hi] that satisfy the predicate form a
        // contiguous run; if it is non-empty it contains the domain edge
        // or an integer adjacent to one of the predicate's own integer
        // bounds, so testing those candidates decides membership without
        // materialising the domain.
        DomainSpec::IntRange(lo, hi) => {
            let mut candidates = vec![*lo, *hi];
            let (plo, phi) = p.bounds();
            for (v, _) in [plo, phi].into_iter().flatten() {
                if let Value::Int(b) = v {
                    candidates.extend(
                        [b.saturating_sub(1), *b, b.saturating_add(1)].map(|c| c.clamp(*lo, *hi)),
                    );
                }
            }
            !candidates
                .into_iter()
                .any(|c| (*lo..=*hi).contains(&c) && p.matches(&Value::Int(c)))
        }
        _ => match spec.enumerate() {
            Some(members) => !members.iter().any(|m| p.matches(m)),
            None => false,
        },
    }
}

/// Lowers and rewrites in one step — the planner front half.
pub fn lower_and_rewrite(q: &Query, db: &Database) -> Result<Logical, QueryError> {
    let plan = Logical::lower(q, db)?;
    debug_assert_eq!(plan.verify_types(db), plan.ty());
    let rewritten = plan.rewrite(db);
    debug_assert_eq!(rewritten.verify_types(db), rewritten.ty());
    Ok(rewritten)
}
