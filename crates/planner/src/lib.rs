//! # toposem-planner
//!
//! A cost-based query planner and vectorised executor for the
//! topology-sanctioned query algebra of `toposem-storage`.
//!
//! The naive `Query::execute` interpreter materialises every
//! intermediate relation and never consults the engine's secondary
//! indexes. This crate compiles the same `Query` AST through three
//! stages:
//!
//! 1. **[`logical`]** — lowering into a typed logical plan plus a rewrite
//!    pass (selection pushdown through sanctioned projections, joins, and
//!    set operations; select-merge over equality *and* range predicates;
//!    dead-branch elimination via per-attribute interval intersection and
//!    finite-domain exclusion). Every rewrite preserves the entity type
//!    of every subplan — the paper's core invariant that a query result
//!    is always an instance set of a declared entity type.
//! 2. **[`cost`]** — cardinality/cost estimation over the engine's
//!    [`toposem_storage::Statistics`] layer (per-type cardinalities,
//!    per-attribute distinct counts feeding join cardinalities, min/max
//!    spans for range selectivity), driving access-path selection,
//!    build-side choice, and join reordering.
//! 3. **[`physical`] / [`exec`]** — *property-aware* physical planning:
//!    every operator advertises its output sort order, each logical node
//!    compiles to a non-dominated (cost, order) candidate frontier, and
//!    multi-way joins are reordered by DPsize over the sanctioned subset
//!    lattice (greedy above 8 relations). Operators: `IndexSeek`,
//!    `IndexRangeSeek` over ordered indexes, `CompositeSeek` over
//!    composite-index prefixes + range suffixes, `IndexOnlyScan` over
//!    covering indexes, `SeqScan`, `Filter`, `Project`, `HashJoin`,
//!    `MergeJoin` (consuming carried order), `Sort` (enforcing it),
//!    `Union`, `Intersect` — executed as a push-based batch pipeline;
//!    the `parallel` feature turns the executor into a morsel-driven
//!    scheduler: relations split into fixed-size morsels handed to a
//!    scoped worker pool, with partitioned parallel hash joins, parallel
//!    set operations, parallel sort-run generation, and fused
//!    filter/project scan pipelines — merged back in morsel order so
//!    parallel results are bit-identical to serial ones. Tune with
//!    [`ExecOptions`] (or `TOPOSEM_THREADS` / `TOPOSEM_MORSEL_SIZE`).
//!
//! The entry point is the [`QueryTarget`] trait with a [`QueryRequest`]
//! builder — one pipeline behind every switch (ordering, options,
//! profiling, read consistency), implemented by the live engine, pinned
//! snapshots, and replication followers:
//!
//! ```
//! use toposem_core::{employee_schema, Intension};
//! use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Value};
//! use toposem_planner::{PlannedExecution, QueryRequest, QueryTarget};
//! use toposem_storage::{Engine, Query};
//!
//! let eng = Engine::new(Database::new(
//!     Intension::analyse(employee_schema()),
//!     DomainCatalog::employee_defaults(),
//!     ContainmentPolicy::Eager,
//! ));
//! let (employee, depname, age) = eng.with_db(|db| {
//!     let s = db.schema();
//!     (
//!         s.type_id("employee").unwrap(),
//!         s.attr_id("depname").unwrap(),
//!         s.attr_id("age").unwrap(),
//!     )
//! });
//! for (name, age, dep) in [
//!     ("ann", 40, "sales"),
//!     ("bob", 30, "research"),
//!     ("carol", 25, "admin"),
//!     ("dave", 35, "research"),
//! ] {
//!     eng.insert(employee, &[
//!         ("name", Value::str(name)),
//!         ("age", Value::Int(age)),
//!         ("depname", Value::str(dep)),
//!     ]).unwrap();
//! }
//! eng.create_index(employee, depname).unwrap();
//! eng.create_ord_index(employee, age).unwrap();
//!
//! let q = Query::scan(employee).select(depname, Value::str("sales"));
//! let resp = eng.run(&QueryRequest::new(q.clone())).unwrap();
//! assert_eq!(resp.ty, employee);
//! assert_eq!(resp.rows.len(), 1);
//! // The same query explains as an index seek:
//! assert!(eng.explain(&q).unwrap().contains("IndexSeek"));
//!
//! // A selective range walks only the qualifying slice of the BTree
//! // (a wide range would price near the whole table — the equi-depth
//! // histogram sees that — and scan instead):
//! let r = Query::scan(employee).select_between(age, Value::Int(25), Value::Int(26));
//! let resp = eng.run(&QueryRequest::new(r.clone())).unwrap();
//! assert_eq!(resp.rows.len(), 1); // carol (25)
//! assert!(eng.explain(&r).unwrap().contains("IndexRangeSeek"));
//!
//! // An ascending order-by over the ordered index is carried, not
//! // enforced — an `ordered` request returns the sequence:
//! let o = Query::scan(employee).order_by_asc(age);
//! let seq = eng.run(&QueryRequest::new(o.clone()).ordered()).unwrap().rows.seq().unwrap();
//! let ages: Vec<_> = seq.iter().map(|t| t.get(age).cloned().unwrap()).collect();
//! assert_eq!(ages, vec![Value::Int(25), Value::Int(30), Value::Int(35), Value::Int(40)]);
//! assert!(!eng.explain(&o).unwrap().contains("Sort"));
//! ```

pub mod cost;
pub mod exec;
pub mod logical;
pub mod physical;
pub mod profile;
pub mod request;

use std::sync::Arc;
use std::time::Instant;

use toposem_core::TypeId;
use toposem_extension::{Instance, Relation};
use toposem_obs::{PlanProfile, QueryProfile, QueryTrace};
use toposem_storage::{Engine, EngineSnapshot, Query, QueryError};

pub use cost::{estimate, estimate_with, parallel_degree, Estimate};
pub use exec::{
    execute, execute_ordered, execute_ordered_profiled_with, execute_ordered_with,
    execute_profiled_with, execute_with, plan_supported, ExecOptions, DEFAULT_MORSEL_SIZE,
};
pub use logical::{lower_and_rewrite, Logical};
pub use physical::{
    order_satisfies, order_satisfies_with_bound, plan, plan_with, Physical, PlannerOptions,
    BATCH_SIZE,
};
pub use profile::build_op_profile;
pub use request::{
    Consistency, PinnedSnapshot, QueryRequest, QueryResponse, QueryRows, QueryTarget,
};

/// Planned execution of sanctioned queries — implemented for
/// [`Engine`], giving it the `query_planned` entry point.
///
/// **Deprecation note.** This trait (with [`ProfiledExecution`] and
/// [`SnapshotExecution`]) predates the unified [`QueryRequest`] /
/// [`QueryTarget`] API and survives as a thin shim over it — same plan
/// cache, same trace, same results. New code should build a
/// [`QueryRequest`] and call [`QueryTarget::run`]; these methods remain
/// for source compatibility and may be removed in a future major
/// version.
///
/// **Integrity assumption.** The optimizer performs *semantic* rewrites
/// that rely on declared constraints: a selection constant outside its
/// attribute's domain proves a branch empty. Every mutation through the
/// engine enforces those constraints, so the assumption is sound for
/// engine-managed data; only `toposem_extension::Database::insert_unchecked`
/// bulk loads can plant violating tuples, and such data must be audited
/// (or re-validated) before planned execution is meaningful over it.
pub trait PlannedExecution {
    /// Plans and executes `q`, returning its entity type and result
    /// relation — observably identical to the naive `Query::execute`
    /// on domain-respecting extensions, just faster. Physical plans are
    /// cached on the engine keyed by `(query fingerprint, statistics
    /// epoch)`, so a hot query repeated between mutations skips
    /// rewrite+costing entirely.
    fn query_planned(&self, q: &Query) -> Result<(TypeId, Relation), QueryError>;

    /// Plans and executes `q`, returning its tuples as a sequence
    /// honouring the query's root [`Query::OrderBy`] (when it has one):
    /// the planner either picks an order-carrying access path — index
    /// walks and merge joins emit sorted output for free — or inserts a
    /// `Sort` enforcer. The sequence is deduplicated (results are sets
    /// with a presentation order). Shares the plan cache with
    /// [`PlannedExecution::query_planned`].
    fn query_planned_ordered(&self, q: &Query) -> Result<(TypeId, Vec<Instance>), QueryError>;

    /// [`PlannedExecution::query_planned`] with explicit [`ExecOptions`]
    /// — the thread-pool ceiling and morsel size for this execution.
    /// `ExecOptions::serial()` pins a single-threaded run regardless of
    /// the process defaults; results are identical either way (parallel
    /// workers merge in morsel order).
    ///
    /// Note that the options govern *execution only*: plans are costed
    /// (and cached, shared across callers) under the process-default
    /// knobs, so a custom `ExecOptions` changes how a plan runs, never
    /// which plan is chosen.
    fn query_planned_with(
        &self,
        q: &Query,
        opts: &ExecOptions,
    ) -> Result<(TypeId, Relation), QueryError>;

    /// [`PlannedExecution::query_planned_ordered`] with explicit
    /// [`ExecOptions`].
    fn query_planned_ordered_with(
        &self,
        q: &Query,
        opts: &ExecOptions,
    ) -> Result<(TypeId, Vec<Instance>), QueryError>;

    /// Renders the chosen physical plan with cost estimates and the plan
    /// cache's hit/miss counters.
    fn explain(&self, q: &Query) -> Result<String, QueryError>;
}

/// Profiled execution — `EXPLAIN ANALYZE` for the planned path,
/// implemented for [`Engine`].
///
/// **Deprecation note.** Shim over [`QueryRequest::profiled`] +
/// [`QueryTarget::run`]; see [`PlannedExecution`].
///
/// Profiling never changes execution: a profiled run produces a result
/// bit-identical to [`PlannedExecution::query_planned`] (serial and
/// parallel), it just also returns the annotated [`QueryProfile`] tree
/// with estimated vs actual rows, per-node q-error, inclusive wall
/// time, and actual parallel degree.
pub trait ProfiledExecution {
    /// Plans, executes, and profiles `q`, returning its entity type,
    /// result relation, and the query's [`QueryProfile`]. Shares the
    /// plan cache (and its hit/miss accounting) with
    /// [`PlannedExecution::query_planned`].
    fn query_profiled(
        &self,
        q: &Query,
    ) -> Result<(TypeId, Relation, Arc<QueryProfile>), QueryError>;

    /// [`ProfiledExecution::query_profiled`] with explicit
    /// [`ExecOptions`].
    fn query_profiled_with(
        &self,
        q: &Query,
        opts: &ExecOptions,
    ) -> Result<(TypeId, Relation, Arc<QueryProfile>), QueryError>;

    /// Executes `q` and renders its plan annotated with *actuals*: per
    /// operator the estimated and observed rows, the q-error of the
    /// estimate, inclusive wall time, the observed parallel degree, and
    /// operator detail (build/probe sizes, partition skew, sort runs,
    /// keys touched), plus a phase-timing footer.
    fn explain_analyze(&self, q: &Query) -> Result<String, QueryError>;

    /// [`ProfiledExecution::explain_analyze`] with explicit
    /// [`ExecOptions`].
    fn explain_analyze_with(&self, q: &Query, opts: &ExecOptions) -> Result<String, QueryError>;
}

/// Execution pinned to an explicit [`EngineSnapshot`] — the MVCC read
/// path for long-running read transactions, implemented for [`Engine`].
///
/// **Deprecation note.** Shim over the unified path; prefer a
/// [`PinnedSnapshot`] target with [`QueryTarget::run`]. See
/// [`PlannedExecution`].
///
/// `query_planned` already routes non-transactional statements through
/// the engine's *current* committed snapshot; these entry points let a
/// caller (the session layer's `BEGIN READ`) capture one snapshot via
/// [`Engine::snapshot`] and run any number of queries against that
/// exact epoch: commits that land in between are simply never visible,
/// which is snapshot isolation. Plans are shared through the engine's
/// plan cache keyed on the snapshot's epoch, and every execution is
/// traced and metered exactly like the unpinned path.
pub trait SnapshotExecution {
    /// [`PlannedExecution::query_planned`] against `snap` instead of
    /// the engine's current state.
    fn query_snapshot(
        &self,
        snap: &Arc<EngineSnapshot>,
        q: &Query,
    ) -> Result<(TypeId, Relation), QueryError>;

    /// [`PlannedExecution::query_planned_ordered`] against `snap`.
    fn query_snapshot_ordered(
        &self,
        snap: &Arc<EngineSnapshot>,
        q: &Query,
    ) -> Result<(TypeId, Vec<Instance>), QueryError>;

    /// [`SnapshotExecution::query_snapshot`] with explicit
    /// [`ExecOptions`].
    fn query_snapshot_with(
        &self,
        snap: &Arc<EngineSnapshot>,
        q: &Query,
        opts: &ExecOptions,
    ) -> Result<(TypeId, Relation), QueryError>;
}

impl SnapshotExecution for Engine {
    fn query_snapshot(
        &self,
        snap: &Arc<EngineSnapshot>,
        q: &Query,
    ) -> Result<(TypeId, Relation), QueryError> {
        self.query_snapshot_with(snap, q, &ExecOptions::default())
    }

    fn query_snapshot_ordered(
        &self,
        snap: &Arc<EngineSnapshot>,
        q: &Query,
    ) -> Result<(TypeId, Vec<Instance>), QueryError> {
        let req = QueryRequest::new(q.clone()).ordered();
        let resp = request::run_with(self, &req, Some(snap))?;
        Ok((
            resp.ty,
            resp.rows.seq().expect("ordered request yields Seq"),
        ))
    }

    fn query_snapshot_with(
        &self,
        snap: &Arc<EngineSnapshot>,
        q: &Query,
        opts: &ExecOptions,
    ) -> Result<(TypeId, Relation), QueryError> {
        let req = QueryRequest::new(q.clone()).with_options(*opts);
        let resp = request::run_with(self, &req, Some(snap))?;
        Ok((resp.ty, resp.rows.set().expect("plain request yields Set")))
    }
}

/// A cache entry: the physical plan plus the canonical rendering of the
/// query it was planned for. The cache key is a 64-bit fingerprint of
/// that rendering; the stored rendering is compared on every hit so a
/// fingerprint collision degrades to a miss instead of silently
/// executing another query's plan. The plan's own fingerprint is
/// computed once at plan time so hit-path tracing costs nothing.
struct CachedPlan {
    query_repr: String,
    physical: Physical,
    plan_hash: u64,
}

/// The shared plan-then-run path behind every execution entry point:
/// consult the plan cache, otherwise lower/rewrite/plan and cache the
/// result, and hand the physical plan (with a consistent database +
/// index snapshot) and a freshly sized [`PlanProfile`] to `run`.
///
/// **MVCC routing.** Outside a transaction (or with an explicitly
/// `pinned` snapshot) the whole query — planning, plan validation, and
/// execution — runs against an immutable committed-epoch
/// [`EngineSnapshot`], so readers never hold the engine lock while the
/// single writer mutates the next epoch. Inside a transaction the
/// locked path is kept: the transaction's own queries must see its
/// uncommitted writes. Both routes share the plan cache; snapshot
/// plans are keyed on the snapshot's epoch, so a plan from a newer
/// epoch is never run against an older snapshot (or vice versa).
///
/// Always-on observability: every query allocates its per-operator
/// profile (atomic slots the executor merges into batch-wise), times
/// its plan and exec phases, updates the engine's query metrics, and
/// pushes an entry into the engine's trace ring. The annotated
/// [`QueryProfile`] tree is only *assembled* when the caller asks for
/// it (`want_profile`) or the query crossed the slow-query threshold —
/// assembly re-walks the plan, so it stays off the per-query fast path.
fn with_planned_profiled<R>(
    eng: &Engine,
    q: &Query,
    pinned: Option<&Arc<EngineSnapshot>>,
    want_profile: bool,
    run: impl Fn(
        &Physical,
        &toposem_extension::Database,
        &[Vec<toposem_storage::Index>],
        &PlanProfile,
    ) -> R,
    count_rows: impl Fn(&R) -> u64,
) -> Result<(TypeId, R, Option<Arc<QueryProfile>>), QueryError> {
    let plan_t0 = Instant::now();
    eng.metrics().queries_planned.inc();
    let snap = match pinned {
        Some(s) => Some(Arc::clone(s)),
        None if eng.active_txn_token().is_none() => eng.snapshot(),
        None => None,
    };
    // Epoch before statistics: a mutation in between invalidates the
    // epoch, so a stale plan can be cached but never *stored* as
    // current (plan_cache_store re-checks the epoch). The plan epoch
    // folds in the feedback generation: when this execution's own
    // observations push a correction past the re-plan threshold, the
    // generation bumps, the plan stored below becomes stale, and the
    // next execution replans against the corrected statistics. On the
    // snapshot route the *snapshot's* epoch is used, so a pinned
    // (older) snapshot simply misses the cache instead of poisoning it.
    let epoch = match &snap {
        Some(s) => s.stats_epoch() + eng.feedback().generation(),
        None => eng.plan_epoch(),
    };
    let query_repr = format!("{q:?}");
    let fingerprint = Query::fingerprint_str(&query_repr);
    if let Some(cached) = eng.plan_cache_lookup(fingerprint, epoch) {
        if let Some(entry) = cached.downcast_ref::<CachedPlan>() {
            if entry.query_repr == query_repr {
                let physical = &entry.physical;
                let profile = PlanProfile::new(physical.node_count());
                let plan_ns = plan_t0.elapsed().as_nanos() as u64;
                let exec_t0 = Instant::now();
                // A concurrent `drop_index` between the epoch read above
                // and this execution can strand a cached plan whose index
                // no longer exists; validate the plan against the same
                // index array the execution will use (the immutable
                // snapshot's, or the live one *under the same lock
                // acquisition*), and fall through to replanning on a
                // miss.
                let hit = match &snap {
                    Some(s) => exec::plan_supported(physical, s.indexes())
                        .then(|| (physical.ty(), run(physical, s.db(), s.indexes(), &profile))),
                    None => eng.with_parts(|db, indexes| {
                        exec::plan_supported(physical, indexes)
                            .then(|| (physical.ty(), run(physical, db, indexes, &profile)))
                    }),
                };
                if let Some((ty, out)) = hit {
                    let exec_ns = exec_t0.elapsed().as_nanos() as u64;
                    let qp = observe_query(
                        eng,
                        snap.as_deref(),
                        physical,
                        &profile,
                        ObservedQuery {
                            fingerprint,
                            plan_hash: entry.plan_hash,
                            plan_ns,
                            exec_ns,
                            cache_hit: true,
                            rows: count_rows(&out),
                        },
                        want_profile,
                    );
                    return Ok((ty, out, qp));
                }
            }
        }
    }
    let (ty, physical, out, profile, plan_ns, exec_ns) = match &snap {
        Some(s) => {
            let stats = s.statistics();
            let (db, indexes) = (s.db(), s.indexes());
            let logical = lower_and_rewrite(q, db)?;
            let physical = plan(&logical, db, indexes, &stats);
            debug_assert_eq!(physical.ty(), logical.ty());
            let profile = PlanProfile::new(physical.node_count());
            let plan_ns = plan_t0.elapsed().as_nanos() as u64;
            let exec_t0 = Instant::now();
            let out = run(&physical, db, indexes, &profile);
            let exec_ns = exec_t0.elapsed().as_nanos() as u64;
            (logical.ty(), physical, out, profile, plan_ns, exec_ns)
        }
        None => {
            let stats = eng.statistics();
            eng.with_parts(|db, indexes| {
                let logical = lower_and_rewrite(q, db)?;
                let physical = plan(&logical, db, indexes, &stats);
                debug_assert_eq!(physical.ty(), logical.ty());
                let profile = PlanProfile::new(physical.node_count());
                let plan_ns = plan_t0.elapsed().as_nanos() as u64;
                let exec_t0 = Instant::now();
                let out = run(&physical, db, indexes, &profile);
                let exec_ns = exec_t0.elapsed().as_nanos() as u64;
                Ok::<_, QueryError>((logical.ty(), physical, out, profile, plan_ns, exec_ns))
            })?
        }
    };
    let plan_hash = Query::fingerprint_str(&format!("{physical:?}"));
    let qp = observe_query(
        eng,
        snap.as_deref(),
        &physical,
        &profile,
        ObservedQuery {
            fingerprint,
            plan_hash,
            plan_ns,
            exec_ns,
            cache_hit: false,
            rows: count_rows(&out),
        },
        want_profile,
    );
    eng.plan_cache_store(
        fingerprint,
        epoch,
        Arc::new(CachedPlan {
            query_repr,
            physical,
            plan_hash,
        }),
    );
    Ok((ty, out, qp))
}

/// Phase timings and identity of one observed query execution.
struct ObservedQuery {
    fingerprint: u64,
    plan_hash: u64,
    plan_ns: u64,
    exec_ns: u64,
    cache_hit: bool,
    rows: u64,
}

/// Post-execution bookkeeping: query metrics, the slow-query check, the
/// feedback observations, the trace-ring entry, and — when requested or
/// slow — the annotated profile tree. Runs *after* `with_parts`
/// returned, so re-acquiring the engine lock for label rendering is
/// safe.
fn observe_query(
    eng: &Engine,
    snap: Option<&EngineSnapshot>,
    physical: &Physical,
    profile: &PlanProfile,
    obs: ObservedQuery,
    want_profile: bool,
) -> Option<Arc<QueryProfile>> {
    let metrics = eng.metrics();
    metrics.query_rows_returned.add(obs.rows);
    let trace = eng.query_trace();
    let slow = obs.plan_ns + obs.exec_ns >= trace.slow_query_ns();
    if slow {
        metrics.queries_slow.inc();
    }
    // Statistics the execution actually ran with: the snapshot's on the
    // MVCC route (never the live engine's — a concurrent writer may
    // already be in another epoch), the engine's on the locked route.
    let stats_in_use = || match snap {
        Some(s) => s.statistics(),
        None => eng.statistics(),
    };
    // Compare estimates with actuals *before* folding the observations
    // into the feedback cache: the profile and the q-error histogram
    // must reflect the estimates this execution actually ran with, and
    // a correction learned from run N may only steer run N+1.
    let feedback = (eng.feedback().enabled()).then(|| {
        let stats = stats_in_use();
        let (max_q, observations) = profile::collect_feedback(physical, &stats, profile);
        metrics
            .planner_qerror
            .record((max_q * 100.0).round() as u64);
        (stats.epoch(), max_q, observations)
    });
    let assembled = (want_profile || slow).then(|| {
        let stats = stats_in_use();
        let root = match snap {
            Some(s) => profile::build_op_profile(physical, s.db(), &stats, profile),
            None => eng.with_db(|db| profile::build_op_profile(physical, db, &stats, profile)),
        };
        Arc::new(QueryProfile {
            fingerprint: obs.fingerprint,
            plan_hash: obs.plan_hash,
            plan_ns: obs.plan_ns,
            exec_ns: obs.exec_ns,
            cache_hit: obs.cache_hit,
            rows: obs.rows,
            root,
        })
    });
    trace.push(QueryTrace {
        fingerprint: obs.fingerprint,
        plan_hash: obs.plan_hash,
        plan_ns: obs.plan_ns,
        exec_ns: obs.exec_ns,
        commit_ns: 0,
        rows: obs.rows,
        cache_hit: obs.cache_hit,
        slow,
        max_q: feedback.as_ref().map_or(0.0, |(_, q, _)| *q),
        txn: eng.active_txn_token(),
        session: toposem_obs::current_session(),
        profile: assembled.clone(),
    });
    if let Some((epoch, _, observations)) = feedback {
        eng.feedback().observe(epoch, &observations);
    }
    assembled
}

impl PlannedExecution for Engine {
    fn query_planned(&self, q: &Query) -> Result<(TypeId, Relation), QueryError> {
        self.query_planned_with(q, &ExecOptions::default())
    }

    fn query_planned_ordered(&self, q: &Query) -> Result<(TypeId, Vec<Instance>), QueryError> {
        self.query_planned_ordered_with(q, &ExecOptions::default())
    }

    fn query_planned_with(
        &self,
        q: &Query,
        opts: &ExecOptions,
    ) -> Result<(TypeId, Relation), QueryError> {
        let resp = self.run(&QueryRequest::new(q.clone()).with_options(*opts))?;
        Ok((resp.ty, resp.rows.set().expect("plain request yields Set")))
    }

    fn query_planned_ordered_with(
        &self,
        q: &Query,
        opts: &ExecOptions,
    ) -> Result<(TypeId, Vec<Instance>), QueryError> {
        let resp = self.run(&QueryRequest::new(q.clone()).ordered().with_options(*opts))?;
        Ok((
            resp.ty,
            resp.rows.seq().expect("ordered request yields Seq"),
        ))
    }

    fn explain(&self, q: &Query) -> Result<String, QueryError> {
        let stats = self.statistics();
        let epoch = self.statistics_epoch();
        let cache = self.plan_cache_stats();
        let (hits, misses) = (cache.hits, cache.misses);
        self.with_parts(|db, indexes| {
            let logical = lower_and_rewrite(q, db)?;
            let physical = plan(&logical, db, indexes, &stats);
            let mut out = physical.explain(db, &stats);
            if !out.ends_with('\n') {
                out.push('\n');
            }
            out.push_str(&format!(
                "PlanCache: {hits} hits, {misses} misses (statistics epoch {epoch})\n"
            ));
            Ok(out)
        })
    }
}

impl ProfiledExecution for Engine {
    fn query_profiled(
        &self,
        q: &Query,
    ) -> Result<(TypeId, Relation, Arc<QueryProfile>), QueryError> {
        self.query_profiled_with(q, &ExecOptions::default())
    }

    fn query_profiled_with(
        &self,
        q: &Query,
        opts: &ExecOptions,
    ) -> Result<(TypeId, Relation, Arc<QueryProfile>), QueryError> {
        let resp = self.run(&QueryRequest::new(q.clone()).with_options(*opts).profiled())?;
        Ok((
            resp.ty,
            resp.rows.set().expect("plain request yields Set"),
            resp.profile
                .expect("want_profile always assembles the profile"),
        ))
    }

    fn explain_analyze(&self, q: &Query) -> Result<String, QueryError> {
        self.explain_analyze_with(q, &ExecOptions::default())
    }

    fn explain_analyze_with(&self, q: &Query, opts: &ExecOptions) -> Result<String, QueryError> {
        let (_, _, qp) = self.query_profiled_with(q, opts)?;
        Ok(qp.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::{employee_schema, Intension};
    use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Value};

    fn engine(policy: ContainmentPolicy) -> Engine {
        let eng = Engine::new(Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            policy,
        ));
        let s = eng.with_db(|db| db.schema().clone());
        for (n, a, d, b) in [("ann", 40, "sales", 100), ("bob", 50, "research", 80)] {
            eng.insert(
                s.type_id("manager").unwrap(),
                &[
                    ("name", Value::str(n)),
                    ("age", Value::Int(a)),
                    ("depname", Value::str(d)),
                    ("budget", Value::Int(b)),
                ],
            )
            .unwrap();
        }
        for (n, a, d) in [("carol", 25, "sales"), ("dave", 35, "research")] {
            eng.insert(
                s.type_id("employee").unwrap(),
                &[
                    ("name", Value::str(n)),
                    ("age", Value::Int(a)),
                    ("depname", Value::str(d)),
                ],
            )
            .unwrap();
        }
        for (d, l) in [("sales", "amsterdam"), ("research", "utrecht")] {
            eng.insert(
                s.type_id("department").unwrap(),
                &[("depname", Value::str(d)), ("location", Value::str(l))],
            )
            .unwrap();
        }
        eng
    }

    fn agree(eng: &Engine, q: &Query) {
        let naive = eng.with_db(|db| q.execute(db));
        let planned = eng.query_planned(q);
        match (naive, planned) {
            (Ok(n), Ok(p)) => assert_eq!(n, p, "planned != naive for {q:?}"),
            (Err(en), Err(ep)) => assert_eq!(en, ep),
            (n, p) => panic!("divergent outcomes: naive {n:?}, planned {p:?}"),
        }
    }

    #[test]
    fn planned_matches_naive_across_operators() {
        for policy in [ContainmentPolicy::Eager, ContainmentPolicy::OnDemand] {
            let eng = engine(policy);
            let s = eng.with_db(|db| db.schema().clone());
            let employee = s.type_id("employee").unwrap();
            let person = s.type_id("person").unwrap();
            let department = s.type_id("department").unwrap();
            let depname = s.attr_id("depname").unwrap();
            let age = s.attr_id("age").unwrap();
            let queries = [
                Query::scan(employee),
                Query::scan(employee).select(depname, Value::str("sales")),
                Query::scan(employee)
                    .select(depname, Value::str("sales"))
                    .select(age, Value::Int(25)),
                Query::scan(employee).project(person),
                Query::scan(employee)
                    .select(depname, Value::str("research"))
                    .project(person),
                Query::scan(employee).join(Query::scan(department)),
                Query::scan(employee)
                    .join(Query::scan(department))
                    .select(depname, Value::str("sales")),
                Query::scan(employee)
                    .select(depname, Value::str("sales"))
                    .union(Query::scan(employee).select(depname, Value::str("research"))),
                Query::scan(employee)
                    .select(depname, Value::str("sales"))
                    .intersect(Query::scan(employee).select(age, Value::Int(25))),
                // Select after project-of-join: exercises pushdown through
                // two operator layers.
                Query::scan(employee)
                    .join(Query::scan(department))
                    .project(person)
                    .select(age, Value::Int(40)),
            ];
            for q in &queries {
                agree(&eng, q);
            }
        }
    }

    #[test]
    fn planned_matches_naive_with_indexes() {
        let eng = engine(ContainmentPolicy::Eager);
        let s = eng.with_db(|db| db.schema().clone());
        let employee = s.type_id("employee").unwrap();
        let department = s.type_id("department").unwrap();
        let depname = s.attr_id("depname").unwrap();
        let age = s.attr_id("age").unwrap();
        eng.create_index(employee, depname).unwrap();
        eng.create_index(department, depname).unwrap();
        let queries = [
            Query::scan(employee).select(depname, Value::str("sales")),
            Query::scan(employee)
                .select(age, Value::Int(25))
                .select(depname, Value::str("sales")),
            Query::scan(employee).join(Query::scan(department)),
            Query::scan(employee)
                .join(Query::scan(department))
                .select(depname, Value::str("research")),
        ];
        for q in &queries {
            agree(&eng, q);
        }
        let plan = eng
            .explain(&Query::scan(employee).select(depname, Value::str("sales")))
            .unwrap();
        assert!(
            plan.contains("IndexSeek"),
            "expected an index seek:\n{plan}"
        );
    }

    #[test]
    fn planned_matches_naive_for_range_and_composite_queries() {
        use toposem_storage::Predicate;
        for policy in [ContainmentPolicy::Eager, ContainmentPolicy::OnDemand] {
            let eng = engine(policy);
            let s = eng.with_db(|db| db.schema().clone());
            let employee = s.type_id("employee").unwrap();
            let person = s.type_id("person").unwrap();
            let age = s.attr_id("age").unwrap();
            let name = s.attr_id("name").unwrap();
            let depname = s.attr_id("depname").unwrap();
            if policy == ContainmentPolicy::Eager {
                eng.create_ord_index(employee, age).unwrap();
                eng.create_composite_index(employee, &[depname, name])
                    .unwrap();
            }
            let queries = [
                Query::scan(employee).select_lt(age, Value::Int(35)),
                Query::scan(employee).select_le(age, Value::Int(35)),
                Query::scan(employee).select_gt(age, Value::Int(35)),
                Query::scan(employee).select_ge(age, Value::Int(40)),
                Query::scan(employee).select_between(age, Value::Int(25), Value::Int(40)),
                // Conjunctive range + equality across attributes.
                Query::scan(employee)
                    .select_between(age, Value::Int(20), Value::Int(60))
                    .select(depname, Value::str("sales")),
                // Conjunctive multi-attribute equality (composite prefix).
                Query::scan(employee)
                    .select_all(&[(depname, Value::str("sales")), (name, Value::str("carol"))]),
                // Two ranges on the same attribute intersect.
                Query::scan(employee)
                    .select_ge(age, Value::Int(25))
                    .select_lt(age, Value::Int(50)),
                // Degenerate range collapsing to a point.
                Query::scan(employee)
                    .select_ge(age, Value::Int(25))
                    .select_le(age, Value::Int(25)),
                // Range below a projection.
                Query::scan(employee)
                    .select_between(age, Value::Int(20), Value::Int(45))
                    .project(person),
                // Inverted range: provably empty.
                Query::scan(employee).select_between(age, Value::Int(50), Value::Int(20)),
                // Range predicate via the generic constructor.
                Query::scan(employee).select_pred(age, Predicate::Gt(Value::Int(29))),
            ];
            for q in &queries {
                agree(&eng, q);
            }
        }
    }

    #[test]
    fn selective_range_query_chooses_index_range_seek() {
        let eng = engine(ContainmentPolicy::Eager);
        let s = eng.with_db(|db| db.schema().clone());
        let employee = s.type_id("employee").unwrap();
        let age = s.attr_id("age").unwrap();
        // Bulk data so the range is selective.
        for i in 0..500 {
            eng.insert(
                employee,
                &[
                    ("name", Value::str(&format!("w{i}"))),
                    ("age", Value::Int(i % 90)),
                    ("depname", Value::str("admin")),
                ],
            )
            .unwrap();
        }
        eng.create_ord_index(employee, age).unwrap();
        let q = Query::scan(employee).select_between(age, Value::Int(10), Value::Int(12));
        let plan = eng.explain(&q).unwrap();
        assert!(
            plan.contains("IndexRangeSeek"),
            "selective range must choose the ordered index:\n{plan}"
        );
        agree(&eng, &q);
        // A point query through the same ordered index degenerates to a
        // point seek.
        let point = Query::scan(employee).select(age, Value::Int(41));
        let plan = eng.explain(&point).unwrap();
        assert!(
            plan.contains("IndexSeek"),
            "equality over an ordered index seeks a point:\n{plan}"
        );
        agree(&eng, &point);
    }

    #[test]
    fn composite_prefix_and_index_only_scans_are_chosen() {
        let eng = engine(ContainmentPolicy::Eager);
        let s = eng.with_db(|db| db.schema().clone());
        let employee = s.type_id("employee").unwrap();
        let person = s.type_id("person").unwrap();
        let name = s.attr_id("name").unwrap();
        let age = s.attr_id("age").unwrap();
        let depname = s.attr_id("depname").unwrap();
        for i in 0..300 {
            eng.insert(
                employee,
                &[
                    ("name", Value::str(&format!("w{i}"))),
                    ("age", Value::Int(i % 90)),
                    (
                        "depname",
                        Value::str(["sales", "research", "admin"][(i % 3) as usize]),
                    ),
                ],
            )
            .unwrap();
        }
        eng.create_composite_index(employee, &[depname, name])
            .unwrap();
        // Full-prefix conjunctive equality: CompositeSeek.
        let q = Query::scan(employee)
            .select(depname, Value::str("sales"))
            .select(name, Value::str("w42"));
        let plan = eng.explain(&q).unwrap();
        assert!(
            plan.contains("CompositeSeek"),
            "conjunctive equality must use the composite prefix:\n{plan}"
        );
        agree(&eng, &q);
        // Partial prefix (leading attribute only) still seeks.
        let q = Query::scan(employee).select(depname, Value::str("research"));
        let plan = eng.explain(&q).unwrap();
        assert!(
            plan.contains("CompositeSeek"),
            "leading-attribute equality must use the composite prefix:\n{plan}"
        );
        agree(&eng, &q);
        // A projection covered by an index's key attributes goes
        // index-only: person = {name, age} ⊆ composite (name, age).
        eng.create_composite_index(employee, &[name, age]).unwrap();
        let q = Query::scan(employee).project(person);
        let plan = eng.explain(&q).unwrap();
        assert!(
            plan.contains("IndexOnlyScan"),
            "covered projection must scan the index only:\n{plan}"
        );
        agree(&eng, &q);
        // Covered projection *with* covered predicates stays index-only.
        let q = Query::scan(employee)
            .select_between(age, Value::Int(10), Value::Int(30))
            .project(person);
        let plan = eng.explain(&q).unwrap();
        assert!(
            plan.contains("IndexOnlyScan"),
            "covered filtered projection must scan the index only:\n{plan}"
        );
        agree(&eng, &q);
        // An uncovered predicate (depname) forces the base path.
        let q = Query::scan(employee)
            .select(depname, Value::str("sales"))
            .project(person);
        let plan = eng.explain(&q).unwrap();
        assert!(
            !plan.contains("IndexOnlyScan"),
            "uncovered predicate must not go index-only:\n{plan}"
        );
        agree(&eng, &q);
        // Cost crossover: once a *selective* range seek is available
        // (ordered index on age), a covered-but-unfiltered key walk must
        // lose to Project(IndexRangeSeek) — the executor's index-only
        // path walks every distinct key, and the cost model must charge
        // for that.
        eng.create_ord_index(employee, age).unwrap();
        let q = Query::scan(employee)
            .select_between(age, Value::Int(10), Value::Int(11))
            .project(person);
        let plan = eng.explain(&q).unwrap();
        assert!(
            plan.contains("IndexRangeSeek") && !plan.contains("IndexOnlyScan"),
            "selective range + projection must range-seek, not walk all keys:\n{plan}"
        );
        agree(&eng, &q);
        // The unfiltered covered projection still goes index-only.
        let q = Query::scan(employee).project(person);
        assert!(eng.explain(&q).unwrap().contains("IndexOnlyScan"));
        agree(&eng, &q);
    }

    #[test]
    fn range_contradictions_are_eliminated() {
        let eng = engine(ContainmentPolicy::Eager);
        let s = eng.with_db(|db| db.schema().clone());
        let employee = s.type_id("employee").unwrap();
        let age = s.attr_id("age").unwrap();
        let depname = s.attr_id("depname").unwrap();
        // Disjoint ranges on one attribute.
        let q = Query::scan(employee)
            .select_lt(age, Value::Int(30))
            .select_gt(age, Value::Int(40));
        let plan = eng.explain(&q).unwrap();
        assert!(plan.contains("Empty"), "disjoint ranges survived:\n{plan}");
        agree(&eng, &q);
        // Equality outside a range.
        let q = Query::scan(employee)
            .select(age, Value::Int(50))
            .select_lt(age, Value::Int(20));
        let plan = eng.explain(&q).unwrap();
        assert!(plan.contains("Empty"), "eq-vs-range survived:\n{plan}");
        agree(&eng, &q);
        // Touching exclusive bounds are empty; touching inclusive bounds
        // are not.
        let q = Query::scan(employee)
            .select_lt(age, Value::Int(30))
            .select_ge(age, Value::Int(30));
        assert!(eng.explain(&q).unwrap().contains("Empty"));
        agree(&eng, &q);
        let q = Query::scan(employee)
            .select_le(age, Value::Int(40))
            .select_ge(age, Value::Int(40));
        assert!(!eng.explain(&q).unwrap().contains("Empty"));
        agree(&eng, &q);
        // A range no member of a finite domain can satisfy is dead.
        let q = Query::scan(employee).select_gt(depname, Value::str("zzz"));
        let plan = eng.explain(&q).unwrap();
        assert!(
            plan.contains("Empty"),
            "domain-excluded range survived:\n{plan}"
        );
        agree(&eng, &q);
    }

    #[test]
    fn sanction_violations_error_identically() {
        let eng = engine(ContainmentPolicy::Eager);
        let s = eng.with_db(|db| db.schema().clone());
        let manager = s.type_id("manager").unwrap();
        let department = s.type_id("department").unwrap();
        let person = s.type_id("person").unwrap();
        let budget = s.attr_id("budget").unwrap();
        // Unsanctioned join, downward projection, foreign attribute,
        // cross-type set operation.
        agree(&eng, &Query::scan(manager).join(Query::scan(department)));
        agree(&eng, &Query::scan(person).project(manager));
        agree(&eng, &Query::scan(person).select(budget, Value::Int(1)));
        agree(&eng, &Query::scan(person).union(Query::scan(department)));
    }

    #[test]
    fn dead_branches_are_eliminated() {
        let eng = engine(ContainmentPolicy::Eager);
        let s = eng.with_db(|db| db.schema().clone());
        let employee = s.type_id("employee").unwrap();
        let depname = s.attr_id("depname").unwrap();
        // Contradictory conjunction → Empty.
        let q = Query::scan(employee)
            .select(depname, Value::str("sales"))
            .select(depname, Value::str("research"));
        let plan = eng.explain(&q).unwrap();
        assert!(
            plan.contains("Empty"),
            "contradiction not eliminated:\n{plan}"
        );
        agree(&eng, &q);
        // Out-of-domain constant → Empty.
        let q = Query::scan(employee).select(depname, Value::str("piracy"));
        let plan = eng.explain(&q).unwrap();
        assert!(
            plan.contains("Empty"),
            "domain violation not eliminated:\n{plan}"
        );
        agree(&eng, &q);
        // Union with a dead branch degenerates to the live branch.
        let q = Query::scan(employee)
            .select(depname, Value::str("piracy"))
            .union(Query::scan(employee));
        let plan = eng.explain(&q).unwrap();
        assert!(!plan.contains("Union"), "dead union arm survived:\n{plan}");
        agree(&eng, &q);
    }

    #[test]
    fn selection_pushdown_reaches_join_leaves() {
        let eng = engine(ContainmentPolicy::Eager);
        let s = eng.with_db(|db| db.schema().clone());
        let employee = s.type_id("employee").unwrap();
        let department = s.type_id("department").unwrap();
        let location = s.attr_id("location").unwrap();
        let q = Query::scan(employee)
            .join(Query::scan(department))
            .select(location, Value::str("utrecht"));
        let plan = eng.explain(&q).unwrap();
        // The location predicate belongs to department only; it must have
        // sunk into that side's scan, leaving no post-join filter.
        assert!(
            !plan.contains("Filter"),
            "selection was not pushed down:\n{plan}"
        );
        assert!(
            plan.contains("SeqScan department filter location"),
            "expected filtered department scan:\n{plan}"
        );
        agree(&eng, &q);
    }

    #[test]
    fn rewrites_preserve_entity_types() {
        let eng = engine(ContainmentPolicy::Eager);
        eng.with_db(|db| {
            let s = db.schema();
            let employee = s.type_id("employee").unwrap();
            let person = s.type_id("person").unwrap();
            let department = s.type_id("department").unwrap();
            let depname = s.attr_id("depname").unwrap();
            let queries = [
                Query::scan(employee)
                    .join(Query::scan(department))
                    .select(depname, Value::str("sales"))
                    .project(person),
                Query::scan(employee)
                    .select(depname, Value::str("sales"))
                    .union(Query::scan(employee).select(depname, Value::str("piracy"))),
            ];
            for q in &queries {
                let expect = q.entity_type(db).unwrap();
                let plan = lower_and_rewrite(q, db).unwrap();
                // verify_types recomputes every node's type structurally
                // and panics on any unsanctioned node.
                assert_eq!(plan.verify_types(db), expect);
                assert_eq!(plan.ty(), expect);
            }
        });
    }

    #[test]
    fn plan_cache_hits_repeated_queries_and_invalidates_on_mutation() {
        let eng = engine(ContainmentPolicy::Eager);
        let s = eng.with_db(|db| db.schema().clone());
        let employee = s.type_id("employee").unwrap();
        let depname = s.attr_id("depname").unwrap();
        let q = Query::scan(employee).select(depname, Value::str("sales"));
        assert_eq!(eng.plan_cache_counters(), (0, 0));
        let first = eng.query_planned(&q).unwrap();
        assert_eq!(eng.plan_cache_counters(), (0, 1), "cold cache misses");
        let second = eng.query_planned(&q).unwrap();
        assert_eq!(eng.plan_cache_counters(), (1, 1), "repeat hits");
        assert_eq!(first, second, "cached plan returns identical results");
        // A structurally different query is its own entry.
        let q2 = Query::scan(employee).select(depname, Value::str("research"));
        eng.query_planned(&q2).unwrap();
        assert_eq!(eng.plan_cache_counters(), (1, 2));
        // Mutations bump the statistics epoch: the cached plans are stale
        // (an index created now could change the best access path), so
        // the next lookup misses and replans.
        eng.insert(
            employee,
            &[
                ("name", Value::str("erin")),
                ("age", Value::Int(33)),
                ("depname", Value::str("sales")),
            ],
        )
        .unwrap();
        let third = eng.query_planned(&q).unwrap();
        assert_eq!(eng.plan_cache_counters(), (1, 3), "epoch change misses");
        assert_eq!(third.1.len(), first.1.len() + 1);
        // The counters surface through explain.
        let text = eng.explain(&q).unwrap();
        assert!(
            text.contains("PlanCache: 1 hits, 3 misses"),
            "explain must report cache counters:\n{text}"
        );
        // And cached execution agrees with naive even via the cache path.
        agree(&eng, &q);
        agree(&eng, &q);
    }

    #[test]
    fn stale_cached_plan_for_dropped_index_replans_instead_of_panicking() {
        use toposem_storage::IndexKind;
        let eng = engine(ContainmentPolicy::Eager);
        let s = eng.with_db(|db| db.schema().clone());
        let employee = s.type_id("employee").unwrap();
        let depname = s.attr_id("depname").unwrap();
        eng.create_index(employee, depname).unwrap();
        let q = Query::scan(employee).select(depname, Value::str("sales"));
        assert!(eng.explain(&q).unwrap().contains("IndexSeek"));
        // Seed the cache with the index-seek plan…
        let (_, expect) = eng.query_planned(&q).unwrap();
        let repr = format!("{q:?}");
        let fp = Query::fingerprint_str(&repr);
        let stale = eng
            .plan_cache_lookup(fp, eng.statistics_epoch())
            .expect("plan was just cached");
        // …then emulate the drop_index race: the index disappears, but
        // the stale plan ends up current again (the interleaving a
        // concurrent reader that captured the pre-drop epoch produces).
        assert!(eng
            .drop_index(employee, IndexKind::Hash, &[depname])
            .unwrap());
        eng.plan_cache_store(fp, eng.statistics_epoch(), stale);
        // Execution must detect the unsupported plan under the lock and
        // replan rather than panic in the executor.
        let (_, got) = eng.query_planned(&q).unwrap();
        assert_eq!(got, expect);
        assert!(!eng.explain(&q).unwrap().contains("IndexSeek"));
        agree(&eng, &q);
    }

    #[test]
    fn statistics_cache_invalidates_on_mutation() {
        let eng = engine(ContainmentPolicy::Eager);
        let s = eng.with_db(|db| db.schema().clone());
        let employee = s.type_id("employee").unwrap();
        let before = eng.statistics().cardinality(employee);
        eng.insert(
            employee,
            &[
                ("name", Value::str("eve")),
                ("age", Value::Int(28)),
                ("depname", Value::str("admin")),
            ],
        )
        .unwrap();
        let after = eng.statistics().cardinality(employee);
        assert_eq!(after, before + 1, "stats must refresh after insert");
    }
}
