//! The vectorised executor: a push-based batch pipeline over a consistent
//! engine snapshot.
//!
//! Every operator streams [`super::physical::BATCH_SIZE`]-tuple batches
//! into a sink closure; only hash-join build sides, intersection membership
//! sets, and the final result relation are materialised. Under the eager
//! containment policy scans borrow the stored relation directly (no
//! extension clone); on-demand extensions are collected once per scan.
//! Index seeks walk hash buckets, BTree ranges, or composite key prefixes;
//! index-only scans rebuild projected tuples from index *keys* without
//! touching base tuples at all.
//!
//! With the `parallel` feature enabled, an unfiltered-or-filtered
//! sequential scan over a large relation fans out across worker threads
//! (a scoped-thread morsel scheme), each thread filtering its share before
//! batches are forwarded.

use std::collections::{HashMap, HashSet};

use toposem_core::AttrId;
use toposem_extension::{Database, Instance, Relation, Value};
use toposem_storage::{cmp_by_keys, Index, Predicate, SortDir};

use crate::physical::{Physical, BATCH_SIZE};

/// Minimum relation size before a parallel scan pays for thread spawn.
#[cfg(feature = "parallel")]
const PARALLEL_SCAN_THRESHOLD: usize = 4096;

/// Executes a physical plan against a database + index snapshot (acquire
/// both through `Engine::with_parts` for consistency).
pub fn execute(plan: &Physical, db: &Database, indexes: &[Vec<Index>]) -> Relation {
    let mut out = Relation::new();
    for_each_batch(plan, db, indexes, &mut |batch| {
        for t in batch.drain(..) {
            out.insert(t);
        }
    });
    out
}

/// Executes a physical plan and returns the result as an *ordered*
/// sequence: tuples in arrival order, deduplicated (results are sets).
/// The planner guarantees the plan's output order satisfies the query's
/// root `OrderBy` — an order-carrying access path or a `Sort` enforcer —
/// so arrival order *is* the requested order.
pub fn execute_ordered(plan: &Physical, db: &Database, indexes: &[Vec<Index>]) -> Vec<Instance> {
    let mut out: Vec<Instance> = Vec::new();
    let mut seen: HashSet<Instance> = HashSet::new();
    for_each_batch(plan, db, indexes, &mut |batch| {
        for t in batch.drain(..) {
            if seen.insert(t.clone()) {
                out.push(t);
            }
        }
    });
    out
}

/// Whether every index access path in `plan` is still backed by a live
/// index of the snapshot — the mirror of the executor's index lookups.
/// `Engine::drop_index` can remove an index between a cached plan's
/// epoch check and its execution; executing a cached plan is therefore
/// gated on this check (under the same lock acquisition as the
/// execution itself), and a miss falls back to replanning instead of
/// panicking in the executor.
pub fn plan_supported(plan: &Physical, indexes: &[Vec<Index>]) -> bool {
    match plan {
        Physical::Empty { .. } | Physical::SeqScan { .. } => true,
        Physical::IndexSeek { ty, attr, .. } => indexes_of(indexes, *ty).iter().any(|idx| {
            matches!(idx, Index::Hash(h) if h.attr() == *attr)
                || matches!(idx, Index::Ord(o) if o.attr() == *attr)
        }),
        Physical::IndexRangeSeek { ty, attr, .. } => indexes_of(indexes, *ty)
            .iter()
            .any(|idx| matches!(idx, Index::Ord(o) if o.attr() == *attr)),
        Physical::CompositeSeek { ty, attrs, .. } => indexes_of(indexes, *ty)
            .iter()
            .any(|idx| matches!(idx, Index::Composite(c) if c.attrs() == attrs)),
        Physical::IndexOnlyScan {
            ty,
            key_attrs,
            ordered,
            ..
        } => indexes_of(indexes, *ty)
            .iter()
            .any(|idx| idx.attrs() == *key_attrs && (!ordered || !matches!(idx, Index::Hash(_)))),
        Physical::Filter { input, .. }
        | Physical::Project { input, .. }
        | Physical::Sort { input, .. } => plan_supported(input, indexes),
        Physical::HashJoin { build, probe, .. } | Physical::Intersect { build, probe, .. } => {
            plan_supported(build, indexes) && plan_supported(probe, indexes)
        }
        Physical::MergeJoin { left, right, .. } | Physical::Union { left, right, .. } => {
            plan_supported(left, indexes) && plan_supported(right, indexes)
        }
    }
}

fn matches(t: &Instance, preds: &[(AttrId, Predicate)]) -> bool {
    preds
        .iter()
        .all(|(a, p)| t.get(*a).is_some_and(|v| p.matches(v)))
}

/// The type's indexes (planner and executor see the same snapshot, so an
/// operator's index is always present).
fn indexes_of(indexes: &[Vec<Index>], ty: toposem_core::TypeId) -> &[Index] {
    indexes.get(ty.index()).map(Vec::as_slice).unwrap_or(&[])
}

/// Streams `iter` into `sink` in batches, applying the residual filter.
fn stream_filtered<'a>(
    iter: impl Iterator<Item = &'a Instance>,
    residual: &[(AttrId, Predicate)],
    sink: &mut dyn FnMut(&mut Vec<Instance>),
) {
    let mut batch = Vec::with_capacity(BATCH_SIZE);
    for t in iter {
        if matches(t, residual) {
            batch.push(t.clone());
            if batch.len() == BATCH_SIZE {
                sink(&mut batch);
                batch.clear();
            }
        }
    }
    if !batch.is_empty() {
        sink(&mut batch);
    }
}

/// Runs `sink` over every output batch of `plan`. Batches arrive as owned
/// vectors the sink may drain.
fn for_each_batch(
    plan: &Physical,
    db: &Database,
    indexes: &[Vec<Index>],
    sink: &mut dyn FnMut(&mut Vec<Instance>),
) {
    match plan {
        Physical::Empty { .. } => {}
        Physical::SeqScan { ty, preds } => {
            let rel = db.extension_cow(*ty);
            #[cfg(feature = "parallel")]
            if rel.len() >= PARALLEL_SCAN_THRESHOLD {
                parallel_scan(&rel, preds, sink);
                return;
            }
            stream_filtered(rel.iter(), preds, sink);
        }
        Physical::IndexSeek {
            ty,
            attr,
            value,
            residual,
        } => {
            let hit = indexes_of(indexes, *ty)
                .iter()
                .find_map(|idx| idx.lookup(*attr, value))
                .expect("planner chose IndexSeek only when a point index exists");
            stream_filtered(hit.iter(), residual, sink);
        }
        Physical::IndexRangeSeek {
            ty,
            attr,
            lo,
            hi,
            residual,
        } => {
            let ord = indexes_of(indexes, *ty)
                .iter()
                .find_map(|idx| idx.as_ord().filter(|o| o.attr() == *attr))
                .expect("planner chose IndexRangeSeek only when an ordered index exists");
            let lo = lo.as_ref().map(|(v, inc)| (v, *inc));
            let hi = hi.as_ref().map(|(v, inc)| (v, *inc));
            stream_filtered(ord.range(lo, hi), residual, sink);
        }
        Physical::CompositeSeek {
            ty,
            attrs,
            prefix,
            suffix,
            residual,
        } => {
            let comp = indexes_of(indexes, *ty)
                .iter()
                .find_map(|idx| idx.as_composite().filter(|c| c.attrs() == attrs))
                .expect("planner chose CompositeSeek only when the composite index exists");
            match suffix {
                Some(iv) => {
                    let lo = iv.lo.as_ref().map(|(v, inc)| (v, *inc));
                    let hi = iv.hi.as_ref().map(|(v, inc)| (v, *inc));
                    stream_filtered(comp.lookup_prefix_range(prefix, lo, hi), residual, sink);
                }
                None => stream_filtered(comp.lookup_prefix(prefix), residual, sink),
            }
        }
        Physical::IndexOnlyScan {
            ty,
            to,
            key_attrs,
            ordered,
            preds,
        } => {
            // An ordered plan must walk an ordered structure — a hash
            // index on the same attribute would return keys unsorted.
            let idx = indexes_of(indexes, *ty)
                .iter()
                .find(|idx| {
                    idx.attrs() == *key_attrs && (!ordered || !matches!(idx, Index::Hash(_)))
                })
                .expect("planner chose IndexOnlyScan only when the covering index exists");
            let target = db.schema().attrs_of(*to);
            let mut batch = Vec::with_capacity(BATCH_SIZE);
            let emit = |key: &[&Value], batch: &mut Vec<Instance>| {
                let bound: Vec<(AttrId, &Value)> =
                    key_attrs.iter().copied().zip(key.iter().copied()).collect();
                if !preds.iter().all(|(a, p)| {
                    bound
                        .iter()
                        .find(|(b, _)| b == a)
                        .is_some_and(|(_, v)| p.matches(v))
                }) {
                    return;
                }
                let fields: Vec<(AttrId, Value)> = bound
                    .iter()
                    .filter(|(a, _)| target.contains(a.index()))
                    .map(|(a, v)| (*a, (*v).clone()))
                    .collect();
                batch.push(Instance::from_parts(fields));
            };
            match idx {
                Index::Hash(h) => {
                    for k in h.keys() {
                        emit(&[k], &mut batch);
                        if batch.len() >= BATCH_SIZE {
                            sink(&mut batch);
                            batch.clear();
                        }
                    }
                }
                Index::Ord(o) => {
                    for k in o.keys() {
                        emit(&[k], &mut batch);
                        if batch.len() >= BATCH_SIZE {
                            sink(&mut batch);
                            batch.clear();
                        }
                    }
                }
                Index::Composite(c) => {
                    for key in c.keys() {
                        let refs: Vec<&Value> = key.iter().collect();
                        emit(&refs, &mut batch);
                        if batch.len() >= BATCH_SIZE {
                            sink(&mut batch);
                            batch.clear();
                        }
                    }
                }
            }
            if !batch.is_empty() {
                sink(&mut batch);
            }
        }
        Physical::Filter { input, preds } => {
            for_each_batch(input, db, indexes, &mut |batch| {
                batch.retain(|t| matches(t, preds));
                if !batch.is_empty() {
                    sink(batch);
                }
            });
        }
        Physical::Project { input, to } => {
            let target = db.schema().attrs_of(*to).clone();
            for_each_batch(input, db, indexes, &mut |batch| {
                let mut projected: Vec<Instance> =
                    batch.drain(..).map(|t| t.project(&target)).collect();
                sink(&mut projected);
            });
        }
        Physical::HashJoin {
            build, probe, keys, ..
        } => {
            // The natural-join key: shared attributes of the two input
            // types, computed by the planner in id order.
            let key_of = |t: &Instance| -> Vec<Value> {
                keys.iter().filter_map(|a| t.get(*a).cloned()).collect()
            };
            // Materialise the build side into a hash table.
            let mut table: HashMap<Vec<Value>, Vec<Instance>> = HashMap::new();
            for_each_batch(build, db, indexes, &mut |batch| {
                for t in batch.drain(..) {
                    table.entry(key_of(&t)).or_default().push(t);
                }
            });
            // Stream the probe side.
            let mut out = Vec::with_capacity(BATCH_SIZE);
            for_each_batch(probe, db, indexes, &mut |batch| {
                for p in batch.drain(..) {
                    if let Some(partners) = table.get(&key_of(&p)) {
                        for b in partners {
                            out.push(b.merge(&p));
                            if out.len() == BATCH_SIZE {
                                sink(&mut out);
                                out.clear();
                            }
                        }
                    }
                }
            });
            if !out.is_empty() {
                sink(&mut out);
            }
        }
        Physical::MergeJoin {
            left, right, keys, ..
        } => {
            // Both inputs arrive sorted on `keys` (an order-carrying
            // access path, an order-preserving pipeline, or an explicit
            // Sort enforcer below). Materialise each side and match
            // equal-key groups pairwise.
            let sorted_keys: Vec<(AttrId, SortDir)> =
                keys.iter().map(|a| (*a, SortDir::Asc)).collect();
            let collect = |side: &Physical| {
                let mut rows: Vec<Instance> = Vec::new();
                for_each_batch(side, db, indexes, &mut |batch| rows.append(batch));
                debug_assert!(
                    rows.windows(2)
                        .all(|w| cmp_by_keys(&w[0], &w[1], &sorted_keys)
                            != std::cmp::Ordering::Greater),
                    "merge-join input not sorted on its keys"
                );
                rows
            };
            let lrows = collect(left);
            let rrows = collect(right);
            let group_end = |rows: &[Instance], start: usize| {
                let mut end = start + 1;
                while end < rows.len()
                    && cmp_by_keys(&rows[start], &rows[end], &sorted_keys)
                        == std::cmp::Ordering::Equal
                {
                    end += 1;
                }
                end
            };
            let mut out = Vec::with_capacity(BATCH_SIZE);
            let (mut i, mut j) = (0, 0);
            while i < lrows.len() && j < rrows.len() {
                match cmp_by_keys(&lrows[i], &rrows[j], &sorted_keys) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        let (i2, j2) = (group_end(&lrows, i), group_end(&rrows, j));
                        for l in &lrows[i..i2] {
                            for r in &rrows[j..j2] {
                                out.push(l.merge(r));
                                if out.len() == BATCH_SIZE {
                                    sink(&mut out);
                                    out.clear();
                                }
                            }
                        }
                        i = i2;
                        j = j2;
                    }
                }
            }
            if !out.is_empty() {
                sink(&mut out);
            }
        }
        Physical::Sort { input, keys } => {
            let mut rows: Vec<Instance> = Vec::new();
            for_each_batch(input, db, indexes, &mut |batch| rows.append(batch));
            // Stable, so an input order on a longer key list survives as
            // the tie-break.
            rows.sort_by(|a, b| cmp_by_keys(a, b, keys));
            let mut iter = rows.into_iter();
            loop {
                let mut batch: Vec<Instance> = iter.by_ref().take(BATCH_SIZE).collect();
                if batch.is_empty() {
                    break;
                }
                sink(&mut batch);
            }
        }
        Physical::Union { left, right, .. } => {
            // Bag semantics here; the collecting sink deduplicates.
            for_each_batch(left, db, indexes, sink);
            for_each_batch(right, db, indexes, sink);
        }
        Physical::Intersect { build, probe, .. } => {
            let mut members = Relation::new();
            for_each_batch(build, db, indexes, &mut |batch| {
                for t in batch.drain(..) {
                    members.insert(t);
                }
            });
            for_each_batch(probe, db, indexes, &mut |batch| {
                batch.retain(|t| members.contains(t));
                if !batch.is_empty() {
                    sink(batch);
                }
            });
        }
    }
}

/// Scatter the relation across worker threads, filter locally, forward the
/// survivors batch-wise from the calling thread (sinks are not `Sync`).
#[cfg(feature = "parallel")]
fn parallel_scan(
    rel: &Relation,
    preds: &[(AttrId, Predicate)],
    sink: &mut dyn FnMut(&mut Vec<Instance>),
) {
    let tuples: Vec<&Instance> = rel.iter().collect();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(tuples.len().div_ceil(PARALLEL_SCAN_THRESHOLD / 4))
        .max(1);
    let chunk = tuples.len().div_ceil(workers);
    let survivors: Vec<Vec<Instance>> = std::thread::scope(|scope| {
        let handles: Vec<_> = tuples
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    part.iter()
                        .filter(|t| matches(t, preds))
                        .map(|t| (*t).clone())
                        .collect::<Vec<Instance>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scan worker"))
            .collect()
    });
    for part in survivors {
        let mut iter = part.into_iter();
        loop {
            let mut batch: Vec<Instance> = iter.by_ref().take(BATCH_SIZE).collect();
            if batch.is_empty() {
                break;
            }
            sink(&mut batch);
        }
    }
}
