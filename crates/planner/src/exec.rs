//! The vectorised executor: a push-based batch pipeline over a consistent
//! engine snapshot.
//!
//! Every operator streams [`super::physical::BATCH_SIZE`]-tuple batches
//! into a sink closure; only hash-join build sides, intersection membership
//! sets, and the final result relation are materialised. Under the eager
//! containment policy scans borrow the stored relation directly (no
//! extension clone); on-demand extensions are collected once per scan.
//!
//! With the `parallel` feature enabled, an unfiltered-or-filtered
//! sequential scan over a large relation fans out across worker threads
//! (a scoped-thread morsel scheme), each thread filtering its share before
//! batches are forwarded.

use std::collections::HashMap;

use toposem_core::AttrId;
use toposem_extension::{Database, Instance, Relation, Value};
use toposem_storage::HashIndex;

use crate::physical::{Physical, BATCH_SIZE};

/// Minimum relation size before a parallel scan pays for thread spawn.
#[cfg(feature = "parallel")]
const PARALLEL_SCAN_THRESHOLD: usize = 4096;

/// Executes a physical plan against a database + index snapshot (acquire
/// both through `Engine::with_parts` for consistency).
pub fn execute(plan: &Physical, db: &Database, indexes: &[Option<HashIndex>]) -> Relation {
    let mut out = Relation::new();
    for_each_batch(plan, db, indexes, &mut |batch| {
        for t in batch.drain(..) {
            out.insert(t);
        }
    });
    out
}

fn matches(t: &Instance, preds: &[(AttrId, Value)]) -> bool {
    preds.iter().all(|(a, v)| t.get(*a) == Some(v))
}

/// Runs `sink` over every output batch of `plan`. Batches arrive as owned
/// vectors the sink may drain.
fn for_each_batch(
    plan: &Physical,
    db: &Database,
    indexes: &[Option<HashIndex>],
    sink: &mut dyn FnMut(&mut Vec<Instance>),
) {
    match plan {
        Physical::Empty { .. } => {}
        Physical::SeqScan { ty, preds } => {
            let rel = db.extension_cow(*ty);
            #[cfg(feature = "parallel")]
            if rel.len() >= PARALLEL_SCAN_THRESHOLD {
                parallel_scan(&rel, preds, sink);
                return;
            }
            let mut batch = Vec::with_capacity(BATCH_SIZE);
            for t in rel.iter() {
                if matches(t, preds) {
                    batch.push(t.clone());
                    if batch.len() == BATCH_SIZE {
                        sink(&mut batch);
                        batch.clear();
                    }
                }
            }
            if !batch.is_empty() {
                sink(&mut batch);
            }
        }
        Physical::IndexSeek {
            ty,
            attr: _,
            value,
            residual,
        } => {
            let idx = indexes[ty.index()]
                .as_ref()
                .expect("planner chose IndexSeek only when an index exists");
            let mut batch = Vec::with_capacity(BATCH_SIZE);
            for t in idx.lookup(value) {
                if matches(t, residual) {
                    batch.push(t.clone());
                    if batch.len() == BATCH_SIZE {
                        sink(&mut batch);
                        batch.clear();
                    }
                }
            }
            if !batch.is_empty() {
                sink(&mut batch);
            }
        }
        Physical::Filter { input, preds } => {
            for_each_batch(input, db, indexes, &mut |batch| {
                batch.retain(|t| matches(t, preds));
                if !batch.is_empty() {
                    sink(batch);
                }
            });
        }
        Physical::Project { input, to } => {
            let target = db.schema().attrs_of(*to).clone();
            for_each_batch(input, db, indexes, &mut |batch| {
                let mut projected: Vec<Instance> =
                    batch.drain(..).map(|t| t.project(&target)).collect();
                sink(&mut projected);
            });
        }
        Physical::HashJoin { build, probe, .. } => {
            // Shared attributes of the two input types, in id order.
            let schema = db.schema();
            let shared = schema
                .attrs_of(build.ty())
                .intersection(schema.attrs_of(probe.ty()));
            let key_of = |t: &Instance| -> Vec<Value> {
                shared
                    .iter()
                    .filter_map(|a| t.get(AttrId(a as u32)).cloned())
                    .collect()
            };
            // Materialise the build side into a hash table.
            let mut table: HashMap<Vec<Value>, Vec<Instance>> = HashMap::new();
            for_each_batch(build, db, indexes, &mut |batch| {
                for t in batch.drain(..) {
                    table.entry(key_of(&t)).or_default().push(t);
                }
            });
            // Stream the probe side.
            let mut out = Vec::with_capacity(BATCH_SIZE);
            for_each_batch(probe, db, indexes, &mut |batch| {
                for p in batch.drain(..) {
                    if let Some(partners) = table.get(&key_of(&p)) {
                        for b in partners {
                            out.push(b.merge(&p));
                            if out.len() == BATCH_SIZE {
                                sink(&mut out);
                                out.clear();
                            }
                        }
                    }
                }
            });
            if !out.is_empty() {
                sink(&mut out);
            }
        }
        Physical::Union { left, right, .. } => {
            // Bag semantics here; the collecting sink deduplicates.
            for_each_batch(left, db, indexes, sink);
            for_each_batch(right, db, indexes, sink);
        }
        Physical::Intersect { build, probe, .. } => {
            let mut members = Relation::new();
            for_each_batch(build, db, indexes, &mut |batch| {
                for t in batch.drain(..) {
                    members.insert(t);
                }
            });
            for_each_batch(probe, db, indexes, &mut |batch| {
                batch.retain(|t| members.contains(t));
                if !batch.is_empty() {
                    sink(batch);
                }
            });
        }
    }
}

/// Scatter the relation across worker threads, filter locally, forward the
/// survivors batch-wise from the calling thread (sinks are not `Sync`).
#[cfg(feature = "parallel")]
fn parallel_scan(
    rel: &Relation,
    preds: &[(AttrId, Value)],
    sink: &mut dyn FnMut(&mut Vec<Instance>),
) {
    let tuples: Vec<&Instance> = rel.iter().collect();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(tuples.len().div_ceil(PARALLEL_SCAN_THRESHOLD / 4))
        .max(1);
    let chunk = tuples.len().div_ceil(workers);
    let survivors: Vec<Vec<Instance>> = std::thread::scope(|scope| {
        let handles: Vec<_> = tuples
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    part.iter()
                        .filter(|t| matches(t, preds))
                        .map(|t| (*t).clone())
                        .collect::<Vec<Instance>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scan worker"))
            .collect()
    });
    for part in survivors {
        let mut iter = part.into_iter();
        loop {
            let mut batch: Vec<Instance> = iter.by_ref().take(BATCH_SIZE).collect();
            if batch.is_empty() {
                break;
            }
            sink(&mut batch);
        }
    }
}
