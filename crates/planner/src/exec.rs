//! The vectorised executor: a push-based batch pipeline over a consistent
//! engine snapshot, with an optional morsel-driven parallel mode.
//!
//! **Serial mode** (always available): every operator streams
//! [`super::physical::BATCH_SIZE`]-tuple batches into a sink closure; only
//! hash-join build sides, intersection membership sets, sort/merge-join
//! inputs, and the final result relation are materialised. Under the eager
//! containment policy scans borrow the stored relation directly (no
//! extension clone); on-demand extensions are collected once per scan.
//! Index seeks walk hash buckets, BTree ranges, or composite key prefixes;
//! index-only scans rebuild projected tuples from index *keys* without
//! touching base tuples at all.
//!
//! **Parallel mode** (`parallel` feature, [`ExecOptions::threads`] > 1):
//! input relations are split into fixed-size *morsels*
//! ([`ExecOptions::morsel_size`] tuples) handed to a scoped worker pool
//! through a single work-stealing dispatcher ([`dispatch`]); workers pull
//! the next morsel off a shared atomic counter, so skewed morsels don't
//! idle the pool. Every pipeline runs data-parallel, not just scans:
//!
//! - `SeqScan` with fused `Filter`/`Project` steps: each worker filters
//!   and projects its morsels in one pass over the stored relation.
//! - `HashJoin`: the build side is *partitioned* in parallel (workers
//!   scatter morsels into per-morsel partition buckets, then per-partition
//!   hash tables are assembled in parallel), and probe morsels run
//!   against the read-only partitioned table concurrently.
//! - `Union` / `Intersect` evaluate both inputs concurrently; intersect
//!   probes filter morsels against the membership set in parallel.
//! - `Sort` generates sorted runs in parallel (one contiguous run per
//!   worker) and merges them with a final multi-way merge, which also
//!   keeps `MergeJoin` inputs ordered.
//!
//! **Determinism**: per-worker outputs are keyed by morsel index and
//! merged back in morsel order, every scatter/gather step preserves
//! arrival order, and sort ties break toward the earlier run — so a
//! parallel run produces exactly the serial result (sets *and* ordered
//! sequences), whatever the thread count or morsel size.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use toposem_core::AttrId;
use toposem_extension::{Database, Instance, Relation, Value};
use toposem_obs::{NodeProfile, PlanProfile};
use toposem_storage::{cmp_by_keys, Index, Predicate, SortDir};

use crate::physical::{Physical, BATCH_SIZE};

/// Default tuples per morsel — also the parallel threshold: a pipeline
/// source shorter than two morsels runs serially, so small inputs never
/// pay for thread spawn.
pub const DEFAULT_MORSEL_SIZE: usize = 4096;

/// Execution knobs for planned queries: the worker-pool ceiling and the
/// morsel granularity.
///
/// [`ExecOptions::default`] resolves once per process from the
/// environment: `TOPOSEM_THREADS` overrides the thread count (otherwise
/// [`std::thread::available_parallelism`], falling back to 1 when the
/// syscall errs), and `TOPOSEM_MORSEL_SIZE` overrides the morsel size
/// (otherwise [`DEFAULT_MORSEL_SIZE`]). Without the `parallel` feature
/// the knobs are accepted but execution is always serial.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecOptions {
    /// Upper bound on worker threads (≥ 1). The dispatcher additionally
    /// clamps the pool to the number of morsels, so a short input never
    /// spawns idle workers.
    pub threads: usize,
    /// Tuples per morsel (≥ 1). Smaller morsels increase scheduling
    /// freedom (and overhead); larger morsels amortise dispatch.
    pub morsel_size: usize,
}

impl ExecOptions {
    /// Serial execution: one worker, default morsel size.
    pub fn serial() -> ExecOptions {
        ExecOptions {
            threads: 1,
            morsel_size: DEFAULT_MORSEL_SIZE,
        }
    }

    /// `threads` workers with the default morsel size.
    pub fn with_threads(threads: usize) -> ExecOptions {
        ExecOptions {
            threads: threads.max(1),
            ..ExecOptions::serial()
        }
    }

    /// The worker count execution will actually use: 1 without the
    /// `parallel` feature, the configured ceiling otherwise.
    pub fn effective_threads(&self) -> usize {
        if cfg!(feature = "parallel") {
            self.threads.max(1)
        } else {
            1
        }
    }
}

fn env_knob(name: &str) -> Option<usize> {
    std::env::var(name)
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|n| *n > 0)
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        static DEFAULTS: std::sync::OnceLock<ExecOptions> = std::sync::OnceLock::new();
        *DEFAULTS.get_or_init(|| ExecOptions {
            threads: env_knob("TOPOSEM_THREADS").unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            }),
            morsel_size: env_knob("TOPOSEM_MORSEL_SIZE").unwrap_or(DEFAULT_MORSEL_SIZE),
        })
    }
}

/// A profiling handle threaded through the executor: the shared
/// [`PlanProfile`] plus the pre-order node id of the operator currently
/// being evaluated ([`Prof::none`] disables all recording). `Copy`, two
/// words — passing it costs nothing on the unprofiled path.
#[derive(Clone, Copy)]
pub(crate) struct Prof<'a> {
    inner: Option<(&'a PlanProfile, usize)>,
}

impl<'a> Prof<'a> {
    /// No profiling: every recording site is a `None` check.
    pub(crate) fn none() -> Prof<'a> {
        Prof { inner: None }
    }

    /// Profiling rooted at `plan` (node id 0). `profile` must have been
    /// sized to `plan.node_count()`.
    pub(crate) fn root(plan: &Physical, profile: &'a PlanProfile) -> Prof<'a> {
        debug_assert_eq!(profile.len(), plan.node_count(), "profile sized to plan");
        let _ = plan;
        Prof {
            inner: Some((profile, 0)),
        }
    }

    /// The current operator's slot, when profiling.
    fn node(&self) -> Option<&'a NodeProfile> {
        self.inner.map(|(p, id)| p.node(id))
    }

    /// The handle for `plan`'s `k`-th child: pre-order ids, so the child
    /// starts right after this node plus its earlier siblings' subtrees.
    fn child(&self, plan: &Physical, k: usize) -> Prof<'a> {
        Prof {
            inner: self.inner.map(|(p, id)| {
                let before: usize = plan.children()[..k].iter().map(|c| c.node_count()).sum();
                (p, id + 1 + before)
            }),
        }
    }
}

/// Executes a physical plan against a database + index snapshot (acquire
/// both through `Engine::with_parts` for consistency) under the default
/// [`ExecOptions`].
pub fn execute(plan: &Physical, db: &Database, indexes: &[Vec<Index>]) -> Relation {
    execute_with(plan, db, indexes, &ExecOptions::default())
}

/// [`execute`] with explicit [`ExecOptions`].
pub fn execute_with(
    plan: &Physical,
    db: &Database,
    indexes: &[Vec<Index>],
    opts: &ExecOptions,
) -> Relation {
    execute_prof(plan, db, indexes, opts, Prof::none())
}

/// [`execute_with`] recording per-operator actuals (rows, wall time,
/// operator detail) into `profile`, which must be sized to
/// `plan.node_count()`. The result is bit-identical to the unprofiled
/// path: profiling only adds thread-local tallies merged into the
/// shared slots with one atomic add per batch/morsel.
pub fn execute_profiled_with(
    plan: &Physical,
    db: &Database,
    indexes: &[Vec<Index>],
    opts: &ExecOptions,
    profile: &PlanProfile,
) -> Relation {
    execute_prof(plan, db, indexes, opts, Prof::root(plan, profile))
}

fn execute_prof(
    plan: &Physical,
    db: &Database,
    indexes: &[Vec<Index>],
    opts: &ExecOptions,
    prof: Prof,
) -> Relation {
    #[cfg(not(feature = "parallel"))]
    let _ = opts; // knobs are accepted but execution is always serial
    #[cfg(feature = "parallel")]
    if opts.effective_threads() > 1 {
        let ctx = Ctx::new(db, indexes, opts);
        let morsels = eval_parallel(plan, &ctx, prof);
        // Sort by the full instance order in parallel, then bulk-build
        // the set from the (deduplicated) sorted sequence — the final
        // collection scales with the pool instead of serialising on
        // tree inserts.
        let sorted = par_sort_morsels(morsels, &ctx, Instance::cmp);
        let mut out: Vec<Instance> = Vec::new();
        for m in sorted {
            for t in m {
                if out.last() != Some(&t) {
                    out.push(t);
                }
            }
        }
        return out.into_iter().collect();
    }
    let mut out = Relation::new();
    for_each_batch(plan, db, indexes, prof, &mut |batch| {
        for t in batch.drain(..) {
            out.insert(t);
        }
    });
    out
}

/// Executes a physical plan and returns the result as an *ordered*
/// sequence: tuples in arrival order, deduplicated (results are sets).
/// The planner guarantees the plan's output order satisfies the query's
/// root `OrderBy` — an order-carrying access path or a `Sort` enforcer —
/// so arrival order *is* the requested order.
pub fn execute_ordered(plan: &Physical, db: &Database, indexes: &[Vec<Index>]) -> Vec<Instance> {
    execute_ordered_with(plan, db, indexes, &ExecOptions::default())
}

/// [`execute_ordered`] with explicit [`ExecOptions`]. Parallel workers'
/// outputs are merged in morsel order, so the arrival order — and with it
/// the advertised plan ordering — is preserved exactly.
pub fn execute_ordered_with(
    plan: &Physical,
    db: &Database,
    indexes: &[Vec<Index>],
    opts: &ExecOptions,
) -> Vec<Instance> {
    execute_ordered_prof(plan, db, indexes, opts, Prof::none())
}

/// [`execute_ordered_with`] recording per-operator actuals into
/// `profile` (see [`execute_profiled_with`]).
pub fn execute_ordered_profiled_with(
    plan: &Physical,
    db: &Database,
    indexes: &[Vec<Index>],
    opts: &ExecOptions,
    profile: &PlanProfile,
) -> Vec<Instance> {
    execute_ordered_prof(plan, db, indexes, opts, Prof::root(plan, profile))
}

fn execute_ordered_prof(
    plan: &Physical,
    db: &Database,
    indexes: &[Vec<Index>],
    opts: &ExecOptions,
    prof: Prof,
) -> Vec<Instance> {
    let mut out: Vec<Instance> = Vec::new();
    let mut seen: HashSet<Instance> = HashSet::new();
    #[cfg(not(feature = "parallel"))]
    let _ = opts; // knobs are accepted but execution is always serial
    #[cfg(feature = "parallel")]
    if opts.effective_threads() > 1 {
        let ctx = Ctx::new(db, indexes, opts);
        for m in eval_parallel(plan, &ctx, prof) {
            for t in m {
                if seen.insert(t.clone()) {
                    out.push(t);
                }
            }
        }
        return out;
    }
    for_each_batch(plan, db, indexes, prof, &mut |batch| {
        for t in batch.drain(..) {
            if seen.insert(t.clone()) {
                out.push(t);
            }
        }
    });
    out
}

/// Whether every index access path in `plan` is still backed by a live
/// index of the snapshot — the mirror of the executor's index lookups.
/// `Engine::drop_index` can remove an index between a cached plan's
/// epoch check and its execution; executing a cached plan is therefore
/// gated on this check (under the same lock acquisition as the
/// execution itself), and a miss falls back to replanning instead of
/// panicking in the executor.
pub fn plan_supported(plan: &Physical, indexes: &[Vec<Index>]) -> bool {
    match plan {
        Physical::Empty { .. } | Physical::SeqScan { .. } => true,
        Physical::IndexSeek { ty, attr, .. } => indexes_of(indexes, *ty).iter().any(|idx| {
            matches!(idx, Index::Hash(h) if h.attr() == *attr)
                || matches!(idx, Index::Ord(o) if o.attr() == *attr)
        }),
        Physical::IndexRangeSeek { ty, attr, .. } => indexes_of(indexes, *ty)
            .iter()
            .any(|idx| matches!(idx, Index::Ord(o) if o.attr() == *attr)),
        Physical::CompositeSeek { ty, attrs, .. } => indexes_of(indexes, *ty)
            .iter()
            .any(|idx| matches!(idx, Index::Composite(c) if c.attrs() == attrs)),
        Physical::IndexOnlyScan {
            ty,
            key_attrs,
            ordered,
            ..
        } => indexes_of(indexes, *ty)
            .iter()
            .any(|idx| idx.attrs() == *key_attrs && (!ordered || !matches!(idx, Index::Hash(_)))),
        Physical::Filter { input, .. }
        | Physical::Project { input, .. }
        | Physical::Sort { input, .. } => plan_supported(input, indexes),
        Physical::HashJoin { build, probe, .. } | Physical::Intersect { build, probe, .. } => {
            plan_supported(build, indexes) && plan_supported(probe, indexes)
        }
        Physical::MergeJoin { left, right, .. } | Physical::Union { left, right, .. } => {
            plan_supported(left, indexes) && plan_supported(right, indexes)
        }
    }
}

fn matches(t: &Instance, preds: &[(AttrId, Predicate)]) -> bool {
    preds
        .iter()
        .all(|(a, p)| t.get(*a).is_some_and(|v| p.matches(v)))
}

/// The type's indexes (planner and executor see the same snapshot, so an
/// operator's index is always present).
fn indexes_of(indexes: &[Vec<Index>], ty: toposem_core::TypeId) -> &[Index] {
    indexes.get(ty.index()).map(Vec::as_slice).unwrap_or(&[])
}

/// Streams `iter` into `sink` in batches, applying the residual filter.
fn stream_filtered<'a>(
    iter: impl Iterator<Item = &'a Instance>,
    residual: &[(AttrId, Predicate)],
    sink: &mut dyn FnMut(&mut Vec<Instance>),
) {
    let mut batch = Vec::with_capacity(BATCH_SIZE);
    for t in iter {
        if matches(t, residual) {
            batch.push(t.clone());
            if batch.len() == BATCH_SIZE {
                sink(&mut batch);
                batch.clear();
            }
        }
    }
    if !batch.is_empty() {
        sink(&mut batch);
    }
}

/// [`stream_filtered`], additionally counting the tuples *walked*
/// (before the residual filter) into the node's `rows_in` when
/// profiling — a plain local counter, one atomic add at the end.
fn stream_profiled<'a>(
    iter: impl Iterator<Item = &'a Instance>,
    residual: &[(AttrId, Predicate)],
    node: Option<&NodeProfile>,
    sink: &mut dyn FnMut(&mut Vec<Instance>),
) {
    match node {
        None => stream_filtered(iter, residual, sink),
        Some(node) => {
            let mut walked = 0u64;
            stream_filtered(iter.inspect(|_| walked += 1), residual, sink);
            node.add_rows_in(walked);
        }
    }
}

/// Runs `sink` over every output batch of `plan`. Batches arrive as owned
/// vectors the sink may drain. When profiling, records this node's call,
/// output rows, and inclusive wall time (children execute inside their
/// parent's pipeline, so each node's wall time covers its subtree).
fn for_each_batch(
    plan: &Physical,
    db: &Database,
    indexes: &[Vec<Index>],
    prof: Prof,
    sink: &mut dyn FnMut(&mut Vec<Instance>),
) {
    let Some(node) = prof.node() else {
        return exec_serial(plan, db, indexes, prof, sink);
    };
    let t0 = Instant::now();
    let mut rows = 0u64;
    exec_serial(plan, db, indexes, prof, &mut |batch| {
        rows += batch.len() as u64;
        sink(batch);
    });
    node.add_call();
    node.add_rows(rows);
    node.add_wall_ns(t0.elapsed().as_nanos() as u64);
    node.note_workers(1);
}

/// The serial operator dispatch behind [`for_each_batch`].
fn exec_serial(
    plan: &Physical,
    db: &Database,
    indexes: &[Vec<Index>],
    prof: Prof,
    sink: &mut dyn FnMut(&mut Vec<Instance>),
) {
    match plan {
        Physical::Empty { .. } => {}
        Physical::SeqScan { ty, preds } => {
            let rel = db.extension_cow(*ty);
            stream_profiled(rel.iter(), preds, prof.node(), sink);
        }
        Physical::IndexSeek {
            ty,
            attr,
            value,
            residual,
        } => {
            let hit = indexes_of(indexes, *ty)
                .iter()
                .find_map(|idx| idx.lookup(*attr, value))
                .expect("planner chose IndexSeek only when a point index exists");
            stream_profiled(hit.iter(), residual, prof.node(), sink);
        }
        Physical::IndexRangeSeek {
            ty,
            attr,
            lo,
            hi,
            residual,
        } => {
            let ord = indexes_of(indexes, *ty)
                .iter()
                .find_map(|idx| idx.as_ord().filter(|o| o.attr() == *attr))
                .expect("planner chose IndexRangeSeek only when an ordered index exists");
            let lo = lo.as_ref().map(|(v, inc)| (v, *inc));
            let hi = hi.as_ref().map(|(v, inc)| (v, *inc));
            stream_profiled(ord.range(lo, hi), residual, prof.node(), sink);
        }
        Physical::CompositeSeek {
            ty,
            attrs,
            prefix,
            suffix,
            residual,
        } => {
            let comp = indexes_of(indexes, *ty)
                .iter()
                .find_map(|idx| idx.as_composite().filter(|c| c.attrs() == attrs))
                .expect("planner chose CompositeSeek only when the composite index exists");
            match suffix {
                Some(iv) => {
                    let lo = iv.lo.as_ref().map(|(v, inc)| (v, *inc));
                    let hi = iv.hi.as_ref().map(|(v, inc)| (v, *inc));
                    stream_profiled(
                        comp.lookup_prefix_range(prefix, lo, hi),
                        residual,
                        prof.node(),
                        sink,
                    );
                }
                None => stream_profiled(comp.lookup_prefix(prefix), residual, prof.node(), sink),
            }
        }
        Physical::IndexOnlyScan {
            ty,
            to,
            key_attrs,
            ordered,
            preds,
        } => {
            // An ordered plan must walk an ordered structure — a hash
            // index on the same attribute would return keys unsorted.
            let idx = indexes_of(indexes, *ty)
                .iter()
                .find(|idx| {
                    idx.attrs() == *key_attrs && (!ordered || !matches!(idx, Index::Hash(_)))
                })
                .expect("planner chose IndexOnlyScan only when the covering index exists");
            let target = db.schema().attrs_of(*to);
            let mut batch = Vec::with_capacity(BATCH_SIZE);
            // Keys touched, counted locally; merged into `rows_in` once.
            let walked = std::cell::Cell::new(0u64);
            let emit = |key: &[&Value], batch: &mut Vec<Instance>| {
                walked.set(walked.get() + 1);
                let bound: Vec<(AttrId, &Value)> =
                    key_attrs.iter().copied().zip(key.iter().copied()).collect();
                if !preds.iter().all(|(a, p)| {
                    bound
                        .iter()
                        .find(|(b, _)| b == a)
                        .is_some_and(|(_, v)| p.matches(v))
                }) {
                    return;
                }
                let fields: Vec<(AttrId, Value)> = bound
                    .iter()
                    .filter(|(a, _)| target.contains(a.index()))
                    .map(|(a, v)| (*a, (*v).clone()))
                    .collect();
                batch.push(Instance::from_parts(fields));
            };
            match idx {
                Index::Hash(h) => {
                    for k in h.keys() {
                        emit(&[k], &mut batch);
                        if batch.len() >= BATCH_SIZE {
                            sink(&mut batch);
                            batch.clear();
                        }
                    }
                }
                Index::Ord(o) => {
                    for k in o.keys() {
                        emit(&[k], &mut batch);
                        if batch.len() >= BATCH_SIZE {
                            sink(&mut batch);
                            batch.clear();
                        }
                    }
                }
                Index::Composite(c) => {
                    for key in c.keys() {
                        let refs: Vec<&Value> = key.iter().collect();
                        emit(&refs, &mut batch);
                        if batch.len() >= BATCH_SIZE {
                            sink(&mut batch);
                            batch.clear();
                        }
                    }
                }
            }
            if !batch.is_empty() {
                sink(&mut batch);
            }
            if let Some(node) = prof.node() {
                node.add_rows_in(walked.get());
            }
        }
        Physical::Filter { input, preds } => {
            for_each_batch(input, db, indexes, prof.child(plan, 0), &mut |batch| {
                batch.retain(|t| matches(t, preds));
                if !batch.is_empty() {
                    sink(batch);
                }
            });
        }
        Physical::Project { input, to } => {
            let target = db.schema().attrs_of(*to).clone();
            for_each_batch(input, db, indexes, prof.child(plan, 0), &mut |batch| {
                let mut projected: Vec<Instance> =
                    batch.drain(..).map(|t| t.project(&target)).collect();
                sink(&mut projected);
            });
        }
        Physical::HashJoin {
            build, probe, keys, ..
        } => {
            // The natural-join key: shared attributes of the two input
            // types, computed by the planner in id order.
            let key_of = |t: &Instance| -> Vec<Value> {
                keys.iter().filter_map(|a| t.get(*a).cloned()).collect()
            };
            // Materialise the build side into a hash table.
            let mut table: HashMap<Vec<Value>, Vec<Instance>> = HashMap::new();
            for_each_batch(build, db, indexes, prof.child(plan, 0), &mut |batch| {
                for t in batch.drain(..) {
                    table.entry(key_of(&t)).or_default().push(t);
                }
            });
            if let Some(node) = prof.node() {
                // Serial build = one partition holding every build row.
                let build_rows: usize = table.values().map(Vec::len).sum();
                node.note_partitions(1, build_rows as u64);
            }
            // Stream the probe side.
            let mut out = Vec::with_capacity(BATCH_SIZE);
            for_each_batch(probe, db, indexes, prof.child(plan, 1), &mut |batch| {
                for p in batch.drain(..) {
                    if let Some(partners) = table.get(&key_of(&p)) {
                        for b in partners {
                            out.push(b.merge(&p));
                            if out.len() == BATCH_SIZE {
                                sink(&mut out);
                                out.clear();
                            }
                        }
                    }
                }
            });
            if !out.is_empty() {
                sink(&mut out);
            }
        }
        Physical::MergeJoin {
            left, right, keys, ..
        } => {
            // Both inputs arrive sorted on `keys` (an order-carrying
            // access path, an order-preserving pipeline, or an explicit
            // Sort enforcer below). Materialise each side and match
            // equal-key groups pairwise.
            let collect = |side: &Physical, p: Prof| {
                let mut rows: Vec<Instance> = Vec::new();
                for_each_batch(side, db, indexes, p, &mut |batch| rows.append(batch));
                rows
            };
            let lrows = collect(left, prof.child(plan, 0));
            let rrows = collect(right, prof.child(plan, 1));
            merge_join_sorted(&lrows, &rrows, keys, sink);
        }
        Physical::Sort { input, keys } => {
            let mut rows: Vec<Instance> = Vec::new();
            for_each_batch(input, db, indexes, prof.child(plan, 0), &mut |batch| {
                rows.append(batch)
            });
            if let Some(node) = prof.node() {
                node.add_runs(1);
            }
            // Stable, so an input order on a longer key list survives as
            // the tie-break.
            rows.sort_by(|a, b| cmp_by_keys(a, b, keys));
            let mut iter = rows.into_iter();
            loop {
                let mut batch: Vec<Instance> = iter.by_ref().take(BATCH_SIZE).collect();
                if batch.is_empty() {
                    break;
                }
                sink(&mut batch);
            }
        }
        Physical::Union { left, right, .. } => {
            // Bag semantics here; the collecting sink deduplicates.
            for_each_batch(left, db, indexes, prof.child(plan, 0), sink);
            for_each_batch(right, db, indexes, prof.child(plan, 1), sink);
        }
        Physical::Intersect { build, probe, .. } => {
            let mut members = Relation::new();
            for_each_batch(build, db, indexes, prof.child(plan, 0), &mut |batch| {
                for t in batch.drain(..) {
                    members.insert(t);
                }
            });
            for_each_batch(probe, db, indexes, prof.child(plan, 1), &mut |batch| {
                batch.retain(|t| members.contains(t));
                if !batch.is_empty() {
                    sink(batch);
                }
            });
        }
    }
}

/// The merge loop shared by the serial and parallel merge-join paths:
/// both inputs arrive sorted ascending on `keys`; equal-key groups are
/// matched pairwise and streamed into `sink` batch-wise.
fn merge_join_sorted(
    lrows: &[Instance],
    rrows: &[Instance],
    keys: &[AttrId],
    sink: &mut dyn FnMut(&mut Vec<Instance>),
) {
    let sorted_keys: Vec<(AttrId, SortDir)> = keys.iter().map(|a| (*a, SortDir::Asc)).collect();
    debug_assert!(
        lrows
            .windows(2)
            .chain(rrows.windows(2))
            .all(|w| cmp_by_keys(&w[0], &w[1], &sorted_keys) != std::cmp::Ordering::Greater),
        "merge-join input not sorted on its keys"
    );
    let group_end = |rows: &[Instance], start: usize| {
        let mut end = start + 1;
        while end < rows.len()
            && cmp_by_keys(&rows[start], &rows[end], &sorted_keys) == std::cmp::Ordering::Equal
        {
            end += 1;
        }
        end
    };
    let mut out = Vec::with_capacity(BATCH_SIZE);
    let (mut i, mut j) = (0, 0);
    while i < lrows.len() && j < rrows.len() {
        match cmp_by_keys(&lrows[i], &rrows[j], &sorted_keys) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let (i2, j2) = (group_end(lrows, i), group_end(rrows, j));
                for l in &lrows[i..i2] {
                    for r in &rrows[j..j2] {
                        out.push(l.merge(r));
                        if out.len() == BATCH_SIZE {
                            sink(&mut out);
                            out.clear();
                        }
                    }
                }
                i = i2;
                j = j2;
            }
        }
    }
    if !out.is_empty() {
        sink(&mut out);
    }
}

// ---------------------------------------------------------------------
// Morsel-driven parallel evaluation.
// ---------------------------------------------------------------------

#[cfg(feature = "parallel")]
mod parallel {
    use super::*;
    use std::hash::{Hash, Hasher};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Shared execution context for one parallel plan evaluation.
    #[derive(Clone, Copy)]
    pub(super) struct Ctx<'a> {
        pub db: &'a Database,
        pub indexes: &'a [Vec<Index>],
        pub threads: usize,
        pub morsel_size: usize,
    }

    impl<'a> Ctx<'a> {
        pub fn new(db: &'a Database, indexes: &'a [Vec<Index>], opts: &ExecOptions) -> Ctx<'a> {
            Ctx {
                db,
                indexes,
                threads: opts.effective_threads(),
                morsel_size: opts.morsel_size.max(1),
            }
        }
    }

    /// The morsel dispatcher: applies `f` to every item of `items` on a
    /// scoped worker pool and returns the results *in item order*.
    ///
    /// Workers pull the next unclaimed index off a shared atomic counter
    /// (work stealing at morsel granularity), so uneven morsels don't
    /// leave threads idle. The pool is clamped to `min(threads, #items)`
    /// and collapses to an inline loop when one worker suffices — callers
    /// never pay thread spawn for short inputs.
    pub(super) fn dispatch<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = threads.min(items.len()).max(1);
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let next = AtomicUsize::new(0);
        let mut keyed: Vec<(usize, R)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            local.push((i, f(i, &items[i])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("morsel worker panicked"))
                .collect()
        });
        keyed.sort_unstable_by_key(|(i, _)| *i);
        keyed.into_iter().map(|(_, r)| r).collect()
    }

    /// [`dispatch`] over items that are consumed rather than borrowed
    /// (each is taken exactly once through a mutex-guarded slot).
    fn dispatch_take<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        dispatch(&slots, threads, |i, slot| {
            let item = slot
                .lock()
                .expect("slot lock poisoned")
                .take()
                .expect("each slot is claimed exactly once");
            f(i, item)
        })
    }

    /// One fused pipeline step above a source.
    enum Step<'p> {
        Filter(&'p [(AttrId, Predicate)]),
        Project(toposem_topology::BitSet),
    }

    /// Pushes one tuple through the fused steps; `None` when a filter
    /// rejects it. Clones lazily: a tuple is only materialised at its
    /// first projection (or at the end, for the output). `counts[i]` is
    /// bumped when step `i` passes the tuple on — plain per-morsel
    /// tallies the caller merges into the profile in one atomic add.
    fn push_through(t: &Instance, steps: &[Step], counts: &mut [u64]) -> Option<Instance> {
        let mut owned: Option<Instance> = None;
        for (i, step) in steps.iter().enumerate() {
            let cur = owned.as_ref().unwrap_or(t);
            match step {
                Step::Filter(preds) => {
                    if !matches(cur, preds) {
                        return None;
                    }
                }
                Step::Project(target) => owned = Some(cur.project(target)),
            }
            if let Some(c) = counts.get_mut(i) {
                *c += 1;
            }
        }
        Some(owned.unwrap_or_else(|| t.clone()))
    }

    /// Records a parallel operator's actuals once its morsels exist:
    /// call count, output rows, inclusive wall time, pool size.
    fn note_node(prof: Prof, t0: Instant, morsels: &[Vec<Instance>], workers: usize) {
        if let Some(node) = prof.node() {
            node.add_call();
            node.add_rows(morsels.iter().map(|m| m.len() as u64).sum());
            node.add_wall_ns(t0.elapsed().as_nanos() as u64);
            node.note_workers(workers as u64);
        }
    }

    /// Evaluates `plan` into ordered output morsels, data-parallel where
    /// the operator allows it. Concatenating the morsels yields exactly
    /// the serial executor's arrival order.
    pub(super) fn eval_parallel(plan: &Physical, ctx: &Ctx, prof: Prof) -> Vec<Vec<Instance>> {
        let t0 = Instant::now();
        match plan {
            Physical::Empty { .. } => {
                if let Some(node) = prof.node() {
                    node.add_call();
                }
                Vec::new()
            }
            Physical::SeqScan { .. } | Physical::Filter { .. } | Physical::Project { .. } => {
                eval_pipeline(plan, ctx, prof)
            }
            Physical::HashJoin {
                build, probe, keys, ..
            } => {
                let (bm, pm) =
                    eval_both(build, probe, ctx, prof.child(plan, 0), prof.child(plan, 1));
                let table = PartitionedTable::build(bm, keys, ctx);
                let nmorsels = pm.len();
                let out = dispatch(&pm, ctx.threads, |_, morsel| {
                    let mut out = Vec::new();
                    for p in morsel {
                        for b in table.partners(p) {
                            out.push(b.merge(p));
                        }
                    }
                    out
                });
                if let Some(node) = prof.node() {
                    let (nparts, maxp) = table.skew();
                    node.note_partitions(nparts, maxp);
                    node.add_morsels(nmorsels as u64);
                }
                note_node(prof, t0, &out, ctx.threads.min(nmorsels).max(1));
                out
            }
            Physical::MergeJoin {
                left, right, keys, ..
            } => {
                let (lm, rm) =
                    eval_both(left, right, ctx, prof.child(plan, 0), prof.child(plan, 1));
                let lrows: Vec<Instance> = lm.into_iter().flatten().collect();
                let rrows: Vec<Instance> = rm.into_iter().flatten().collect();
                let mut out: Vec<Vec<Instance>> = Vec::new();
                merge_join_sorted(&lrows, &rrows, keys, &mut |batch| {
                    out.push(std::mem::take(batch));
                });
                // The merge loop itself is single-threaded.
                note_node(prof, t0, &out, 1);
                out
            }
            Physical::Sort { input, keys } => {
                let morsels = eval_parallel(input, ctx, prof.child(plan, 0));
                let nmorsels = morsels.len();
                let out = par_sort_morsels(morsels, ctx, |a, b| cmp_by_keys(a, b, keys));
                if let Some(node) = prof.node() {
                    // One contiguous run per worker, as par_sort_morsels
                    // splits them.
                    node.add_runs(ctx.threads.min(nmorsels).max(1) as u64);
                    node.add_morsels(nmorsels as u64);
                }
                note_node(prof, t0, &out, ctx.threads.min(nmorsels).max(1));
                out
            }
            Physical::Union { left, right, .. } => {
                let (mut lm, rm) =
                    eval_both(left, right, ctx, prof.child(plan, 0), prof.child(plan, 1));
                lm.extend(rm);
                note_node(prof, t0, &lm, ctx.threads.clamp(1, 2));
                lm
            }
            Physical::Intersect { build, probe, .. } => {
                let (bm, pm) =
                    eval_both(build, probe, ctx, prof.child(plan, 0), prof.child(plan, 1));
                // One serial pass builds the membership set (a parallel
                // per-morsel pre-hash would touch every tuple twice for
                // no gain — the merge is serial either way; the cost
                // model prices exactly this); the probe filter then
                // runs morsel-parallel against the read-only set.
                let members: HashSet<Instance> = bm.into_iter().flatten().collect();
                let nmorsels = pm.len();
                let out = dispatch(&pm, ctx.threads, |_, morsel| {
                    morsel
                        .iter()
                        .filter(|t| members.contains(*t))
                        .cloned()
                        .collect::<Vec<Instance>>()
                });
                if let Some(node) = prof.node() {
                    node.add_morsels(nmorsels as u64);
                }
                note_node(prof, t0, &out, ctx.threads.min(nmorsels).max(1));
                out
            }
            // Index access paths are selective by construction; their
            // outputs are collected serially (and still feed parallel
            // consumers above them). The serial path records actuals.
            leaf => collect_serial(leaf, ctx, prof),
        }
    }

    /// Evaluates a binary operator's two inputs concurrently, *splitting*
    /// the worker budget between the sides (each side parallelises
    /// internally with half the pool) so nested binary operators cannot
    /// compound past the configured thread ceiling.
    fn eval_both(
        a: &Physical,
        b: &Physical,
        ctx: &Ctx,
        pa: Prof,
        pb: Prof,
    ) -> (Vec<Vec<Instance>>, Vec<Vec<Instance>>) {
        if ctx.threads <= 1 {
            return (eval_parallel(a, ctx, pa), eval_parallel(b, ctx, pb));
        }
        let side_ctx = Ctx {
            threads: ctx.threads.div_ceil(2),
            ..*ctx
        };
        let sides = [(a, pa), (b, pb)];
        let mut results = dispatch(&sides, 2, |_, (side, p)| eval_parallel(side, &side_ctx, *p));
        let rb = results.pop().expect("two sides in, two results out");
        let ra = results.pop().expect("two sides in, two results out");
        (ra, rb)
    }

    /// Evaluates a `Filter`/`Project` chain fused onto its source: the
    /// steps run inside the same worker pass that scans the source
    /// morsels, so a filtered-projected scan touches each tuple once.
    ///
    /// Profiling counts each fused step's output rows per morsel with a
    /// plain local array, merged into the shared slots in one atomic add
    /// per step per morsel. Fused nodes execute in a single worker pass,
    /// so they share the pipeline's wall time and pool size.
    fn eval_pipeline(plan: &Physical, ctx: &Ctx, prof: Prof) -> Vec<Vec<Instance>> {
        let t0 = Instant::now();
        // Peel the order-preserving tuple-wise steps off the top,
        // remembering each step's profile slot.
        let mut steps: Vec<Step> = Vec::new();
        let mut step_profs: Vec<Prof> = Vec::new();
        let mut cur = plan;
        let mut cur_prof = prof;
        loop {
            match cur {
                Physical::Filter { input, preds } => {
                    steps.push(Step::Filter(preds));
                    step_profs.push(cur_prof);
                    cur_prof = cur_prof.child(cur, 0);
                    cur = input;
                }
                Physical::Project { input, to } => {
                    steps.push(Step::Project(ctx.db.schema().attrs_of(*to).clone()));
                    step_profs.push(cur_prof);
                    cur_prof = cur_prof.child(cur, 0);
                    cur = input;
                }
                _ => break,
            }
        }
        steps.reverse();
        step_profs.reverse();
        // Merges one morsel's local step tallies into the shared slots.
        let merge_counts = |counts: &[u64]| {
            for (p, c) in step_profs.iter().zip(counts) {
                if let Some(node) = p.node() {
                    node.add_rows(*c);
                }
            }
        };
        if let Physical::SeqScan { ty, preds } = cur {
            // Fused source: scan morsels of the stored relation, filter
            // and project inside the workers.
            let rel = ctx.db.extension_cow(*ty);
            let morsels: Vec<Vec<&Instance>> = rel.morsels(ctx.morsel_size).collect();
            let workers = ctx.threads.min(morsels.len()).max(1);
            let out = dispatch(&morsels, ctx.threads, |_, morsel| {
                let mut counts = vec![0u64; steps.len()];
                let mut scanned_out = 0u64;
                let res: Vec<Instance> = morsel
                    .iter()
                    .copied()
                    .filter(|t| matches(t, preds))
                    .inspect(|_| scanned_out += 1)
                    .filter_map(|t| push_through(t, &steps, &mut counts))
                    .collect();
                if let Some(node) = cur_prof.node() {
                    node.add_rows_in(morsel.len() as u64);
                    node.add_rows(scanned_out);
                    node.add_morsels(1);
                }
                merge_counts(&counts);
                res
            });
            if cur_prof.node().is_some() {
                let wall = t0.elapsed().as_nanos() as u64;
                for p in step_profs.iter().chain(std::iter::once(&cur_prof)) {
                    if let Some(node) = p.node() {
                        node.add_call();
                        node.add_wall_ns(wall);
                        node.note_workers(workers as u64);
                    }
                }
            }
            return out;
        }
        // Composite source (a join, set operation, sort, or index path):
        // evaluate it, then run the fused steps morsel-parallel.
        let morsels = eval_parallel(cur, ctx, cur_prof);
        if steps.is_empty() {
            return morsels;
        }
        let workers = ctx.threads.min(morsels.len()).max(1);
        let out = dispatch_take(morsels, ctx.threads, |_, morsel| {
            let mut counts = vec![0u64; steps.len()];
            let res: Vec<Instance> = morsel
                .iter()
                .filter_map(|t| push_through(t, &steps, &mut counts))
                .collect();
            merge_counts(&counts);
            res
        });
        if prof.node().is_some() {
            let wall = t0.elapsed().as_nanos() as u64;
            for p in &step_profs {
                if let Some(node) = p.node() {
                    node.add_call();
                    node.add_wall_ns(wall);
                    node.note_workers(workers as u64);
                }
            }
        }
        out
    }

    /// Serially collects a leaf operator's output into morsels. The
    /// serial executor records the leaf's actuals.
    fn collect_serial(plan: &Physical, ctx: &Ctx, prof: Prof) -> Vec<Vec<Instance>> {
        let mut out: Vec<Vec<Instance>> = Vec::new();
        let mut cur: Vec<Instance> = Vec::new();
        for_each_batch(plan, ctx.db, ctx.indexes, prof, &mut |batch| {
            for t in batch.drain(..) {
                cur.push(t);
                if cur.len() == ctx.morsel_size {
                    out.push(std::mem::take(&mut cur));
                }
            }
        });
        if !cur.is_empty() {
            out.push(cur);
        }
        out
    }

    /// A hash-join build side partitioned for parallel probing. Tuples
    /// are scattered into `parts` buckets by key hash (phase 1, morsel-
    /// parallel), then each partition's hash table is assembled
    /// independently (phase 2, partition-parallel). Bucket contents are
    /// concatenated in morsel order, so every table entry lists its
    /// build tuples in exactly the serial executor's arrival order.
    pub(super) struct PartitionedTable {
        parts: Vec<HashMap<Vec<Value>, Vec<Instance>>>,
        keys: Vec<AttrId>,
    }

    impl PartitionedTable {
        fn build(morsels: Vec<Vec<Instance>>, keys: &[AttrId], ctx: &Ctx) -> PartitionedTable {
            let nparts = ctx.threads.max(1);
            // Phase 1: scatter each morsel into per-partition buckets.
            let scattered = dispatch_take(morsels, ctx.threads, |_, morsel| {
                let mut buckets: Vec<Vec<(Vec<Value>, Instance)>> = vec![Vec::new(); nparts];
                for t in morsel {
                    let key = join_key(&t, keys);
                    buckets[partition_of(&key, nparts)].push((key, t));
                }
                buckets
            });
            // Transpose morsel-major buckets to partition-major (pointer
            // moves only), preserving morsel order within each partition.
            let mut part_major: Vec<Vec<(Vec<Value>, Instance)>> =
                (0..nparts).map(|_| Vec::new()).collect();
            for buckets in scattered {
                for (p, bucket) in buckets.into_iter().enumerate() {
                    part_major[p].extend(bucket);
                }
            }
            // Phase 2: assemble one hash table per partition; entries
            // accumulate build tuples in arrival order.
            let parts = dispatch_take(part_major, ctx.threads, |_, pairs| {
                let mut table: HashMap<Vec<Value>, Vec<Instance>> = HashMap::new();
                for (key, t) in pairs {
                    table.entry(key).or_default().push(t);
                }
                table
            });
            PartitionedTable {
                parts,
                keys: keys.to_vec(),
            }
        }

        fn partners(&self, probe: &Instance) -> &[Instance] {
            let key = join_key(probe, &self.keys);
            self.parts[partition_of(&key, self.parts.len())]
                .get(&key)
                .map(Vec::as_slice)
                .unwrap_or(&[])
        }

        /// Partition-skew summary: `(partition count, largest partition's
        /// build-tuple count)` — the profiled hash join reports these.
        fn skew(&self) -> (u64, u64) {
            let largest = self
                .parts
                .iter()
                .map(|p| p.values().map(Vec::len).sum::<usize>())
                .max()
                .unwrap_or(0);
            (self.parts.len() as u64, largest as u64)
        }
    }

    /// The natural-join key projection (shared attributes in id order),
    /// identical to the serial executor's.
    fn join_key(t: &Instance, keys: &[AttrId]) -> Vec<Value> {
        keys.iter().filter_map(|a| t.get(*a).cloned()).collect()
    }

    /// Deterministic partition assignment (`DefaultHasher::new()` is
    /// fixed-key SipHash, stable within and across processes).
    fn partition_of(key: &[Value], nparts: usize) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % nparts
    }

    /// Parallel sort: workers sort contiguous run groups of the input
    /// morsels (stable within each run), then a serial multi-way merge
    /// interleaves the runs — ties break toward the earlier run, so the
    /// result equals a stable sort of the concatenated input. Returns
    /// output morsels of `ctx.morsel_size`.
    pub(super) fn par_sort_morsels(
        morsels: Vec<Vec<Instance>>,
        ctx: &Ctx,
        cmp: impl Fn(&Instance, &Instance) -> std::cmp::Ordering + Sync,
    ) -> Vec<Vec<Instance>> {
        if morsels.is_empty() {
            return Vec::new();
        }
        // One contiguous run per worker keeps run generation balanced
        // without disturbing input order.
        let workers = ctx.threads.min(morsels.len()).max(1);
        let per_run = morsels.len().div_ceil(workers);
        let run_groups: Vec<Vec<Vec<Instance>>> = {
            let mut groups = Vec::new();
            let mut iter = morsels.into_iter();
            loop {
                let group: Vec<Vec<Instance>> = iter.by_ref().take(per_run).collect();
                if group.is_empty() {
                    break;
                }
                groups.push(group);
            }
            groups
        };
        let mut runs: Vec<std::collections::VecDeque<Instance>> =
            dispatch_take(run_groups, ctx.threads, |_, group| {
                let mut run: Vec<Instance> = group.into_iter().flatten().collect();
                run.sort_by(&cmp);
                std::collections::VecDeque::from(run)
            });
        if runs.len() == 1 {
            let run = runs.pop().expect("one run");
            return chunk(run.into_iter().collect(), ctx.morsel_size);
        }
        // Multi-way merge; k = #runs ≤ threads, so a linear min scan per
        // pop is cheap and keeps the tie-break explicit.
        let total: usize = runs.iter().map(std::collections::VecDeque::len).sum();
        let mut merged: Vec<Instance> = Vec::with_capacity(total);
        loop {
            let mut best: Option<usize> = None;
            for (r, run) in runs.iter().enumerate() {
                let Some(head) = run.front() else { continue };
                // Strictly-less keeps the earliest run on ties: stability.
                match best {
                    None => best = Some(r),
                    Some(b) => {
                        let best_head = runs[b].front().expect("best run is non-empty");
                        if cmp(head, best_head) == std::cmp::Ordering::Less {
                            best = Some(r);
                        }
                    }
                }
            }
            let Some(r) = best else { break };
            merged.push(runs[r].pop_front().expect("chosen run is non-empty"));
        }
        chunk(merged, ctx.morsel_size)
    }

    fn chunk(rows: Vec<Instance>, size: usize) -> Vec<Vec<Instance>> {
        let size = size.max(1);
        let mut out = Vec::new();
        let mut iter = rows.into_iter();
        loop {
            let part: Vec<Instance> = iter.by_ref().take(size).collect();
            if part.is_empty() {
                break;
            }
            out.push(part);
        }
        out
    }
}

#[cfg(feature = "parallel")]
use parallel::{eval_parallel, par_sort_morsels, Ctx};
