//! The vectorised executor: a push-based batch pipeline over a consistent
//! engine snapshot, with an optional morsel-driven parallel mode.
//!
//! **Serial mode** (always available): every operator streams
//! [`super::physical::BATCH_SIZE`]-tuple batches into a sink closure; only
//! hash-join build sides, intersection membership sets, sort/merge-join
//! inputs, and the final result relation are materialised. Under the eager
//! containment policy scans borrow the stored relation directly (no
//! extension clone); on-demand extensions are collected once per scan.
//! Index seeks walk hash buckets, BTree ranges, or composite key prefixes;
//! index-only scans rebuild projected tuples from index *keys* without
//! touching base tuples at all.
//!
//! **Parallel mode** (`parallel` feature, [`ExecOptions::threads`] > 1):
//! input relations are split into fixed-size *morsels*
//! ([`ExecOptions::morsel_size`] tuples) handed to a scoped worker pool
//! through a single work-stealing dispatcher ([`dispatch`]); workers pull
//! the next morsel off a shared atomic counter, so skewed morsels don't
//! idle the pool. Every pipeline runs data-parallel, not just scans:
//!
//! - `SeqScan` with fused `Filter`/`Project` steps: each worker filters
//!   and projects its morsels in one pass over the stored relation.
//! - `HashJoin`: the build side is *partitioned* in parallel (workers
//!   scatter morsels into per-morsel partition buckets, then per-partition
//!   hash tables are assembled in parallel), and probe morsels run
//!   against the read-only partitioned table concurrently.
//! - `Union` / `Intersect` evaluate both inputs concurrently; intersect
//!   probes filter morsels against the membership set in parallel.
//! - `Sort` generates sorted runs in parallel (one contiguous run per
//!   worker) and merges them with a final multi-way merge, which also
//!   keeps `MergeJoin` inputs ordered.
//!
//! **Determinism**: per-worker outputs are keyed by morsel index and
//! merged back in morsel order, every scatter/gather step preserves
//! arrival order, and sort ties break toward the earlier run — so a
//! parallel run produces exactly the serial result (sets *and* ordered
//! sequences), whatever the thread count or morsel size.

use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::time::Instant;

use toposem_core::AttrId;
use toposem_extension::{
    Column, ColumnarMorsel, Database, Instance, Relation, SelectionMask, Value,
};
use toposem_obs::{NodeProfile, PlanProfile};
use toposem_storage::{cmp_by_keys, Index, Predicate, SortDir};
use toposem_topology::BitSet;

use crate::physical::{Physical, BATCH_SIZE};

/// Default tuples per morsel — also the parallel threshold: a pipeline
/// source shorter than two morsels runs serially, so small inputs never
/// pay for thread spawn.
pub const DEFAULT_MORSEL_SIZE: usize = 4096;

/// Execution knobs for planned queries: the worker-pool ceiling and the
/// morsel granularity.
///
/// [`ExecOptions::default`] resolves once per process from the
/// environment: `TOPOSEM_THREADS` overrides the thread count (otherwise
/// [`std::thread::available_parallelism`], falling back to 1 when the
/// syscall errs), `TOPOSEM_MORSEL_SIZE` overrides the morsel size
/// (otherwise [`DEFAULT_MORSEL_SIZE`]), and `TOPOSEM_COLUMNAR=0` (or
/// `false`/`off`) disables the columnar kernels. Without the `parallel`
/// feature the knobs are accepted but execution is always serial.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecOptions {
    /// Upper bound on worker threads (≥ 1). The dispatcher additionally
    /// clamps the pool to the number of morsels, so a short input never
    /// spawns idle workers.
    pub threads: usize,
    /// Tuples per morsel (≥ 1). Smaller morsels increase scheduling
    /// freedom (and overhead); larger morsels amortise dispatch.
    pub morsel_size: usize,
    /// Evaluate scans, filters, projections, and hash-join key
    /// extraction through columnar morsel kernels (decoded typed
    /// columns + selection bitmaps) instead of row-at-a-time loops.
    /// Bit-identical either way — this is a performance knob, kept
    /// toggleable so the differential oracle can pin both paths.
    pub columnar: bool,
}

/// Process-wide columnar default: on unless `TOPOSEM_COLUMNAR` is set
/// to `0`, `false`, or `off`.
fn columnar_default() -> bool {
    static COLUMNAR: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *COLUMNAR.get_or_init(|| {
        !matches!(
            std::env::var("TOPOSEM_COLUMNAR").as_deref().map(str::trim),
            Ok("0") | Ok("false") | Ok("off")
        )
    })
}

impl ExecOptions {
    /// Serial execution: one worker, default morsel size, columnar
    /// kernels per the process default.
    pub fn serial() -> ExecOptions {
        ExecOptions {
            threads: 1,
            morsel_size: DEFAULT_MORSEL_SIZE,
            columnar: columnar_default(),
        }
    }

    /// `threads` workers with the default morsel size.
    pub fn with_threads(threads: usize) -> ExecOptions {
        ExecOptions {
            threads: threads.max(1),
            ..ExecOptions::serial()
        }
    }

    /// The worker count execution will actually use: 1 without the
    /// `parallel` feature, the configured ceiling otherwise.
    pub fn effective_threads(&self) -> usize {
        if cfg!(feature = "parallel") {
            self.threads.max(1)
        } else {
            1
        }
    }
}

fn env_knob(name: &str) -> Option<usize> {
    std::env::var(name)
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|n| *n > 0)
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        static DEFAULTS: std::sync::OnceLock<ExecOptions> = std::sync::OnceLock::new();
        *DEFAULTS.get_or_init(|| ExecOptions {
            threads: env_knob("TOPOSEM_THREADS").unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            }),
            morsel_size: env_knob("TOPOSEM_MORSEL_SIZE").unwrap_or(DEFAULT_MORSEL_SIZE),
            columnar: columnar_default(),
        })
    }
}

/// A profiling handle threaded through the executor: the shared
/// [`PlanProfile`] plus the pre-order node id of the operator currently
/// being evaluated ([`Prof::none`] disables all recording). `Copy`, two
/// words — passing it costs nothing on the unprofiled path.
#[derive(Clone, Copy)]
pub(crate) struct Prof<'a> {
    inner: Option<(&'a PlanProfile, usize)>,
}

impl<'a> Prof<'a> {
    /// No profiling: every recording site is a `None` check.
    pub(crate) fn none() -> Prof<'a> {
        Prof { inner: None }
    }

    /// Profiling rooted at `plan` (node id 0). `profile` must have been
    /// sized to `plan.node_count()`.
    pub(crate) fn root(plan: &Physical, profile: &'a PlanProfile) -> Prof<'a> {
        debug_assert_eq!(profile.len(), plan.node_count(), "profile sized to plan");
        let _ = plan;
        Prof {
            inner: Some((profile, 0)),
        }
    }

    /// The current operator's slot, when profiling.
    fn node(&self) -> Option<&'a NodeProfile> {
        self.inner.map(|(p, id)| p.node(id))
    }

    /// The handle for `plan`'s `k`-th child: pre-order ids, so the child
    /// starts right after this node plus its earlier siblings' subtrees.
    fn child(&self, plan: &Physical, k: usize) -> Prof<'a> {
        Prof {
            inner: self.inner.map(|(p, id)| {
                let before: usize = plan.children()[..k].iter().map(|c| c.node_count()).sum();
                (p, id + 1 + before)
            }),
        }
    }
}

/// Executes a physical plan against a database + index snapshot (acquire
/// both through `Engine::with_parts` for consistency) under the default
/// [`ExecOptions`].
pub fn execute(plan: &Physical, db: &Database, indexes: &[Vec<Index>]) -> Relation {
    execute_with(plan, db, indexes, &ExecOptions::default())
}

/// [`execute`] with explicit [`ExecOptions`].
pub fn execute_with(
    plan: &Physical,
    db: &Database,
    indexes: &[Vec<Index>],
    opts: &ExecOptions,
) -> Relation {
    execute_prof(plan, db, indexes, opts, Prof::none())
}

/// [`execute_with`] recording per-operator actuals (rows, wall time,
/// operator detail) into `profile`, which must be sized to
/// `plan.node_count()`. The result is bit-identical to the unprofiled
/// path: profiling only adds thread-local tallies merged into the
/// shared slots with one atomic add per batch/morsel.
pub fn execute_profiled_with(
    plan: &Physical,
    db: &Database,
    indexes: &[Vec<Index>],
    opts: &ExecOptions,
    profile: &PlanProfile,
) -> Relation {
    execute_prof(plan, db, indexes, opts, Prof::root(plan, profile))
}

fn execute_prof(
    plan: &Physical,
    db: &Database,
    indexes: &[Vec<Index>],
    opts: &ExecOptions,
    prof: Prof,
) -> Relation {
    #[cfg(feature = "parallel")]
    if opts.effective_threads() > 1 {
        let ctx = Ctx::new(db, indexes, opts);
        let morsels = eval_parallel(plan, &ctx, prof);
        // Sort by the full instance order in parallel, then bulk-build
        // the set from the (deduplicated) sorted sequence — the final
        // collection scales with the pool instead of serialising on
        // tree inserts.
        let sorted = par_sort_morsels(morsels, &ctx, Instance::cmp);
        let mut out: Vec<Instance> = Vec::new();
        for m in sorted {
            for t in m {
                if out.last() != Some(&t) {
                    out.push(t);
                }
            }
        }
        return out.into_iter().collect();
    }
    let mut out = Relation::new();
    for_each_batch(plan, db, indexes, opts, prof, &mut |batch| {
        for t in batch.drain(..) {
            out.insert(t);
        }
    });
    out
}

/// Executes a physical plan and returns the result as an *ordered*
/// sequence: tuples in arrival order, deduplicated (results are sets).
/// The planner guarantees the plan's output order satisfies the query's
/// root `OrderBy` — an order-carrying access path or a `Sort` enforcer —
/// so arrival order *is* the requested order.
pub fn execute_ordered(plan: &Physical, db: &Database, indexes: &[Vec<Index>]) -> Vec<Instance> {
    execute_ordered_with(plan, db, indexes, &ExecOptions::default())
}

/// [`execute_ordered`] with explicit [`ExecOptions`]. Parallel workers'
/// outputs are merged in morsel order, so the arrival order — and with it
/// the advertised plan ordering — is preserved exactly.
pub fn execute_ordered_with(
    plan: &Physical,
    db: &Database,
    indexes: &[Vec<Index>],
    opts: &ExecOptions,
) -> Vec<Instance> {
    execute_ordered_prof(plan, db, indexes, opts, Prof::none())
}

/// [`execute_ordered_with`] recording per-operator actuals into
/// `profile` (see [`execute_profiled_with`]).
pub fn execute_ordered_profiled_with(
    plan: &Physical,
    db: &Database,
    indexes: &[Vec<Index>],
    opts: &ExecOptions,
    profile: &PlanProfile,
) -> Vec<Instance> {
    execute_ordered_prof(plan, db, indexes, opts, Prof::root(plan, profile))
}

fn execute_ordered_prof(
    plan: &Physical,
    db: &Database,
    indexes: &[Vec<Index>],
    opts: &ExecOptions,
    prof: Prof,
) -> Vec<Instance> {
    let mut out: Vec<Instance> = Vec::new();
    let mut seen: HashSet<Instance> = HashSet::new();
    #[cfg(feature = "parallel")]
    if opts.effective_threads() > 1 {
        let ctx = Ctx::new(db, indexes, opts);
        for m in eval_parallel(plan, &ctx, prof) {
            for t in m {
                if seen.insert(t.clone()) {
                    out.push(t);
                }
            }
        }
        return out;
    }
    for_each_batch(plan, db, indexes, opts, prof, &mut |batch| {
        for t in batch.drain(..) {
            if seen.insert(t.clone()) {
                out.push(t);
            }
        }
    });
    out
}

/// Whether every index access path in `plan` is still backed by a live
/// index of the snapshot — the mirror of the executor's index lookups.
/// `Engine::drop_index` can remove an index between a cached plan's
/// epoch check and its execution; executing a cached plan is therefore
/// gated on this check (under the same lock acquisition as the
/// execution itself), and a miss falls back to replanning instead of
/// panicking in the executor.
pub fn plan_supported(plan: &Physical, indexes: &[Vec<Index>]) -> bool {
    match plan {
        Physical::Empty { .. } | Physical::SeqScan { .. } => true,
        Physical::IndexSeek { ty, attr, .. } => indexes_of(indexes, *ty).iter().any(|idx| {
            matches!(idx, Index::Hash(h) if h.attr() == *attr)
                || matches!(idx, Index::Ord(o) if o.attr() == *attr)
        }),
        Physical::IndexRangeSeek { ty, attr, .. } => indexes_of(indexes, *ty)
            .iter()
            .any(|idx| matches!(idx, Index::Ord(o) if o.attr() == *attr)),
        Physical::CompositeSeek { ty, attrs, .. } => indexes_of(indexes, *ty)
            .iter()
            .any(|idx| matches!(idx, Index::Composite(c) if c.attrs() == attrs)),
        Physical::IndexOnlyScan {
            ty,
            key_attrs,
            ordered,
            ..
        } => indexes_of(indexes, *ty)
            .iter()
            .any(|idx| idx.attrs() == *key_attrs && (!ordered || !matches!(idx, Index::Hash(_)))),
        Physical::Filter { input, .. }
        | Physical::Project { input, .. }
        | Physical::Sort { input, .. } => plan_supported(input, indexes),
        Physical::HashJoin { build, probe, .. } | Physical::Intersect { build, probe, .. } => {
            plan_supported(build, indexes) && plan_supported(probe, indexes)
        }
        Physical::MergeJoin { left, right, .. } | Physical::Union { left, right, .. } => {
            plan_supported(left, indexes) && plan_supported(right, indexes)
        }
    }
}

fn matches(t: &Instance, preds: &[(AttrId, Predicate)]) -> bool {
    preds
        .iter()
        .all(|(a, p)| t.get(*a).is_some_and(|v| p.matches(v)))
}

/// The type's indexes (planner and executor see the same snapshot, so an
/// operator's index is always present).
fn indexes_of(indexes: &[Vec<Index>], ty: toposem_core::TypeId) -> &[Index] {
    indexes.get(ty.index()).map(Vec::as_slice).unwrap_or(&[])
}

// ---------------------------------------------------------------------
// Columnar kernels.
//
// One decoded column per touched attribute, selection bitmaps per
// predicate, bitmap AND for conjunctions. Every kernel is bit-identical
// to the row-at-a-time evaluation it replaces: a morsel whose rows
// can't all decode an attribute falls back to elementwise evaluation,
// and cross-variant predicate constants resolve through the same total
// `Ord` on `Value` (`Int < Str < Bool`) the row path compares under.
// ---------------------------------------------------------------------

/// Evaluates a predicate conjunction over one columnar morsel: one
/// selection bitmap per predicate, combined by bitmap AND (with an
/// early exit once the mask drains).
fn eval_preds_mask(cm: &ColumnarMorsel, preds: &[(AttrId, Predicate)]) -> SelectionMask {
    let n = cm.len();
    let mut mask = SelectionMask::all(n);
    // Range fusion: a conjunction of predicates over one integer column
    // is the intersection of their inclusive ranges, and every fused
    // interval evaluates in a SINGLE streaming sweep over the rows —
    // the first fetch pays the row's cache miss, the remaining columns
    // read a hot line. `int_range` is exact per predicate, so the fused
    // mask equals the AND of the individual masks bit for bit. Any
    // attribute whose first row is not an integer (or whose shape
    // changes mid-morsel — the sweep aborts) takes the generic
    // per-predicate kernels instead.
    let mut groups: Vec<IntGroup> = Vec::new();
    let mut generic: Vec<usize> = Vec::new();
    let mut done = vec![false; preds.len()];
    let first = cm.rows().first();
    for i in 0..preds.len() {
        if done[i] {
            continue;
        }
        let (attr, _) = preds[i];
        let group: Vec<usize> = (i..preds.len()).filter(|&j| preds[j].0 == attr).collect();
        for &j in &group {
            done[j] = true;
        }
        let pos = first.and_then(|f| {
            f.fields()
                .iter()
                .position(|(a, v)| *a == attr && matches!(v, Value::Int(_)))
        });
        let Some(pos) = pos else {
            generic.extend(&group);
            continue;
        };
        let (mut lo, mut hi) = (i64::MIN, i64::MAX);
        for &j in &group {
            match preds[j].1.int_range() {
                Some((l, h)) => {
                    lo = lo.max(l);
                    hi = hi.min(h);
                }
                // Matches no integer: an unsatisfiable interval keeps
                // the sweep verifying the column's shape.
                None => (lo, hi) = (1, 0),
            }
        }
        groups.push(IntGroup { attr, pos, lo, hi });
    }
    if !groups.is_empty() {
        match int_groups_mask(cm, &groups) {
            Some(pm) => mask.and_with(&pm),
            // Shape changed mid-morsel: evaluate the fused predicates
            // through the generic kernels after all.
            None => generic = (0..preds.len()).collect(),
        }
    }
    for j in generic {
        if !mask.any() {
            break;
        }
        mask.and_with(&pred_mask(cm, preds[j].0, &preds[j].1));
    }
    mask
}

/// One per-attribute conjunction of integer ranges, pre-fused to a
/// single inclusive interval (`lo > hi` means "matches nothing").
struct IntGroup {
    attr: AttrId,
    /// Positional hint: the attribute's field index in the morsel's
    /// first row (verified per row, with a full lookup fallback).
    pos: usize,
    lo: i64,
    hi: i64,
}

/// Evaluates every fused integer interval in ONE streaming sweep —
/// no column materialisation, one scattered row access for all groups
/// together. Returns `None` when any row fails to decode some group's
/// attribute as an `Int`; the caller falls back to the generic
/// per-predicate kernels, which agree bit for bit.
fn int_groups_mask(cm: &ColumnarMorsel, groups: &[IntGroup]) -> Option<SelectionMask> {
    let rows = cm.rows();
    SelectionMask::try_from_fn(rows.len(), |k| {
        let row = rows[k];
        let mut keep = true;
        for g in groups {
            let v = match row.fields().get(g.pos) {
                Some((a, v)) if *a == g.attr => v,
                _ => row.get(g.attr)?,
            };
            let Value::Int(v) = v else {
                return None;
            };
            keep &= (*v >= g.lo) & (*v <= g.hi);
        }
        Some(keep)
    })
}

/// One predicate's selection bitmap over one decoded column. The inner
/// loops are branch-light: the integer kernel compares against the
/// pre-resolved inclusive range from [`Predicate::int_range`], string
/// and boolean kernels against pre-resolved same-variant bounds.
fn pred_mask(cm: &ColumnarMorsel, attr: AttrId, pred: &Predicate) -> SelectionMask {
    let n = cm.len();
    match cm.column(attr) {
        // Some row lacks the attribute: evaluate elementwise (rows
        // missing it are rejected, exactly as `matches` does).
        None => SelectionMask::from_fn(n, |i| {
            cm.rows()[i].get(attr).is_some_and(|v| pred.matches(v))
        }),
        Some(col) => match &*col {
            Column::Int(vals) => match pred.int_range() {
                None => SelectionMask::none(n),
                Some((lo, hi)) => SelectionMask::from_fn(n, |i| {
                    let v = vals[i];
                    (v >= lo) & (v <= hi)
                }),
            },
            Column::Str(vals) => str_mask(vals, pred),
            Column::Bool(vals) => bool_mask(vals, pred),
            Column::Mixed(vals) => SelectionMask::from_fn(n, |i| pred.matches(vals[i])),
        },
    }
}

/// Bitmap kernel over an all-string column. Bounds of other variants
/// resolve through `Int < Str < Bool`: an `Int` bound is below every
/// string, a `Bool` bound above — either the whole column qualifies on
/// that side or none of it does.
fn str_mask(vals: &[&str], pred: &Predicate) -> SelectionMask {
    let (plo, phi) = pred.bounds();
    let lo: Result<Option<(&str, bool)>, ()> = match plo {
        None => Ok(None),
        Some((Value::Str(s), inc)) => Ok(Some((s.as_str(), inc))),
        Some((Value::Int(_), _)) => Ok(None), // every string exceeds it
        Some((Value::Bool(_), _)) => Err(()), // no string reaches it
    };
    let hi: Result<Option<(&str, bool)>, ()> = match phi {
        None => Ok(None),
        Some((Value::Str(s), inc)) => Ok(Some((s.as_str(), inc))),
        Some((Value::Int(_), _)) => Err(()), // no string is below it
        Some((Value::Bool(_), _)) => Ok(None), // every string is below it
    };
    let (Ok(lo), Ok(hi)) = (lo, hi) else {
        return SelectionMask::none(vals.len());
    };
    SelectionMask::from_fn(vals.len(), |i| {
        let v = vals[i];
        let in_lo = lo.is_none_or(|(b, inc)| if inc { v >= b } else { v > b });
        let in_hi = hi.is_none_or(|(b, inc)| if inc { v <= b } else { v < b });
        in_lo & in_hi
    })
}

/// Bitmap kernel over an all-boolean column (`Int`/`Str` bounds sort
/// below every boolean).
fn bool_mask(vals: &[bool], pred: &Predicate) -> SelectionMask {
    let (plo, phi) = pred.bounds();
    let lo: Option<(bool, bool)> = match plo {
        None => None,
        Some((Value::Bool(b), inc)) => Some((*b, inc)),
        Some(_) => None, // every boolean exceeds an Int/Str bound
    };
    let hi: Result<Option<(bool, bool)>, ()> = match phi {
        None => Ok(None),
        Some((Value::Bool(b), inc)) => Ok(Some((*b, inc))),
        Some(_) => Err(()), // no boolean is below an Int/Str bound
    };
    let Ok(hi) = hi else {
        return SelectionMask::none(vals.len());
    };
    SelectionMask::from_fn(vals.len(), |i| {
        let v = vals[i];
        let in_lo = lo.is_none_or(|(b, inc)| if inc { v >= b } else { v & !b });
        let in_hi = hi.is_none_or(|(b, inc)| if inc { v <= b } else { !v & b });
        in_lo & in_hi
    })
}

/// An owned [`Value`] rebuilt from one column slot.
fn owned_value(col: &Column, i: usize) -> Value {
    match col {
        Column::Int(v) => Value::Int(v[i]),
        Column::Str(v) => Value::Str(v[i].to_owned()),
        Column::Bool(v) => Value::Bool(v[i]),
        Column::Mixed(v) => v[i].clone(),
    }
}

/// Projects a batch by column slicing: decode each kept column once and
/// reassemble instances from the slices. Requires a shape-homogeneous
/// batch with every kept column decodable — anything else falls back to
/// tuple-wise [`Instance::project`], which is the semantics either way.
fn project_rows_columnar(rows: &[&Instance], target: &BitSet) -> Vec<Instance> {
    let cm = ColumnarMorsel::new(rows);
    if cm.homogeneous() {
        let Some(first) = rows.first() else {
            return Vec::new();
        };
        let keep: Vec<AttrId> = first
            .fields()
            .iter()
            .map(|(a, _)| *a)
            .filter(|a| target.contains(a.index()))
            .collect();
        if let Some(cols) = cm
            .columns(&keep)
            .into_iter()
            .collect::<Option<Vec<Rc<Column>>>>()
        {
            return (0..rows.len())
                .map(|i| {
                    Instance::from_parts(
                        keep.iter()
                            .zip(&cols)
                            .map(|(a, c)| (*a, owned_value(c, i)))
                            .collect(),
                    )
                })
                .collect();
        }
    }
    rows.iter().map(|t| t.project(target)).collect()
}

/// Filters a materialised batch in place through the columnar kernels,
/// preserving order — the columnar counterpart of
/// `batch.retain(|t| matches(t, preds))`.
fn filter_batch_columnar(batch: &mut Vec<Instance>, preds: &[(AttrId, Predicate)]) {
    let mask = {
        let refs: Vec<&Instance> = batch.iter().collect();
        let cm = ColumnarMorsel::new(&refs);
        eval_preds_mask(&cm, preds)
    };
    let mut i = 0;
    batch.retain(|_| {
        let keep = mask.get(i);
        i += 1;
        keep
    });
}

/// Field-position hints for the join key attributes, read off a batch's
/// first row. Homogeneous batches then extract keys by direct indexing
/// instead of the per-attribute scan `key_of` pays on the row path;
/// every hint is verified per row with a full lookup fallback.
fn key_hints(rows: &[Instance], keys: &[AttrId]) -> Vec<Option<usize>> {
    let first = rows.first();
    keys.iter()
        .map(|k| first.and_then(|f| f.fields().iter().position(|(a, _)| a == k)))
        .collect()
}

/// The hash-join key of one row via [`key_hints`]. Missing attributes
/// are skipped exactly like the row path's `key_of`.
fn key_with_hints(t: &Instance, keys: &[AttrId], hints: &[Option<usize>]) -> Vec<Value> {
    keys.iter()
        .zip(hints)
        .filter_map(|(a, hint)| match hint.and_then(|p| t.fields().get(p)) {
            Some((fa, v)) if fa == a => Some(v.clone()),
            _ => t.get(*a).cloned(),
        })
        .collect()
}

/// Extracts the hash-join key of every row in one batch pass (the
/// parallel workers consume whole-morsel key vectors).
#[cfg(any(feature = "parallel", test))]
fn batch_join_keys(rows: &[Instance], keys: &[AttrId]) -> Vec<Vec<Value>> {
    let hints = key_hints(rows, keys);
    rows.iter()
        .map(|t| key_with_hints(t, keys, &hints))
        .collect()
}

/// The columnar serial scan: decodes each morsel's predicate columns
/// once, evaluates the conjunction as bitmap ANDs, and emits selected
/// rows in morsel order — the morsel concatenation is canonical
/// iteration order, so output order and content are bit-identical to
/// [`stream_filtered`] over the same relation.
fn scan_columnar_serial(
    rel: &Relation,
    preds: &[(AttrId, Predicate)],
    node: Option<&NodeProfile>,
    sink: &mut dyn FnMut(&mut Vec<Instance>),
) {
    let mut walked = 0u64;
    let mut batches = 0u64;
    for morsel in rel.morsels(BATCH_SIZE) {
        walked += morsel.len() as u64;
        batches += 1;
        let cm = ColumnarMorsel::new(&morsel);
        let mask = eval_preds_mask(&cm, preds);
        if !mask.any() {
            continue;
        }
        let mut batch: Vec<Instance> = mask.iter_ones().map(|i| morsel[i].clone()).collect();
        sink(&mut batch);
    }
    if let Some(node) = node {
        node.add_rows_in(walked);
        node.add_vec_batches(batches);
    }
}

/// Streams `iter` into `sink` in batches, applying the residual filter.
fn stream_filtered<'a>(
    iter: impl Iterator<Item = &'a Instance>,
    residual: &[(AttrId, Predicate)],
    sink: &mut dyn FnMut(&mut Vec<Instance>),
) {
    let mut batch = Vec::with_capacity(BATCH_SIZE);
    for t in iter {
        if matches(t, residual) {
            batch.push(t.clone());
            if batch.len() == BATCH_SIZE {
                sink(&mut batch);
                batch.clear();
            }
        }
    }
    if !batch.is_empty() {
        sink(&mut batch);
    }
}

/// [`stream_filtered`], additionally counting the tuples *walked*
/// (before the residual filter) into the node's `rows_in` when
/// profiling — a plain local counter, one atomic add at the end.
fn stream_profiled<'a>(
    iter: impl Iterator<Item = &'a Instance>,
    residual: &[(AttrId, Predicate)],
    node: Option<&NodeProfile>,
    sink: &mut dyn FnMut(&mut Vec<Instance>),
) {
    match node {
        None => stream_filtered(iter, residual, sink),
        Some(node) => {
            let mut walked = 0u64;
            stream_filtered(iter.inspect(|_| walked += 1), residual, sink);
            node.add_rows_in(walked);
        }
    }
}

/// Runs `sink` over every output batch of `plan`. Batches arrive as owned
/// vectors the sink may drain. When profiling, records this node's call,
/// output rows, and inclusive wall time (children execute inside their
/// parent's pipeline, so each node's wall time covers its subtree).
fn for_each_batch(
    plan: &Physical,
    db: &Database,
    indexes: &[Vec<Index>],
    opts: &ExecOptions,
    prof: Prof,
    sink: &mut dyn FnMut(&mut Vec<Instance>),
) {
    let Some(node) = prof.node() else {
        return exec_serial(plan, db, indexes, opts, prof, sink);
    };
    let t0 = Instant::now();
    let mut rows = 0u64;
    exec_serial(plan, db, indexes, opts, prof, &mut |batch| {
        rows += batch.len() as u64;
        sink(batch);
    });
    node.add_call();
    node.add_rows(rows);
    node.add_wall_ns(t0.elapsed().as_nanos() as u64);
    node.note_workers(1);
}

/// The serial operator dispatch behind [`for_each_batch`].
fn exec_serial(
    plan: &Physical,
    db: &Database,
    indexes: &[Vec<Index>],
    opts: &ExecOptions,
    prof: Prof,
    sink: &mut dyn FnMut(&mut Vec<Instance>),
) {
    match plan {
        Physical::Empty { .. } => {}
        Physical::SeqScan { ty, preds } => {
            let rel = db.extension_cow(*ty);
            // A predicate-free scan has nothing to vectorise — row
            // streaming avoids the per-morsel mask machinery.
            if opts.columnar && !preds.is_empty() {
                scan_columnar_serial(&rel, preds, prof.node(), sink);
            } else {
                stream_profiled(rel.iter(), preds, prof.node(), sink);
            }
        }
        Physical::IndexSeek {
            ty,
            attr,
            value,
            residual,
        } => {
            let hit = indexes_of(indexes, *ty)
                .iter()
                .find_map(|idx| idx.lookup(*attr, value))
                .expect("planner chose IndexSeek only when a point index exists");
            stream_profiled(hit.iter(), residual, prof.node(), sink);
        }
        Physical::IndexRangeSeek {
            ty,
            attr,
            lo,
            hi,
            residual,
        } => {
            let ord = indexes_of(indexes, *ty)
                .iter()
                .find_map(|idx| idx.as_ord().filter(|o| o.attr() == *attr))
                .expect("planner chose IndexRangeSeek only when an ordered index exists");
            let lo = lo.as_ref().map(|(v, inc)| (v, *inc));
            let hi = hi.as_ref().map(|(v, inc)| (v, *inc));
            stream_profiled(ord.range(lo, hi), residual, prof.node(), sink);
        }
        Physical::CompositeSeek {
            ty,
            attrs,
            prefix,
            suffix,
            residual,
        } => {
            let comp = indexes_of(indexes, *ty)
                .iter()
                .find_map(|idx| idx.as_composite().filter(|c| c.attrs() == attrs))
                .expect("planner chose CompositeSeek only when the composite index exists");
            match suffix {
                Some(iv) => {
                    let lo = iv.lo.as_ref().map(|(v, inc)| (v, *inc));
                    let hi = iv.hi.as_ref().map(|(v, inc)| (v, *inc));
                    stream_profiled(
                        comp.lookup_prefix_range(prefix, lo, hi),
                        residual,
                        prof.node(),
                        sink,
                    );
                }
                None => stream_profiled(comp.lookup_prefix(prefix), residual, prof.node(), sink),
            }
        }
        Physical::IndexOnlyScan {
            ty,
            to,
            key_attrs,
            ordered,
            preds,
        } => {
            // An ordered plan must walk an ordered structure — a hash
            // index on the same attribute would return keys unsorted.
            let idx = indexes_of(indexes, *ty)
                .iter()
                .find(|idx| {
                    idx.attrs() == *key_attrs && (!ordered || !matches!(idx, Index::Hash(_)))
                })
                .expect("planner chose IndexOnlyScan only when the covering index exists");
            let target = db.schema().attrs_of(*to);
            let mut batch = Vec::with_capacity(BATCH_SIZE);
            // Keys touched, counted locally; merged into `rows_in` once.
            let walked = std::cell::Cell::new(0u64);
            let emit = |key: &[&Value], batch: &mut Vec<Instance>| {
                walked.set(walked.get() + 1);
                let bound: Vec<(AttrId, &Value)> =
                    key_attrs.iter().copied().zip(key.iter().copied()).collect();
                if !preds.iter().all(|(a, p)| {
                    bound
                        .iter()
                        .find(|(b, _)| b == a)
                        .is_some_and(|(_, v)| p.matches(v))
                }) {
                    return;
                }
                let fields: Vec<(AttrId, Value)> = bound
                    .iter()
                    .filter(|(a, _)| target.contains(a.index()))
                    .map(|(a, v)| (*a, (*v).clone()))
                    .collect();
                batch.push(Instance::from_parts(fields));
            };
            match idx {
                Index::Hash(h) => {
                    for k in h.keys() {
                        emit(&[k], &mut batch);
                        if batch.len() >= BATCH_SIZE {
                            sink(&mut batch);
                            batch.clear();
                        }
                    }
                }
                Index::Ord(o) => {
                    for k in o.keys() {
                        emit(&[k], &mut batch);
                        if batch.len() >= BATCH_SIZE {
                            sink(&mut batch);
                            batch.clear();
                        }
                    }
                }
                Index::Composite(c) => {
                    for key in c.keys() {
                        let refs: Vec<&Value> = key.iter().collect();
                        emit(&refs, &mut batch);
                        if batch.len() >= BATCH_SIZE {
                            sink(&mut batch);
                            batch.clear();
                        }
                    }
                }
            }
            if !batch.is_empty() {
                sink(&mut batch);
            }
            if let Some(node) = prof.node() {
                node.add_rows_in(walked.get());
            }
        }
        Physical::Filter { input, preds } => {
            let columnar = opts.columnar;
            for_each_batch(
                input,
                db,
                indexes,
                opts,
                prof.child(plan, 0),
                &mut |batch| {
                    if columnar {
                        filter_batch_columnar(batch, preds);
                    } else {
                        batch.retain(|t| matches(t, preds));
                    }
                    if !batch.is_empty() {
                        sink(batch);
                    }
                },
            );
        }
        Physical::Project { input, to } => {
            let target = db.schema().attrs_of(*to).clone();
            let columnar = opts.columnar;
            for_each_batch(
                input,
                db,
                indexes,
                opts,
                prof.child(plan, 0),
                &mut |batch| {
                    let mut projected: Vec<Instance> = if columnar {
                        let refs: Vec<&Instance> = batch.iter().collect();
                        let out = project_rows_columnar(&refs, &target);
                        batch.clear();
                        out
                    } else {
                        batch.drain(..).map(|t| t.project(&target)).collect()
                    };
                    sink(&mut projected);
                },
            );
        }
        Physical::HashJoin {
            build, probe, keys, ..
        } => {
            // The natural-join key: shared attributes of the two input
            // types, computed by the planner in id order.
            let key_of = |t: &Instance| -> Vec<Value> {
                keys.iter().filter_map(|a| t.get(*a).cloned()).collect()
            };
            let columnar = opts.columnar;
            // Materialise the build side into a hash table, extracting
            // key columns batch-at-a-time on the columnar path.
            let mut table: HashMap<Vec<Value>, Vec<Instance>> = HashMap::new();
            for_each_batch(
                build,
                db,
                indexes,
                opts,
                prof.child(plan, 0),
                &mut |batch| {
                    let hints = columnar.then(|| key_hints(batch, keys));
                    for t in batch.drain(..) {
                        let key = match &hints {
                            Some(h) => key_with_hints(&t, keys, h),
                            None => key_of(&t),
                        };
                        table.entry(key).or_default().push(t);
                    }
                },
            );
            if let Some(node) = prof.node() {
                // Serial build = one partition holding every build row.
                let build_rows: usize = table.values().map(Vec::len).sum();
                node.note_partitions(1, build_rows as u64);
            }
            // Stream the probe side.
            let mut out = Vec::with_capacity(BATCH_SIZE);
            for_each_batch(
                probe,
                db,
                indexes,
                opts,
                prof.child(plan, 1),
                &mut |batch| {
                    let hints = columnar.then(|| key_hints(batch, keys));
                    for p in batch.drain(..) {
                        let partners = match &hints {
                            Some(h) => table.get(&key_with_hints(&p, keys, h)),
                            None => table.get(&key_of(&p)),
                        };
                        if let Some(partners) = partners {
                            for b in partners {
                                out.push(b.merge(&p));
                                if out.len() == BATCH_SIZE {
                                    sink(&mut out);
                                    out.clear();
                                }
                            }
                        }
                    }
                },
            );
            if !out.is_empty() {
                sink(&mut out);
            }
        }
        Physical::MergeJoin {
            left, right, keys, ..
        } => {
            // Both inputs arrive sorted on `keys` (an order-carrying
            // access path, an order-preserving pipeline, or an explicit
            // Sort enforcer below). Materialise each side and match
            // equal-key groups pairwise.
            let collect = |side: &Physical, p: Prof| {
                let mut rows: Vec<Instance> = Vec::new();
                for_each_batch(side, db, indexes, opts, p, &mut |batch| rows.append(batch));
                rows
            };
            let lrows = collect(left, prof.child(plan, 0));
            let rrows = collect(right, prof.child(plan, 1));
            merge_join_sorted(&lrows, &rrows, keys, sink);
        }
        Physical::Sort { input, keys } => {
            let mut rows: Vec<Instance> = Vec::new();
            for_each_batch(
                input,
                db,
                indexes,
                opts,
                prof.child(plan, 0),
                &mut |batch| rows.append(batch),
            );
            if let Some(node) = prof.node() {
                node.add_runs(1);
            }
            // Stable, so an input order on a longer key list survives as
            // the tie-break.
            rows.sort_by(|a, b| cmp_by_keys(a, b, keys));
            let mut iter = rows.into_iter();
            loop {
                let mut batch: Vec<Instance> = iter.by_ref().take(BATCH_SIZE).collect();
                if batch.is_empty() {
                    break;
                }
                sink(&mut batch);
            }
        }
        Physical::Union { left, right, .. } => {
            // Bag semantics here; the collecting sink deduplicates.
            for_each_batch(left, db, indexes, opts, prof.child(plan, 0), sink);
            for_each_batch(right, db, indexes, opts, prof.child(plan, 1), sink);
        }
        Physical::Intersect { build, probe, .. } => {
            let mut members = Relation::new();
            for_each_batch(
                build,
                db,
                indexes,
                opts,
                prof.child(plan, 0),
                &mut |batch| {
                    for t in batch.drain(..) {
                        members.insert(t);
                    }
                },
            );
            for_each_batch(
                probe,
                db,
                indexes,
                opts,
                prof.child(plan, 1),
                &mut |batch| {
                    batch.retain(|t| members.contains(t));
                    if !batch.is_empty() {
                        sink(batch);
                    }
                },
            );
        }
    }
}

/// The merge loop shared by the serial and parallel merge-join paths:
/// both inputs arrive sorted ascending on `keys`; equal-key groups are
/// matched pairwise and streamed into `sink` batch-wise.
fn merge_join_sorted(
    lrows: &[Instance],
    rrows: &[Instance],
    keys: &[AttrId],
    sink: &mut dyn FnMut(&mut Vec<Instance>),
) {
    let sorted_keys: Vec<(AttrId, SortDir)> = keys.iter().map(|a| (*a, SortDir::Asc)).collect();
    debug_assert!(
        lrows
            .windows(2)
            .chain(rrows.windows(2))
            .all(|w| cmp_by_keys(&w[0], &w[1], &sorted_keys) != std::cmp::Ordering::Greater),
        "merge-join input not sorted on its keys"
    );
    let group_end = |rows: &[Instance], start: usize| {
        let mut end = start + 1;
        while end < rows.len()
            && cmp_by_keys(&rows[start], &rows[end], &sorted_keys) == std::cmp::Ordering::Equal
        {
            end += 1;
        }
        end
    };
    let mut out = Vec::with_capacity(BATCH_SIZE);
    let (mut i, mut j) = (0, 0);
    while i < lrows.len() && j < rrows.len() {
        match cmp_by_keys(&lrows[i], &rrows[j], &sorted_keys) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let (i2, j2) = (group_end(lrows, i), group_end(rrows, j));
                for l in &lrows[i..i2] {
                    for r in &rrows[j..j2] {
                        out.push(l.merge(r));
                        if out.len() == BATCH_SIZE {
                            sink(&mut out);
                            out.clear();
                        }
                    }
                }
                i = i2;
                j = j2;
            }
        }
    }
    if !out.is_empty() {
        sink(&mut out);
    }
}

// ---------------------------------------------------------------------
// Morsel-driven parallel evaluation.
// ---------------------------------------------------------------------

#[cfg(feature = "parallel")]
mod parallel {
    use super::*;
    use std::hash::{Hash, Hasher};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Shared execution context for one parallel plan evaluation.
    #[derive(Clone, Copy)]
    pub(super) struct Ctx<'a> {
        pub db: &'a Database,
        pub indexes: &'a [Vec<Index>],
        pub threads: usize,
        pub morsel_size: usize,
        pub columnar: bool,
    }

    impl<'a> Ctx<'a> {
        pub fn new(db: &'a Database, indexes: &'a [Vec<Index>], opts: &ExecOptions) -> Ctx<'a> {
            Ctx {
                db,
                indexes,
                threads: opts.effective_threads(),
                morsel_size: opts.morsel_size.max(1),
                columnar: opts.columnar,
            }
        }

        /// The serial-path options equivalent to this context (leaf
        /// operators inside a parallel plan run through the serial
        /// executor).
        fn opts(&self) -> ExecOptions {
            ExecOptions {
                threads: 1,
                morsel_size: self.morsel_size,
                columnar: self.columnar,
            }
        }
    }

    /// The morsel dispatcher: applies `f` to every item of `items` on a
    /// scoped worker pool and returns the results *in item order*.
    ///
    /// Workers pull the next unclaimed index off a shared atomic counter
    /// (work stealing at morsel granularity), so uneven morsels don't
    /// leave threads idle. The pool is clamped to `min(threads, #items)`
    /// and collapses to an inline loop when one worker suffices — callers
    /// never pay thread spawn for short inputs.
    pub(super) fn dispatch<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = threads.min(items.len()).max(1);
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let next = AtomicUsize::new(0);
        let mut keyed: Vec<(usize, R)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            local.push((i, f(i, &items[i])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("morsel worker panicked"))
                .collect()
        });
        keyed.sort_unstable_by_key(|(i, _)| *i);
        keyed.into_iter().map(|(_, r)| r).collect()
    }

    /// [`dispatch`] over items that are consumed rather than borrowed
    /// (each is taken exactly once through a mutex-guarded slot).
    fn dispatch_take<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        dispatch(&slots, threads, |i, slot| {
            let item = slot
                .lock()
                .expect("slot lock poisoned")
                .take()
                .expect("each slot is claimed exactly once");
            f(i, item)
        })
    }

    /// One fused pipeline step above a source.
    enum Step<'p> {
        Filter(&'p [(AttrId, Predicate)]),
        Project(toposem_topology::BitSet),
    }

    /// The columnar worker pass for a fused scan: source predicates and
    /// fused `Filter` steps evaluate as bitmap kernels over columns
    /// decoded once per morsel; `Project` steps narrow a cumulative
    /// attribute target (sequential projections compose by
    /// intersection) that the final materialisation applies by column
    /// slicing. A filter on an attribute already projected away drains
    /// the mask, mirroring the row path's `get() == None` rejection.
    /// Step tallies land in `counts` exactly as [`push_through`] would
    /// record them: `counts[i]` = rows surviving steps `0..=i`.
    fn scan_morsel_columnar(
        morsel: &[&Instance],
        preds: &[(AttrId, Predicate)],
        steps: &[Step],
        counts: &mut [u64],
    ) -> (Vec<Instance>, u64) {
        let cm = ColumnarMorsel::new(morsel);
        let mut mask = eval_preds_mask(&cm, preds);
        let scanned_out = mask.count_ones() as u64;
        let mut target: Option<BitSet> = None;
        for (i, step) in steps.iter().enumerate() {
            match step {
                Step::Filter(preds) => {
                    for (attr, pred) in preds.iter() {
                        if !mask.any() {
                            break;
                        }
                        let pm = if target.as_ref().is_some_and(|t| !t.contains(attr.index())) {
                            SelectionMask::none(cm.len())
                        } else {
                            // Columns decode from the *original* rows:
                            // projection narrows attributes, never
                            // values, so surviving attrs are unchanged.
                            pred_mask(&cm, *attr, pred)
                        };
                        mask.and_with(&pm);
                    }
                }
                Step::Project(to) => {
                    target = Some(match target {
                        None => to.clone(),
                        Some(t) => t.intersection(to),
                    });
                }
            }
            if let Some(c) = counts.get_mut(i) {
                *c += mask.count_ones() as u64;
            }
        }
        let selected: Vec<&Instance> = mask.iter_ones().map(|i| morsel[i]).collect();
        let res = match &target {
            None => selected.into_iter().cloned().collect(),
            Some(t) => project_rows_columnar(&selected, t),
        };
        (res, scanned_out)
    }

    /// Pushes one tuple through the fused steps; `None` when a filter
    /// rejects it. Clones lazily: a tuple is only materialised at its
    /// first projection (or at the end, for the output). `counts[i]` is
    /// bumped when step `i` passes the tuple on — plain per-morsel
    /// tallies the caller merges into the profile in one atomic add.
    fn push_through(t: &Instance, steps: &[Step], counts: &mut [u64]) -> Option<Instance> {
        let mut owned: Option<Instance> = None;
        for (i, step) in steps.iter().enumerate() {
            let cur = owned.as_ref().unwrap_or(t);
            match step {
                Step::Filter(preds) => {
                    if !matches(cur, preds) {
                        return None;
                    }
                }
                Step::Project(target) => owned = Some(cur.project(target)),
            }
            if let Some(c) = counts.get_mut(i) {
                *c += 1;
            }
        }
        Some(owned.unwrap_or_else(|| t.clone()))
    }

    /// Records a parallel operator's actuals once its morsels exist:
    /// call count, output rows, inclusive wall time, pool size.
    fn note_node(prof: Prof, t0: Instant, morsels: &[Vec<Instance>], workers: usize) {
        if let Some(node) = prof.node() {
            node.add_call();
            node.add_rows(morsels.iter().map(|m| m.len() as u64).sum());
            node.add_wall_ns(t0.elapsed().as_nanos() as u64);
            node.note_workers(workers as u64);
        }
    }

    /// Evaluates `plan` into ordered output morsels, data-parallel where
    /// the operator allows it. Concatenating the morsels yields exactly
    /// the serial executor's arrival order.
    pub(super) fn eval_parallel(plan: &Physical, ctx: &Ctx, prof: Prof) -> Vec<Vec<Instance>> {
        let t0 = Instant::now();
        match plan {
            Physical::Empty { .. } => {
                if let Some(node) = prof.node() {
                    node.add_call();
                }
                Vec::new()
            }
            Physical::SeqScan { .. } | Physical::Filter { .. } | Physical::Project { .. } => {
                eval_pipeline(plan, ctx, prof)
            }
            Physical::HashJoin {
                build, probe, keys, ..
            } => {
                let (bm, pm) =
                    eval_both(build, probe, ctx, prof.child(plan, 0), prof.child(plan, 1));
                let table = PartitionedTable::build(bm, keys, ctx);
                let nmorsels = pm.len();
                let out = dispatch(&pm, ctx.threads, |_, morsel| {
                    let mut out = Vec::new();
                    if ctx.columnar {
                        // Hash the key columns for the whole morsel
                        // before touching the table.
                        let morsel_keys = batch_join_keys(morsel, keys);
                        for (p, key) in morsel.iter().zip(&morsel_keys) {
                            for b in table.partners_by_key(key) {
                                out.push(b.merge(p));
                            }
                        }
                    } else {
                        for p in morsel {
                            for b in table.partners(p) {
                                out.push(b.merge(p));
                            }
                        }
                    }
                    out
                });
                if let Some(node) = prof.node() {
                    let (nparts, maxp) = table.skew();
                    node.note_partitions(nparts, maxp);
                    node.add_morsels(nmorsels as u64);
                }
                note_node(prof, t0, &out, ctx.threads.min(nmorsels).max(1));
                out
            }
            Physical::MergeJoin {
                left, right, keys, ..
            } => {
                let (lm, rm) =
                    eval_both(left, right, ctx, prof.child(plan, 0), prof.child(plan, 1));
                let lrows: Vec<Instance> = lm.into_iter().flatten().collect();
                let rrows: Vec<Instance> = rm.into_iter().flatten().collect();
                let mut out: Vec<Vec<Instance>> = Vec::new();
                merge_join_sorted(&lrows, &rrows, keys, &mut |batch| {
                    out.push(std::mem::take(batch));
                });
                // The merge loop itself is single-threaded.
                note_node(prof, t0, &out, 1);
                out
            }
            Physical::Sort { input, keys } => {
                let morsels = eval_parallel(input, ctx, prof.child(plan, 0));
                let nmorsels = morsels.len();
                let out = par_sort_morsels(morsels, ctx, |a, b| cmp_by_keys(a, b, keys));
                if let Some(node) = prof.node() {
                    // One contiguous run per worker, as par_sort_morsels
                    // splits them.
                    node.add_runs(ctx.threads.min(nmorsels).max(1) as u64);
                    node.add_morsels(nmorsels as u64);
                }
                note_node(prof, t0, &out, ctx.threads.min(nmorsels).max(1));
                out
            }
            Physical::Union { left, right, .. } => {
                let (mut lm, rm) =
                    eval_both(left, right, ctx, prof.child(plan, 0), prof.child(plan, 1));
                lm.extend(rm);
                note_node(prof, t0, &lm, ctx.threads.clamp(1, 2));
                lm
            }
            Physical::Intersect { build, probe, .. } => {
                let (bm, pm) =
                    eval_both(build, probe, ctx, prof.child(plan, 0), prof.child(plan, 1));
                // One serial pass builds the membership set (a parallel
                // per-morsel pre-hash would touch every tuple twice for
                // no gain — the merge is serial either way; the cost
                // model prices exactly this); the probe filter then
                // runs morsel-parallel against the read-only set.
                let members: HashSet<Instance> = bm.into_iter().flatten().collect();
                let nmorsels = pm.len();
                let out = dispatch(&pm, ctx.threads, |_, morsel| {
                    morsel
                        .iter()
                        .filter(|t| members.contains(*t))
                        .cloned()
                        .collect::<Vec<Instance>>()
                });
                if let Some(node) = prof.node() {
                    node.add_morsels(nmorsels as u64);
                }
                note_node(prof, t0, &out, ctx.threads.min(nmorsels).max(1));
                out
            }
            // Index access paths are selective by construction; their
            // outputs are collected serially (and still feed parallel
            // consumers above them). The serial path records actuals.
            leaf => collect_serial(leaf, ctx, prof),
        }
    }

    /// Evaluates a binary operator's two inputs concurrently, *splitting*
    /// the worker budget between the sides (each side parallelises
    /// internally with half the pool) so nested binary operators cannot
    /// compound past the configured thread ceiling.
    fn eval_both(
        a: &Physical,
        b: &Physical,
        ctx: &Ctx,
        pa: Prof,
        pb: Prof,
    ) -> (Vec<Vec<Instance>>, Vec<Vec<Instance>>) {
        if ctx.threads <= 1 {
            return (eval_parallel(a, ctx, pa), eval_parallel(b, ctx, pb));
        }
        let side_ctx = Ctx {
            threads: ctx.threads.div_ceil(2),
            ..*ctx
        };
        let sides = [(a, pa), (b, pb)];
        let mut results = dispatch(&sides, 2, |_, (side, p)| eval_parallel(side, &side_ctx, *p));
        let rb = results.pop().expect("two sides in, two results out");
        let ra = results.pop().expect("two sides in, two results out");
        (ra, rb)
    }

    /// Evaluates a `Filter`/`Project` chain fused onto its source: the
    /// steps run inside the same worker pass that scans the source
    /// morsels, so a filtered-projected scan touches each tuple once.
    ///
    /// Profiling counts each fused step's output rows per morsel with a
    /// plain local array, merged into the shared slots in one atomic add
    /// per step per morsel. Fused nodes execute in a single worker pass,
    /// so they share the pipeline's wall time and pool size.
    fn eval_pipeline(plan: &Physical, ctx: &Ctx, prof: Prof) -> Vec<Vec<Instance>> {
        let t0 = Instant::now();
        // Peel the order-preserving tuple-wise steps off the top,
        // remembering each step's profile slot.
        let mut steps: Vec<Step> = Vec::new();
        let mut step_profs: Vec<Prof> = Vec::new();
        let mut cur = plan;
        let mut cur_prof = prof;
        loop {
            match cur {
                Physical::Filter { input, preds } => {
                    steps.push(Step::Filter(preds));
                    step_profs.push(cur_prof);
                    cur_prof = cur_prof.child(cur, 0);
                    cur = input;
                }
                Physical::Project { input, to } => {
                    steps.push(Step::Project(ctx.db.schema().attrs_of(*to).clone()));
                    step_profs.push(cur_prof);
                    cur_prof = cur_prof.child(cur, 0);
                    cur = input;
                }
                _ => break,
            }
        }
        steps.reverse();
        step_profs.reverse();
        // Merges one morsel's local step tallies into the shared slots.
        let merge_counts = |counts: &[u64]| {
            for (p, c) in step_profs.iter().zip(counts) {
                if let Some(node) = p.node() {
                    node.add_rows(*c);
                }
            }
        };
        if let Physical::SeqScan { ty, preds } = cur {
            // Fused source: scan morsels of the stored relation, filter
            // and project inside the workers — through the columnar
            // kernels (decoded columns + selection bitmaps) by default,
            // row-at-a-time when disabled.
            let rel = ctx.db.extension_cow(*ty);
            let morsels: Vec<Vec<&Instance>> = rel.morsels(ctx.morsel_size).collect();
            let workers = ctx.threads.min(morsels.len()).max(1);
            let out = dispatch(&morsels, ctx.threads, |_, morsel| {
                let mut counts = vec![0u64; steps.len()];
                let (res, scanned_out) = if ctx.columnar {
                    scan_morsel_columnar(morsel, preds, &steps, &mut counts)
                } else {
                    let mut scanned_out = 0u64;
                    let res: Vec<Instance> = morsel
                        .iter()
                        .copied()
                        .filter(|t| matches(t, preds))
                        .inspect(|_| scanned_out += 1)
                        .filter_map(|t| push_through(t, &steps, &mut counts))
                        .collect();
                    (res, scanned_out)
                };
                if let Some(node) = cur_prof.node() {
                    node.add_rows_in(morsel.len() as u64);
                    node.add_rows(scanned_out);
                    node.add_morsels(1);
                    if ctx.columnar {
                        node.add_vec_batches(1);
                    }
                }
                merge_counts(&counts);
                res
            });
            if cur_prof.node().is_some() {
                let wall = t0.elapsed().as_nanos() as u64;
                for p in step_profs.iter().chain(std::iter::once(&cur_prof)) {
                    if let Some(node) = p.node() {
                        node.add_call();
                        node.add_wall_ns(wall);
                        node.note_workers(workers as u64);
                    }
                }
            }
            return out;
        }
        // Composite source (a join, set operation, sort, or index path):
        // evaluate it, then run the fused steps morsel-parallel.
        let morsels = eval_parallel(cur, ctx, cur_prof);
        if steps.is_empty() {
            return morsels;
        }
        let workers = ctx.threads.min(morsels.len()).max(1);
        let out = dispatch_take(morsels, ctx.threads, |_, morsel| {
            let mut counts = vec![0u64; steps.len()];
            let res: Vec<Instance> = morsel
                .iter()
                .filter_map(|t| push_through(t, &steps, &mut counts))
                .collect();
            merge_counts(&counts);
            res
        });
        if prof.node().is_some() {
            let wall = t0.elapsed().as_nanos() as u64;
            for p in &step_profs {
                if let Some(node) = p.node() {
                    node.add_call();
                    node.add_wall_ns(wall);
                    node.note_workers(workers as u64);
                }
            }
        }
        out
    }

    /// Serially collects a leaf operator's output into morsels. The
    /// serial executor records the leaf's actuals.
    fn collect_serial(plan: &Physical, ctx: &Ctx, prof: Prof) -> Vec<Vec<Instance>> {
        let mut out: Vec<Vec<Instance>> = Vec::new();
        let mut cur: Vec<Instance> = Vec::new();
        for_each_batch(plan, ctx.db, ctx.indexes, &ctx.opts(), prof, &mut |batch| {
            for t in batch.drain(..) {
                cur.push(t);
                if cur.len() == ctx.morsel_size {
                    out.push(std::mem::take(&mut cur));
                }
            }
        });
        if !cur.is_empty() {
            out.push(cur);
        }
        out
    }

    /// A hash-join build side partitioned for parallel probing. Tuples
    /// are scattered into `parts` buckets by key hash (phase 1, morsel-
    /// parallel), then each partition's hash table is assembled
    /// independently (phase 2, partition-parallel). Bucket contents are
    /// concatenated in morsel order, so every table entry lists its
    /// build tuples in exactly the serial executor's arrival order.
    pub(super) struct PartitionedTable {
        parts: Vec<HashMap<Vec<Value>, Vec<Instance>>>,
        keys: Vec<AttrId>,
    }

    impl PartitionedTable {
        fn build(morsels: Vec<Vec<Instance>>, keys: &[AttrId], ctx: &Ctx) -> PartitionedTable {
            let nparts = ctx.threads.max(1);
            let columnar = ctx.columnar;
            // Phase 1: scatter each morsel into per-partition buckets —
            // key columns extracted batch-wise on the columnar path.
            let scattered = dispatch_take(morsels, ctx.threads, |_, morsel| {
                let mut buckets: Vec<Vec<(Vec<Value>, Instance)>> = vec![Vec::new(); nparts];
                if columnar {
                    let morsel_keys = batch_join_keys(&morsel, keys);
                    for (t, key) in morsel.into_iter().zip(morsel_keys) {
                        buckets[partition_of(&key, nparts)].push((key, t));
                    }
                } else {
                    for t in morsel {
                        let key = join_key(&t, keys);
                        buckets[partition_of(&key, nparts)].push((key, t));
                    }
                }
                buckets
            });
            // Transpose morsel-major buckets to partition-major (pointer
            // moves only), preserving morsel order within each partition.
            let mut part_major: Vec<Vec<(Vec<Value>, Instance)>> =
                (0..nparts).map(|_| Vec::new()).collect();
            for buckets in scattered {
                for (p, bucket) in buckets.into_iter().enumerate() {
                    part_major[p].extend(bucket);
                }
            }
            // Phase 2: assemble one hash table per partition; entries
            // accumulate build tuples in arrival order.
            let parts = dispatch_take(part_major, ctx.threads, |_, pairs| {
                let mut table: HashMap<Vec<Value>, Vec<Instance>> = HashMap::new();
                for (key, t) in pairs {
                    table.entry(key).or_default().push(t);
                }
                table
            });
            PartitionedTable {
                parts,
                keys: keys.to_vec(),
            }
        }

        fn partners(&self, probe: &Instance) -> &[Instance] {
            let key = join_key(probe, &self.keys);
            self.partners_by_key(&key)
        }

        fn partners_by_key(&self, key: &[Value]) -> &[Instance] {
            self.parts[partition_of(key, self.parts.len())]
                .get(key)
                .map(Vec::as_slice)
                .unwrap_or(&[])
        }

        /// Partition-skew summary: `(partition count, largest partition's
        /// build-tuple count)` — the profiled hash join reports these.
        fn skew(&self) -> (u64, u64) {
            let largest = self
                .parts
                .iter()
                .map(|p| p.values().map(Vec::len).sum::<usize>())
                .max()
                .unwrap_or(0);
            (self.parts.len() as u64, largest as u64)
        }
    }

    /// The natural-join key projection (shared attributes in id order),
    /// identical to the serial executor's.
    fn join_key(t: &Instance, keys: &[AttrId]) -> Vec<Value> {
        keys.iter().filter_map(|a| t.get(*a).cloned()).collect()
    }

    /// Deterministic partition assignment (`DefaultHasher::new()` is
    /// fixed-key SipHash, stable within and across processes).
    fn partition_of(key: &[Value], nparts: usize) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % nparts
    }

    /// Parallel sort: workers sort contiguous run groups of the input
    /// morsels (stable within each run), then a serial multi-way merge
    /// interleaves the runs — ties break toward the earlier run, so the
    /// result equals a stable sort of the concatenated input. Returns
    /// output morsels of `ctx.morsel_size`.
    pub(super) fn par_sort_morsels(
        morsels: Vec<Vec<Instance>>,
        ctx: &Ctx,
        cmp: impl Fn(&Instance, &Instance) -> std::cmp::Ordering + Sync,
    ) -> Vec<Vec<Instance>> {
        if morsels.is_empty() {
            return Vec::new();
        }
        // One contiguous run per worker keeps run generation balanced
        // without disturbing input order.
        let workers = ctx.threads.min(morsels.len()).max(1);
        let per_run = morsels.len().div_ceil(workers);
        let run_groups: Vec<Vec<Vec<Instance>>> = {
            let mut groups = Vec::new();
            let mut iter = morsels.into_iter();
            loop {
                let group: Vec<Vec<Instance>> = iter.by_ref().take(per_run).collect();
                if group.is_empty() {
                    break;
                }
                groups.push(group);
            }
            groups
        };
        let mut runs: Vec<std::collections::VecDeque<Instance>> =
            dispatch_take(run_groups, ctx.threads, |_, group| {
                let mut run: Vec<Instance> = group.into_iter().flatten().collect();
                run.sort_by(&cmp);
                std::collections::VecDeque::from(run)
            });
        if runs.len() == 1 {
            let run = runs.pop().expect("one run");
            return chunk(run.into_iter().collect(), ctx.morsel_size);
        }
        // Multi-way merge; k = #runs ≤ threads, so a linear min scan per
        // pop is cheap and keeps the tie-break explicit.
        let total: usize = runs.iter().map(std::collections::VecDeque::len).sum();
        let mut merged: Vec<Instance> = Vec::with_capacity(total);
        loop {
            let mut best: Option<usize> = None;
            for (r, run) in runs.iter().enumerate() {
                let Some(head) = run.front() else { continue };
                // Strictly-less keeps the earliest run on ties: stability.
                match best {
                    None => best = Some(r),
                    Some(b) => {
                        let best_head = runs[b].front().expect("best run is non-empty");
                        if cmp(head, best_head) == std::cmp::Ordering::Less {
                            best = Some(r);
                        }
                    }
                }
            }
            let Some(r) = best else { break };
            merged.push(runs[r].pop_front().expect("chosen run is non-empty"));
        }
        chunk(merged, ctx.morsel_size)
    }

    fn chunk(rows: Vec<Instance>, size: usize) -> Vec<Vec<Instance>> {
        let size = size.max(1);
        let mut out = Vec::new();
        let mut iter = rows.into_iter();
        loop {
            let part: Vec<Instance> = iter.by_ref().take(size).collect();
            if part.is_empty() {
                break;
            }
            out.push(part);
        }
        out
    }
}

#[cfg(feature = "parallel")]
use parallel::{eval_parallel, par_sort_morsels, Ctx};

#[cfg(test)]
mod tests {
    //! Differential tests for the columnar kernels: every kernel is
    //! checked bit-for-bit against the row-at-a-time evaluation it
    //! replaces, across morsel sizes that straddle the bitmap word
    //! boundary (empty, single-tuple, 63/64/65, multi-word) and every
    //! predicate class — including cross-variant constants, which must
    //! resolve through the same `Int < Str < Bool` total order the row
    //! path compares under.

    use super::*;

    const NAME: AttrId = AttrId(0); // always Str
    const AGE: AttrId = AttrId(1); // always Int (negatives included)
    const FLAG: AttrId = AttrId(2); // always Bool
    const MIXED: AttrId = AttrId(3); // alternates Int / Str
    const SPARSE: AttrId = AttrId(4); // missing on every third row

    /// Deterministic rows exercising all four column shapes plus a
    /// partially-missing attribute.
    fn make_rows(n: usize) -> Vec<Instance> {
        (0..n)
            .map(|i| {
                let mut fields = vec![
                    (NAME, Value::str(&format!("w{:03}", (i * 37) % 100))),
                    (AGE, Value::Int((i as i64 * 13) % 50 - 10)),
                    (FLAG, Value::Bool(i % 3 == 0)),
                    (
                        MIXED,
                        if i % 2 == 0 {
                            Value::Int(i as i64)
                        } else {
                            Value::str(&format!("m{i}"))
                        },
                    ),
                ];
                if i % 3 != 1 {
                    fields.push((SPARSE, Value::Int(i as i64 % 7)));
                }
                Instance::from_parts(fields)
            })
            .collect()
    }

    /// Every predicate class, with constants of every variant — the
    /// cross-variant ones hit the kernel branches that resolve bounds
    /// through the `Value` total order.
    fn preds() -> Vec<Predicate> {
        use Predicate::*;
        vec![
            Eq(Value::Int(13)),
            Lt(Value::Int(7)),
            Le(Value::Int(7)),
            Gt(Value::Int(30)),
            Ge(Value::Int(30)),
            Between(Value::Int(-5), Value::Int(12)),
            Between(Value::Int(12), Value::Int(-5)), // inverted: empty
            Eq(Value::str("w037")),
            Lt(Value::str("w050")),
            Le(Value::str("w050")),
            Gt(Value::str("w050")),
            Ge(Value::str("w050")),
            Between(Value::str("w010"), Value::str("w060")),
            Eq(Value::Bool(true)),
            Eq(Value::Bool(false)),
            Lt(Value::Bool(true)),
            Ge(Value::Bool(false)),
            Between(Value::Int(0), Value::str("w999")), // Int lo, Str hi
            Between(Value::str("a"), Value::Bool(true)), // Str lo, Bool hi
            Between(Value::Int(i64::MIN), Value::Bool(true)), // everything
        ]
    }

    /// The row-path semantics every mask kernel must reproduce: rows
    /// missing the attribute are rejected.
    fn ref_ones(rows: &[&Instance], attr: AttrId, pred: &Predicate) -> Vec<usize> {
        rows.iter()
            .enumerate()
            .filter(|(_, t)| t.get(attr).is_some_and(|v| pred.matches(v)))
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn fixture_rows_exercise_every_column_shape() {
        let owned = make_rows(65);
        let refs: Vec<&Instance> = owned.iter().collect();
        let cm = ColumnarMorsel::new(&refs);
        assert!(matches!(&*cm.column(NAME).unwrap(), Column::Str(_)));
        assert!(matches!(&*cm.column(AGE).unwrap(), Column::Int(_)));
        assert!(matches!(&*cm.column(FLAG).unwrap(), Column::Bool(_)));
        assert!(matches!(&*cm.column(MIXED).unwrap(), Column::Mixed(_)));
        assert!(cm.column(SPARSE).is_none(), "sparse attr must not decode");
    }

    #[test]
    fn pred_masks_match_rowwise_evaluation_for_every_class_and_shape() {
        for n in [0usize, 1, 63, 64, 65, 200] {
            let owned = make_rows(n);
            let refs: Vec<&Instance> = owned.iter().collect();
            let cm = ColumnarMorsel::new(&refs);
            for attr in [NAME, AGE, FLAG, MIXED, SPARSE] {
                for pred in preds() {
                    let mask = pred_mask(&cm, attr, &pred);
                    let expect = ref_ones(&refs, attr, &pred);
                    assert_eq!(
                        mask.iter_ones().collect::<Vec<_>>(),
                        expect,
                        "n={n} attr={attr:?} pred={pred:?}"
                    );
                    assert_eq!(mask.count_ones(), expect.len());
                    assert_eq!(mask.any(), !expect.is_empty());
                }
            }
        }
    }

    #[test]
    fn conjunction_bitmaps_match_rowwise_matches() {
        use Predicate::*;
        let pred_sets: Vec<Vec<(AttrId, Predicate)>> = vec![
            vec![],
            vec![(AGE, Ge(Value::Int(0))), (NAME, Lt(Value::str("w080")))],
            // First predicate drains the mask: the early exit must not
            // change the (empty) result.
            vec![(AGE, Lt(Value::Int(-100))), (FLAG, Eq(Value::Bool(true)))],
            vec![
                (FLAG, Eq(Value::Bool(true))),
                (AGE, Between(Value::Int(0), Value::Int(20))),
                (SPARSE, Ge(Value::Int(2))),
                (MIXED, Le(Value::str("zzz"))),
            ],
            // Same-attribute ranges: the fused interval must equal the
            // AND of the individual masks.
            vec![
                (AGE, Ge(Value::Int(0))),
                (AGE, Le(Value::Int(10))),
                (AGE, Between(Value::Int(2), Value::Int(30))),
            ],
            // Contradictory ranges on one column: fuses to empty.
            vec![(AGE, Lt(Value::Int(5))), (AGE, Gt(Value::Int(10)))],
            // A cross-variant Eq that matches no integer (int_range
            // None) mixed into a same-column group.
            vec![(AGE, Ge(Value::Int(0))), (AGE, Eq(Value::str("x")))],
        ];
        for n in [0usize, 1, 64, 200] {
            let owned = make_rows(n);
            let refs: Vec<&Instance> = owned.iter().collect();
            let cm = ColumnarMorsel::new(&refs);
            for ps in &pred_sets {
                let mask = eval_preds_mask(&cm, ps);
                let expect: Vec<usize> = refs
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| matches(t, ps))
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(
                    mask.iter_ones().collect::<Vec<_>>(),
                    expect,
                    "n={n} preds={ps:?}"
                );
            }
        }
    }

    #[test]
    fn filter_batch_columnar_equals_order_preserving_retain() {
        use Predicate::*;
        let ps = vec![(AGE, Ge(Value::Int(0))), (FLAG, Eq(Value::Bool(true)))];
        for n in [0usize, 1, 64, 200] {
            let mut batch = make_rows(n);
            let mut expect = batch.clone();
            expect.retain(|t| matches(t, &ps));
            filter_batch_columnar(&mut batch, &ps);
            assert_eq!(batch, expect, "n={n}");
        }
    }

    #[test]
    fn projection_by_column_slicing_matches_tuple_wise_project() {
        let universe = 8;
        let targets = [
            BitSet::from_indices(universe, [NAME.index(), AGE.index()]),
            BitSet::from_indices(universe, [AGE.index(), SPARSE.index()]),
            BitSet::from_indices(universe, [MIXED.index()]),
            BitSet::empty(universe),
        ];
        // Homogeneous rows (no sparse attr) take the column-sliced path;
        // make_rows' shape-varying batches fall back — both must equal
        // tuple-wise projection.
        let homogeneous: Vec<Instance> = make_rows(100)
            .into_iter()
            .map(|t| t.project(&BitSet::from_indices(universe, [0, 1, 2, 3])))
            .collect();
        for owned in [make_rows(0), make_rows(1), make_rows(100), homogeneous] {
            let refs: Vec<&Instance> = owned.iter().collect();
            for target in &targets {
                let got = project_rows_columnar(&refs, target);
                let expect: Vec<Instance> = refs.iter().map(|t| t.project(target)).collect();
                assert_eq!(got, expect, "target={target:?}");
            }
        }
    }

    #[test]
    fn batch_join_keys_matches_tuple_wise_extraction() {
        for keys in [
            vec![AGE, NAME],         // both decode: column path
            vec![AGE, SPARSE, NAME], // sparse can't: tuple-wise fallback
            vec![MIXED],             // mixed variants still decode
            Vec::new(),
        ] {
            for n in [0usize, 1, 64, 200] {
                let rows = make_rows(n);
                let got = batch_join_keys(&rows, &keys);
                let expect: Vec<Vec<Value>> = rows
                    .iter()
                    .map(|t| keys.iter().filter_map(|a| t.get(*a).cloned()).collect())
                    .collect();
                assert_eq!(got, expect, "keys={keys:?} n={n}");
            }
        }
    }

    #[test]
    fn scan_columnar_serial_matches_row_streaming() {
        use Predicate::*;
        let mut rel = Relation::new();
        for t in make_rows(200) {
            rel.insert(t);
        }
        let ps = vec![
            (AGE, Between(Value::Int(0), Value::Int(20))),
            (FLAG, Eq(Value::Bool(true))),
        ];
        let mut columnar = Vec::new();
        scan_columnar_serial(&rel, &ps, None, &mut |batch| columnar.append(batch));
        let mut rowwise = Vec::new();
        stream_filtered(rel.iter(), &ps, &mut |batch| rowwise.append(batch));
        assert!(!columnar.is_empty(), "fixture must select something");
        assert_eq!(columnar, rowwise, "order and content must be identical");
    }
}
