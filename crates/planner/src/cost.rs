//! The cost model: cardinality and cost estimation over the statistics
//! layer, driving access-path selection and join-side choice.
//!
//! Costs are abstract "tuple touches". The estimates only need to *rank*
//! alternatives correctly (index seek vs. range seek vs. sequential scan,
//! build side vs. probe side), not predict wall-clock time.

use toposem_storage::{Predicate, Statistics};

use crate::physical::Physical;

use toposem_core::{AttrId, TypeId};
use toposem_extension::Value;

/// Estimated output rows and cumulative cost of a physical subplan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// Expected result cardinality.
    pub rows: f64,
    /// Expected tuple touches to produce it.
    pub cost: f64,
}

/// Per-probe overhead of a hash lookup relative to a scan step.
const HASH_PROBE_COST: f64 = 1.2;
/// Fixed overhead of descending a BTree to position a range/prefix seek.
const TREE_DESCENT_COST: f64 = 2.0;
/// Fixed overhead of instantiating any operator.
const OPERATOR_SETUP_COST: f64 = 1.0;

/// Combined selectivity of a predicate conjunction under independence.
fn conj_selectivity(ty: TypeId, preds: &[(AttrId, Predicate)], stats: &Statistics) -> f64 {
    preds
        .iter()
        .map(|(a, p)| stats.pred_selectivity(ty, *a, p))
        .product()
}

/// Estimates a physical subplan bottom-up.
pub fn estimate(plan: &Physical, stats: &Statistics) -> Estimate {
    match plan {
        Physical::Empty { .. } => Estimate {
            rows: 0.0,
            cost: OPERATOR_SETUP_COST,
        },
        Physical::SeqScan { ty, preds } => {
            let n = stats.cardinality(*ty) as f64;
            Estimate {
                rows: n * conj_selectivity(*ty, preds, stats),
                cost: OPERATOR_SETUP_COST + n,
            }
        }
        Physical::IndexSeek {
            ty, attr, residual, ..
        } => {
            let n = stats.cardinality(*ty) as f64;
            let bucket = n * stats.selectivity(*ty, *attr);
            Estimate {
                rows: bucket * conj_selectivity(*ty, residual, stats),
                cost: OPERATOR_SETUP_COST + HASH_PROBE_COST + bucket,
            }
        }
        Physical::IndexRangeSeek {
            ty,
            attr,
            lo,
            hi,
            residual,
        } => {
            let n = stats.cardinality(*ty) as f64;
            // The range seek touches exactly the tuples inside the
            // interval; rebuild the interval's selectivity from the
            // bounds it was planned with.
            let interval = range_selectivity(*ty, *attr, lo, hi, stats);
            let touched = n * interval;
            Estimate {
                rows: touched * conj_selectivity(*ty, residual, stats),
                cost: OPERATOR_SETUP_COST + TREE_DESCENT_COST + touched,
            }
        }
        Physical::CompositeSeek {
            ty,
            attrs,
            prefix,
            suffix,
            residual,
        } => {
            let n = stats.cardinality(*ty) as f64;
            // Each equality-bound prefix attribute narrows by its own
            // distinct count (independence assumption); a range suffix
            // on the next key attribute narrows further by the range's
            // interpolated selectivity. Never below one tuple's worth.
            let prefix_sel: f64 = attrs
                .iter()
                .take(prefix.len())
                .map(|a| stats.selectivity(*ty, *a))
                .product();
            let suffix_sel = match suffix {
                Some(iv) => range_selectivity(*ty, attrs[prefix.len()], &iv.lo, &iv.hi, stats),
                None => 1.0,
            };
            let touched = (n * prefix_sel * suffix_sel).max(1.0_f64.min(n));
            Estimate {
                rows: touched * conj_selectivity(*ty, residual, stats),
                cost: OPERATOR_SETUP_COST + TREE_DESCENT_COST + touched,
            }
        }
        Physical::IndexOnlyScan {
            ty,
            key_attrs,
            preds,
            ..
        } => {
            let n = stats.cardinality(*ty) as f64;
            // The executor walks *every* distinct key of the covering
            // index (it does not narrow by the predicates), so the cost
            // must charge the full key walk: the independence-assumption
            // key count, capped by the relation size. Still cheaper than
            // SeqScan + Project (≈ n + rows) because no base tuples are
            // touched and no separate projection pass runs — but a
            // selective Project(IndexRangeSeek) correctly beats it.
            let keys = key_attrs
                .iter()
                .map(|a| stats.distinct_count(*ty, *a).max(1) as f64)
                .product::<f64>()
                .min(n);
            let matched = n * conj_selectivity(*ty, preds, stats);
            Estimate {
                rows: matched,
                cost: OPERATOR_SETUP_COST + TREE_DESCENT_COST + keys,
            }
        }
        Physical::Filter { input, preds } => {
            let e = estimate(input, stats);
            let ty = input.ty();
            Estimate {
                rows: e.rows * conj_selectivity(ty, preds, stats),
                cost: e.cost + e.rows,
            }
        }
        Physical::Project { input, .. } => {
            let e = estimate(input, stats);
            Estimate {
                // Projection onto a generalisation can collapse duplicates;
                // without correlation knowledge keep the input estimate.
                rows: e.rows,
                cost: e.cost + e.rows,
            }
        }
        Physical::HashJoin {
            build, probe, keys, ..
        } => {
            let b = estimate(build, stats);
            let p = estimate(probe, stats);
            let rows = stats.join_cardinality(build.ty(), b.rows, probe.ty(), p.rows, keys);
            Estimate {
                rows,
                cost: b.cost + p.cost + b.rows + HASH_PROBE_COST * p.rows + rows,
            }
        }
        Physical::MergeJoin {
            left, right, keys, ..
        } => {
            let l = estimate(left, stats);
            let r = estimate(right, stats);
            let rows = stats.join_cardinality(left.ty(), l.rows, right.ty(), r.rows, keys);
            // Both inputs arrive sorted, so the merge touches each input
            // tuple once — no hash build, no per-probe overhead.
            Estimate {
                rows,
                cost: l.cost + r.cost + l.rows + r.rows + rows,
            }
        }
        Physical::Sort { input, .. } => {
            let e = estimate(input, stats);
            // Comparison sort over the materialised input.
            let n = e.rows.max(2.0);
            Estimate {
                rows: e.rows,
                cost: e.cost + e.rows * n.log2(),
            }
        }
        Physical::Union { left, right, .. } => {
            let l = estimate(left, stats);
            let r = estimate(right, stats);
            Estimate {
                rows: l.rows + r.rows,
                cost: l.cost + r.cost + l.rows + r.rows,
            }
        }
        Physical::Intersect { build, probe, .. } => {
            let b = estimate(build, stats);
            let p = estimate(probe, stats);
            Estimate {
                rows: b.rows.min(p.rows),
                cost: b.cost + p.cost + b.rows + HASH_PROBE_COST * p.rows,
            }
        }
    }
}

/// Selectivity of an explicit interval, via the statistics layer's
/// min/max interpolation (expressed as the equivalent [`Predicate`]).
fn range_selectivity(
    ty: TypeId,
    attr: AttrId,
    lo: &Option<(Value, bool)>,
    hi: &Option<(Value, bool)>,
    stats: &Statistics,
) -> f64 {
    let pred = match (lo, hi) {
        (Some((l, _)), Some((h, _))) => Predicate::Between(l.clone(), h.clone()),
        (Some((l, true)), None) => Predicate::Ge(l.clone()),
        (Some((l, false)), None) => Predicate::Gt(l.clone()),
        (None, Some((h, true))) => Predicate::Le(h.clone()),
        (None, Some((h, false))) => Predicate::Lt(h.clone()),
        (None, None) => return 1.0,
    };
    stats.pred_selectivity(ty, attr, &pred)
}
