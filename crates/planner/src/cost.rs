//! The cost model: cardinality and cost estimation over the statistics
//! layer, driving access-path selection and join-side choice.
//!
//! Costs are abstract "tuple touches". The estimates only need to *rank*
//! alternatives correctly (index seek vs. sequential scan, build side vs.
//! probe side), not predict wall-clock time.

use toposem_storage::Statistics;

use crate::physical::Physical;

/// Estimated output rows and cumulative cost of a physical subplan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// Expected result cardinality.
    pub rows: f64,
    /// Expected tuple touches to produce it.
    pub cost: f64,
}

/// Per-probe overhead of a hash lookup relative to a scan step.
const HASH_PROBE_COST: f64 = 1.2;
/// Fixed overhead of instantiating any operator.
const OPERATOR_SETUP_COST: f64 = 1.0;

/// Estimates a physical subplan bottom-up.
pub fn estimate(plan: &Physical, stats: &Statistics) -> Estimate {
    match plan {
        Physical::Empty { .. } => Estimate {
            rows: 0.0,
            cost: OPERATOR_SETUP_COST,
        },
        Physical::SeqScan { ty, preds } => {
            let n = stats.cardinality(*ty) as f64;
            let selectivity: f64 = preds
                .iter()
                .map(|(a, _)| stats.selectivity(*ty, *a))
                .product();
            Estimate {
                rows: n * selectivity,
                cost: OPERATOR_SETUP_COST + n,
            }
        }
        Physical::IndexSeek {
            ty, attr, residual, ..
        } => {
            let n = stats.cardinality(*ty) as f64;
            let bucket = n * stats.selectivity(*ty, *attr);
            let selectivity: f64 = residual
                .iter()
                .map(|(a, _)| stats.selectivity(*ty, *a))
                .product();
            Estimate {
                rows: bucket * selectivity,
                cost: OPERATOR_SETUP_COST + HASH_PROBE_COST + bucket,
            }
        }
        Physical::Filter { input, preds } => {
            let e = estimate(input, stats);
            let ty = input.ty();
            let selectivity: f64 = preds
                .iter()
                .map(|(a, _)| stats.selectivity(ty, *a))
                .product();
            Estimate {
                rows: e.rows * selectivity,
                cost: e.cost + e.rows,
            }
        }
        Physical::Project { input, .. } => {
            let e = estimate(input, stats);
            Estimate {
                // Projection onto a generalisation can collapse duplicates;
                // without correlation knowledge keep the input estimate.
                rows: e.rows,
                cost: e.cost + e.rows,
            }
        }
        Physical::HashJoin { build, probe, .. } => {
            let b = estimate(build, stats);
            let p = estimate(probe, stats);
            // Join on shared attributes: assume the smaller side's keys all
            // find partners spread over the larger side (containment-style
            // estimate, reasonable under the ISA discipline).
            let rows = b.rows.min(p.rows).max(0.0);
            Estimate {
                rows,
                cost: b.cost + p.cost + b.rows + HASH_PROBE_COST * p.rows + rows,
            }
        }
        Physical::Union { left, right, .. } => {
            let l = estimate(left, stats);
            let r = estimate(right, stats);
            Estimate {
                rows: l.rows + r.rows,
                cost: l.cost + r.cost + l.rows + r.rows,
            }
        }
        Physical::Intersect { build, probe, .. } => {
            let b = estimate(build, stats);
            let p = estimate(probe, stats);
            Estimate {
                rows: b.rows.min(p.rows),
                cost: b.cost + p.cost + b.rows + HASH_PROBE_COST * p.rows,
            }
        }
    }
}
