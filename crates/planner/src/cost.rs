//! The cost model: cardinality and cost estimation over the statistics
//! layer, driving access-path selection and join-side choice.
//!
//! Costs are abstract "tuple touches". The estimates only need to *rank*
//! alternatives correctly (index seek vs. range seek vs. sequential scan,
//! build side vs. probe side), not predict wall-clock time.
//!
//! With the `parallel` feature, partitionable operators — sequential
//! scans, fused filter/project pipelines, hash-join build and probe,
//! sort run generation, intersect probes — earn a *parallelism
//! discount*: their per-tuple work is divided by the degree the morsel
//! dispatcher would actually use, `min(threads, ⌈rows / morsel_size⌉)`
//! (see [`parallel_degree`]). Serial sections (merge-join loops, the
//! multi-way merge behind `Sort`) keep their full price, so the model
//! reflects Amdahl-style limits instead of assuming perfect scaling.

use toposem_storage::{Predicate, Statistics};

use crate::exec::ExecOptions;
use crate::physical::Physical;

use toposem_core::{AttrId, TypeId};
use toposem_extension::Value;

/// Estimated output rows and cumulative cost of a physical subplan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// Expected result cardinality.
    pub rows: f64,
    /// Expected tuple touches to produce it.
    pub cost: f64,
}

/// Per-probe overhead of a hash lookup relative to a scan step.
const HASH_PROBE_COST: f64 = 1.2;
/// Fixed overhead of descending a BTree to position a range/prefix seek.
const TREE_DESCENT_COST: f64 = 2.0;
/// Per-tuple overhead of walking an ordered index range relative to a
/// sequential scan step: node hops and comparisons instead of a tight
/// pass over contiguous tuples. Keeps selective seeks winning while a
/// seek that would walk most of the relation correctly loses to the
/// scan (histograms make such wide ranges visible statically).
const TREE_WALK_COST: f64 = 1.1;
/// Fixed overhead of instantiating any operator.
const OPERATOR_SETUP_COST: f64 = 1.0;

/// Combined selectivity of a predicate conjunction under independence.
fn conj_selectivity(ty: TypeId, preds: &[(AttrId, Predicate)], stats: &Statistics) -> f64 {
    preds
        .iter()
        .map(|(a, p)| stats.pred_selectivity(ty, *a, p))
        .product()
}

/// The degree of parallelism the morsel dispatcher would use for a
/// partitionable section over `rows` input tuples: the worker pool is
/// clamped by the morsel count, and without the `parallel` feature
/// everything runs serial. Always ≥ 1.
fn degree(rows: f64, opts: &ExecOptions) -> f64 {
    let threads = opts.effective_threads();
    if threads <= 1 {
        return 1.0;
    }
    let morsels = (rows / opts.morsel_size.max(1) as f64).ceil();
    morsels.clamp(1.0, threads as f64)
}

/// The parallel degree `explain` reports for an operator: the degree of
/// its partitionable section under `opts` (1 when the operator has no
/// partitionable section, the input is too small to split, or the
/// `parallel` feature is off).
pub fn parallel_degree(plan: &Physical, stats: &Statistics, opts: &ExecOptions) -> usize {
    let input_rows = |p: &Physical| estimate_with(p, stats, opts).rows;
    let d = match plan {
        Physical::SeqScan { ty, .. } => degree(stats.cardinality(*ty) as f64, opts),
        Physical::Filter { input, .. } | Physical::Project { input, .. } => {
            degree(input_rows(input), opts)
        }
        Physical::HashJoin { build, probe, .. } => {
            degree(input_rows(build).max(input_rows(probe)), opts)
        }
        Physical::Sort { input, .. } => degree(input_rows(input), opts),
        Physical::Intersect { probe, .. } => degree(input_rows(probe), opts),
        _ => 1.0,
    };
    d as usize
}

/// Estimates a physical subplan bottom-up under the default
/// [`ExecOptions`] (which carry the process-wide thread/morsel knobs, so
/// planning and `explain` price the parallelism execution will use).
pub fn estimate(plan: &Physical, stats: &Statistics) -> Estimate {
    estimate_with(plan, stats, &ExecOptions::default())
}

/// [`estimate`] with explicit [`ExecOptions`] — the parallelism discount
/// follows the supplied thread/morsel knobs.
pub fn estimate_with(plan: &Physical, stats: &Statistics, opts: &ExecOptions) -> Estimate {
    match plan {
        Physical::Empty { .. } => Estimate {
            rows: 0.0,
            cost: OPERATOR_SETUP_COST,
        },
        Physical::SeqScan { ty, preds } => {
            let n = stats.cardinality(*ty) as f64;
            Estimate {
                rows: n * conj_selectivity(*ty, preds, stats),
                // Morsel-parallel: workers scan disjoint morsels.
                cost: OPERATOR_SETUP_COST + n / degree(n, opts),
            }
        }
        Physical::IndexSeek {
            ty, attr, residual, ..
        } => {
            let n = stats.cardinality(*ty) as f64;
            let bucket = n * stats.selectivity(*ty, *attr);
            Estimate {
                rows: bucket * conj_selectivity(*ty, residual, stats),
                cost: OPERATOR_SETUP_COST + HASH_PROBE_COST + bucket,
            }
        }
        Physical::IndexRangeSeek {
            ty,
            attr,
            lo,
            hi,
            residual,
        } => {
            let n = stats.cardinality(*ty) as f64;
            // The range seek touches exactly the tuples inside the
            // interval; rebuild the interval's selectivity from the
            // bounds it was planned with.
            let interval = range_selectivity(*ty, *attr, lo, hi, stats);
            let touched = n * interval;
            Estimate {
                rows: touched * conj_selectivity(*ty, residual, stats),
                cost: OPERATOR_SETUP_COST + TREE_DESCENT_COST + touched * TREE_WALK_COST,
            }
        }
        Physical::CompositeSeek {
            ty,
            attrs,
            prefix,
            suffix,
            residual,
        } => {
            let n = stats.cardinality(*ty) as f64;
            // Each equality-bound prefix attribute narrows by its own
            // distinct count (independence assumption); a range suffix
            // on the next key attribute narrows further by the range's
            // interpolated selectivity. Never below one tuple's worth.
            let prefix_sel: f64 = attrs
                .iter()
                .take(prefix.len())
                .map(|a| stats.selectivity(*ty, *a))
                .product();
            let suffix_sel = match suffix {
                Some(iv) => range_selectivity(*ty, attrs[prefix.len()], &iv.lo, &iv.hi, stats),
                None => 1.0,
            };
            let touched = (n * prefix_sel * suffix_sel).max(1.0_f64.min(n));
            Estimate {
                rows: touched * conj_selectivity(*ty, residual, stats),
                cost: OPERATOR_SETUP_COST + TREE_DESCENT_COST + touched * TREE_WALK_COST,
            }
        }
        Physical::IndexOnlyScan {
            ty,
            key_attrs,
            preds,
            ..
        } => {
            let n = stats.cardinality(*ty) as f64;
            // The executor walks *every* distinct key of the covering
            // index (it does not narrow by the predicates), so the cost
            // must charge the full key walk: the independence-assumption
            // key count, capped by the relation size. Still cheaper than
            // SeqScan + Project (≈ n + rows) because no base tuples are
            // touched and no separate projection pass runs — but a
            // selective Project(IndexRangeSeek) correctly beats it.
            let keys = key_attrs
                .iter()
                .map(|a| stats.distinct_count(*ty, *a).max(1) as f64)
                .product::<f64>()
                .min(n);
            let matched = n * conj_selectivity(*ty, preds, stats);
            Estimate {
                rows: matched,
                cost: OPERATOR_SETUP_COST + TREE_DESCENT_COST + keys,
            }
        }
        Physical::Filter { input, preds } => {
            let e = estimate_with(input, stats, opts);
            let ty = input.ty();
            Estimate {
                rows: e.rows * conj_selectivity(ty, preds, stats),
                // Fused onto its source's morsels under parallelism.
                cost: e.cost + e.rows / degree(e.rows, opts),
            }
        }
        Physical::Project { input, .. } => {
            let e = estimate_with(input, stats, opts);
            Estimate {
                // Projection onto a generalisation can collapse duplicates;
                // without correlation knowledge keep the input estimate.
                rows: e.rows,
                cost: e.cost + e.rows / degree(e.rows, opts),
            }
        }
        Physical::HashJoin {
            build,
            probe,
            keys,
            ty,
        } => {
            let b = estimate_with(build, stats, opts);
            let p = estimate_with(probe, stats, opts);
            let rows = stats.join_cardinality(*ty, build.ty(), b.rows, probe.ty(), p.rows, keys);
            // The build is partitioned in parallel; probes and output
            // merges run morsel-parallel over the probe side.
            Estimate {
                rows,
                cost: b.cost
                    + p.cost
                    + b.rows / degree(b.rows, opts)
                    + (HASH_PROBE_COST * p.rows + rows) / degree(p.rows, opts),
            }
        }
        Physical::MergeJoin {
            left,
            right,
            keys,
            ty,
        } => {
            let l = estimate_with(left, stats, opts);
            let r = estimate_with(right, stats, opts);
            let rows = stats.join_cardinality(*ty, left.ty(), l.rows, right.ty(), r.rows, keys);
            // Both inputs arrive sorted, so the merge touches each input
            // tuple once — no hash build, no per-probe overhead. The
            // merge loop itself is inherently serial: no discount.
            Estimate {
                rows,
                cost: l.cost + r.cost + l.rows + r.rows + rows,
            }
        }
        Physical::Sort { input, .. } => {
            let e = estimate_with(input, stats, opts);
            // Comparison sort over the materialised input: run generation
            // parallelises, the final multi-way merge (one extra touch
            // per tuple) is serial and only exists when runs split.
            let n = e.rows.max(2.0);
            let d = degree(e.rows, opts);
            let merge = if d > 1.0 { e.rows } else { 0.0 };
            Estimate {
                rows: e.rows,
                cost: e.cost + e.rows * n.log2() / d + merge,
            }
        }
        Physical::Union { left, right, .. } => {
            let l = estimate_with(left, stats, opts);
            let r = estimate_with(right, stats, opts);
            Estimate {
                rows: l.rows + r.rows,
                cost: l.cost + r.cost + l.rows + r.rows,
            }
        }
        Physical::Intersect { build, probe, .. } => {
            let b = estimate_with(build, stats, opts);
            let p = estimate_with(probe, stats, opts);
            // Membership sets build per-morsel in parallel but merge
            // serially; the probe pass is morsel-parallel.
            Estimate {
                rows: b.rows.min(p.rows),
                cost: b.cost + p.cost + b.rows + HASH_PROBE_COST * p.rows / degree(p.rows, opts),
            }
        }
    }
}

/// Selectivity of an explicit interval, via the statistics layer's
/// min/max interpolation (expressed as the equivalent [`Predicate`]).
fn range_selectivity(
    ty: TypeId,
    attr: AttrId,
    lo: &Option<(Value, bool)>,
    hi: &Option<(Value, bool)>,
    stats: &Statistics,
) -> f64 {
    let pred = match (lo, hi) {
        (Some((l, _)), Some((h, _))) => Predicate::Between(l.clone(), h.clone()),
        (Some((l, true)), None) => Predicate::Ge(l.clone()),
        (Some((l, false)), None) => Predicate::Gt(l.clone()),
        (None, Some((h, true))) => Predicate::Le(h.clone()),
        (None, Some((h, false))) => Predicate::Lt(h.clone()),
        (None, None) => return 1.0,
    };
    stats.pred_selectivity(ty, attr, &pred)
}
