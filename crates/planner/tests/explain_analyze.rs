//! `explain_analyze` / `query_profiled` correctness: observed actuals
//! must equal ground truth (the naive interpreter), profiling must not
//! perturb results (bit-identical, serial and parallel), q-error must
//! collapse to 1.0 when statistics are fresh over uniform data, and the
//! WAL's latency/batch histograms must surface in the Prometheus export
//! after a commit-heavy workload.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use toposem_core::{employee_schema, Intension};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Value};
use toposem_planner::{ExecOptions, PlannedExecution, ProfiledExecution};
use toposem_storage::{Engine, Query};
use toposem_wal::{FlushPolicy, Wal, WalConfig};

fn fresh_db() -> Database {
    Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::Eager,
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "toposem-explain-analyze-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// An engine loaded with `n` employees (uniform ages over 90 distinct
/// values, three departments), plus departments — the shape behind the
/// q1–q4 benches.
fn loaded_engine(n: i64) -> Engine {
    let eng = Engine::new(fresh_db());
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let department = s.type_id("department").unwrap();
    let deps = ["sales", "research", "admin"];
    for i in 0..n {
        eng.insert(
            employee,
            &[
                ("name", Value::str(&format!("w{i:05}"))),
                ("age", Value::Int(i % 90)),
                ("depname", Value::str(deps[(i % 3) as usize])),
            ],
        )
        .unwrap();
    }
    for (d, l) in [
        ("sales", "amsterdam"),
        ("research", "utrecht"),
        ("admin", "utrecht"),
    ] {
        eng.insert(
            department,
            &[("depname", Value::str(d)), ("location", Value::str(l))],
        )
        .unwrap();
    }
    eng
}

/// The q1–q4-shaped query set: point select, range select, join with a
/// pushed-down predicate (hostile nesting), and a plain join that the
/// parallel executor partitions.
fn query_suite(eng: &Engine) -> Vec<Query> {
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let department = s.type_id("department").unwrap();
    let name = s.attr_id("name").unwrap();
    let age = s.attr_id("age").unwrap();
    let location = s.attr_id("location").unwrap();
    vec![
        // q1: point select.
        Query::scan(employee).select(name, Value::str("w00042")),
        // q2: range select.
        Query::scan(employee).select_between(age, Value::Int(10), Value::Int(20)),
        // q3: join with a predicate nested on the far side.
        Query::scan(employee)
            .join(Query::scan(department))
            .select(location, Value::str("utrecht")),
        // q4: plain join.
        Query::scan(employee).join(Query::scan(department)),
    ]
}

/// The actual row count the root operator reports equals the naive
/// interpreter's result cardinality, and the profiled result set is the
/// naive result — serial execution.
#[test]
fn profiled_actuals_match_naive_serial() {
    let eng = loaded_engine(3_000);
    for q in query_suite(&eng) {
        let (naive_ty, naive) = eng.with_db(|db| q.execute(db)).unwrap();
        let (ty, rel, qp) = eng.query_profiled_with(&q, &ExecOptions::serial()).unwrap();
        assert_eq!(ty, naive_ty);
        assert_eq!(rel, naive, "profiled result diverged for {q:?}");
        assert_eq!(
            qp.root.stats.rows,
            naive.len() as u64,
            "root actual rows != naive cardinality for {q:?}:\n{}",
            qp.render()
        );
        assert_eq!(qp.rows, naive.len() as u64);
    }
}

/// Same ground-truth check under real multi-worker schedules.
#[cfg(feature = "parallel")]
#[test]
fn profiled_actuals_match_naive_parallel() {
    let eng = loaded_engine(3_000);
    let opts = ExecOptions {
        threads: 4,
        morsel_size: 256,
        ..ExecOptions::default()
    };
    for q in query_suite(&eng) {
        let (_, naive) = eng.with_db(|db| q.execute(db)).unwrap();
        let (_, rel, qp) = eng.query_profiled_with(&q, &opts).unwrap();
        assert_eq!(rel, naive, "parallel profiled result diverged for {q:?}");
        assert_eq!(
            qp.root.stats.rows,
            naive.len() as u64,
            "parallel root actual rows != naive cardinality for {q:?}:\n{}",
            qp.render()
        );
    }
}

/// A profiled run's result is bit-identical to the unprofiled planned
/// run — profiling observes, never perturbs.
#[test]
fn profiled_result_identical_to_unprofiled() {
    let eng = loaded_engine(2_000);
    let mut grid = vec![ExecOptions::serial()];
    if cfg!(feature = "parallel") {
        grid.push(ExecOptions {
            threads: 4,
            morsel_size: 128,
            ..ExecOptions::default()
        });
    }
    for q in query_suite(&eng) {
        for opts in &grid {
            let (ty_a, plain) = eng.query_planned_with(&q, opts).unwrap();
            let (ty_b, profiled, _) = eng.query_profiled_with(&q, opts).unwrap();
            assert_eq!(ty_a, ty_b);
            assert_eq!(plain, profiled, "profiling perturbed {q:?} under {opts:?}");
        }
    }
}

/// Fresh statistics over uniform data estimate exactly: q-error 1.0 on
/// the access path (within f64 rounding).
#[test]
fn q_error_is_unity_with_fresh_stats_on_uniform_data() {
    // 900 rows, ages 0..90 — exactly 10 rows per age value.
    let eng = loaded_engine(900);
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let age = s.attr_id("age").unwrap();
    let q = Query::scan(employee).select(age, Value::Int(42));
    let (_, rel, qp) = eng.query_profiled(&q).unwrap();
    assert_eq!(rel.len(), 10);
    assert_eq!(qp.root.stats.rows, 10);
    let q_err = qp.root.q_error();
    assert!(
        (q_err - 1.0).abs() < 1e-6,
        "uniform data + fresh stats must estimate exactly, got q={q_err}:\n{}",
        qp.render()
    );
}

/// `explain_analyze` on the q3-shaped join renders every operator line
/// with estimated rows, actual rows, q-error, wall time, and the actual
/// parallel degree, plus the phase footer.
#[test]
fn explain_analyze_annotates_every_operator() {
    let eng = loaded_engine(3_000);
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let department = s.type_id("department").unwrap();
    let location = s.attr_id("location").unwrap();
    let q = Query::scan(employee)
        .join(Query::scan(department))
        .select(location, Value::str("utrecht"));
    let text = eng.explain_analyze(&q).unwrap();
    let mut op_lines = 0;
    for line in text.lines() {
        if line.starts_with("Phases:") {
            continue;
        }
        op_lines += 1;
        for marker in ["est≈", "act=", "q=", "par≈"] {
            assert!(
                line.contains(marker),
                "operator line missing {marker}: {line}\nfull:\n{text}"
            );
        }
    }
    assert!(op_lines >= 3, "expected a join tree:\n{text}");
    assert!(text.contains("HashJoin"), "expected a hash join:\n{text}");
    assert!(
        text.contains("build=") && text.contains("probe="),
        "join must report build/probe sizes:\n{text}"
    );
    assert!(
        text.contains("Phases: plan ") && text.contains("plan cache"),
        "missing phase footer:\n{text}"
    );
}

/// Every planned query lands in the trace ring; dropping the slow-query
/// threshold to zero marks them slow and retains their full operator
/// profiles.
#[test]
fn trace_ring_records_queries_and_retains_slow_profiles() {
    let eng = loaded_engine(500);
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let age = s.attr_id("age").unwrap();
    eng.query_trace().set_slow_query_ms(u64::MAX / 2_000_000); // nothing is slow
    let q = Query::scan(employee).select(age, Value::Int(7));
    eng.query_planned(&q).unwrap();
    let recent = eng.query_trace().recent();
    assert_eq!(recent.len(), 1);
    assert!(!recent[0].slow);
    assert!(
        recent[0].profile.is_none(),
        "fast queries must not pay profile assembly"
    );
    assert_eq!(recent[0].rows, 6); // 500 rows → ages 0..90, 6 hit age 7

    eng.query_trace().set_slow_query_ms(0); // everything is slow
    eng.query_planned(&q).unwrap();
    let slow = eng.query_trace().slow();
    assert_eq!(slow.len(), 1);
    let profile = slow[0]
        .profile
        .as_ref()
        .expect("slow queries retain their full operator profile");
    assert_eq!(profile.root.stats.rows, 6);
    assert_eq!(
        eng.metrics().queries_slow.get(),
        1,
        "slow-query counter follows the threshold"
    );
}

/// A d1-shaped commit workload populates the WAL fsync-latency and
/// group-commit batch-size histograms, and both surface in the
/// Prometheus export alongside the query counters.
#[test]
fn wal_histograms_surface_in_prometheus_export() {
    let dir = temp_dir("prom");
    let cfg = WalConfig {
        flush: FlushPolicy::PerCommit,
        segment_bytes: 1 << 20,
    };
    let eng = Engine::durable(fresh_db(), Wal::create(&dir, cfg).unwrap()).unwrap();
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    for i in 0..32 {
        eng.insert(
            employee,
            &[
                ("name", Value::str(&format!("d{i}"))),
                ("age", Value::Int(i % 60)),
                ("depname", Value::str("sales")),
            ],
        )
        .unwrap();
    }
    let age = s.attr_id("age").unwrap();
    eng.query_planned(&Query::scan(employee).select(age, Value::Int(3)))
        .unwrap();

    let snap = eng.metrics_snapshot();
    assert!(
        snap.wal.flushes >= 32,
        "each commit flushes under PerCommit"
    );
    assert_eq!(snap.wal.fsync_ns.count, snap.wal.flushes);
    assert!(
        snap.wal.group_commit_batch.count >= 32,
        "every commit-driven flush records its batch size"
    );
    assert_eq!(snap.txn.commits, 32);

    let text = eng.metrics_prometheus();
    for metric in [
        "toposem_wal_fsync_latency_ns_bucket",
        "toposem_wal_fsync_latency_ns_sum",
        "toposem_wal_fsync_latency_ns_count",
        "toposem_wal_group_commit_batch_bucket",
        "toposem_wal_flushes_total",
        "toposem_txn_commits_total",
        "toposem_plan_cache_misses_total",
        "toposem_queries_planned_total",
    ] {
        assert!(text.contains(metric), "missing {metric} in export:\n{text}");
    }
    // The batch-size histogram saw single-commit flushes: the le="1"
    // cumulative bucket is non-zero.
    let bucket_line = text
        .lines()
        .find(|l| l.starts_with("toposem_wal_group_commit_batch_bucket{le=\"1\"}"))
        .expect("le=1 bucket rendered");
    let count: u64 = bucket_line
        .split_whitespace()
        .last()
        .unwrap()
        .parse()
        .unwrap();
    assert!(count >= 32, "PerCommit batches are size 1: {bucket_line}");
    let _ = fs::remove_dir_all(&dir);
}
