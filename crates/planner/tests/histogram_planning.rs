//! First-execution planning under equi-depth histograms: a skewed
//! distribution that defeats min/max interpolation must be priced
//! correctly by the histogram alone — no profiled execution, no
//! feedback correction — so the very first `explain` already shows the
//! right access path. The counterfactual leg (histograms toggled off)
//! pins that it really is the histogram doing the work, not the cost
//! model accidentally agreeing.
//!
//! This suite runs in its own process, so the process-wide histogram
//! toggle cannot leak into other test binaries; within the binary the
//! toggling test and its peers serialise on a shared lock.

use std::sync::Mutex;

use toposem_core::{employee_schema, Intension};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, DomainSpec, Value};
use toposem_planner::PlannedExecution;
use toposem_storage::{set_histograms_enabled, Engine, Query};

/// Serialises tests that read or flip the process-wide histogram
/// toggle (poison-tolerant: an assertion failure elsewhere must not
/// cascade).
static HIST_TOGGLE: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    HIST_TOGGLE.lock().unwrap_or_else(|p| p.into_inner())
}

/// The employee schema over an unbounded age domain, so the outlier
/// that stretches the min/max span is admissible.
fn fresh_db() -> Database {
    let mut catalog = DomainCatalog::new();
    catalog
        .bind("person-names", DomainSpec::AnyStr)
        .bind("ages", DomainSpec::AnyInt)
        .bind(
            "department-names",
            DomainSpec::Enum(vec!["sales".into(), "research".into(), "admin".into()]),
        )
        .bind("amounts", DomainSpec::AnyInt)
        .bind(
            "locations",
            DomainSpec::Enum(vec!["amsterdam".into(), "utrecht".into()]),
        );
    Database::new(
        Intension::analyse(employee_schema()),
        catalog,
        ContainmentPolicy::Eager,
    )
}

/// `n - 1` employees with ages dense in `0..100` plus one outlier at
/// `tail`: under pure min/max interpolation the dense range `[0, 100]`
/// looks vanishingly selective against the stretched span, so the
/// ordered index on `age` is the statically attractive — and wrong —
/// access path.
fn skewed_engine(n: i64, tail: i64) -> Engine {
    let eng = Engine::new(fresh_db());
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let deps = ["sales", "research", "admin"];
    for i in 0..n {
        let age = if i == 0 { tail } else { i % 100 };
        eng.insert(
            employee,
            &[
                ("name", Value::str(&format!("w{i:05}"))),
                ("age", Value::Int(age)),
                ("depname", Value::str(deps[(i % 3) as usize])),
            ],
        )
        .unwrap();
    }
    let age = s.attr_id("age").unwrap();
    eng.create_ord_index(employee, age).unwrap();
    eng
}

fn range(eng: &Engine, lo: i64, hi: i64) -> Query {
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let age = s.attr_id("age").unwrap();
    Query::scan(employee).select_between(age, Value::Int(lo), Value::Int(hi))
}

/// The acceptance scenario: the hot range covers all but one row, and
/// the FIRST `explain` — fresh engine, zero executions, zero feedback
/// observations — already plans the sequential scan. With histograms
/// toggled off, an identically-built engine mispicks the range seek,
/// proving the histogram is what fixed the estimate.
#[test]
fn skewed_hot_range_plans_a_scan_on_the_first_execution() {
    let _g = lock();
    set_histograms_enabled(true);

    let eng = skewed_engine(3_000, 100_000);
    assert_eq!(
        eng.feedback().stats().observations,
        0,
        "nothing may have trained the estimate"
    );
    let q = range(&eng, 0, 100);
    let plan = eng.explain(&q).unwrap();
    assert!(
        plan.contains("SeqScan") && !plan.contains("IndexRangeSeek"),
        "histograms must price the hot range near 1.0 and pick the scan:\n{plan}"
    );
    let (_, rel) = eng.with_db(|db| q.execute(db)).unwrap();
    assert_eq!(rel.len(), 2_999, "every row but the outlier matches");

    // Counterfactual: same data, histogram pricing off, min/max
    // interpolation mispicks the seek.
    set_histograms_enabled(false);
    let naive = skewed_engine(3_000, 100_000);
    let plan = naive.explain(&range(&naive, 0, 100)).unwrap();
    set_histograms_enabled(true);
    assert!(
        plan.contains("IndexRangeSeek"),
        "without histograms the stretched span must mispick the seek:\n{plan}"
    );
}

/// The flip side: a range the histogram prices as genuinely selective
/// (only the outlier bucket) keeps the index seek on the first
/// execution — histograms must not blunt the index into a scan-always
/// model.
#[test]
fn genuinely_selective_range_keeps_the_index_seek() {
    let _g = lock();
    set_histograms_enabled(true);

    let eng = skewed_engine(3_000, 100_000);
    let q = range(&eng, 5_000, 200_000);
    let plan = eng.explain(&q).unwrap();
    assert!(
        plan.contains("IndexRangeSeek"),
        "a near-empty range must keep the seek:\n{plan}"
    );
    let (_, rel) = eng.with_db(|db| q.execute(db)).unwrap();
    assert_eq!(rel.len(), 1, "only the outlier is in range");
}
