//! The differential query oracle: for randomly generated *sanctioned*
//! queries over randomly loaded databases, planned execution must return
//! exactly the same `(TypeId, Relation)` as the naive tree-walking
//! interpreter — under both containment policies, with and without
//! indexes, across every plan shape the optimizer can produce (SeqScan,
//! IndexSeek, IndexRangeSeek, CompositeSeek, IndexOnlyScan, joins, set
//! operations, dead branches).
//!
//! Queries are grown bottom-up from a decision script so every generated
//! query is valid by construction: selections (equality, range, and
//! conjunctive multi-attribute) use attributes of the input type,
//! projections move up the generalisation topology, joins are kept only
//! when their attribute union is a declared entity type, and set
//! operations pair subqueries of equal type. The indexed variant builds
//! hash, ordered, *and* composite indexes chosen per case, before or
//! after the load, so incremental maintenance of every index kind is on
//! the hook.

use proptest::prelude::*;
use toposem_core::{employee_schema, Intension, TypeId};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Relation, Value};
use toposem_planner::{
    execute, lower_and_rewrite, plan_with, PlannedExecution, PlannerOptions, ProfiledExecution,
};
use toposem_storage::{cmp_by_keys, Engine, Predicate, Query, QueryError, SortDir};

/// With `TOPOSEM_PROFILE` set (the nightly profiling leg), planned
/// execution routes through `query_profiled`, so the oracle also pins
/// profiled == naive across every generated plan shape; unset, plain
/// planned execution — the default PR leg.
///
/// With `TOPOSEM_FEEDBACK` set (the nightly feedback leg), every query
/// runs profiled *twice*: the first execution records observed-vs-
/// estimated cardinalities into the engine's selectivity-feedback cache
/// (possibly invalidating the cached plan and flipping the access
/// path), and the oracle compares the *second* — feedback-steered —
/// result against naive. Feedback may change plans, never results.
fn run_planned(eng: &Engine, q: &Query) -> Result<(TypeId, Relation), QueryError> {
    let on =
        |name: &str| std::env::var(name).is_ok_and(|v| v.trim() != "0" && !v.trim().is_empty());
    if on("TOPOSEM_FEEDBACK") {
        eng.query_profiled(q)?;
        eng.query_profiled(q).map(|(ty, rel, _)| (ty, rel))
    } else if on("TOPOSEM_PROFILE") {
        eng.query_profiled(q).map(|(ty, rel, _)| (ty, rel))
    } else {
        eng.query_planned(q)
    }
}

const NAMES: [&str; 5] = ["ann", "bob", "carol", "dave", "eve"];
const DEPS: [&str; 3] = ["sales", "research", "admin"];
const LOCS: [&str; 2] = ["amsterdam", "utrecht"];

/// One inserted row, decoded from strategy-picked indices.
#[derive(Clone, Debug)]
enum Row {
    Employee(usize, i64, usize),
    Manager(usize, i64, usize, i64),
    Department(usize, usize),
    Person(usize, i64),
    Worksfor(usize, i64, usize, usize),
}

fn row_strategy() -> impl Strategy<Value = Row> {
    prop_oneof![
        (0..NAMES.len(), 0i64..90, 0..DEPS.len()).prop_map(|(n, a, d)| Row::Employee(n, a, d)),
        (0..NAMES.len(), 0i64..90, 0..DEPS.len(), 0i64..500)
            .prop_map(|(n, a, d, b)| Row::Manager(n, a, d, b)),
        (0..DEPS.len(), 0..LOCS.len()).prop_map(|(d, l)| Row::Department(d, l)),
        (0..NAMES.len(), 0i64..90).prop_map(|(n, a)| Row::Person(n, a)),
        (0..NAMES.len(), 0i64..90, 0..DEPS.len(), 0..LOCS.len())
            .prop_map(|(n, a, d, l)| Row::Worksfor(n, a, d, l)),
    ]
}

fn load(eng: &Engine, rows: &[Row]) {
    let s = eng.with_db(|db| db.schema().clone());
    for row in rows {
        let _ = match row {
            Row::Employee(n, a, d) => eng.insert(
                s.type_id("employee").unwrap(),
                &[
                    ("name", Value::str(NAMES[*n])),
                    ("age", Value::Int(*a)),
                    ("depname", Value::str(DEPS[*d])),
                ],
            ),
            Row::Manager(n, a, d, b) => eng.insert(
                s.type_id("manager").unwrap(),
                &[
                    ("name", Value::str(NAMES[*n])),
                    ("age", Value::Int(*a)),
                    ("depname", Value::str(DEPS[*d])),
                    ("budget", Value::Int(*b)),
                ],
            ),
            Row::Department(d, l) => eng.insert(
                s.type_id("department").unwrap(),
                &[
                    ("depname", Value::str(DEPS[*d])),
                    ("location", Value::str(LOCS[*l])),
                ],
            ),
            Row::Person(n, a) => eng.insert(
                s.type_id("person").unwrap(),
                &[("name", Value::str(NAMES[*n])), ("age", Value::Int(*a))],
            ),
            Row::Worksfor(n, a, d, l) => eng.insert(
                s.type_id("worksfor").unwrap(),
                &[
                    ("name", Value::str(NAMES[*n])),
                    ("age", Value::Int(*a)),
                    ("depname", Value::str(DEPS[*d])),
                    ("location", Value::str(LOCS[*l])),
                ],
            ),
        };
    }
}

/// A value for attribute `a`, drawn from a pool that mixes matching,
/// non-matching, and out-of-domain constants (the latter exercise
/// dead-branch elimination).
fn value_for(db: &Database, attr: toposem_core::AttrId, pick: usize) -> Value {
    let name = db.schema().attr_name(attr);
    match name {
        "name" => {
            let pool = ["ann", "bob", "carol", "nobody"];
            Value::str(pool[pick % pool.len()])
        }
        "age" => {
            let pool = [0i64, 17, 42, 89, 200]; // 200 is outside ages 0..=150
            Value::Int(pool[pick % pool.len()])
        }
        "depname" => {
            let pool = ["sales", "research", "admin", "piracy"]; // piracy off-domain
            Value::str(pool[pick % pool.len()])
        }
        "location" => {
            let pool = ["amsterdam", "utrecht", "rotterdam"]; // rotterdam off-domain
            Value::str(pool[pick % pool.len()])
        }
        "budget" => {
            let pool = [0i64, 100, 250];
            Value::Int(pool[pick % pool.len()])
        }
        other => panic!("unknown attribute {other}"),
    }
}

/// A range predicate over attribute `attr`, with kind and constants
/// decoded from the decision picks (pools deliberately include values
/// outside the loaded data and outside finite domains, to exercise empty
/// ranges and dead-branch elimination).
fn range_pred_for(
    db: &Database,
    attr: toposem_core::AttrId,
    kind: usize,
    pick: usize,
) -> Predicate {
    let v = value_for(db, attr, pick);
    match kind % 5 {
        0 => Predicate::Lt(v),
        1 => Predicate::Le(v),
        2 => Predicate::Gt(v),
        3 => Predicate::Ge(v),
        _ => {
            // Between with an independently drawn second bound — possibly
            // inverted, which must plan to Empty and still agree.
            let w = value_for(db, attr, pick.wrapping_add(kind));
            Predicate::Between(v, w)
        }
    }
}

/// Grows a sanctioned query from the decision script. Each decision is
/// `(op, pick_a, pick_b)`; invalid constructions (unsanctioned joins) fall
/// back to their left operand, so the result is always well-typed.
fn grow_query(db: &Database, decisions: &[(u8, u8, u8)]) -> Query {
    let schema = db.schema();
    let types: Vec<TypeId> = schema.type_ids().collect();
    let gen = db.intension().generalisation();
    let mut q =
        Query::scan(types[decisions.first().map(|d| d.1 as usize).unwrap_or(0) % types.len()]);
    for (op, a, b) in decisions {
        let ty = q.entity_type(db).expect("invariant: q stays sanctioned");
        match op % 8 {
            // Selection on an attribute of the current type.
            0 => {
                let attrs: Vec<_> = schema.attrs_of(ty).iter().collect();
                let attr = toposem_core::AttrId(attrs[*a as usize % attrs.len()] as u32);
                q = q.select(attr, value_for(db, attr, *b as usize));
            }
            // Projection onto a generalisation (possibly the type itself).
            1 => {
                let gens: Vec<TypeId> = gen.g_set(ty).iter().map(|i| TypeId(i as u32)).collect();
                q = q.project(gens[*a as usize % gens.len()]);
            }
            // Join with a scanned type; keep only if sanctioned.
            2 => {
                let other = types[*a as usize % types.len()];
                let candidate = q.clone().join(Query::scan(other));
                if candidate.entity_type(db).is_ok() {
                    q = candidate;
                }
            }
            // Union with a same-type subquery (optionally filtered).
            3 => {
                let mut rhs = Query::scan(ty);
                let attrs: Vec<_> = schema.attrs_of(ty).iter().collect();
                let attr = toposem_core::AttrId(attrs[*a as usize % attrs.len()] as u32);
                rhs = rhs.select(attr, value_for(db, attr, *b as usize));
                q = q.union(rhs);
            }
            // Intersection with a same-type subquery.
            4 => {
                let mut rhs = Query::scan(ty);
                if b % 2 == 0 {
                    let attrs: Vec<_> = schema.attrs_of(ty).iter().collect();
                    let attr = toposem_core::AttrId(attrs[*a as usize % attrs.len()] as u32);
                    rhs = rhs.select(attr, value_for(db, attr, *b as usize));
                }
                q = q.intersect(rhs);
            }
            // Range selection on an attribute of the current type.
            5 => {
                let attrs: Vec<_> = schema.attrs_of(ty).iter().collect();
                let attr = toposem_core::AttrId(attrs[*a as usize % attrs.len()] as u32);
                // `a` spans 0..16, so `kind % 5` inside reaches every
                // arm — including `Between` (and its inverted form).
                q = q.select_pred(attr, range_pred_for(db, attr, *a as usize, *b as usize));
            }
            // Conjunctive multi-attribute equality selection: equality on
            // two (possibly equal) attributes in one step, so composite
            // prefix matching gets regular coverage.
            6 => {
                let attrs: Vec<_> = schema.attrs_of(ty).iter().collect();
                let a1 = toposem_core::AttrId(attrs[*a as usize % attrs.len()] as u32);
                let a2 = toposem_core::AttrId(attrs[*b as usize % attrs.len()] as u32);
                q = q.select_all(&[
                    (a1, value_for(db, a1, *b as usize)),
                    (a2, value_for(db, a2, *a as usize)),
                ]);
            }
            // Order-by on one or two attributes of the current type,
            // mixed directions. Non-root orderings are dropped by both
            // evaluators; a root ordering makes the query
            // order-sensitive through `execute_ordered`.
            _ => {
                let attrs: Vec<_> = schema.attrs_of(ty).iter().collect();
                let a1 = toposem_core::AttrId(attrs[*a as usize % attrs.len()] as u32);
                let a2 = toposem_core::AttrId(attrs[*b as usize % attrs.len()] as u32);
                let dir = |x: u8| {
                    if x.is_multiple_of(2) {
                        SortDir::Asc
                    } else {
                        SortDir::Desc
                    }
                };
                let mut keys = vec![(a1, dir(*a))];
                if a1 != a2 {
                    keys.push((a2, dir(*b)));
                }
                q = q.order_by(keys);
            }
        }
    }
    q
}

/// Planned execution agrees with the naive interpreter on the result
/// *sequence* semantics too: the ordered outputs contain the same
/// tuples, and the planned sequence ascends by the root sort keys.
fn assert_ordered_agreement(eng: &Engine, q: &Query) -> Result<(), TestCaseError> {
    let naive = eng
        .with_db(|db| q.execute_ordered(db))
        .expect("generated query is sanctioned");
    let planned = eng
        .query_planned_ordered(q)
        .expect("planner accepts sanctioned queries");
    prop_assert_eq!(naive.0, planned.0, "entity types diverged for {:?}", q);
    prop_assert_eq!(
        naive.1.len(),
        planned.1.len(),
        "ordered lengths diverged for {:?}",
        q
    );
    let keys = q.root_order();
    prop_assert!(
        planned
            .1
            .windows(2)
            .all(|w| cmp_by_keys(&w[0], &w[1], keys) != std::cmp::Ordering::Greater),
        "planned sequence violates {:?} for {:?}",
        keys,
        q
    );
    let ns: std::collections::HashSet<_> = naive.1.into_iter().collect();
    let ps: std::collections::HashSet<_> = planned.1.into_iter().collect();
    prop_assert_eq!(ns, ps, "ordered result sets diverged for {:?}", q);
    Ok(())
}

fn engine(policy: ContainmentPolicy) -> Engine {
    Engine::new(Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        policy,
    ))
}

proptest! {
    /// The headline oracle: planned == naive on both policies, as sets
    /// and as ordered sequences.
    #[test]
    fn planned_equals_naive(
        rows in prop::collection::vec(row_strategy(), 0..25),
        decisions in prop::collection::vec((0u8..8, 0u8..16, 0u8..16), 0..8),
    ) {
        for policy in [ContainmentPolicy::Eager, ContainmentPolicy::OnDemand] {
            let eng = engine(policy);
            load(&eng, &rows);
            let q = eng.with_db(|db| grow_query(db, &decisions));
            let naive = eng.with_db(|db| q.execute(db)).expect("generated query is sanctioned");
            let planned = run_planned(&eng, &q).expect("planner accepts sanctioned queries");
            prop_assert_eq!(&naive.0, &planned.0, "entity types diverged for {:?}", q);
            prop_assert_eq!(&naive.1, &planned.1, "relations diverged for {:?}", q);
            assert_ordered_agreement(&eng, &q)?;
        }
    }

    /// Same oracle with every type indexed — kind (hash / ordered /
    /// composite) and attributes picked per case — exercising the
    /// IndexSeek, IndexRangeSeek, CompositeSeek, and IndexOnlyScan paths
    /// with residual filters. Indexes may be created *before* the load,
    /// so incremental index maintenance — including eager containment
    /// propagations into generalisation relations — is on the hook, not
    /// just bulk builds.
    #[test]
    fn planned_equals_naive_with_indexes(
        rows in prop::collection::vec(row_strategy(), 0..25),
        decisions in prop::collection::vec((0u8..8, 0u8..16, 0u8..16), 0..8),
        index_picks in prop::collection::vec(0usize..24, 5),
        index_first in 0u8..2,
    ) {
        let eng = engine(ContainmentPolicy::Eager);
        let s = eng.with_db(|db| db.schema().clone());
        let build_indexes = |eng: &Engine| {
            for (e, pick) in s.type_ids().zip(&index_picks) {
                let attrs: Vec<toposem_core::AttrId> = s
                    .attrs_of(e)
                    .iter()
                    .map(|a| toposem_core::AttrId(a as u32))
                    .collect();
                let attr = attrs[(pick / 3) % attrs.len()];
                match pick % 3 {
                    0 => eng.create_index(e, attr).unwrap(),
                    1 => eng.create_ord_index(e, attr).unwrap(),
                    _ => {
                        // Composite over two adjacent attributes when the
                        // type is wide enough (else a single-attr key).
                        let i = (pick / 3) % attrs.len();
                        let key: Vec<_> = if attrs.len() >= 2 {
                            vec![attrs[i], attrs[(i + 1) % attrs.len()]]
                        } else {
                            vec![attrs[i]]
                        };
                        eng.create_composite_index(e, &key).unwrap();
                    }
                }
            }
        };
        if index_first == 0 {
            build_indexes(&eng);
            load(&eng, &rows);
        } else {
            load(&eng, &rows);
            build_indexes(&eng);
        }
        let q = eng.with_db(|db| grow_query(db, &decisions));
        let naive = eng.with_db(|db| q.execute(db)).expect("generated query is sanctioned");
        let planned = run_planned(&eng, &q).expect("planner accepts sanctioned queries");
        prop_assert_eq!(&naive.0, &planned.0);
        prop_assert_eq!(&naive.1, &planned.1, "relations diverged for {:?}", q);
        assert_ordered_agreement(&eng, &q)?;
    }

    /// Multi-way joins through the DP reorderer (and the greedy path for
    /// the widest chains): 3–5-way joins over the sanctioned pool, with
    /// random per-type indexes, optional selections, and an optional
    /// root ordering. The DP plan, the as-written hash-join baseline,
    /// and the naive interpreter must all produce the same relation.
    #[test]
    fn multiway_joins_agree_with_naive_and_baseline(
        rows in prop::collection::vec(row_strategy(), 0..30),
        chain in prop::collection::vec(0usize..4, 2..5),
        sel in (0u8..2, 0u8..16, 0u8..16),
        order in (0u8..2, 0u8..16, 0u8..2),
        index_picks in prop::collection::vec(0usize..24, 5),
    ) {
        let eng = engine(ContainmentPolicy::Eager);
        let s = eng.with_db(|db| db.schema().clone());
        load(&eng, &rows);
        for (e, pick) in s.type_ids().zip(&index_picks) {
            let attrs: Vec<toposem_core::AttrId> = s
                .attrs_of(e)
                .iter()
                .map(|a| toposem_core::AttrId(a as u32))
                .collect();
            let attr = attrs[(pick / 3) % attrs.len()];
            match pick % 3 {
                0 => eng.create_index(e, attr).unwrap(),
                1 => eng.create_ord_index(e, attr).unwrap(),
                _ => {
                    let i = (pick / 3) % attrs.len();
                    let key: Vec<_> = if attrs.len() >= 2 {
                        vec![attrs[i], attrs[(i + 1) % attrs.len()]]
                    } else {
                        vec![attrs[i]]
                    };
                    eng.create_composite_index(e, &key).unwrap();
                }
            }
        }
        // Any left-fold over this pool keeps every intermediate
        // sanctioned (their attribute unions are employee or worksfor).
        let pool = ["person", "employee", "department", "worksfor"]
            .map(|n| s.type_id(n).unwrap());
        let mut q = Query::scan(pool[0]);
        for pick in &chain {
            q = q.join(Query::scan(pool[*pick]));
        }
        let ty = eng.with_db(|db| q.entity_type(db)).expect("pool joins stay sanctioned");
        if sel.0 == 1 {
            let attrs: Vec<_> = s.attrs_of(ty).iter().collect();
            let attr = toposem_core::AttrId(attrs[sel.1 as usize % attrs.len()] as u32);
            let v = eng.with_db(|db| value_for(db, attr, sel.2 as usize));
            q = q.select(attr, v);
        }
        if order.0 == 1 {
            let attrs: Vec<_> = s.attrs_of(ty).iter().collect();
            let attr = toposem_core::AttrId(attrs[order.1 as usize % attrs.len()] as u32);
            let dir = if order.2 == 0 { SortDir::Asc } else { SortDir::Desc };
            q = q.order_by(vec![(attr, dir)]);
        }
        let naive = eng.with_db(|db| q.execute(db)).expect("sanctioned");
        let planned = run_planned(&eng, &q).expect("planner accepts sanctioned queries");
        prop_assert_eq!(&naive.0, &planned.0);
        prop_assert_eq!(&naive.1, &planned.1, "relations diverged for {:?}", q);
        assert_ordered_agreement(&eng, &q)?;
        // The as-written baseline (no reordering, hash joins only)
        // computes the same relation as the DP/merge plan.
        let stats = eng.statistics();
        let baseline = eng.with_parts(|db, indexes| {
            let logical = lower_and_rewrite(&q, db).expect("sanctioned");
            let phys = plan_with(&logical, db, indexes, &stats, &PlannerOptions {
                reorder_joins: false,
                merge_joins: false,
                ..Default::default()
            });
            execute(&phys, db, indexes)
        });
        prop_assert_eq!(&naive.1, &baseline, "baseline diverged for {:?}", q);
    }
}

/// Batch-boundary coverage: a relation larger than one executor batch
/// (and past the parallel-scan threshold when that feature is on) agrees
/// with naive execution.
#[test]
fn large_scan_crosses_batch_boundaries() {
    let eng = engine(ContainmentPolicy::Eager);
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let name = s.attr_id("name").unwrap();
    let age = s.attr_id("age").unwrap();
    let depname = s.attr_id("depname").unwrap();
    for i in 0..5000 {
        eng.insert(
            employee,
            &[
                ("name", Value::str(&format!("w{i}"))),
                ("age", Value::Int(i % 90)),
                ("depname", Value::str(DEPS[(i % 3) as usize])),
            ],
        )
        .unwrap();
    }
    eng.create_index(employee, name).unwrap();
    eng.create_ord_index(employee, age).unwrap();
    let queries = [
        Query::scan(employee),
        Query::scan(employee).select(depname, Value::str("sales")),
        Query::scan(employee).select(name, Value::str("w4242")),
        Query::scan(employee).project(s.type_id("person").unwrap()),
        // A wide range crossing many batch boundaries through the
        // ordered index.
        Query::scan(employee).select_between(age, Value::Int(10), Value::Int(70)),
        Query::scan(employee).select_ge(age, Value::Int(45)),
    ];
    for q in &queries {
        let naive = eng.with_db(|db| q.execute(db)).unwrap();
        let planned = run_planned(&eng, q).unwrap();
        assert_eq!(naive, planned);
    }
}
