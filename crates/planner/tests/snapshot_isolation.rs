//! Snapshot isolation under concurrency: readers run against immutable
//! copy-on-write epoch snapshots while a writer mutates the engine, so
//! a reader's view is stable for as long as it holds the snapshot —
//! across repeated queries, across joins, and across index drops.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use toposem_core::{employee_schema, Intension};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Value};
use toposem_planner::{PlannedExecution, SnapshotExecution};
use toposem_storage::{Engine, IndexKind, Query};

fn engine() -> Arc<Engine> {
    Arc::new(Engine::new(Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::Eager,
    )))
}

const DEPS: [&str; 3] = ["sales", "research", "admin"];

fn insert_employee(eng: &Engine, i: i64) {
    let employee = eng.with_db(|db| db.schema().type_id("employee").unwrap());
    eng.insert(
        employee,
        &[
            ("name", Value::str(&format!("w{i:05}"))),
            ("age", Value::Int(i % 90)),
            ("depname", Value::str(DEPS[(i % 3) as usize])),
        ],
    )
    .unwrap();
}

fn insert_departments(eng: &Engine) {
    let department = eng.with_db(|db| db.schema().type_id("department").unwrap());
    for (d, l) in [
        ("sales", "amsterdam"),
        ("research", "utrecht"),
        ("admin", "utrecht"),
    ] {
        eng.insert(
            department,
            &[("depname", Value::str(d)), ("location", Value::str(l))],
        )
        .unwrap();
    }
}

/// Readers racing a writer observe *stable epochs*: on any one
/// snapshot, repeated scans agree with each other and with a join over
/// the same snapshot — counts can never tear mid-query — and epochs
/// advance monotonically as the writer commits.
#[test]
fn concurrent_readers_see_stable_epochs_no_torn_joins() {
    let eng = engine();
    insert_departments(&eng);
    for i in 0..50 {
        insert_employee(&eng, i);
    }
    let (employee, department) = eng.with_db(|db| {
        let s = db.schema();
        (
            s.type_id("employee").unwrap(),
            s.type_id("department").unwrap(),
        )
    });
    let scan = Query::scan(employee);
    let join = Query::scan(employee).join(Query::scan(department));

    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 50..250 {
                insert_employee(&eng, i);
            }
            done.store(true, Ordering::SeqCst);
        });
        for _ in 0..4 {
            s.spawn(|| {
                let mut last_count = 0usize;
                loop {
                    let finished = done.load(Ordering::SeqCst);
                    let snap = eng.snapshot().expect("no txn active");
                    let (_, emp1) = eng.query_snapshot(&snap, &scan).unwrap();
                    let (_, joined) = eng.query_snapshot(&snap, &join).unwrap();
                    let (_, emp2) = eng.query_snapshot(&snap, &scan).unwrap();
                    // Same snapshot ⇒ same relation, however long the
                    // writer has been committing in between.
                    assert_eq!(emp1, emp2, "repeated scans of one snapshot tore");
                    // Every employee has a department, so the natural
                    // join must cover the snapshot's employees exactly:
                    // a torn epoch would leak or drop rows here.
                    assert_eq!(
                        joined.len(),
                        emp1.len(),
                        "join over one snapshot disagrees with its scan"
                    );
                    // Commits only add rows, so successively captured
                    // snapshots can never go backwards.
                    assert!(
                        emp1.len() >= last_count,
                        "snapshot regressed: {} < {last_count}",
                        emp1.len()
                    );
                    last_count = emp1.len();
                    if finished {
                        break;
                    }
                }
                assert_eq!(last_count, 250, "final snapshot must see every commit");
            });
        }
    });
}

/// A long-running read pin ignores every commit that lands after it was
/// taken; releasing it catches the session up.
#[test]
fn pinned_snapshot_ignores_later_commits() {
    let eng = engine();
    for i in 0..30 {
        insert_employee(&eng, i);
    }
    let employee = eng.with_db(|db| db.schema().type_id("employee").unwrap());
    let q = Query::scan(employee);

    let pin = eng.snapshot().expect("no txn active");
    let (_, before) = eng.query_snapshot(&pin, &q).unwrap();
    assert_eq!(before.len(), 30);

    // Autocommit writes and an explicit transaction both land after.
    for i in 30..40 {
        insert_employee(&eng, i);
    }
    eng.begin().unwrap();
    insert_employee(&eng, 40);
    eng.commit().unwrap();

    let (_, pinned) = eng.query_snapshot(&pin, &q).unwrap();
    assert_eq!(pinned.len(), 30, "pinned reads must not see later commits");
    let (_, current) = eng.query_planned(&q).unwrap();
    assert_eq!(current.len(), 41, "unpinned reads see the current state");
}

/// Dropping an index mid-read is safe on both routes: the pinned
/// snapshot still carries its own copy of the index (its cached plan
/// stays valid against *its* epoch), while fresh reads replan without
/// the access path — and both agree on the answer.
#[test]
fn drop_index_mid_read_replans_safely() {
    let eng = engine();
    for i in 0..100 {
        insert_employee(&eng, i);
    }
    let (employee, age) = eng.with_db(|db| {
        let s = db.schema();
        (s.type_id("employee").unwrap(), s.attr_id("age").unwrap())
    });
    eng.create_ord_index(employee, age).unwrap();
    let q = Query::scan(employee).select_between(age, Value::Int(10), Value::Int(40));
    assert!(eng.explain(&q).unwrap().contains("IndexRangeSeek"));

    let pin = eng.snapshot().expect("no txn active");
    let (_, r1) = eng.query_snapshot(&pin, &q).unwrap();

    assert!(eng
        .drop_index(employee, IndexKind::Ordered, &[age])
        .unwrap());

    // The pinned snapshot's copy of the index outlives the drop.
    let (_, r2) = eng.query_snapshot(&pin, &q).unwrap();
    assert_eq!(r1, r2, "pinned execution changed across an index drop");

    // Fresh reads replan against the current (index-less) state.
    let plan = eng.explain(&q).unwrap();
    assert!(
        !plan.contains("IndexRangeSeek"),
        "dropped index must not be planned against:\n{plan}"
    );
    let (_, r3) = eng.query_planned(&q).unwrap();
    assert_eq!(r1, r3, "replanned execution disagrees with the snapshot");
}

/// The acceptance bar: snapshot reads are bit-identical to a serial
/// interleaving. Capture a snapshot after each committed batch, then
/// replay the same batches serially on a fresh engine — each replayed
/// state must equal the corresponding snapshot's query result exactly.
#[test]
fn snapshot_reads_equal_serial_interleaving() {
    let eng = engine();
    insert_departments(&eng);
    let (employee, department) = eng.with_db(|db| {
        let s = db.schema();
        (
            s.type_id("employee").unwrap(),
            s.type_id("department").unwrap(),
        )
    });
    let q = Query::scan(employee).join(Query::scan(department));

    let mut per_batch = Vec::new();
    for batch in 0..5 {
        for i in batch * 20..(batch + 1) * 20 {
            insert_employee(&eng, i);
        }
        let snap = eng.snapshot().expect("no txn active");
        per_batch.push(eng.query_snapshot(&snap, &q).unwrap());
    }

    let serial = engine();
    insert_departments(&serial);
    for (batch, expected) in per_batch.iter().enumerate() {
        let b = batch as i64;
        for i in b * 20..(b + 1) * 20 {
            insert_employee(&serial, i);
        }
        let got = serial.query_planned(&q).unwrap();
        assert_eq!(
            &got, expected,
            "batch {batch}: snapshot read diverged from serial execution"
        );
    }
}
