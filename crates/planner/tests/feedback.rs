//! Feedback-driven costing lifecycle: a skewed workload whose static
//! min/max interpolation badly misestimates must be corrected after one
//! profiled execution (plan flips, q-error collapses), corrections must
//! reset on a statistics-epoch bump, drift past the re-plan threshold
//! must invalidate cached plans, pathological skew must stay clamped,
//! commits must attribute their time back to the transaction's queries,
//! the new Prometheus families must surface — and, throughout, feedback
//! may change *plans* but never *results*.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use toposem_core::{employee_schema, Intension};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, DomainSpec, Value};
use toposem_planner::{PlannedExecution, ProfiledExecution};
use toposem_storage::{Engine, Query};
use toposem_wal::{FlushPolicy, Wal, WalConfig};

/// The employee schema over a catalog whose age domain is unbounded —
/// the default [0, 150] range would forbid the outlier that stretches
/// the statistics span.
fn fresh_db() -> Database {
    let mut catalog = DomainCatalog::new();
    catalog
        .bind("person-names", DomainSpec::AnyStr)
        .bind("ages", DomainSpec::AnyInt)
        .bind(
            "department-names",
            DomainSpec::Enum(vec!["sales".into(), "research".into(), "admin".into()]),
        )
        .bind("amounts", DomainSpec::AnyInt)
        .bind(
            "locations",
            DomainSpec::Enum(vec!["amsterdam".into(), "utrecht".into()]),
        );
    Database::new(
        Intension::analyse(employee_schema()),
        catalog,
        ContainmentPolicy::Eager,
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "toposem-feedback-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// An engine whose `age` distribution defeats min/max interpolation:
/// `n - 1` employees with ages uniform over 0..100 plus one outlier at
/// `tail`, stretching the observed span until the dense range
/// `[0, 100]` looks vanishingly selective. An ordered index on `age`
/// makes `IndexRangeSeek` the statically attractive (and wrong) access
/// path.
///
/// Histogram pricing is disabled process-wide: equi-depth histograms
/// price exactly this skew correctly on the first execution, which
/// would leave no misestimate for the feedback loop to correct. These
/// tests pin the *feedback* path, so they run on pure min/max
/// interpolation (each integration-test binary is its own process, so
/// the toggle cannot leak into other suites).
fn skewed_engine(n: i64, tail: i64) -> Engine {
    toposem_storage::set_histograms_enabled(false);
    let eng = Engine::new(fresh_db());
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let department = s.type_id("department").unwrap();
    let deps = ["sales", "research", "admin"];
    for i in 0..n {
        let age = if i == 0 { tail } else { i % 100 };
        eng.insert(
            employee,
            &[
                ("name", Value::str(&format!("w{i:05}"))),
                ("age", Value::Int(age)),
                ("depname", Value::str(deps[(i % 3) as usize])),
            ],
        )
        .unwrap();
    }
    for (d, l) in [
        ("sales", "amsterdam"),
        ("research", "utrecht"),
        ("admin", "utrecht"),
    ] {
        eng.insert(
            department,
            &[("depname", Value::str(d)), ("location", Value::str(l))],
        )
        .unwrap();
    }
    let age = s.attr_id("age").unwrap();
    eng.create_ord_index(employee, age).unwrap();
    eng
}

/// The hot-range query the static model mispick s: every row except the
/// outlier matches, but interpolation against the stretched span
/// estimates a handful.
fn hot_range(eng: &Engine) -> Query {
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let age = s.attr_id("age").unwrap();
    Query::scan(employee).select_between(age, Value::Int(0), Value::Int(100))
}

/// One profiled execution of the mispicked range corrects the estimate:
/// the plan flips from the statically attractive `IndexRangeSeek` to a
/// scan, q-error collapses toward 1.0, and `explain_analyze` factors
/// the estimate as `static×correction`.
#[test]
fn skew_misestimate_corrected_after_one_profiled_execution() {
    let eng = skewed_engine(3_000, 100_000);
    let q = hot_range(&eng);

    // Statically the stretched span makes the range look tiny.
    let before = eng.explain(&q).unwrap();
    assert!(
        before.contains("IndexRangeSeek"),
        "static plan should mispick the range seek:\n{before}"
    );

    let (_, naive) = eng.with_db(|db| q.execute(db)).unwrap();
    let (_, rel1, qp1) = eng.query_profiled(&q).unwrap();
    assert_eq!(rel1, naive, "first (mis-planned) run must still be correct");
    assert_eq!(rel1.len(), 2_999);
    let q1 = qp1.root.q_error();
    assert!(
        q1 > 100.0,
        "the misestimate is what trains the loop: q={q1}"
    );

    let fb = eng.feedback().stats();
    assert!(fb.observations >= 1, "profiled run records observations");
    assert!(fb.entries >= 1, "a correction entry landed");
    assert!(
        fb.replans >= 1 && fb.generation >= 1,
        "a ~1000× drift crosses the re-plan threshold: {fb:?}"
    );

    // The corrected estimate makes the full scan cheaper than seeking
    // ~the whole table through the tree.
    let after = eng.explain(&q).unwrap();
    assert!(
        after.contains("SeqScan"),
        "corrected plan should flip to a scan:\n{after}"
    );

    let (_, rel2, qp2) = eng.query_profiled(&q).unwrap();
    assert_eq!(rel2, naive, "feedback changes plans, never results");
    let q2 = qp2.root.q_error();
    assert!(
        q2 < 1.1,
        "corrected estimate must collapse q-error (was {q1}, now {q2}):\n{}",
        qp2.render()
    );

    let analyzed = eng.explain_analyze(&q).unwrap();
    assert!(
        analyzed.contains('×'),
        "explain_analyze factors est as static×corr:\n{analyzed}"
    );
}

/// Any mutation bumps the statistics epoch; corrections learned under
/// the old epoch read as neutral, so the plan reverts to the static
/// choice until the workload re-trains it.
#[test]
fn corrections_reset_on_stats_epoch_bump() {
    let eng = skewed_engine(3_000, 100_000);
    let q = hot_range(&eng);
    eng.query_planned(&q).unwrap(); // trains
    assert!(eng.explain(&q).unwrap().contains("SeqScan"));
    let trained_epoch = eng.statistics_epoch();
    assert!(
        !eng.feedback().corrections(trained_epoch).is_empty(),
        "training left corrections at the current epoch"
    );

    // DDL-free mutation: one more row. Statistics epoch moves, learned
    // corrections are stale.
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    eng.insert(
        employee,
        &[
            ("name", Value::str("late")),
            ("age", Value::Int(50)),
            ("depname", Value::str("sales")),
        ],
    )
    .unwrap();
    let bumped = eng.statistics_epoch();
    assert!(bumped > trained_epoch, "mutation bumps the stats epoch");
    assert!(
        eng.feedback().corrections(bumped).is_empty(),
        "corrections from the old epoch read as neutral"
    );
    let reverted = eng.explain(&q).unwrap();
    assert!(
        reverted.contains("IndexRangeSeek"),
        "without corrections the static mispick returns:\n{reverted}"
    );

    // One execution re-trains at the new epoch.
    eng.query_planned(&q).unwrap();
    assert!(
        eng.explain(&q).unwrap().contains("SeqScan"),
        "the loop re-learns after the reset"
    );
}

/// A correction drifting past the re-plan threshold bumps the feedback
/// generation, which shifts the plan epoch: the plan cached by the very
/// execution that learned the correction is stale, the next execution
/// replans (cache miss), and the corrected plan is cached thereafter.
#[test]
fn replan_threshold_invalidates_cached_plans() {
    let eng = skewed_engine(3_000, 100_000);
    let q = hot_range(&eng);
    let m = eng.metrics();

    let gen0 = eng.feedback().generation();
    let epoch0 = eng.plan_epoch();
    let misses0 = m.plan_cache_misses.get();
    let hits0 = m.plan_cache_hits.get();

    // First execution: miss, stores the (mis-planned) range seek, then
    // its own observations bump the generation.
    eng.query_planned(&q).unwrap();
    assert_eq!(m.plan_cache_misses.get(), misses0 + 1);
    assert_eq!(m.plan_cache_hits.get(), hits0);
    assert!(eng.feedback().generation() > gen0, "drift bumps generation");
    assert!(
        eng.plan_epoch() > epoch0,
        "generation shifts the plan epoch with no data mutation"
    );

    // Second execution: the stored plan is keyed on the old epoch —
    // miss again, replan against corrected statistics.
    eng.query_planned(&q).unwrap();
    assert_eq!(
        m.plan_cache_misses.get(),
        misses0 + 2,
        "generation bump invalidated the cached plan"
    );
    assert_eq!(m.plan_cache_hits.get(), hits0);

    // Corrected residual error is ~1: no further drift, the corrected
    // plan is now stable in the cache.
    let gen_settled = eng.feedback().generation();
    eng.query_planned(&q).unwrap();
    assert_eq!(m.plan_cache_hits.get(), hits0 + 1, "corrected plan caches");
    assert_eq!(m.plan_cache_misses.get(), misses0 + 2);
    assert_eq!(eng.feedback().generation(), gen_settled, "no re-plan churn");
}

/// Corrections stay inside `[MIN_CORRECTION, MAX_CORRECTION]` however
/// pathological the observed ratio — a ~3000× underestimate and a
/// zero-row overestimate both clamp instead of zeroing or exploding
/// downstream cost estimates.
#[test]
fn corrections_clamped_under_pathological_skew() {
    // Tail at 1e6: interpolation undershoots the hot range by ~3000×.
    let eng = skewed_engine(3_000, 1_000_000);
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let age = s.attr_id("age").unwrap();
    let hot = Query::scan(employee).select_between(age, Value::Int(0), Value::Int(100));
    // The cold range covers most of the stretched span but holds zero
    // rows: observed ratio 0.
    let cold = Query::scan(employee).select_between(age, Value::Int(200_000), Value::Int(900_000));

    let (_, hot_rows, _) = eng.query_profiled(&hot).unwrap();
    let (_, cold_rows, _) = eng.query_profiled(&cold).unwrap();
    assert_eq!(hot_rows.len(), 2_999);
    assert_eq!(cold_rows.len(), 0);

    let epoch = eng.statistics_epoch();
    let corrections = eng.feedback().corrections(epoch);
    assert!(!corrections.is_empty());
    for (key, corr) in &corrections {
        assert!(
            (toposem_obs::feedback::MIN_CORRECTION..=toposem_obs::feedback::MAX_CORRECTION)
                .contains(corr),
            "correction for {key:?} escaped the clamp: {corr}"
        );
    }

    // Clamped corrections still yield finite, sane plans and identical
    // results on re-execution.
    for q in [&hot, &cold] {
        let (_, naive) = eng.with_db(|db| q.execute(db)).unwrap();
        let (_, rel, qp) = eng.query_profiled(q).unwrap();
        assert_eq!(rel, naive);
        assert!(qp.root.est_rows.is_finite() && qp.root.est_rows >= 0.0);
        assert!(qp.root.q_error().is_finite());
    }
}

/// Commits attribute their WAL time back to the queries of the
/// enclosing transaction; only query-less transactions fall back to a
/// standalone fingerprint-0 trace entry.
#[test]
fn commit_time_attributed_to_transaction_queries() {
    let dir = temp_dir("attr");
    let cfg = WalConfig {
        flush: FlushPolicy::PerCommit,
        segment_bytes: 1 << 20,
    };
    let eng = Engine::durable(fresh_db(), Wal::create(&dir, cfg).unwrap()).unwrap();
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let name = s.attr_id("name").unwrap();
    for i in 0..4 {
        eng.insert(
            employee,
            &[
                ("name", Value::str(&format!("a{i}"))),
                ("age", Value::Int(30 + i)),
                ("depname", Value::str("sales")),
            ],
        )
        .unwrap();
    }
    let standalone = |eng: &Engine| {
        eng.query_trace()
            .recent()
            .iter()
            .filter(|t| t.fingerprint == 0)
            .count()
    };
    // Only explicit commits trace; the autocommit loads above do not.
    let fp0_before = standalone(&eng);

    // A transaction with two queries: its commit time lands on them.
    eng.begin().unwrap();
    let token = eng.active_txn_token().unwrap();
    let q1 = Query::scan(employee).select(name, Value::str("a1"));
    let q2 = Query::scan(employee).select(name, Value::str("a2"));
    eng.query_planned(&q1).unwrap();
    eng.query_planned(&q2).unwrap();
    eng.insert(
        employee,
        &[
            ("name", Value::str("txn")),
            ("age", Value::Int(50)),
            ("depname", Value::str("sales")),
        ],
    )
    .unwrap();
    eng.commit().unwrap();

    let attributed: Vec<_> = eng
        .query_trace()
        .recent()
        .into_iter()
        .filter(|t| t.txn == Some(token))
        .collect();
    assert_eq!(attributed.len(), 2, "both queries carry the txn token");
    assert!(
        attributed.iter().all(|t| t.commit_ns > 0),
        "commit time distributed across the txn's queries: {attributed:?}"
    );
    assert_eq!(
        standalone(&eng),
        fp0_before,
        "an attributed commit adds no standalone entry"
    );

    // A query-less transaction still traces its commit somewhere.
    eng.begin().unwrap();
    eng.insert(
        employee,
        &[
            ("name", Value::str("quiet")),
            ("age", Value::Int(51)),
            ("depname", Value::str("sales")),
        ],
    )
    .unwrap();
    eng.commit().unwrap();
    assert_eq!(
        standalone(&eng),
        fp0_before + 1,
        "a query-less commit falls back to a standalone entry"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// The q-error histogram and the feedback counter families render in
/// the Prometheus export once a skewed workload has trained the loop.
#[test]
fn prometheus_exports_feedback_and_qerror_families() {
    let eng = skewed_engine(3_000, 100_000);
    let q = hot_range(&eng);
    eng.query_planned(&q).unwrap(); // trains
    eng.query_planned(&q).unwrap(); // replans through the corrections

    let snap = eng.metrics_snapshot();
    assert!(snap.feedback.observations >= 1);
    assert!(snap.feedback.replans >= 1);
    assert!(
        snap.feedback.corrections_applied >= 1,
        "the replanned execution read non-neutral corrections: {:?}",
        snap.feedback
    );
    assert!(snap.planner_qerror.count >= 2, "every execution records q");

    let text = eng.metrics_prometheus();
    for metric in [
        "toposem_planner_qerror_bucket",
        "toposem_planner_qerror_sum",
        "toposem_planner_qerror_count",
        "toposem_feedback_corrections_applied",
        "toposem_feedback_observations_total",
        "toposem_feedback_replans_total",
        "toposem_feedback_generation",
        "toposem_feedback_entries",
    ] {
        assert!(text.contains(metric), "missing {metric} in export:\n{text}");
    }
}

/// The q-error watchdog surfaces the worst retained plan first.
#[test]
fn worst_plans_ranks_the_misestimated_query_highest() {
    let eng = skewed_engine(3_000, 100_000);
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let age = s.attr_id("age").unwrap();

    // Run the badly estimated query first, then a well-estimated one —
    // the watchdog must rank by q-error, not recency.
    eng.query_profiled(&hot_range(&eng)).unwrap();
    eng.query_profiled(&Query::scan(employee).select(age, Value::Int(50)))
        .unwrap();

    let worst = eng.query_trace().worst_plans(2);
    assert_eq!(worst.len(), 2, "profiled runs retain their profiles");
    assert!(
        worst[0].max_q > 100.0 && worst[1].max_q < 2.0,
        "watchdog ranks the misestimate first: q0={}, q1={}",
        worst[0].max_q,
        worst[1].max_q
    );
    assert!(worst[0].max_q >= worst[1].max_q);
}

/// Mini-oracle: over the skewed engine, repeated profiled executions
/// (training and re-planning in between) return results bit-identical
/// to the naive interpreter for ranges, point lookups, and joins.
#[test]
fn feedback_steered_plans_return_identical_results() {
    let eng = skewed_engine(2_000, 100_000);
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let department = s.type_id("department").unwrap();
    let age = s.attr_id("age").unwrap();
    let location = s.attr_id("location").unwrap();
    let queries = [
        hot_range(&eng),
        Query::scan(employee).select(age, Value::Int(42)),
        Query::scan(employee)
            .join(Query::scan(department))
            .select(location, Value::str("utrecht")),
    ];
    for q in &queries {
        let (naive_ty, naive) = eng.with_db(|db| q.execute(db)).unwrap();
        for round in 0..3 {
            let (ty, rel, _) = eng.query_profiled(q).unwrap();
            assert_eq!(ty, naive_ty);
            assert_eq!(
                rel, naive,
                "feedback round {round} changed results for {q:?}"
            );
        }
    }
}
