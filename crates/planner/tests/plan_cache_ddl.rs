//! Regression: index DDL must invalidate cached plans.
//!
//! Plans are cached on the engine keyed by `(query fingerprint,
//! statistics epoch)`. Creating or rebuilding an index changes the set
//! of available access paths, so it must bump the statistics epoch —
//! otherwise a hot query keeps executing its stale `SeqScan` plan and
//! never touches the new index. These tests pin that behaviour for all
//! three index kinds.

use toposem_core::{employee_schema, Intension};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Value};
use toposem_planner::PlannedExecution;
use toposem_storage::{Engine, Query};

fn loaded_engine() -> Engine {
    let eng = Engine::new(Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::Eager,
    ));
    let employee = eng.with_db(|db| db.schema().type_id("employee").unwrap());
    for i in 0..200i64 {
        eng.insert(
            employee,
            &[
                ("name", Value::str(&format!("w{i}"))),
                ("age", Value::Int(i % 90)),
                (
                    "depname",
                    Value::str(["sales", "research", "admin"][(i % 3) as usize]),
                ),
            ],
        )
        .unwrap();
    }
    eng
}

#[test]
fn create_ord_index_invalidates_cached_seq_scan_plan() {
    let eng = loaded_engine();
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let age = s.attr_id("age").unwrap();
    let q = Query::scan(employee).select_between(age, Value::Int(10), Value::Int(12));

    // Cold: the only access path is a sequential scan; the plan caches.
    assert!(eng.explain(&q).unwrap().contains("SeqScan"));
    let first = eng.query_planned(&q).unwrap();
    let (h0, m0) = eng.plan_cache_counters();
    let second = eng.query_planned(&q).unwrap();
    assert_eq!(first, second);
    assert_eq!(
        eng.plan_cache_counters(),
        (h0 + 1, m0),
        "repeat query must hit the cached SeqScan plan"
    );

    // DDL: the ordered index must bump the statistics epoch…
    let epoch_before = eng.statistics_epoch();
    eng.create_ord_index(employee, age).unwrap();
    assert!(
        eng.statistics_epoch() > epoch_before,
        "create_ord_index must bump the statistics epoch"
    );

    // …so the stale SeqScan plan is NOT served: the next execution
    // misses, replans, and picks the range seek.
    let (h1, m1) = eng.plan_cache_counters();
    let third = eng.query_planned(&q).unwrap();
    assert_eq!(
        eng.plan_cache_counters(),
        (h1, m1 + 1),
        "post-DDL lookup must miss (stale plan served otherwise)"
    );
    assert_eq!(first, third, "replanned results must not change");
    let plan = eng.explain(&q).unwrap();
    assert!(
        plan.contains("IndexRangeSeek"),
        "after DDL the cached plan must be replaced by the range seek:\n{plan}"
    );
}

#[test]
fn every_index_kind_bumps_the_epoch() {
    let eng = loaded_engine();
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let name = s.attr_id("name").unwrap();
    let age = s.attr_id("age").unwrap();
    let depname = s.attr_id("depname").unwrap();

    let e0 = eng.statistics_epoch();
    eng.create_index(employee, depname).unwrap();
    let e1 = eng.statistics_epoch();
    assert!(e1 > e0, "hash index DDL must bump the epoch");
    eng.create_ord_index(employee, age).unwrap();
    let e2 = eng.statistics_epoch();
    assert!(e2 > e1, "ordered index DDL must bump the epoch");
    eng.create_composite_index(employee, &[depname, name])
        .unwrap();
    let e3 = eng.statistics_epoch();
    assert!(e3 > e2, "composite index DDL must bump the epoch");
    // Rebuilding an existing definition replans too (the index contents
    // were rebuilt from the stored relation).
    eng.create_ord_index(employee, age).unwrap();
    assert!(
        eng.statistics_epoch() > e3,
        "index rebuild must bump the epoch"
    );
}

#[test]
fn composite_ddl_invalidates_cached_plan_for_conjunctive_query() {
    let eng = loaded_engine();
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let name = s.attr_id("name").unwrap();
    let depname = s.attr_id("depname").unwrap();
    let q = Query::scan(employee)
        .select(depname, Value::str("sales"))
        .select(name, Value::str("w42"));
    let before = eng.query_planned(&q).unwrap();
    assert!(eng.explain(&q).unwrap().contains("SeqScan"));
    eng.create_composite_index(employee, &[depname, name])
        .unwrap();
    let after = eng.query_planned(&q).unwrap();
    assert_eq!(before, after);
    assert!(
        eng.explain(&q).unwrap().contains("CompositeSeek"),
        "conjunctive query must replan onto the composite index"
    );
}
