//! The metrics registry fed by real engine traffic under concurrency:
//! racing planned readers (and, with the `parallel` feature, morsel
//! workers inside each of them) must account for every query exactly —
//! no lost increments, no torn snapshots.

use std::sync::Arc;
use std::thread;

use toposem_core::{employee_schema, Intension};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Value};
use toposem_planner::{ExecOptions, PlannedExecution};
use toposem_storage::{Engine, Query};

fn loaded_engine(n: i64) -> Engine {
    let db = Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::Eager,
    );
    let eng = Engine::new(db);
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    for i in 0..n {
        eng.insert(
            employee,
            &[
                ("name", Value::str(&format!("w{i:05}"))),
                ("age", Value::Int(i % 90)),
                ("depname", Value::str("sales")),
            ],
        )
        .unwrap();
    }
    eng
}

fn exec_options() -> ExecOptions {
    if cfg!(feature = "parallel") {
        ExecOptions {
            threads: 4,
            morsel_size: 128,
            ..ExecOptions::default()
        }
    } else {
        ExecOptions::serial()
    }
}

/// N threads each running K planned queries: `queries_planned` is
/// exactly N*K, every lookup is either a hit or a miss, and the row
/// counter equals the rows actually returned.
#[test]
fn racing_planned_readers_account_for_every_query() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 100;
    let eng = Arc::new(loaded_engine(1_000));
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let age = s.attr_id("age").unwrap();

    // One warm-up run so the plan is cached and the per-query row count
    // is known (1_000 rows, ages 0..90 → 12 rows of age 7).
    let q = Query::scan(employee).select(age, Value::Int(7));
    let (_, warm) = eng.query_planned_with(&q, &exec_options()).unwrap();
    let rows_per_query = warm.len() as u64;
    assert!(rows_per_query > 0);
    let base = eng.metrics_snapshot();

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let eng = Arc::clone(&eng);
            let q = q.clone();
            thread::spawn(move || {
                let opts = exec_options();
                for _ in 0..PER_THREAD {
                    let (_, rel) = eng.query_planned_with(&q, &opts).unwrap();
                    assert_eq!(rel.len() as u64, rows_per_query);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let total = THREADS * PER_THREAD;
    let snap = eng.metrics_snapshot();
    assert_eq!(snap.queries.planned - base.queries.planned, total);
    assert_eq!(
        (snap.plan_cache.hits - base.plan_cache.hits)
            + (snap.plan_cache.misses - base.plan_cache.misses),
        total,
        "every lookup is a hit or a miss"
    );
    assert_eq!(
        snap.plan_cache.hits - base.plan_cache.hits,
        total,
        "no mutations ran, so every lookup hits the cached plan"
    );
    assert_eq!(
        snap.queries.rows_returned - base.queries.rows_returned,
        total * rows_per_query
    );
    // Every query landed in the trace ring too (capacity permitting the
    // ring holds the most recent ones; total pushed is tracked by the
    // planned counter asserted above, so just check the ring is warm).
    assert!(!eng.query_trace().recent().is_empty());
}

/// Readers racing a mutating writer: hits + misses still equals the
/// number of planned queries, and epoch bumps equal the writer's
/// mutation count — interleaving may vary, accounting may not.
#[test]
fn racing_readers_and_writer_keep_exact_accounting() {
    const READERS: u64 = 4;
    const PER_READER: u64 = 50;
    const WRITES: u64 = 25;
    let eng = Arc::new(loaded_engine(500));
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let age = s.attr_id("age").unwrap();
    let base = eng.metrics_snapshot();

    let readers: Vec<_> = (0..READERS)
        .map(|t| {
            let eng = Arc::clone(&eng);
            thread::spawn(move || {
                let opts = exec_options();
                let q = Query::scan(employee).select(age, Value::Int((t % 90) as i64));
                for _ in 0..PER_READER {
                    eng.query_planned_with(&q, &opts).unwrap();
                }
            })
        })
        .collect();
    let writer = {
        let eng = Arc::clone(&eng);
        thread::spawn(move || {
            for i in 0..WRITES {
                eng.insert(
                    employee,
                    &[
                        ("name", Value::str(&format!("x{i:05}"))),
                        ("age", Value::Int((i % 90) as i64)),
                        ("depname", Value::str("sales")),
                    ],
                )
                .unwrap();
            }
        })
    };
    for r in readers {
        r.join().unwrap();
    }
    writer.join().unwrap();

    let snap = eng.metrics_snapshot();
    assert_eq!(
        snap.queries.planned - base.queries.planned,
        READERS * PER_READER
    );
    assert_eq!(
        (snap.plan_cache.hits - base.plan_cache.hits)
            + (snap.plan_cache.misses - base.plan_cache.misses),
        READERS * PER_READER,
        "hit/miss partition planned queries exactly even while racing a writer"
    );
    assert_eq!(
        snap.stats_epoch_bumps - base.stats_epoch_bumps,
        WRITES,
        "each insert bumps the statistics epoch exactly once"
    );
    assert_eq!(snap.stats_epoch, eng.statistics_epoch());
}
