//! Morsel-parallel execution equivalence: for every operator the
//! executor can parallelise — fused filter/project scans, partitioned
//! hash joins, merge joins over parallel-sorted inputs, unions,
//! intersections, sort enforcers — a parallel run must produce exactly
//! the serial result, for any thread count and morsel size, and repeated
//! parallel runs must be bit-identical (determinism, not just set
//! equality).
//!
//! These tests pin explicit [`ExecOptions`] rather than relying on the
//! process-wide env knobs, so they exercise real multi-worker schedules
//! even on a single-core host.

#![cfg(feature = "parallel")]

use toposem_core::{employee_schema, Intension};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Value};
use toposem_planner::{
    estimate_with, execute_ordered_with, execute_with, lower_and_rewrite, parallel_degree,
    plan_with, ExecOptions, Physical, PlannedExecution, PlannerOptions,
};
use toposem_storage::{cmp_by_keys, Engine, Query, SortDir};

const N: i64 = 8_000;

/// The knob grid every query is checked under: odd worker counts, worker
/// counts above the morsel count, morsels smaller and larger than a
/// batch.
fn knob_grid() -> Vec<ExecOptions> {
    vec![
        ExecOptions {
            threads: 2,
            morsel_size: 64,
            ..ExecOptions::default()
        },
        ExecOptions {
            threads: 3,
            morsel_size: 500,
            ..ExecOptions::default()
        },
        ExecOptions {
            threads: 8,
            morsel_size: 1000,
            ..ExecOptions::default()
        },
        ExecOptions {
            threads: 16,
            morsel_size: 7, // more workers than morsels on small inputs
            ..ExecOptions::default()
        },
    ]
}

fn loaded_engine() -> Engine {
    let eng = Engine::new(Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::Eager,
    ));
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let person = s.type_id("person").unwrap();
    let department = s.type_id("department").unwrap();
    let deps = ["sales", "research", "admin"];
    for i in 0..N {
        eng.insert(
            employee,
            &[
                ("name", Value::str(&format!("w{i:05}"))),
                ("age", Value::Int(i % 90)),
                ("depname", Value::str(deps[(i % 3) as usize])),
            ],
        )
        .unwrap();
        if i % 2 == 0 {
            eng.insert(
                person,
                &[
                    ("name", Value::str(&format!("x{i:05}"))),
                    ("age", Value::Int(i % 90)),
                ],
            )
            .unwrap();
        }
    }
    for (d, l) in [
        ("sales", "amsterdam"),
        ("research", "utrecht"),
        ("admin", "utrecht"),
    ] {
        eng.insert(
            department,
            &[("depname", Value::str(d)), ("location", Value::str(l))],
        )
        .unwrap();
    }
    eng
}

/// Serial and parallel execution agree exactly — as sets, and as ordered
/// sequences (arrival order included) — and the parallel run is
/// reproducible.
fn assert_parallel_equals_serial(eng: &Engine, q: &Query) {
    let serial = eng.query_planned_with(q, &ExecOptions::serial()).unwrap();
    let serial_seq = eng
        .query_planned_ordered_with(q, &ExecOptions::serial())
        .unwrap();
    for opts in knob_grid() {
        let par = eng.query_planned_with(q, &opts).unwrap();
        assert_eq!(serial, par, "set result diverged under {opts:?} for {q:?}");
        let par_seq = eng.query_planned_ordered_with(q, &opts).unwrap();
        assert_eq!(
            serial_seq, par_seq,
            "arrival order diverged under {opts:?} for {q:?}"
        );
        let again = eng.query_planned_ordered_with(q, &opts).unwrap();
        assert_eq!(par_seq, again, "parallel run not reproducible for {q:?}");
    }
}

#[test]
fn every_operator_shape_agrees_across_knobs() {
    let eng = loaded_engine();
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let person = s.type_id("person").unwrap();
    let department = s.type_id("department").unwrap();
    let worksfor = s.type_id("worksfor").unwrap();
    let name = s.attr_id("name").unwrap();
    let age = s.attr_id("age").unwrap();
    let depname = s.attr_id("depname").unwrap();
    let queries = [
        // Fused scan pipelines.
        Query::scan(employee),
        Query::scan(employee).select(depname, Value::str("sales")),
        Query::scan(employee)
            .select_between(age, Value::Int(10), Value::Int(60))
            .project(person),
        Query::scan(employee).project(person),
        // Partitioned hash join (department side is tiny, employee big).
        Query::scan(employee).join(Query::scan(department)),
        Query::scan(employee)
            .join(Query::scan(department))
            .select(depname, Value::str("research")),
        // 3-way join through the reorderer.
        Query::scan(person)
            .join(Query::scan(employee))
            .join(Query::scan(department)),
        // Set operations.
        Query::scan(employee)
            .select(depname, Value::str("sales"))
            .union(Query::scan(employee).select(depname, Value::str("admin"))),
        Query::scan(employee)
            .select_le(age, Value::Int(45))
            .intersect(Query::scan(employee).select_ge(age, Value::Int(30))),
        // Ordered outputs: carried order and enforced (descending) sort.
        Query::scan(employee).order_by_asc(age),
        Query::scan(employee).order_by(vec![(age, SortDir::Desc), (name, SortDir::Asc)]),
        Query::scan(employee)
            .join(Query::scan(department))
            .order_by_asc(depname),
        // An empty extension in play.
        Query::scan(worksfor).union(Query::scan(worksfor)),
    ];
    for q in &queries {
        assert_parallel_equals_serial(&eng, q);
    }
    // And against the naive interpreter, through the public entry point.
    for q in &queries {
        let naive = eng.with_db(|db| q.execute(db)).unwrap();
        for opts in knob_grid() {
            assert_eq!(
                naive,
                eng.query_planned_with(q, &opts).unwrap(),
                "parallel != naive for {q:?}"
            );
        }
    }
}

#[test]
fn index_access_paths_feed_parallel_consumers() {
    let eng = loaded_engine();
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let person = s.type_id("person").unwrap();
    let department = s.type_id("department").unwrap();
    let name = s.attr_id("name").unwrap();
    let age = s.attr_id("age").unwrap();
    let depname = s.attr_id("depname").unwrap();
    eng.create_index(department, depname).unwrap();
    eng.create_ord_index(employee, age).unwrap();
    eng.create_composite_index(employee, &[depname, name])
        .unwrap();
    eng.create_composite_index(person, &[name, age]).unwrap();
    let queries = [
        Query::scan(employee).select_between(age, Value::Int(20), Value::Int(70)),
        Query::scan(employee)
            .select(depname, Value::str("sales"))
            .select(name, Value::str("w00042")),
        Query::scan(employee).join(Query::scan(department)),
        Query::scan(person).project(person), // covered projection
        Query::scan(employee).order_by_asc(age),
    ];
    for q in &queries {
        assert_parallel_equals_serial(&eng, q);
    }
}

/// A hand-built operator tree drives the parallel `Sort` run-generation +
/// multi-way merge and the merge-join loop directly, independent of what
/// the planner would pick.
#[test]
fn explicit_sort_and_merge_join_trees_agree() {
    let eng = loaded_engine();
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let department = s.type_id("department").unwrap();
    let worksfor = s.type_id("worksfor").unwrap();
    let depname = s.attr_id("depname").unwrap();
    let keys = vec![depname];
    let sort_keys = vec![(depname, SortDir::Asc)];
    let plan = Physical::Sort {
        input: Box::new(Physical::MergeJoin {
            left: Box::new(Physical::Sort {
                input: Box::new(Physical::SeqScan {
                    ty: employee,
                    preds: Vec::new(),
                }),
                keys: sort_keys.clone(),
            }),
            right: Box::new(Physical::Sort {
                input: Box::new(Physical::SeqScan {
                    ty: department,
                    preds: Vec::new(),
                }),
                keys: sort_keys.clone(),
            }),
            keys,
            ty: worksfor,
        }),
        keys: sort_keys.clone(),
    };
    eng.with_parts(|db, indexes| {
        let serial = execute_with(&plan, db, indexes, &ExecOptions::serial());
        let serial_seq = execute_ordered_with(&plan, db, indexes, &ExecOptions::serial());
        for opts in knob_grid() {
            assert_eq!(
                serial,
                execute_with(&plan, db, indexes, &opts),
                "merge-join tree diverged under {opts:?}"
            );
            let par_seq = execute_ordered_with(&plan, db, indexes, &opts);
            assert_eq!(serial_seq, par_seq, "sorted arrival diverged");
            assert!(
                par_seq
                    .windows(2)
                    .all(|w| cmp_by_keys(&w[0], &w[1], &sort_keys) != std::cmp::Ordering::Greater),
                "output violates the enforced sort order"
            );
        }
    });
}

/// The cost model's parallelism discount: a big scan earns a degree > 1
/// and a cheaper estimate under a multi-threaded configuration, while a
/// sub-morsel relation stays serial (the dispatcher clamps the pool by
/// morsel count).
#[test]
fn cost_discount_reflects_degree() {
    let eng = loaded_engine();
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let department = s.type_id("department").unwrap();
    let stats = eng.statistics();
    let par = ExecOptions {
        threads: 4,
        morsel_size: 1000,
        ..ExecOptions::default()
    };
    let big = Physical::SeqScan {
        ty: employee,
        preds: Vec::new(),
    };
    assert_eq!(parallel_degree(&big, &stats, &par), 4);
    assert_eq!(parallel_degree(&big, &stats, &ExecOptions::serial()), 1);
    let serial_cost = estimate_with(&big, &stats, &ExecOptions::serial()).cost;
    let par_cost = estimate_with(&big, &stats, &par).cost;
    assert!(
        par_cost < serial_cost / 2.0,
        "4-way scan must earn a real discount: serial {serial_cost}, parallel {par_cost}"
    );
    // Rows are a property of the data, not the schedule.
    assert_eq!(
        estimate_with(&big, &stats, &par).rows,
        estimate_with(&big, &stats, &ExecOptions::serial()).rows
    );
    // 6 departments < one morsel: no discount, no idle workers.
    let tiny = Physical::SeqScan {
        ty: department,
        preds: Vec::new(),
    };
    assert_eq!(parallel_degree(&tiny, &stats, &par), 1);
    assert_eq!(
        estimate_with(&tiny, &stats, &par),
        estimate_with(&tiny, &stats, &ExecOptions::serial())
    );
}

/// `plan_with` + `execute_with` compose for explicitly pinned baselines:
/// the hash-join-only plan executed in parallel still matches its serial
/// run (this is the q4 bench's exact comparison, minus the clock).
#[test]
fn pinned_hash_join_plan_agrees() {
    let eng = loaded_engine();
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let department = s.type_id("department").unwrap();
    let q = Query::scan(employee).join(Query::scan(department));
    let stats = eng.statistics();
    eng.with_parts(|db, indexes| {
        let logical = lower_and_rewrite(&q, db).unwrap();
        let phys = plan_with(
            &logical,
            db,
            indexes,
            &stats,
            &PlannerOptions {
                merge_joins: false,
                ..Default::default()
            },
        );
        let serial = execute_with(&phys, db, indexes, &ExecOptions::serial());
        for opts in knob_grid() {
            assert_eq!(serial, execute_with(&phys, db, indexes, &opts));
        }
    });
}
