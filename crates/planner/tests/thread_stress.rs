//! True multi-threaded interleavings of planned readers against index
//! DDL: concurrent `query_planned` loops race `create_index` /
//! `create_ord_index` / `create_composite_index` / `drop_index` on the
//! same engine. This extends the PR-4 cached-plan validity regression
//! (which *emulated* the drop-index race) to real schedules: a cached
//! plan whose index vanished mid-flight must replan, never panic, and
//! every result must equal the DDL-independent ground truth — the data
//! never changes, only the access paths do.
//!
//! Runs in both executor modes; under `--features parallel` the readers
//! additionally exercise the morsel dispatcher while DDL writers contend
//! for the engine lock.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use toposem_core::{employee_schema, Intension};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Value};
use toposem_planner::{ExecOptions, PlannedExecution};
use toposem_storage::{Engine, IndexKind, Query};

const ROWS: i64 = 2_000;
const DDL_ROUNDS: usize = 60;
const READERS: usize = 4;

fn loaded_engine() -> Engine {
    let eng = Engine::new(Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::Eager,
    ));
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let department = s.type_id("department").unwrap();
    let deps = ["sales", "research", "admin"];
    for i in 0..ROWS {
        eng.insert(
            employee,
            &[
                ("name", Value::str(&format!("w{i:04}"))),
                ("age", Value::Int(i % 90)),
                ("depname", Value::str(deps[(i % 3) as usize])),
            ],
        )
        .unwrap();
    }
    for (d, l) in [("sales", "amsterdam"), ("research", "utrecht")] {
        eng.insert(
            department,
            &[("depname", Value::str(d)), ("location", Value::str(l))],
        )
        .unwrap();
    }
    eng
}

#[test]
fn concurrent_planned_readers_survive_index_ddl() {
    let eng = loaded_engine();
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let department = s.type_id("department").unwrap();
    let person = s.type_id("person").unwrap();
    let name = s.attr_id("name").unwrap();
    let age = s.attr_id("age").unwrap();
    let depname = s.attr_id("depname").unwrap();

    let queries = [
        Query::scan(employee).select(depname, Value::str("sales")),
        Query::scan(employee).select_between(age, Value::Int(10), Value::Int(40)),
        Query::scan(employee)
            .select(depname, Value::str("research"))
            .select(name, Value::str("w0042")),
        Query::scan(employee).join(Query::scan(department)),
        Query::scan(employee).project(person),
        Query::scan(employee).order_by_asc(age),
    ];
    // Ground truth is DDL-independent: the data never changes. (The
    // queries array is iterated by reference from every reader thread.)
    let expected: Vec<_> = queries
        .iter()
        .map(|q| eng.with_db(|db| q.execute(db)).unwrap())
        .collect();

    let stop = AtomicBool::new(false);
    // Per-reader round counters: the invariant is that *every* reader
    // makes progress under DDL churn, not that the pool does in
    // aggregate (one hot reader must not mask a starved one).
    let rounds: Vec<AtomicUsize> = (0..READERS).map(|_| AtomicUsize::new(0)).collect();
    // A small morsel size forces multi-morsel parallel schedules on the
    // 2k-row relation when the `parallel` feature is on; without it the
    // knobs are inert and the test still races plan-cache + DDL.
    let opts = ExecOptions {
        threads: 4,
        morsel_size: 128,
        ..ExecOptions::default()
    };

    std::thread::scope(|scope| {
        for my_rounds in &rounds {
            scope.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    for (q, want) in queries.iter().zip(&expected) {
                        let got = eng
                            .query_planned_with(q, &opts)
                            .expect("sanctioned query must plan under concurrent DDL");
                        assert_eq!(got, *want, "reader observed a wrong result for {q:?}");
                        let (_, seq) = eng
                            .query_planned_ordered_with(q, &opts)
                            .expect("ordered execution must survive concurrent DDL");
                        assert_eq!(seq.len(), want.1.len());
                    }
                    my_rounds.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // The DDL writer churns every index kind, including rebuilds of
        // existing definitions and drops of just-created ones.
        for round in 0..DDL_ROUNDS {
            eng.create_index(employee, depname).unwrap();
            eng.create_ord_index(employee, age).unwrap();
            eng.create_composite_index(employee, &[depname, name])
                .unwrap();
            if round % 2 == 0 {
                assert!(eng
                    .drop_index(employee, IndexKind::Hash, &[depname])
                    .unwrap());
                assert!(eng
                    .drop_index(employee, IndexKind::Ordered, &[age])
                    .unwrap());
            }
            if round % 3 == 0 {
                assert!(eng
                    .drop_index(employee, IndexKind::Composite, &[depname, name])
                    .unwrap());
            }
        }
        // Keep the race window open until every reader has finished at
        // least one full round *during* the churn-or-later epoch, so a
        // fast DDL loop on a loaded host can't end the test before
        // descheduled readers ever ran (deadline only to fail loudly
        // instead of hanging on a genuinely stuck reader).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        while rounds.iter().any(|r| r.load(Ordering::Relaxed) == 0) {
            assert!(
                std::time::Instant::now() < deadline,
                "a reader made no progress within 60s of DDL churn"
            );
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
    });

    for (i, r) in rounds.iter().enumerate() {
        assert!(
            r.load(Ordering::Relaxed) >= 1,
            "reader {i} never completed a full query round"
        );
    }
}
