//! Kill-and-recover workload for the new access paths: ordered and
//! composite indexes created *mid-log* (some covered by a checkpoint,
//! some only by `CreateIndex` records) must be rebuilt by recovery, the
//! recovered planner must still choose `IndexRangeSeek` / `CompositeSeek`
//! access paths, and every query result must match a shadow in-memory
//! engine that executed only the committed work.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use toposem_core::{employee_schema, Intension};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Value};
use toposem_planner::PlannedExecution;
use toposem_storage::{snapshot, Engine, IndexKind, Query};
use toposem_wal::{FlushPolicy, Wal, WalConfig};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "toposem-access-paths-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn fresh_db() -> Database {
    Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::Eager,
    )
}

fn durable_engine(dir: &Path) -> Engine {
    let cfg = WalConfig {
        flush: FlushPolicy::PerCommit,
        segment_bytes: 2048, // small segments: the workload crosses several
    };
    Engine::durable(fresh_db(), Wal::create(dir, cfg).unwrap()).unwrap()
}

fn insert_employee(eng: &Engine, name: &str, age: i64, dep: &str) {
    let employee = eng.with_db(|db| db.schema().type_id("employee").unwrap());
    eng.insert(
        employee,
        &[
            ("name", Value::str(name)),
            ("age", Value::Int(age)),
            ("depname", Value::str(dep)),
        ],
    )
    .unwrap();
}

#[test]
fn recovery_rebuilds_ordered_and_composite_indexes_and_their_access_paths() {
    let dir = temp_dir("kill");
    let eng = durable_engine(&dir);
    let shadow = Engine::new(fresh_db());
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let age = s.attr_id("age").unwrap();
    let name = s.attr_id("name").unwrap();
    let depname = s.attr_id("depname").unwrap();
    let deps = ["sales", "research", "admin"];

    // Phase 1: rows, then an ordered index, then a checkpoint — this
    // index must survive via checkpoint meta.
    for i in 0..40 {
        let (n, a, d) = (format!("w{i}"), i % 90, deps[(i % 3) as usize]);
        insert_employee(&eng, &n, a, d);
        insert_employee(&shadow, &n, a, d);
    }
    eng.create_ord_index(employee, age).unwrap();
    shadow.create_ord_index(employee, age).unwrap();
    eng.checkpoint().unwrap();

    // Phase 2: more committed transactions, then a composite index
    // mid-log — this one must survive via its CreateIndex record alone.
    for i in 40..80 {
        let (n, a, d) = (format!("w{i}"), i % 90, deps[(i % 3) as usize]);
        eng.begin().unwrap();
        insert_employee(&eng, &n, a, d);
        eng.commit().unwrap();
        insert_employee(&shadow, &n, a, d);
    }
    eng.create_composite_index(employee, &[depname, name])
        .unwrap();
    shadow
        .create_composite_index(employee, &[depname, name])
        .unwrap();
    // More rows after the DDL: incremental maintenance must replay too.
    for i in 80..100 {
        let (n, a, d) = (format!("w{i}"), i % 90, deps[(i % 3) as usize]);
        insert_employee(&eng, &n, a, d);
        insert_employee(&shadow, &n, a, d);
    }

    // Phase 3: an uncommitted transaction whose records reach disk — the
    // crash victim recovery must discard.
    eng.begin().unwrap();
    insert_employee(&eng, "ghost", 33, "admin");
    eng.sync().unwrap();
    drop(eng); // crash

    let recovered = Engine::recover(&dir).unwrap();

    // Committed state matches the shadow byte-for-byte.
    let a = recovered.with_db(|db| snapshot::to_vec(db).unwrap());
    let b = shadow.with_db(|db| snapshot::to_vec(db).unwrap());
    assert_eq!(a, b, "recovered state diverged from the shadow");

    // Both index definitions were rebuilt, kinds intact.
    let defs = recovered.index_defs(employee);
    assert!(
        defs.contains(&(IndexKind::Ordered, vec![age])),
        "ordered index lost in recovery: {defs:?}"
    );
    assert!(
        defs.contains(&(IndexKind::Composite, vec![depname, name])),
        "composite index lost in recovery: {defs:?}"
    );

    // The recovered planner still picks the ordered range seek…
    let range = Query::scan(employee).select_between(age, Value::Int(10), Value::Int(13));
    let plan = recovered.explain(&range).unwrap();
    assert!(
        plan.contains("IndexRangeSeek"),
        "post-recovery explain must choose IndexRangeSeek:\n{plan}"
    );
    // …and the composite prefix seek.
    let composite = Query::scan(employee)
        .select(depname, Value::str("sales"))
        .select(name, Value::str("w42"));
    let plan = recovered.explain(&composite).unwrap();
    assert!(
        plan.contains("CompositeSeek"),
        "post-recovery explain must choose CompositeSeek:\n{plan}"
    );

    // Planned results on the recovered engine equal the shadow's across
    // every new plan shape (and the ghost row appears in none of them).
    let person = s.type_id("person").unwrap();
    let queries = [
        range,
        composite,
        Query::scan(employee).select_ge(age, Value::Int(80)),
        Query::scan(employee).select_lt(age, Value::Int(5)),
        Query::scan(employee).select(depname, Value::str("admin")),
        Query::scan(employee)
            .select_between(age, Value::Int(20), Value::Int(40))
            .project(person),
        Query::scan(employee),
    ];
    for q in &queries {
        let r = recovered.query_planned(q).unwrap();
        let sdw = shadow.query_planned(q).unwrap();
        assert_eq!(r, sdw, "recovered != shadow for {q:?}");
        let naive = recovered.with_db(|db| q.execute(db)).unwrap();
        assert_eq!(r, naive, "recovered planned != naive for {q:?}");
    }
    let ghosts = recovered
        .query_planned(&Query::scan(employee).select(name, Value::str("ghost")))
        .unwrap();
    assert!(ghosts.1.is_empty(), "uncommitted insert survived recovery");

    fs::remove_dir_all(&dir).unwrap();
}

/// `Engine::open` (recover-and-continue) keeps the rebuilt indexes live:
/// post-reopen mutations maintain them and the access paths persist
/// across a second restart.
#[test]
fn reopened_engine_maintains_recovered_indexes() {
    let dir = temp_dir("reopen");
    let cfg = WalConfig {
        flush: FlushPolicy::PerCommit,
        segment_bytes: 2048,
    };
    let eng = durable_engine(&dir);
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let age = s.attr_id("age").unwrap();
    for i in 0..30 {
        insert_employee(&eng, &format!("w{i}"), i % 90, "sales");
    }
    eng.create_ord_index(employee, age).unwrap();
    drop(eng);

    let eng = Engine::open(&dir, cfg).unwrap();
    // Maintenance after recovery: a fresh insert must reach the index.
    insert_employee(&eng, "late", 7, "admin");
    let q = Query::scan(employee).select_between(age, Value::Int(6), Value::Int(8));
    assert!(eng.explain(&q).unwrap().contains("IndexRangeSeek"));
    let (_, rel) = eng.query_planned(&q).unwrap();
    let naive = eng.with_db(|db| q.execute(db)).unwrap();
    assert_eq!(rel, naive.1);
    assert!(
        rel.iter()
            .any(|t| t.get(s.attr_id("name").unwrap()) == Some(&Value::str("late"))),
        "post-reopen insert missing from the range seek"
    );
    drop(eng);

    // Second restart: the definition still replays.
    let recovered = Engine::recover(&dir).unwrap();
    assert!(recovered.explain(&q).unwrap().contains("IndexRangeSeek"));
    fs::remove_dir_all(&dir).unwrap();
}
