//! Order-aware planning: physical properties (sort orders), merge joins,
//! Sort enforcers, and DP join reordering.
//!
//! The headline acceptance check lives here: a 3-way join over ordered
//! indexes plans to a `MergeJoin` with **no** `Sort` enforcer — the order
//! is carried from the index walk through the operator tree — and planned
//! execution still agrees with the naive interpreter everywhere.

use toposem_core::{employee_schema, Intension};
use toposem_extension::{ContainmentPolicy, Database, DomainCatalog, Value};
use toposem_planner::{execute, lower_and_rewrite, plan_with, PlannedExecution, PlannerOptions};
use toposem_storage::{cmp_by_keys, Engine, IndexKind, Query, SortDir};

fn engine() -> Engine {
    Engine::new(Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::Eager,
    ))
}

/// 200 employees (and matching persons), 3 departments.
fn load(eng: &Engine, n: i64) {
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let person = s.type_id("person").unwrap();
    let department = s.type_id("department").unwrap();
    let deps = ["sales", "research", "admin"];
    for i in 0..n {
        eng.insert(
            employee,
            &[
                ("name", Value::str(&format!("w{i:04}"))),
                ("age", Value::Int(i % 90)),
                ("depname", Value::str(deps[(i % 3) as usize])),
            ],
        )
        .unwrap();
        eng.insert(
            person,
            &[
                ("name", Value::str(&format!("w{i:04}"))),
                ("age", Value::Int(i % 90)),
            ],
        )
        .unwrap();
    }
    for (d, l) in [
        ("sales", "amsterdam"),
        ("research", "utrecht"),
        ("admin", "utrecht"),
    ] {
        eng.insert(
            department,
            &[("depname", Value::str(d)), ("location", Value::str(l))],
        )
        .unwrap();
    }
}

fn agree(eng: &Engine, q: &Query) {
    let naive = eng.with_db(|db| q.execute(db)).unwrap();
    let planned = eng.query_planned(q).unwrap();
    assert_eq!(naive, planned, "planned != naive for {q:?}");
}

/// Planned ordered output must be the same *set* as naive ordered output
/// and must ascend by the query's root sort keys (tie order is the
/// executor's to choose).
fn agree_ordered(eng: &Engine, q: &Query) {
    let naive = eng.with_db(|db| q.execute_ordered(db)).unwrap();
    let planned = eng.query_planned_ordered(q).unwrap();
    assert_eq!(naive.0, planned.0, "types diverged for {q:?}");
    assert_eq!(
        naive.1.len(),
        planned.1.len(),
        "cardinalities diverged for {q:?}"
    );
    let keys = q.root_order();
    assert!(
        planned
            .1
            .windows(2)
            .all(|w| cmp_by_keys(&w[0], &w[1], keys) != std::cmp::Ordering::Greater),
        "planned output not sorted by {keys:?} for {q:?}"
    );
    let naive_set: std::collections::HashSet<_> = naive.1.into_iter().collect();
    let planned_set: std::collections::HashSet<_> = planned.1.into_iter().collect();
    assert_eq!(naive_set, planned_set, "result sets diverged for {q:?}");
}

/// The acceptance criterion: a 3-way join over ordered (composite)
/// indexes merges on the carried order — the plan shows a MergeJoin and
/// no Sort enforcer anywhere.
#[test]
fn three_way_join_merges_without_sort_enforcer() {
    let eng = engine();
    load(&eng, 200);
    let s = eng.with_db(|db| db.schema().clone());
    let person = s.type_id("person").unwrap();
    let employee = s.type_id("employee").unwrap();
    let department = s.type_id("department").unwrap();
    let name = s.attr_id("name").unwrap();
    let age = s.attr_id("age").unwrap();
    let depname = s.attr_id("depname").unwrap();
    eng.create_composite_index(person, &[name, age]).unwrap();
    eng.create_composite_index(employee, &[name, age]).unwrap();
    eng.create_ord_index(employee, depname).unwrap();

    let q = Query::scan(person)
        .join(Query::scan(employee))
        .join(Query::scan(department));
    let plan = eng.explain(&q).unwrap();
    assert!(
        plan.contains("MergeJoin"),
        "3-way join over ordered indexes must merge-join:\n{plan}"
    );
    assert!(
        !plan.contains("Sort"),
        "order must be carried, not enforced:\n{plan}"
    );
    agree(&eng, &q);
}

/// Order carried from an explicit ordered-index walk: employee's scan
/// order does not start with `depname`, so without the index the merge
/// would need a Sort — with it, the planner walks the BTree instead.
#[test]
fn merge_join_consumes_index_range_seek_order() {
    let eng = engine();
    load(&eng, 200);
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let department = s.type_id("department").unwrap();
    let depname = s.attr_id("depname").unwrap();
    eng.create_ord_index(employee, depname).unwrap();
    let q = Query::scan(employee).join(Query::scan(department));
    let plan = eng.explain(&q).unwrap();
    assert!(
        plan.contains("MergeJoin") && plan.contains("IndexRangeSeek") && !plan.contains("Sort"),
        "merge join must consume the ordered index's order:\n{plan}"
    );
    agree(&eng, &q);
}

/// A merge join is an equi-join on the whole key set, so a *permuted*
/// key order works as long as both sides share it: composite indexes on
/// (age, name) — the reverse of the canonical shared-key order — must
/// still carry a Sort-free merge join, with the requested (age, name)
/// output order falling out of the walk for free.
#[test]
fn merge_join_consumes_permuted_composite_index_order() {
    let eng = engine();
    load(&eng, 200);
    let s = eng.with_db(|db| db.schema().clone());
    let person = s.type_id("person").unwrap();
    let employee = s.type_id("employee").unwrap();
    let name = s.attr_id("name").unwrap();
    let age = s.attr_id("age").unwrap();
    // The canonical shared-key order is ascending attribute id; index
    // both sides in the *reverse* order, so only a permuted merge-join
    // requirement can consume the carried order.
    let reversed = if name.index() < age.index() {
        [age, name]
    } else {
        [name, age]
    };
    eng.create_composite_index(person, &reversed).unwrap();
    eng.create_composite_index(employee, &reversed).unwrap();

    // Request the permuted order at the root: the merge join that sorts
    // by it produces the answer with no Sort anywhere.
    let q = Query::scan(person)
        .join(Query::scan(employee))
        .order_by(reversed.iter().map(|a| (*a, SortDir::Asc)).collect());
    let plan = eng.explain(&q).unwrap();
    assert!(
        plan.contains("MergeJoin"),
        "permuted composite order must enable a merge join:\n{plan}"
    );
    assert!(
        !plan.contains("Sort"),
        "the permuted key order must be carried, not enforced:\n{plan}"
    );
    agree_ordered(&eng, &q);
}

/// DP join reordering avoids the cross product the as-written nesting
/// would execute: (person ⋈ department) ⋈ worksfor shares no attributes
/// in its first join, so the reorderer must pick another association.
#[test]
fn dp_reorders_away_from_cross_products() {
    let eng = engine();
    load(&eng, 120);
    let s = eng.with_db(|db| db.schema().clone());
    let person = s.type_id("person").unwrap();
    let department = s.type_id("department").unwrap();
    let worksfor = s.type_id("worksfor").unwrap();
    let deps = ["sales", "research", "admin"];
    for i in 0..120 {
        eng.insert(
            worksfor,
            &[
                ("name", Value::str(&format!("w{i:04}"))),
                ("age", Value::Int(i % 90)),
                ("depname", Value::str(deps[(i % 3) as usize])),
                (
                    "location",
                    Value::str(["amsterdam", "utrecht"][(i % 2) as usize]),
                ),
            ],
        )
        .unwrap();
    }
    let q = Query::scan(person)
        .join(Query::scan(department))
        .join(Query::scan(worksfor));
    let stats = eng.statistics();
    let (reordered, baseline) = eng.with_parts(|db, indexes| {
        let logical = lower_and_rewrite(&q, db).unwrap();
        let dp = plan_with(&logical, db, indexes, &stats, &PlannerOptions::default());
        let asis = plan_with(
            &logical,
            db,
            indexes,
            &stats,
            &PlannerOptions {
                reorder_joins: false,
                merge_joins: false,
                ..Default::default()
            },
        );
        (dp, asis)
    });
    let dp_cost = toposem_planner::estimate(&reordered, &stats).cost;
    let base_cost = toposem_planner::estimate(&baseline, &stats).cost;
    assert!(
        dp_cost < base_cost,
        "reordered plan must beat the as-written nesting: {dp_cost} vs {base_cost}"
    );
    // Both plans compute the same relation, which matches naive.
    let naive = eng.with_db(|db| q.execute(db)).unwrap().1;
    eng.with_parts(|db, indexes| {
        assert_eq!(execute(&reordered, db, indexes), naive);
        assert_eq!(execute(&baseline, db, indexes), naive);
    });
    agree(&eng, &q);
}

/// Above the DP budget the greedy fallback still reorders — and at any
/// width, planned execution stays equal to naive.
#[test]
fn wide_self_joins_take_the_greedy_path_and_agree() {
    let eng = engine();
    load(&eng, 40);
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let person = s.type_id("person").unwrap();
    // employee ⋈ person ⋈ employee ⋈ … : 10 leaves (> dp_max_leaves=8),
    // every intermediate union is still a declared type.
    let mut q = Query::scan(employee);
    for i in 0..9 {
        let other = if i % 2 == 0 { person } else { employee };
        q = q.join(Query::scan(other));
    }
    agree(&eng, &q);
}

/// An oversized DP budget is clamped, not trusted: 18 join leaves with
/// `dp_max_leaves: 64` must take the greedy path (the DP's u32 subset
/// masks would overflow) and still agree with naive execution.
#[test]
fn oversized_dp_budget_is_clamped_not_overflowed() {
    let eng = engine();
    load(&eng, 20);
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let person = s.type_id("person").unwrap();
    let mut q = Query::scan(employee);
    for i in 0..17 {
        q = q.join(Query::scan(if i % 2 == 0 { person } else { employee }));
    }
    let stats = eng.statistics();
    let naive = eng.with_db(|db| q.execute(db)).unwrap().1;
    eng.with_parts(|db, indexes| {
        let logical = lower_and_rewrite(&q, db).unwrap();
        let phys = plan_with(
            &logical,
            db,
            indexes,
            &stats,
            &PlannerOptions {
                dp_max_leaves: 64,
                ..Default::default()
            },
        );
        assert_eq!(execute(&phys, db, indexes), naive);
    });
}

/// Ordered execution: planned output honours the root order-by whether
/// the order is carried (ascending, index available) or enforced
/// (descending, or no ordered path).
#[test]
fn order_by_is_honoured_with_and_without_enforcers() {
    let eng = engine();
    load(&eng, 150);
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let department = s.type_id("department").unwrap();
    let age = s.attr_id("age").unwrap();
    let depname = s.attr_id("depname").unwrap();
    let name = s.attr_id("name").unwrap();
    eng.create_ord_index(employee, age).unwrap();

    // Ascending on an ordered-index attribute: carried, no Sort.
    let q = Query::scan(employee).order_by_asc(age);
    let plan = eng.explain(&q).unwrap();
    assert!(
        plan.contains("IndexRangeSeek") && !plan.contains("Sort"),
        "ascending order over an ordered index must be carried:\n{plan}"
    );
    agree_ordered(&eng, &q);

    // Descending: no access path emits it; a Sort enforcer appears.
    let q = Query::scan(employee).order_by(vec![(age, SortDir::Desc)]);
    let plan = eng.explain(&q).unwrap();
    assert!(
        plan.contains("Sort"),
        "descending order needs an enforcer:\n{plan}"
    );
    agree_ordered(&eng, &q);

    // Order over a selection, carried through the residual filter.
    let q = Query::scan(employee)
        .select(depname, Value::str("sales"))
        .order_by_asc(age);
    agree_ordered(&eng, &q);

    // Order over a join output.
    let q = Query::scan(employee)
        .join(Query::scan(department))
        .order_by(vec![(depname, SortDir::Asc), (name, SortDir::Asc)]);
    agree_ordered(&eng, &q);

    // The scan's canonical order is itself a physical property: ordering
    // by the type's first attributes needs no enforcer at all.
    let q = Query::scan(employee).order_by(vec![(name, SortDir::Asc), (age, SortDir::Asc)]);
    let plan = eng.explain(&q).unwrap();
    assert!(
        !plan.contains("Sort"),
        "canonical relation order must satisfy a matching order-by:\n{plan}"
    );
    agree_ordered(&eng, &q);

    // No order-by at all: ordered execution still works (arrival order).
    agree_ordered(&eng, &Query::scan(employee));
}

/// Equality-bound attributes are constants, so they satisfy (or can be
/// skipped in) order positions: a composite walk of `(depname, age)`
/// under `depname = 'sales'` serves `ORDER BY age` — and even
/// `ORDER BY depname DESC, age ASC` — with no `Sort` enforcer.
/// Regression for the planner treating order prefixes literally and
/// sorting anyway.
#[test]
fn equality_bound_attribute_skips_order_positions() {
    let eng = engine();
    load(&eng, 200);
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let age = s.attr_id("age").unwrap();
    let depname = s.attr_id("depname").unwrap();
    eng.create_composite_index(employee, &[depname, age])
        .unwrap();

    // WHERE depname = 'sales' ORDER BY age: the seek emits (depname,
    // age) order with depname constant, so the required prefix reduces
    // to (age) and the order is carried.
    let q = Query::scan(employee)
        .select(depname, Value::str("sales"))
        .order_by_asc(age);
    let plan = eng.explain(&q).unwrap();
    assert!(
        plan.contains("CompositeSeek") && !plan.contains("Sort"),
        "equality-bound depname must be skippable in the order prefix:\n{plan}"
    );
    agree_ordered(&eng, &q);

    // Direction on a constant is meaningless: DESC on the bound
    // attribute still needs no enforcer.
    let q = Query::scan(employee)
        .select(depname, Value::str("sales"))
        .order_by(vec![(depname, SortDir::Desc), (age, SortDir::Asc)]);
    let plan = eng.explain(&q).unwrap();
    assert!(
        !plan.contains("Sort"),
        "sort direction on an equality-bound attribute is irrelevant:\n{plan}"
    );
    agree_ordered(&eng, &q);

    // Without the equality the skip must NOT apply: ORDER BY age over
    // the same index still needs a Sort (depname really groups first).
    let q = Query::scan(employee).order_by_asc(age);
    let plan = eng.explain(&q).unwrap();
    assert!(
        plan.contains("Sort"),
        "unbound leading key must still force an enforcer:\n{plan}"
    );
    agree_ordered(&eng, &q);
}

/// Composite-index range suffix: an equality prefix plus a range on the
/// next key attribute seeks one contiguous composite key range instead
/// of filtering residually.
#[test]
fn composite_equality_prefix_plus_range_suffix_seeks() {
    let eng = engine();
    load(&eng, 300);
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let age = s.attr_id("age").unwrap();
    let depname = s.attr_id("depname").unwrap();
    eng.create_composite_index(employee, &[depname, age])
        .unwrap();
    let q = Query::scan(employee)
        .select(depname, Value::str("sales"))
        .select_between(age, Value::Int(10), Value::Int(30));
    let plan = eng.explain(&q).unwrap();
    assert!(
        plan.contains("CompositeSeek") && plan.contains("range age"),
        "equality prefix + range must seek the composite range:\n{plan}"
    );
    assert!(
        !plan.contains("residual"),
        "both predicates are consumed by the seek:\n{plan}"
    );
    agree(&eng, &q);
    // A leading-attribute range (empty prefix) also seeks.
    let q = Query::scan(employee).select_lt(depname, Value::str("research"));
    let plan = eng.explain(&q).unwrap();
    assert!(
        plan.contains("CompositeSeek") && plan.contains("range depname"),
        "leading range must seek the composite index:\n{plan}"
    );
    agree(&eng, &q);
    // Range + residual past the suffix attribute still agrees.
    let name = s.attr_id("name").unwrap();
    let q = Query::scan(employee)
        .select(depname, Value::str("admin"))
        .select_ge(age, Value::Int(40))
        .select(name, Value::str("w0045"));
    agree(&eng, &q);
}

/// drop_index removes the access path (plans fall back to scans) and is
/// honoured by recovery replay.
#[test]
fn drop_index_removes_access_path_and_replays() {
    let eng = engine();
    load(&eng, 100);
    let s = eng.with_db(|db| db.schema().clone());
    let employee = s.type_id("employee").unwrap();
    let age = s.attr_id("age").unwrap();
    eng.create_ord_index(employee, age).unwrap();
    let q = Query::scan(employee).select_between(age, Value::Int(5), Value::Int(8));
    assert!(eng.explain(&q).unwrap().contains("IndexRangeSeek"));
    assert!(eng
        .drop_index(employee, IndexKind::Ordered, &[age])
        .unwrap());
    // Dropping again reports nothing to drop.
    assert!(!eng
        .drop_index(employee, IndexKind::Ordered, &[age])
        .unwrap());
    let plan = eng.explain(&q).unwrap();
    assert!(
        !plan.contains("IndexRangeSeek"),
        "dropped index must not be planned against:\n{plan}"
    );
    agree(&eng, &q);
    assert!(eng.index_defs(employee).is_empty());
}
