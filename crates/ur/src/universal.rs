//! The Universal Relation with placeholders and window functions.

use std::collections::BTreeSet;

use toposem_core::{AttrId, Schema};
use toposem_extension::Value;
use toposem_topology::BitSet;

/// A universal-relation cell: a real value or a placeholder variable.
///
/// Placeholders are Maier's "members of a set that might not be members of
/// that set after all": unique variables standing for unknown values, so
/// that every tuple can span the full attribute universe.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PlaceholderValue {
    /// A known atomic value.
    Known(Value),
    /// A placeholder variable, identified by its allocation number.
    Placeholder(u64),
}

impl PlaceholderValue {
    /// Is this cell a placeholder?
    pub fn is_placeholder(&self) -> bool {
        matches!(self, PlaceholderValue::Placeholder(_))
    }
}

/// A tuple over the *entire* attribute universe.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UrTuple {
    cells: Vec<PlaceholderValue>,
}

impl UrTuple {
    /// The cell of attribute `a`.
    pub fn cell(&self, a: AttrId) -> &PlaceholderValue {
        &self.cells[a.index()]
    }

    /// How many cells are placeholders.
    pub fn placeholder_count(&self) -> usize {
        self.cells.iter().filter(|c| c.is_placeholder()).count()
    }
}

/// A window: the attribute set a user reads or writes through.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Window {
    attrs: BitSet,
}

impl Window {
    /// A window over the named attributes.
    pub fn new(schema: &Schema, attr_names: &[&str]) -> Option<Window> {
        let mut attrs = BitSet::empty(schema.attr_count());
        for n in attr_names {
            attrs.insert(schema.attr_id(n)?.index());
        }
        Some(Window { attrs })
    }

    /// The underlying attribute set.
    pub fn attrs(&self) -> &BitSet {
        &self.attrs
    }
}

/// The single relation of the Universal Relation model.
#[derive(Clone, Debug, Default)]
pub struct UniversalRelation {
    universe: usize,
    tuples: BTreeSet<UrTuple>,
    next_placeholder: u64,
}

impl UniversalRelation {
    /// An empty universal relation over a schema's attribute universe.
    pub fn new(schema: &Schema) -> Self {
        UniversalRelation {
            universe: schema.attr_count(),
            tuples: BTreeSet::new(),
            next_placeholder: 0,
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Total placeholders across all tuples (the model's "information
    /// debt": cells the user never asserted but the model forces into
    /// existence).
    pub fn total_placeholders(&self) -> usize {
        self.tuples.iter().map(UrTuple::placeholder_count).sum()
    }

    /// Inserts through a window: the supplied attributes get the supplied
    /// values, every other attribute gets a **fresh placeholder**.
    pub fn insert_through_window(&mut self, window: &Window, values: &[(AttrId, Value)]) {
        let mut cells = Vec::with_capacity(self.universe);
        for a in 0..self.universe {
            if window.attrs().contains(a) {
                let v = values
                    .iter()
                    .find(|(attr, _)| attr.index() == a)
                    .map(|(_, v)| v.clone())
                    .expect("window attributes must be supplied");
                cells.push(PlaceholderValue::Known(v));
            } else {
                cells.push(PlaceholderValue::Placeholder(self.next_placeholder));
                self.next_placeholder += 1;
            }
        }
        self.tuples.insert(UrTuple { cells });
    }

    /// The window function: project every tuple onto the window, dropping
    /// rows that are placeholder-only in the window. Duplicates collapse.
    pub fn window(&self, window: &Window) -> BTreeSet<Vec<PlaceholderValue>> {
        self.tuples
            .iter()
            .map(|t| {
                window
                    .attrs()
                    .iter()
                    .map(|a| t.cells[a].clone())
                    .collect::<Vec<_>>()
            })
            .filter(|row| row.iter().any(|c| !c.is_placeholder()))
            .collect()
    }

    /// The tuples matching a window row on known values.
    fn matching(&self, window: &Window, row: &[(AttrId, Value)]) -> Vec<UrTuple> {
        self.tuples
            .iter()
            .filter(|t| {
                row.iter().all(|(a, v)| {
                    window.attrs().contains(a.index())
                        && t.cells[a.index()] == PlaceholderValue::Known(v.clone())
                })
            })
            .cloned()
            .collect()
    }

    /// **The ambiguity the paper is about.** Deleting a row seen through a
    /// window can be translated to base deletions in many ways: removing
    /// any nonempty subset of the matching universal tuples removes the
    /// row from the window. Returns that count, `2^k − 1` for `k` matches
    /// (0 means the row does not exist; 1 means the translation happens to
    /// be unique).
    pub fn delete_translation_count(&self, window: &Window, row: &[(AttrId, Value)]) -> u128 {
        let k = self.matching(window, row).len() as u32;
        if k == 0 {
            0
        } else {
            (1u128 << k) - 1
        }
    }

    /// Executes one (arbitrary) translation: deletes *all* matching
    /// universal tuples. Side effects on other windows are unavoidable and
    /// uncontrolled — which is the point of the comparison.
    pub fn delete_through_window(&mut self, window: &Window, row: &[(AttrId, Value)]) -> usize {
        let victims = self.matching(window, row);
        for v in &victims {
            self.tuples.remove(v);
        }
        victims.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::employee_schema;

    fn setup() -> (Schema, UniversalRelation) {
        let s = employee_schema();
        let ur = UniversalRelation::new(&s);
        (s, ur)
    }

    fn emp_window(s: &Schema) -> Window {
        Window::new(s, &["name", "age", "depname"]).unwrap()
    }

    fn emp_values(s: &Schema, n: &str, a: i64, d: &str) -> Vec<(AttrId, Value)> {
        vec![
            (s.attr_id("name").unwrap(), Value::str(n)),
            (s.attr_id("age").unwrap(), Value::Int(a)),
            (s.attr_id("depname").unwrap(), Value::str(d)),
        ]
    }

    #[test]
    fn insert_pads_with_placeholders() {
        let (s, mut ur) = setup();
        let w = emp_window(&s);
        ur.insert_through_window(&w, &emp_values(&s, "ann", 40, "sales"));
        assert_eq!(ur.len(), 1);
        // budget and location got placeholders.
        assert_eq!(ur.total_placeholders(), 2);
    }

    #[test]
    fn window_reads_back_known_cells() {
        let (s, mut ur) = setup();
        let w = emp_window(&s);
        ur.insert_through_window(&w, &emp_values(&s, "ann", 40, "sales"));
        ur.insert_through_window(&w, &emp_values(&s, "bob", 30, "research"));
        let rows = ur.window(&w);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.iter().all(|c| !c.is_placeholder())));
    }

    #[test]
    fn placeholders_prevent_window_collapse() {
        // Two inserts of the same employee row create two universal tuples
        // (their placeholders differ) — the "members of a set that might
        // not be members" problem.
        let (s, mut ur) = setup();
        let w = emp_window(&s);
        ur.insert_through_window(&w, &emp_values(&s, "ann", 40, "sales"));
        ur.insert_through_window(&w, &emp_values(&s, "ann", 40, "sales"));
        assert_eq!(ur.len(), 2, "duplicate facts stored twice");
        assert_eq!(ur.window(&w).len(), 1, "yet the window shows one row");
    }

    #[test]
    fn delete_translation_is_ambiguous() {
        let (s, mut ur) = setup();
        let w = emp_window(&s);
        let row = emp_values(&s, "ann", 40, "sales");
        ur.insert_through_window(&w, &row);
        ur.insert_through_window(&w, &row);
        ur.insert_through_window(&w, &emp_values(&s, "bob", 30, "research"));
        // Two universal tuples match ann: 2² − 1 = 3 candidate translations.
        assert_eq!(ur.delete_translation_count(&w, &row), 3);
        // toposem's unique translation corresponds to count 1; the UR model
        // only reaches it when exactly one tuple matches.
        assert_eq!(
            ur.delete_translation_count(&w, &emp_values(&s, "bob", 30, "research")),
            1
        );
        // Executing "delete all" removes both ann tuples.
        assert_eq!(ur.delete_through_window(&w, &row), 2);
        assert_eq!(ur.len(), 1);
    }

    #[test]
    fn missing_row_has_no_translation() {
        let (s, ur) = setup();
        let w = emp_window(&s);
        assert_eq!(
            ur.delete_translation_count(&w, &emp_values(&s, "ghost", 1, "sales")),
            0
        );
    }

    #[test]
    fn cross_window_side_effects() {
        // Deleting through the employee window destroys budget information
        // seen through the manager window — an uncontrolled side effect.
        let (s, mut ur) = setup();
        let mgr_window = Window::new(&s, &["name", "age", "depname", "budget"]).unwrap();
        let mut vals = emp_values(&s, "ann", 40, "sales");
        vals.push((s.attr_id("budget").unwrap(), Value::Int(100)));
        ur.insert_through_window(&mgr_window, &vals);
        assert_eq!(ur.window(&mgr_window).len(), 1);
        let w = emp_window(&s);
        ur.delete_through_window(&w, &emp_values(&s, "ann", 40, "sales"));
        assert_eq!(ur.window(&mgr_window).len(), 0, "budget fact silently lost");
    }
}
