//! # toposem-ur
//!
//! The Universal Relation baseline (Maier, *The Theory of Relational
//! Databases*) that §1 of Siebes & Kersten argues against:
//!
//! > "Under the Universal Relationship model the database is defined by a
//! > single relation. Consequently all actions on the database require a
//! > projection first. The prime weakness is its lack of rigidity [...]
//! > there is no proper separation between semantics at the intensional
//! > level and semantics at the extensional level. This leads to one
//! > approach where Maier introduces 'placeholders': members of a set that
//! > might not be members of that set after all (sic)."
//!
//! This crate implements exactly that: one relation over *all* attributes,
//! with **placeholders** (fresh variables) padding the attributes a user
//! never supplied, and **window functions** (projections onto attribute
//! subsets) as the only read primitive. The update-ambiguity metrics are
//! what the R8 benchmark compares against toposem's unique view-update
//! translation.

pub mod universal;

pub use universal::{PlaceholderValue, UniversalRelation, UrTuple, Window};
