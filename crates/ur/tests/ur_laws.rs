//! Property-based tests of the Universal Relation baseline: the ambiguity
//! formula, placeholder accounting, and window behaviour under arbitrary
//! insert sequences.

use proptest::prelude::*;
use toposem_core::employee_schema;
use toposem_extension::Value;
use toposem_ur::{UniversalRelation, Window};

const NAMES: [&str; 4] = ["ann", "bob", "carol", "dave"];
const DEPS: [&str; 3] = ["sales", "research", "admin"];

fn row(
    schema: &toposem_core::Schema,
    n: usize,
    a: i64,
    d: usize,
) -> Vec<(toposem_core::AttrId, Value)> {
    vec![
        (schema.attr_id("name").unwrap(), Value::str(NAMES[n])),
        (schema.attr_id("age").unwrap(), Value::Int(a)),
        (schema.attr_id("depname").unwrap(), Value::str(DEPS[d])),
    ]
}

proptest! {
    /// Inserting k copies of a row yields translation count 2^k − 1 and k
    /// universal tuples; other rows are unaffected.
    #[test]
    fn ambiguity_formula(k in 0usize..10, other in 0usize..5) {
        let schema = employee_schema();
        let mut ur = UniversalRelation::new(&schema);
        let w = Window::new(&schema, &["name", "age", "depname"]).unwrap();
        let target = row(&schema, 0, 40, 0);
        for _ in 0..k {
            ur.insert_through_window(&w, &target);
        }
        for i in 0..other {
            ur.insert_through_window(&w, &row(&schema, 1 + (i % 3), i as i64, i % 3));
        }
        let expect = if k == 0 { 0 } else { (1u128 << k) - 1 };
        prop_assert_eq!(ur.delete_translation_count(&w, &target), expect);
        prop_assert_eq!(ur.len(), k + other);
    }

    /// Placeholders: every insert through a 3-attribute window of the
    /// 5-attribute universe creates exactly 2 placeholders.
    #[test]
    fn placeholder_accounting(inserts in prop::collection::vec((0usize..4, 0i64..80, 0usize..3), 0..12)) {
        let schema = employee_schema();
        let mut ur = UniversalRelation::new(&schema);
        let w = Window::new(&schema, &["name", "age", "depname"]).unwrap();
        for (n, a, d) in &inserts {
            ur.insert_through_window(&w, &row(&schema, *n, *a, *d));
        }
        prop_assert_eq!(ur.total_placeholders(), inserts.len() * 2);
        // The window collapses duplicates to distinct known rows.
        let distinct: std::collections::BTreeSet<_> =
            inserts.iter().map(|(n, a, d)| (*n, *a, *d)).collect();
        prop_assert_eq!(ur.window(&w).len(), distinct.len());
    }

    /// delete_through_window removes exactly the matching tuples.
    #[test]
    fn delete_removes_all_matches(k in 1usize..6, keep in 0usize..5) {
        let schema = employee_schema();
        let mut ur = UniversalRelation::new(&schema);
        let w = Window::new(&schema, &["name", "age", "depname"]).unwrap();
        let target = row(&schema, 0, 30, 1);
        for _ in 0..k {
            ur.insert_through_window(&w, &target);
        }
        for i in 0..keep {
            ur.insert_through_window(&w, &row(&schema, 1 + (i % 3), i as i64, i % 3));
        }
        prop_assert_eq!(ur.delete_through_window(&w, &target), k);
        prop_assert_eq!(ur.len(), keep);
        prop_assert_eq!(ur.delete_translation_count(&w, &target), 0);
    }
}
