//! A stable logical encoding of database mutations, for redo logging.
//!
//! A write-ahead log must outlive the process that wrote it, so records
//! cannot carry `TypeId`/`AttrId` values — those are positional ids of
//! one in-memory `Schema`. A [`LogicalOp`] names the entity type and its
//! attributes *by name* and is re-resolved (and re-validated) against the
//! live schema at replay time. Replaying an insert goes through
//! [`Database::insert`], so eager containment propagations are
//! **re-derived**, never duplicated in the log; replaying a delete goes
//! through [`Database::delete`], recomputing the ISA cascade the same
//! way the original execution did.

use serde::{Deserialize, Serialize};
use toposem_core::TypeId;

use crate::database::Database;
use crate::instance::{Instance, InstanceError};
use crate::value::Value;

/// One logical mutation: an entity type and the declared instance's
/// named fields. Whether it is an insert or a delete is carried by the
/// log record kind, not duplicated here.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogicalOp {
    /// Entity type name.
    pub entity: String,
    /// `(attribute name, value)` pairs of the declared instance.
    pub fields: Vec<(String, Value)>,
}

/// Errors surfaced when replaying a [`LogicalOp`] against a database.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// The named entity type does not exist in the schema.
    UnknownEntity(String),
    /// The logged fields no longer form a valid instance (missing or
    /// foreign attribute, value outside its domain).
    Invalid(InstanceError),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::UnknownEntity(name) => write!(f, "unknown entity type `{name}`"),
            ReplayError::Invalid(e) => write!(f, "logged operation no longer valid: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl LogicalOp {
    /// Describes the instance `t` of type `e` logically, by name.
    pub fn describe(db: &Database, e: TypeId, t: &Instance) -> LogicalOp {
        let schema = db.schema();
        LogicalOp {
            entity: schema.type_name(e).to_owned(),
            fields: t
                .fields()
                .iter()
                .map(|(a, v)| (schema.attr_name(*a).to_owned(), v.clone()))
                .collect(),
        }
    }

    /// Resolves the named entity and fields against `db`'s live schema,
    /// re-running instance validation.
    pub fn resolve(&self, db: &Database) -> Result<(TypeId, Instance), ReplayError> {
        let e = db
            .schema()
            .type_id(&self.entity)
            .ok_or_else(|| ReplayError::UnknownEntity(self.entity.clone()))?;
        let fields: Vec<(&str, Value)> = self
            .fields
            .iter()
            .map(|(name, v)| (name.as_str(), v.clone()))
            .collect();
        let t =
            Instance::new(db.schema(), db.catalog(), e, &fields).map_err(ReplayError::Invalid)?;
        Ok((e, t))
    }

    /// Replays this op as an insert; containment propagations are
    /// re-derived by the database's policy. Returns whether the tuple was
    /// new.
    pub fn apply_insert(&self, db: &mut Database) -> Result<bool, ReplayError> {
        let (e, t) = self.resolve(db)?;
        Ok(db.insert(e, t))
    }

    /// Replays this op as a delete; the ISA cascade is recomputed.
    /// Returns the number of tuples removed.
    pub fn apply_delete(&self, db: &mut Database) -> Result<usize, ReplayError> {
        let (e, t) = self.resolve(db)?;
        Ok(db.delete(e, &t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::ContainmentPolicy;
    use crate::value::DomainCatalog;
    use toposem_core::{employee_schema, Intension};

    fn db() -> Database {
        Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        )
    }

    fn manager_op() -> LogicalOp {
        LogicalOp {
            entity: "manager".into(),
            fields: vec![
                ("name".into(), Value::str("ann")),
                ("age".into(), Value::Int(40)),
                ("depname".into(), Value::str("sales")),
                ("budget".into(), Value::Int(100)),
            ],
        }
    }

    #[test]
    fn describe_then_replay_rederives_propagations() {
        let mut original = db();
        let s = original.schema().clone();
        let manager = s.type_id("manager").unwrap();
        let t = Instance::new(
            &s,
            original.catalog(),
            manager,
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
                ("budget", Value::Int(100)),
            ],
        )
        .unwrap();
        original.insert(manager, t.clone());
        let op = LogicalOp::describe(&original, manager, &t);
        assert_eq!(op, manager_op());

        let mut replayed = db();
        assert!(op.apply_insert(&mut replayed).unwrap());
        // The eager propagations into employee and person were re-derived
        // from the single logical record.
        for e in s.type_ids() {
            assert_eq!(replayed.stored(e), original.stored(e));
        }
        // Replay is idempotent (not new the second time).
        assert!(!op.apply_insert(&mut replayed).unwrap());
    }

    #[test]
    fn delete_replay_recomputes_cascade() {
        let mut d = db();
        manager_op().apply_insert(&mut d).unwrap();
        let person_op = LogicalOp {
            entity: "person".into(),
            fields: vec![
                ("name".into(), Value::str("ann")),
                ("age".into(), Value::Int(40)),
            ],
        };
        assert_eq!(person_op.apply_delete(&mut d).unwrap(), 3);
        assert_eq!(d.total_stored(), 0);
    }

    #[test]
    fn replay_errors_are_typed() {
        let mut d = db();
        let bad_entity = LogicalOp {
            entity: "starship".into(),
            fields: vec![],
        };
        assert!(matches!(
            bad_entity.apply_insert(&mut d),
            Err(ReplayError::UnknownEntity(_))
        ));
        let bad_fields = LogicalOp {
            entity: "person".into(),
            fields: vec![("name".into(), Value::str("ann"))],
        };
        assert!(matches!(
            bad_fields.apply_insert(&mut d),
            Err(ReplayError::Invalid(InstanceError::MissingAttribute { .. }))
        ));
    }

    #[test]
    fn encoding_roundtrips_through_json() {
        let op = manager_op();
        let json = serde_json::to_string(&op).unwrap();
        let back: LogicalOp = serde_json::from_str(&json).unwrap();
        assert_eq!(back, op);
    }
}
