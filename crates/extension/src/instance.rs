//! Entity instances (§4.1).
//!
//! "An instance of entity type `e`, denoted `t_e`, is a member of `R_e`; in
//! the old terminology: `R_e` is a relation over `e` and `t_e` is a tuple in
//! `R_e`." An instance assigns a value to every attribute of its type —
//! the paper's "taking a single cut" through the attribute disks (F1).

use serde::{Deserialize, Serialize};
use toposem_core::{AttrId, Schema, TypeId};
use toposem_topology::BitSet;

use crate::value::{DomainCatalog, Value};

/// A tuple over an attribute set: `(AttrId, Value)` pairs sorted by
/// attribute id. The attribute set is implicit in the pairs, making
/// projection a simple filter.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Instance {
    fields: Vec<(AttrId, Value)>,
}

/// Errors raised when constructing or projecting instances.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InstanceError {
    /// The instance is missing an attribute its entity type requires.
    MissingAttribute { attr: String },
    /// The instance carries an attribute outside its entity type.
    ForeignAttribute { attr: String },
    /// A value lies outside the attribute's atomic value set.
    OutsideDomain { attr: String, value: String },
    /// Projection target is not a generalisation of the source type.
    NotAGeneralisation { from: String, to: String },
}

impl std::fmt::Display for InstanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstanceError::MissingAttribute { attr } => {
                write!(f, "missing attribute `{attr}`")
            }
            InstanceError::ForeignAttribute { attr } => {
                write!(f, "attribute `{attr}` does not belong to the entity type")
            }
            InstanceError::OutsideDomain { attr, value } => {
                write!(f, "value {value} outside the domain of attribute `{attr}`")
            }
            InstanceError::NotAGeneralisation { from, to } => {
                write!(
                    f,
                    "`{to}` is not a generalisation of `{from}`; cannot project"
                )
            }
        }
    }
}

impl std::error::Error for InstanceError {}

impl Instance {
    /// Builds an instance of `ty` from `(attribute name, value)` pairs,
    /// validating exact attribute coverage and domain membership.
    pub fn new(
        schema: &Schema,
        catalog: &DomainCatalog,
        ty: TypeId,
        fields: &[(&str, Value)],
    ) -> Result<Self, InstanceError> {
        let want = schema.attrs_of(ty);
        let mut resolved: Vec<(AttrId, Value)> = Vec::with_capacity(fields.len());
        for (name, value) in fields {
            let attr = schema
                .attr_id(name)
                .ok_or_else(|| InstanceError::ForeignAttribute {
                    attr: (*name).to_owned(),
                })?;
            if !want.contains(attr.index()) {
                return Err(InstanceError::ForeignAttribute {
                    attr: (*name).to_owned(),
                });
            }
            if !catalog.admits(schema, attr, value) {
                return Err(InstanceError::OutsideDomain {
                    attr: (*name).to_owned(),
                    value: value.to_string(),
                });
            }
            resolved.push((attr, value.clone()));
        }
        resolved.sort_by_key(|(a, _)| *a);
        resolved.dedup_by(|a, b| a.0 == b.0);
        if resolved.len() != want.card() {
            // Find the first missing attribute for the diagnostic.
            let have: Vec<usize> = resolved.iter().map(|(a, _)| a.index()).collect();
            let missing = want
                .iter()
                .find(|i| !have.contains(i))
                .map(|i| schema.attr_name(AttrId(i as u32)).to_owned())
                .unwrap_or_else(|| "<duplicate>".to_owned());
            return Err(InstanceError::MissingAttribute { attr: missing });
        }
        Ok(Instance { fields: resolved })
    }

    /// Builds an instance from already-validated `(AttrId, Value)` pairs.
    /// The caller guarantees coverage and domain membership (used by the
    /// generators and join machinery, which construct values from validated
    /// inputs).
    pub fn from_parts(mut fields: Vec<(AttrId, Value)>) -> Self {
        fields.sort_by_key(|(a, _)| *a);
        Instance { fields }
    }

    /// The attribute set this instance covers.
    pub fn attr_set(&self, universe: usize) -> BitSet {
        BitSet::from_indices(universe, self.fields.iter().map(|(a, _)| a.index()))
    }

    /// The value of attribute `a`, if present.
    pub fn get(&self, a: AttrId) -> Option<&Value> {
        self.fields
            .binary_search_by_key(&a, |(attr, _)| *attr)
            .ok()
            .map(|i| &self.fields[i].1)
    }

    /// All fields in attribute-id order.
    pub fn fields(&self) -> &[(AttrId, Value)] {
        &self.fields
    }

    /// Number of attributes.
    pub fn width(&self) -> usize {
        self.fields.len()
    }

    /// The projection `π` onto attribute set `target` (a subset of this
    /// instance's attributes): keeps exactly the listed attributes.
    pub fn project(&self, target: &BitSet) -> Instance {
        Instance {
            fields: self
                .fields
                .iter()
                .filter(|(a, _)| target.contains(a.index()))
                .cloned()
                .collect(),
        }
    }

    /// The projection `π^e_s` of an instance of type `s` onto the domain of
    /// a generalisation `e` (§4.1). Errors unless `A_e ⊆ A_s`.
    pub fn project_to_type(
        &self,
        schema: &Schema,
        from: TypeId,
        to: TypeId,
    ) -> Result<Instance, InstanceError> {
        if !schema.attrs_of(to).is_subset(schema.attrs_of(from)) {
            return Err(InstanceError::NotAGeneralisation {
                from: schema.type_name(from).to_owned(),
                to: schema.type_name(to).to_owned(),
            });
        }
        Ok(self.project(schema.attrs_of(to)))
    }

    /// Two instances are *joinable* when they agree on every shared
    /// attribute.
    pub fn compatible(&self, other: &Instance) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.fields.len() && j < other.fields.len() {
            match self.fields[i].0.cmp(&other.fields[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if self.fields[i].1 != other.fields[j].1 {
                        return false;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        true
    }

    /// Merges two compatible instances (the tuple-level natural join).
    /// Panics when incompatible — callers must check [`Self::compatible`].
    pub fn merge(&self, other: &Instance) -> Instance {
        assert!(self.compatible(other), "merging incompatible instances");
        let mut fields = self.fields.clone();
        for (a, v) in &other.fields {
            if self.get(*a).is_none() {
                fields.push((*a, v.clone()));
            }
        }
        fields.sort_by_key(|(a, _)| *a);
        Instance { fields }
    }

    /// Renders the instance with attribute names for diagnostics.
    pub fn display(&self, schema: &Schema) -> String {
        let parts: Vec<String> = self
            .fields
            .iter()
            .map(|(a, v)| format!("{}={}", schema.attr_name(*a), v))
            .collect();
        format!("({})", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::employee_schema;

    fn setup() -> (Schema, DomainCatalog) {
        (employee_schema(), DomainCatalog::employee_defaults())
    }

    fn emp(s: &Schema, c: &DomainCatalog, name: &str, age: i64, dep: &str) -> Instance {
        Instance::new(
            s,
            c,
            s.type_id("employee").unwrap(),
            &[
                ("name", Value::str(name)),
                ("age", Value::Int(age)),
                ("depname", Value::str(dep)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_coverage() {
        let (s, c) = setup();
        let e = s.type_id("employee").unwrap();
        let err = Instance::new(&s, &c, e, &[("name", Value::str("ann"))]).unwrap_err();
        assert!(matches!(err, InstanceError::MissingAttribute { .. }));
    }

    #[test]
    fn construction_validates_domains() {
        let (s, c) = setup();
        let e = s.type_id("employee").unwrap();
        let err = Instance::new(
            &s,
            &c,
            e,
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(2000)),
                ("depname", Value::str("sales")),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, InstanceError::OutsideDomain { .. }));
    }

    #[test]
    fn construction_rejects_foreign_attributes() {
        let (s, c) = setup();
        let person = s.type_id("person").unwrap();
        let err = Instance::new(
            &s,
            &c,
            person,
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(30)),
                ("budget", Value::Int(1)),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, InstanceError::ForeignAttribute { .. }));
    }

    #[test]
    fn projection_to_generalisation() {
        let (s, c) = setup();
        let t = emp(&s, &c, "ann", 30, "sales");
        let person = s.type_id("person").unwrap();
        let employee = s.type_id("employee").unwrap();
        let p = t.project_to_type(&s, employee, person).unwrap();
        assert_eq!(p.width(), 2);
        assert_eq!(p.get(s.attr_id("name").unwrap()), Some(&Value::str("ann")));
        assert_eq!(p.get(s.attr_id("depname").unwrap()), None);
    }

    #[test]
    fn projection_to_non_generalisation_fails() {
        let (s, c) = setup();
        let t = emp(&s, &c, "ann", 30, "sales");
        let employee = s.type_id("employee").unwrap();
        let manager = s.type_id("manager").unwrap();
        assert!(matches!(
            t.project_to_type(&s, employee, manager),
            Err(InstanceError::NotAGeneralisation { .. })
        ));
    }

    #[test]
    fn compatibility_and_merge() {
        let (s, c) = setup();
        let e = emp(&s, &c, "ann", 30, "sales");
        let dep = Instance::new(
            &s,
            &c,
            s.type_id("department").unwrap(),
            &[
                ("depname", Value::str("sales")),
                ("location", Value::str("amsterdam")),
            ],
        )
        .unwrap();
        assert!(e.compatible(&dep));
        let joined = e.merge(&dep);
        assert_eq!(joined.width(), 4); // name, age, depname, location

        let dep2 = Instance::new(
            &s,
            &c,
            s.type_id("department").unwrap(),
            &[
                ("depname", Value::str("research")),
                ("location", Value::str("utrecht")),
            ],
        )
        .unwrap();
        assert!(!e.compatible(&dep2));
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn merge_incompatible_panics() {
        let (s, c) = setup();
        let a = emp(&s, &c, "ann", 30, "sales");
        let b = emp(&s, &c, "ann", 31, "sales");
        let _ = a.merge(&b);
    }

    #[test]
    fn field_order_is_canonical() {
        let (s, c) = setup();
        let e = s.type_id("employee").unwrap();
        let t1 = Instance::new(
            &s,
            &c,
            e,
            &[
                ("depname", Value::str("sales")),
                ("name", Value::str("ann")),
                ("age", Value::Int(30)),
            ],
        )
        .unwrap();
        let t2 = emp(&s, &c, "ann", 30, "sales");
        assert_eq!(t1, t2);
    }
}
