//! The natural join `*` / `Π` and the Extension Axiom check (§4.2).
//!
//! "The axiom requires that the information contained in a relationship
//! does not exceed the information obtainable from its contributers. [...]
//!
//! ```text
//! Extension Axiom:  i : E_e(e) → Π_{c ∈ CO_e} E_c(c)   injective
//! ```
//!
//! The injectivity means that when we choose an entity for every entity
//! type in `CO_e`, this combination can form at most one entity of type
//! `e`. For example, an employee can be a manager in at most one way."

use std::collections::HashMap;

use toposem_core::TypeId;
use toposem_topology::BitSet;

use crate::database::Database;
use crate::instance::Instance;
use crate::relation::Relation;

/// The natural join `r * s`: all merges of compatible tuple pairs. A
/// hash-join on the shared attribute projection; degrades to the cross
/// product when the attribute sets are disjoint.
pub fn natural_join(universe: usize, r: &Relation, s: &Relation) -> Relation {
    // Determine the shared attribute set from the data; empty relations
    // join to the empty relation regardless.
    let (Some(rt), Some(st)) = (r.iter().next(), s.iter().next()) else {
        return Relation::new();
    };
    let shared = rt.attr_set(universe).intersection(&st.attr_set(universe));
    // Bucket the smaller relation by its shared projection.
    let (build, probe, build_is_r) = if r.len() <= s.len() {
        (r, s, true)
    } else {
        (s, r, false)
    };
    let mut buckets: HashMap<Instance, Vec<&Instance>> = HashMap::new();
    for t in build.iter() {
        buckets.entry(t.project(&shared)).or_default().push(t);
    }
    let mut out = Relation::new();
    for t in probe.iter() {
        if let Some(matches) = buckets.get(&t.project(&shared)) {
            for m in matches {
                let joined = if build_is_r { m.merge(t) } else { t.merge(m) };
                out.insert(joined);
            }
        }
    }
    out
}

/// The multi-join `Π` over a non-empty list of relations, folding
/// left-to-right (natural join is associative and commutative on sets of
/// tuples).
pub fn multi_join(universe: usize, relations: &[&Relation]) -> Relation {
    match relations {
        [] => Relation::new(),
        [first, rest @ ..] => {
            let mut acc = (*first).clone();
            for r in rest {
                acc = natural_join(universe, &acc, r);
            }
            acc
        }
    }
}

/// Outcome of checking the Extension Axiom for one compound entity type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExtensionAxiomReport {
    /// The compound type checked.
    pub entity_type: TypeId,
    /// The contributors used.
    pub contributors: Vec<TypeId>,
    /// Tuples of `E_e(e)` whose contributor projection escapes the join of
    /// contributor extensions (information not determined by contributors).
    pub undetermined: Vec<Instance>,
    /// Pairs of distinct tuples that map to the same contributor choice —
    /// injectivity failures ("a manager in more than one way").
    pub injectivity_failures: Vec<(Instance, Instance)>,
}

impl ExtensionAxiomReport {
    /// True when the axiom holds for this type on the current data.
    pub fn holds(&self) -> bool {
        self.undetermined.is_empty() && self.injectivity_failures.is_empty()
    }
}

/// Checks the Extension Axiom for `e`. Types without contributors hold
/// vacuously ("if CO_e is nonempty").
pub fn check_extension_axiom(db: &Database, e: TypeId) -> ExtensionAxiomReport {
    let schema = db.schema();
    let universe = schema.attr_count();
    let contributors = db.intension().contributors_of(e);
    let mut report = ExtensionAxiomReport {
        entity_type: e,
        contributors: contributors.clone(),
        undetermined: Vec::new(),
        injectivity_failures: Vec::new(),
    };
    if contributors.is_empty() {
        return report;
    }
    // The union of contributor attribute sets: the image coordinates of i.
    let mut contributed_attrs = BitSet::empty(universe);
    for &c in &contributors {
        contributed_attrs.union_with(schema.attrs_of(c));
    }
    // Join of contributor extensions.
    let extensions: Vec<Relation> = contributors.iter().map(|&c| db.extension(c)).collect();
    let refs: Vec<&Relation> = extensions.iter().collect();
    let join = multi_join(universe, &refs);

    // (1) Determination: every e-tuple's contributed part appears in the
    // join. (2) Injectivity: no two e-tuples share a contributed part.
    let mut seen: HashMap<Instance, Instance> = HashMap::new();
    for t in db.extension(e).iter() {
        let key = t.project(&contributed_attrs);
        if !join.contains(&key) {
            report.undetermined.push(t.clone());
        }
        if let Some(prev) = seen.get(&key) {
            report.injectivity_failures.push((prev.clone(), t.clone()));
        } else {
            seen.insert(key, t.clone());
        }
    }
    report
}

/// Checks the Extension Axiom for every entity type of the database.
pub fn check_all(db: &Database) -> Vec<ExtensionAxiomReport> {
    db.schema()
        .type_ids()
        .map(|e| check_extension_axiom(db, e))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::ContainmentPolicy;
    use crate::value::{DomainCatalog, Value};
    use toposem_core::{employee_schema, Intension};

    fn db() -> Database {
        Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        )
    }

    fn loaded_db() -> Database {
        let mut d = db();
        let s = d.schema().clone();
        for (name, age, dep) in [("ann", 40, "sales"), ("bob", 30, "research")] {
            d.insert_fields(
                s.type_id("employee").unwrap(),
                &[
                    ("name", Value::str(name)),
                    ("age", Value::Int(age)),
                    ("depname", Value::str(dep)),
                ],
            )
            .unwrap();
        }
        for (dep, loc) in [("sales", "amsterdam"), ("research", "utrecht")] {
            d.insert_fields(
                s.type_id("department").unwrap(),
                &[("depname", Value::str(dep)), ("location", Value::str(loc))],
            )
            .unwrap();
        }
        d
    }

    #[test]
    fn natural_join_matches_on_shared_attributes() {
        let d = loaded_db();
        let s = d.schema();
        let emp = d.extension(s.type_id("employee").unwrap());
        let dep = d.extension(s.type_id("department").unwrap());
        let j = natural_join(s.attr_count(), &emp, &dep);
        // ann joins sales, bob joins research: two tuples of width 4
        // (name, age, depname, location).
        assert_eq!(j.len(), 2);
        for t in j.iter() {
            assert_eq!(t.width(), 4);
        }
    }

    #[test]
    fn join_with_empty_is_empty() {
        let d = loaded_db();
        let s = d.schema();
        let emp = d.extension(s.type_id("employee").unwrap());
        let empty = Relation::new();
        assert!(natural_join(s.attr_count(), &emp, &empty).is_empty());
        assert!(natural_join(s.attr_count(), &empty, &emp).is_empty());
    }

    #[test]
    fn disjoint_attribute_sets_give_cross_product() {
        let d = loaded_db();
        let s = d.schema();
        let person = d.extension(s.type_id("person").unwrap());
        let dep = d.extension(s.type_id("department").unwrap());
        // person {name, age} and department {depname, location} are
        // disjoint: 2 × 2 = 4 combinations.
        let j = natural_join(s.attr_count(), &person, &dep);
        assert_eq!(j.len(), 4);
    }

    #[test]
    fn multi_join_folds() {
        let d = loaded_db();
        let s = d.schema();
        let emp = d.extension(s.type_id("employee").unwrap());
        let dep = d.extension(s.type_id("department").unwrap());
        let person = d.extension(s.type_id("person").unwrap());
        let j = multi_join(s.attr_count(), &[&person, &emp, &dep]);
        assert_eq!(j.len(), 2);
        assert!(multi_join(s.attr_count(), &[]).is_empty());
    }

    /// R5: a valid worksfor extension satisfies the axiom; an orphaned one
    /// is flagged as undetermined.
    #[test]
    fn extension_axiom_on_worksfor() {
        let mut d = loaded_db();
        let s = d.schema().clone();
        let worksfor = s.type_id("worksfor").unwrap();
        d.insert_fields(
            worksfor,
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
                ("location", Value::str("amsterdam")),
            ],
        )
        .unwrap();
        let report = check_extension_axiom(&d, worksfor);
        assert!(report.holds(), "{report:?}");

        // An orphan: carol's worksfor fact bulk-loaded without containment
        // maintenance. Her (employee, department) combination is absent
        // from the contributor join, so the fact is undetermined — the
        // Extension Axiom auditor must flag it. (Maintained inserts repair
        // the contributors automatically, which is why the bypass is
        // needed to exhibit a violation.)
        let carol = Instance::new(
            &s,
            d.catalog(),
            worksfor,
            &[
                ("name", Value::str("carol")),
                ("age", Value::Int(25)),
                ("depname", Value::str("admin")),
                ("location", Value::str("utrecht")),
            ],
        )
        .unwrap();
        d.insert_unchecked(worksfor, carol);
        let report = check_extension_axiom(&d, worksfor);
        assert!(!report.holds());
        assert_eq!(report.undetermined.len(), 1);
    }

    /// R5: "an employee can be a manager in at most one way" — two manager
    /// tuples differing only in budget violate injectivity.
    #[test]
    fn extension_axiom_injectivity_manager() {
        let mut d = loaded_db();
        let s = d.schema().clone();
        let manager = s.type_id("manager").unwrap();
        for budget in [1000, 2000] {
            d.insert_fields(
                manager,
                &[
                    ("name", Value::str("ann")),
                    ("age", Value::Int(40)),
                    ("depname", Value::str("sales")),
                    ("budget", Value::Int(budget)),
                ],
            )
            .unwrap();
        }
        let report = check_extension_axiom(&d, manager);
        assert!(!report.holds());
        assert_eq!(report.injectivity_failures.len(), 1);
    }

    #[test]
    fn primitive_types_hold_vacuously() {
        let d = loaded_db();
        let s = d.schema();
        let person = s.type_id("person").unwrap();
        let report = check_extension_axiom(&d, person);
        assert!(report.holds());
        assert!(report.contributors.is_empty());
    }

    #[test]
    fn check_all_covers_every_type() {
        let d = loaded_db();
        let reports = check_all(&d);
        assert_eq!(reports.len(), d.schema().type_count());
        assert!(reports.iter().all(|r| r.holds()));
    }
}
