//! Extension mappings (§4.2): `E_e : S_e → P(D_e)` and the restriction
//! maps `p(h,f,e)`, with the commuting-identities corollary as executable
//! checks.
//!
//! ```text
//! E_e(s) = π^e_s(R_s)            for s ∈ S_e
//! p(h,f,e) : E_e(h) → E_e(f)     for S_h ⊆ S_f ⊆ S_e   (an inclusion)
//!
//! Corollary: if S_h ⊆ S_f ⊆ S_e then
//!   (a) π^e_h = π^e_f ∘ π^f_h                    (projections compose)
//!   (b) p(f,e,e) ∘ p(h,f,e) = p(h,e,e)           (inclusions compose)
//!   (c) π^e_f ∘ p(h,f,f) = p(h,f,e) ∘ π^e_f      (naturality)
//! ```
//!
//! The mappings are exactly a *presheaf* of extensions over the
//! specialisation topology — made literal in the `toposem-sheaf` crate.

use toposem_core::TypeId;

use crate::database::Database;
use crate::relation::Relation;

/// A report from verifying the §4.2 corollary on concrete data.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CorollaryReport {
    /// Triples `(h, f, e)` checked.
    pub triples_checked: usize,
    /// Failures of identity (a): projection composition.
    pub failed_projection_composition: Vec<(TypeId, TypeId, TypeId)>,
    /// Failures of identity (b): inclusion composition (containment).
    pub failed_inclusion: Vec<(TypeId, TypeId, TypeId)>,
    /// Failures of identity (c): naturality of projection vs. restriction.
    pub failed_naturality: Vec<(TypeId, TypeId, TypeId)>,
}

impl CorollaryReport {
    /// True when all identities held on all checked triples.
    pub fn all_hold(&self) -> bool {
        self.failed_projection_composition.is_empty()
            && self.failed_inclusion.is_empty()
            && self.failed_naturality.is_empty()
    }
}

/// `E_e(s) = π^e_s(R_s)`: the extension of `s` seen at type `e`.
///
/// Defined for `s ∈ S_e`; panics otherwise (an intension-level error).
pub fn e_map(db: &Database, e: TypeId, s: TypeId) -> Relation {
    let schema = db.schema();
    assert!(
        db.intension().specialisation().is_specialisation(s, e),
        "E_{}({}) undefined: {} is not a specialisation",
        schema.type_name(e),
        schema.type_name(s),
        schema.type_name(s),
    );
    db.extension(s)
        .project_to_type(schema, s, e)
        .expect("specialisation implies projectability")
}

/// The restriction map `p(h,f,e)` exists as an inclusion
/// `E_e(h) ⊆ E_e(f)`; returns whether the inclusion actually holds on the
/// current data (it must, when containment is maintained).
pub fn p_inclusion_holds(db: &Database, h: TypeId, f: TypeId, e: TypeId) -> bool {
    e_map(db, e, h).is_subset(&e_map(db, e, f))
}

/// Verifies the three corollary identities on every chain
/// `S_h ⊆ S_f ⊆ S_e` present in the intension.
pub fn verify_corollary(db: &Database) -> CorollaryReport {
    let schema = db.schema();
    let spec = db.intension().specialisation();
    let mut report = CorollaryReport::default();
    for e in schema.type_ids() {
        for f in schema.type_ids() {
            if !spec.is_specialisation(f, e) {
                continue;
            }
            for h in schema.type_ids() {
                if !spec.is_specialisation(h, f) {
                    continue;
                }
                // Chain h ⟶ f ⟶ e (S_h ⊆ S_f ⊆ S_e).
                report.triples_checked += 1;

                // (a) π^e_h = π^e_f ∘ π^f_h on R_h.
                let rh = db.extension(h);
                let direct = rh.project_to_type(schema, h, e).expect("h specialises e");
                let via_f = rh
                    .project_to_type(schema, h, f)
                    .expect("h specialises f")
                    .project(schema.attrs_of(e));
                if direct != via_f {
                    report.failed_projection_composition.push((h, f, e));
                }

                // (b) E_e(h) ⊆ E_e(f) ⊆ E_e(e).
                if !(p_inclusion_holds(db, h, f, e) && p_inclusion_holds(db, f, e, e)) {
                    report.failed_inclusion.push((h, f, e));
                }

                // (c) Naturality: projecting E_f(h) down to e equals E_e(h).
                let lhs = e_map(db, f, h).project(schema.attrs_of(e));
                let rhs = e_map(db, e, h);
                if lhs != rhs {
                    report.failed_naturality.push((h, f, e));
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::ContainmentPolicy;
    use crate::value::{DomainCatalog, Value};
    use toposem_core::{employee_schema, Intension};

    fn sample_db(policy: ContainmentPolicy) -> Database {
        let mut d = Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            policy,
        );
        let s = d.schema().clone();
        let manager = s.type_id("manager").unwrap();
        let employee = s.type_id("employee").unwrap();
        let department = s.type_id("department").unwrap();
        d.insert_fields(
            manager,
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
                ("budget", Value::Int(1000)),
            ],
        )
        .unwrap();
        d.insert_fields(
            employee,
            &[
                ("name", Value::str("bob")),
                ("age", Value::Int(30)),
                ("depname", Value::str("research")),
            ],
        )
        .unwrap();
        d.insert_fields(
            department,
            &[
                ("depname", Value::str("sales")),
                ("location", Value::str("amsterdam")),
            ],
        )
        .unwrap();
        d
    }

    #[test]
    fn e_map_collects_information_from_specialisations() {
        let d = sample_db(ContainmentPolicy::OnDemand);
        let s = d.schema();
        let person = s.type_id("person").unwrap();
        let manager = s.type_id("manager").unwrap();
        // E_person(manager): ann seen as a person.
        let em = e_map(&d, person, manager);
        assert_eq!(em.len(), 1);
        // E_person(person) collects ann *and* bob even though no person
        // tuple was directly inserted.
        let ep = e_map(&d, person, person);
        assert_eq!(ep.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not a specialisation")]
    fn e_map_rejects_non_specialisations() {
        let d = sample_db(ContainmentPolicy::Eager);
        let s = d.schema();
        let person = s.type_id("person").unwrap();
        let department = s.type_id("department").unwrap();
        let _ = e_map(&d, person, department);
    }

    /// R4: the §4.2 corollary holds under both policies.
    #[test]
    fn corollary_holds_eager() {
        let report = verify_corollary(&sample_db(ContainmentPolicy::Eager));
        assert!(report.all_hold(), "{report:?}");
        assert!(report.triples_checked > 0);
    }

    #[test]
    fn corollary_holds_on_demand() {
        let report = verify_corollary(&sample_db(ContainmentPolicy::OnDemand));
        assert!(report.all_hold(), "{report:?}");
    }

    #[test]
    fn chains_counted_include_degenerate_ones() {
        // h = f = e chains are valid (S_e ⊆ S_e ⊆ S_e); with 5 types the
        // count must be at least 5.
        let report = verify_corollary(&sample_db(ContainmentPolicy::Eager));
        assert!(report.triples_checked >= 5);
    }
}
