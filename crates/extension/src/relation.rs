//! Relations: finite sets of instances, `R_e ∈ P(D_e)` (§4.1).

use std::collections::{BTreeSet, HashSet};

use serde::{Deserialize, Serialize};
use toposem_core::{AttrId, Schema, TypeId};
use toposem_topology::BitSet;

use crate::instance::{Instance, InstanceError};

/// The set of instances of one entity type. A `BTreeSet` keeps iteration
/// deterministic (instances order lexicographically by attribute id and
/// value), which the figure regenerators and tests rely on.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Relation {
    tuples: BTreeSet<Instance>,
}

impl Relation {
    /// The empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a tuple; returns whether it was new.
    pub fn insert(&mut self, t: Instance) -> bool {
        self.tuples.insert(t)
    }

    /// Removes a tuple; returns whether it was present.
    pub fn remove(&mut self, t: &Instance) -> bool {
        self.tuples.remove(t)
    }

    /// Membership test.
    pub fn contains(&self, t: &Instance) -> bool {
        self.tuples.contains(t)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates tuples in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Instance> {
        self.tuples.iter()
    }

    /// The projection `π^e_s(R_s)` of this whole relation onto the
    /// attribute set of a generalisation (§4.1). Duplicate projections
    /// collapse — projection is a set mapping into `P(D_e)`.
    pub fn project_to_type(
        &self,
        schema: &Schema,
        from: TypeId,
        to: TypeId,
    ) -> Result<Relation, InstanceError> {
        // Validate the direction once, then project tuple-wise.
        if !schema.attrs_of(to).is_subset(schema.attrs_of(from)) {
            return Err(InstanceError::NotAGeneralisation {
                from: schema.type_name(from).to_owned(),
                to: schema.type_name(to).to_owned(),
            });
        }
        let target = schema.attrs_of(to);
        Ok(Relation {
            tuples: self.tuples.iter().map(|t| t.project(target)).collect(),
        })
    }

    /// Projects onto an arbitrary attribute set.
    pub fn project(&self, target: &BitSet) -> Relation {
        Relation {
            tuples: self.tuples.iter().map(|t| t.project(target)).collect(),
        }
    }

    /// Set inclusion `self ⊆ other`.
    pub fn is_subset(&self, other: &Relation) -> bool {
        self.tuples.is_subset(&other.tuples)
    }

    /// Set union (used by extension mappings to collect information stored
    /// in specialisations).
    pub fn union_with(&mut self, other: &Relation) {
        for t in &other.tuples {
            self.tuples.insert(t.clone());
        }
    }

    /// Retains only tuples matching the predicate (selection).
    pub fn retain<F: FnMut(&Instance) -> bool>(&mut self, mut f: F) {
        self.tuples.retain(|t| f(t));
    }

    /// Selection as a new relation.
    pub fn select<F: Fn(&Instance) -> bool>(&self, f: F) -> Relation {
        Relation {
            tuples: self.tuples.iter().filter(|t| f(t)).cloned().collect(),
        }
    }

    /// Splits the relation into *morsels* — contiguous runs of at most
    /// `size` tuples in canonical iteration order. The concatenation of
    /// all morsels is exactly [`Relation::iter`]; parallel executors hand
    /// morsels to worker threads and merge per-morsel results back in
    /// morsel order, so data-parallel evaluation stays deterministic.
    ///
    /// `size` is clamped to at least 1.
    pub fn morsels(&self, size: usize) -> impl Iterator<Item = Vec<&Instance>> {
        let size = size.max(1);
        let mut iter = self.tuples.iter();
        std::iter::from_fn(move || {
            let part: Vec<&Instance> = iter.by_ref().take(size).collect();
            (!part.is_empty()).then_some(part)
        })
    }

    /// Number of distinct values of `attr` across the relation (tuples
    /// lacking the attribute don't contribute). The statistics layer uses
    /// this to estimate access-path selectivity.
    pub fn distinct_count(&self, attr: AttrId) -> usize {
        self.tuples
            .iter()
            .filter_map(|t| t.get(attr))
            .collect::<HashSet<_>>()
            .len()
    }
}

impl FromIterator<Instance> for Relation {
    fn from_iter<I: IntoIterator<Item = Instance>>(iter: I) -> Self {
        Relation {
            tuples: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DomainCatalog, Value};
    use toposem_core::employee_schema;

    fn emp(s: &Schema, c: &DomainCatalog, name: &str, age: i64, dep: &str) -> Instance {
        Instance::new(
            s,
            c,
            s.type_id("employee").unwrap(),
            &[
                ("name", Value::str(name)),
                ("age", Value::Int(age)),
                ("depname", Value::str(dep)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn insert_remove_contains() {
        let s = employee_schema();
        let c = DomainCatalog::employee_defaults();
        let mut r = Relation::new();
        let t = emp(&s, &c, "ann", 30, "sales");
        assert!(r.insert(t.clone()));
        assert!(!r.insert(t.clone()));
        assert!(r.contains(&t));
        assert_eq!(r.len(), 1);
        assert!(r.remove(&t));
        assert!(r.is_empty());
    }

    #[test]
    fn projection_collapses_duplicates() {
        let s = employee_schema();
        let c = DomainCatalog::employee_defaults();
        let employee = s.type_id("employee").unwrap();
        let person = s.type_id("person").unwrap();
        let mut r = Relation::new();
        // Same (name, age), different departments.
        r.insert(emp(&s, &c, "ann", 30, "sales"));
        r.insert(emp(&s, &c, "ann", 30, "research"));
        assert_eq!(r.len(), 2);
        let p = r.project_to_type(&s, employee, person).unwrap();
        assert_eq!(p.len(), 1, "projection is a set mapping");
    }

    #[test]
    fn projection_wrong_direction_errors() {
        let s = employee_schema();
        let r = Relation::new();
        let person = s.type_id("person").unwrap();
        let employee = s.type_id("employee").unwrap();
        assert!(r.project_to_type(&s, person, employee).is_err());
    }

    #[test]
    fn subset_and_union() {
        let s = employee_schema();
        let c = DomainCatalog::employee_defaults();
        let t1 = emp(&s, &c, "ann", 30, "sales");
        let t2 = emp(&s, &c, "bob", 40, "admin");
        let mut a = Relation::new();
        a.insert(t1.clone());
        let mut b = Relation::new();
        b.insert(t1);
        b.insert(t2);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        a.union_with(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn morsels_partition_canonical_order() {
        let s = employee_schema();
        let c = DomainCatalog::employee_defaults();
        let r: Relation = (0..10)
            .map(|i| emp(&s, &c, &format!("w{i}"), 20 + i, "sales"))
            .collect();
        // Concatenated morsels equal canonical iteration, for any size.
        for size in [1, 3, 4, 10, 99] {
            let glued: Vec<&Instance> = r.morsels(size).flatten().collect();
            let canonical: Vec<&Instance> = r.iter().collect();
            assert_eq!(glued, canonical, "morsel size {size}");
            for m in r.morsels(size) {
                assert!(!m.is_empty() && m.len() <= size);
            }
        }
        // A zero size is clamped, not a panic or an infinite loop.
        assert_eq!(r.morsels(0).count(), 10);
        assert_eq!(Relation::new().morsels(4).count(), 0);
    }

    #[test]
    fn selection() {
        let s = employee_schema();
        let c = DomainCatalog::employee_defaults();
        let age = s.attr_id("age").unwrap();
        let r: Relation = [
            emp(&s, &c, "ann", 30, "sales"),
            emp(&s, &c, "bob", 40, "admin"),
        ]
        .into_iter()
        .collect();
        let young = r.select(|t| matches!(t.get(age), Some(Value::Int(a)) if *a < 35));
        assert_eq!(young.len(), 1);
    }
}
