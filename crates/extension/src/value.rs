//! Atomic values and attribute domains (§4.1).
//!
//! "An attribute value is just a member of a finite set." Each attribute
//! draws from a named atomic value set `d_a`; the domain of an entity type
//! is the product `D_e = Π_{a ∈ A_e} d_a`. Product domains are never
//! materialised — membership is checked attribute-wise.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use toposem_core::{AttrId, Schema};

/// An atomic value.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// An integer literal.
    Int(i64),
    /// A string literal.
    Str(String),
    /// A boolean literal.
    Bool(bool),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// The specification of an atomic value set.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomainSpec {
    /// Integers within an inclusive range.
    IntRange(i64, i64),
    /// An explicit finite enumeration of strings.
    Enum(Vec<String>),
    /// Any string (modelled as a large finite set; the paper's finiteness
    /// assumption is a convenience, not a load-bearing restriction).
    AnyStr,
    /// Any integer.
    AnyInt,
    /// Booleans.
    Boolean,
}

impl DomainSpec {
    /// Is `v` a member of this atomic value set?
    pub fn contains(&self, v: &Value) -> bool {
        match (self, v) {
            (DomainSpec::IntRange(lo, hi), Value::Int(i)) => lo <= i && i <= hi,
            (DomainSpec::Enum(options), Value::Str(s)) => options.iter().any(|o| o == s),
            (DomainSpec::AnyStr, Value::Str(_)) => true,
            (DomainSpec::AnyInt, Value::Int(_)) => true,
            (DomainSpec::Boolean, Value::Bool(_)) => true,
            _ => false,
        }
    }

    /// Cardinality when finite, `None` when unbounded-for-our-purposes.
    pub fn cardinality(&self) -> Option<usize> {
        match self {
            DomainSpec::IntRange(lo, hi) => Some((hi - lo + 1).max(0) as usize),
            DomainSpec::Enum(options) => Some(options.len()),
            DomainSpec::Boolean => Some(2),
            DomainSpec::AnyStr | DomainSpec::AnyInt => None,
        }
    }

    /// Enumerates a finite domain's members (for exhaustive tests and the
    /// workload generator). `None` for unbounded domains.
    pub fn enumerate(&self) -> Option<Vec<Value>> {
        match self {
            DomainSpec::IntRange(lo, hi) => Some((*lo..=*hi).map(Value::Int).collect()),
            DomainSpec::Enum(options) => {
                Some(options.iter().map(|s| Value::Str(s.clone())).collect())
            }
            DomainSpec::Boolean => Some(vec![Value::Bool(false), Value::Bool(true)]),
            DomainSpec::AnyStr | DomainSpec::AnyInt => None,
        }
    }
}

/// Binds every attribute of a schema to a [`DomainSpec`], by the *domain
/// name* declared in the schema (Attribute Axiom: one value set per
/// attribute; attributes sharing a domain name share the value set).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DomainCatalog {
    by_domain_name: HashMap<String, DomainSpec>,
}

impl DomainCatalog {
    /// Empty catalog; unbound domains default to [`DomainSpec::AnyStr`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds a schema domain name to a value-set specification.
    pub fn bind(&mut self, domain_name: &str, spec: DomainSpec) -> &mut Self {
        self.by_domain_name.insert(domain_name.to_owned(), spec);
        self
    }

    /// The value set `d_a` for attribute `a` of `schema`.
    pub fn domain_of(&self, schema: &Schema, a: AttrId) -> &DomainSpec {
        static ANY: DomainSpec = DomainSpec::AnyStr;
        self.by_domain_name
            .get(&schema.attr(a).domain)
            .unwrap_or(&ANY)
    }

    /// Is `v` admissible for attribute `a`?
    pub fn admits(&self, schema: &Schema, a: AttrId, v: &Value) -> bool {
        self.domain_of(schema, a).contains(v)
    }

    /// The catalog for the paper's employee database, with small finite
    /// domains suitable for exhaustive experiments.
    pub fn employee_defaults() -> Self {
        let mut c = Self::new();
        c.bind("person-names", DomainSpec::AnyStr)
            .bind("ages", DomainSpec::IntRange(0, 150))
            .bind(
                "department-names",
                DomainSpec::Enum(vec!["sales".into(), "research".into(), "admin".into()]),
            )
            .bind("amounts", DomainSpec::AnyInt)
            .bind(
                "locations",
                DomainSpec::Enum(vec!["amsterdam".into(), "utrecht".into()]),
            );
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::employee_schema;

    #[test]
    fn domain_membership() {
        let ages = DomainSpec::IntRange(0, 150);
        assert!(ages.contains(&Value::Int(42)));
        assert!(!ages.contains(&Value::Int(200)));
        assert!(!ages.contains(&Value::str("forty")));
        let locs = DomainSpec::Enum(vec!["a".into(), "b".into()]);
        assert!(locs.contains(&Value::str("a")));
        assert!(!locs.contains(&Value::str("c")));
        assert!(DomainSpec::Boolean.contains(&Value::Bool(true)));
        assert!(!DomainSpec::Boolean.contains(&Value::Int(1)));
    }

    #[test]
    fn cardinality_and_enumeration() {
        assert_eq!(DomainSpec::IntRange(1, 3).cardinality(), Some(3));
        assert_eq!(
            DomainSpec::IntRange(1, 3).enumerate().unwrap(),
            vec![Value::Int(1), Value::Int(2), Value::Int(3)]
        );
        assert_eq!(DomainSpec::AnyStr.cardinality(), None);
        assert_eq!(DomainSpec::Boolean.enumerate().unwrap().len(), 2);
        // Degenerate range.
        assert_eq!(DomainSpec::IntRange(3, 1).cardinality(), Some(0));
    }

    #[test]
    fn catalog_resolves_via_schema_domain_names() {
        let s = employee_schema();
        let c = DomainCatalog::employee_defaults();
        let age = s.attr_id("age").unwrap();
        let depname = s.attr_id("depname").unwrap();
        assert!(c.admits(&s, age, &Value::Int(30)));
        assert!(!c.admits(&s, age, &Value::Int(151)));
        assert!(c.admits(&s, depname, &Value::str("sales")));
        assert!(!c.admits(&s, depname, &Value::str("piracy")));
    }

    #[test]
    fn unbound_domain_defaults_to_any_string() {
        let s = employee_schema();
        let c = DomainCatalog::new();
        let name = s.attr_id("name").unwrap();
        assert!(c.admits(&s, name, &Value::str("anything")));
        assert!(!c.admits(&s, name, &Value::Int(7)));
    }
}
