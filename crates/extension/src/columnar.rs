//! Columnar morsels: a column-major view over a morsel of instances.
//!
//! The executor's hot loops (filter, project, hash-join build/probe) are
//! row-at-a-time over [`Instance`]s — every predicate re-dispatches on
//! the [`Value`] tag per tuple. A [`ColumnarMorsel`] decodes one
//! attribute of a morsel into a typed column vector *once*, so kernels
//! run branch-light loops over `&[i64]` (or `&[&str]`, `&[bool]`)
//! producing [`SelectionMask`] bitmaps, and conjunctions become bitmap
//! ANDs.
//!
//! Correctness contract: columnar evaluation must be **bit-identical**
//! to row-at-a-time evaluation. Two escape hatches keep that cheap to
//! guarantee:
//!
//! - [`ColumnarMorsel::column`] returns `None` whenever any row of the
//!   morsel lacks the attribute (possible for generalisation-typed
//!   inputs) — the caller falls back to the row path for the whole
//!   morsel, which is always correct.
//! - [`ColumnarMorsel::homogeneous`] reports whether every row carries
//!   exactly the attribute-id sequence of the first row; column-sliced
//!   projection is gated on it so a mixed-width morsel cannot silently
//!   produce a different projection than [`Instance::project`].
//!
//! Columns are decoded lazily and cached per morsel, so a selective
//! single-attribute filter never pays for decoding attributes the query
//! does not touch.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use toposem_core::AttrId;

use crate::instance::Instance;
use crate::value::Value;

/// One decoded attribute of a morsel, specialised by value tag. Mixed
/// columns (rare: an attribute whose values span variants) fall back to
/// tag-dispatching `&Value` comparisons but still amortise the field
/// lookup.
#[derive(Clone, Debug, PartialEq)]
pub enum Column<'a> {
    /// All values are `Value::Int`.
    Int(Vec<i64>),
    /// All values are `Value::Str` (borrowed, no copies).
    Str(Vec<&'a str>),
    /// All values are `Value::Bool`.
    Bool(Vec<bool>),
    /// Values span variants; kept as tagged references.
    Mixed(Vec<&'a Value>),
}

impl Column<'_> {
    /// Number of values (= morsel rows).
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Mixed(v) => v.len(),
        }
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A selection bitmap over the rows of one morsel: bit `i` set means row
/// `i` survives. Stored as packed `u64` words so conjunction is a
/// word-wise AND and iteration walks set bits with `trailing_zeros`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SelectionMask {
    words: Vec<u64>,
    len: usize,
}

impl SelectionMask {
    /// A mask of `len` rows, all selected.
    pub fn all(len: usize) -> Self {
        let mut words = vec![u64::MAX; len.div_ceil(64)];
        if let Some(last) = words.last_mut() {
            let tail = len % 64;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        SelectionMask { words, len }
    }

    /// A mask of `len` rows, none selected.
    pub fn none(len: usize) -> Self {
        SelectionMask {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Builds a mask by evaluating `f` per row, packing a word at a
    /// time. The closure result feeds straight into a shift-or, so a
    /// branch-free `f` yields a branch-free fill loop.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut words = Vec::with_capacity(len.div_ceil(64));
        let mut i = 0;
        while i < len {
            let n = (len - i).min(64);
            let mut w = 0u64;
            for b in 0..n {
                w |= u64::from(f(i + b)) << b;
            }
            words.push(w);
            i += n;
        }
        SelectionMask { words, len }
    }

    /// [`Self::from_fn`] for closures that can fail: packs a word at a
    /// time until `f` returns `None`, in which case the whole mask is
    /// abandoned. Lets streaming kernels evaluate while verifying a
    /// column's shape in the same sweep.
    pub fn try_from_fn(len: usize, mut f: impl FnMut(usize) -> Option<bool>) -> Option<Self> {
        let mut words = Vec::with_capacity(len.div_ceil(64));
        let mut i = 0;
        while i < len {
            let n = (len - i).min(64);
            let mut w = 0u64;
            for b in 0..n {
                w |= u64::from(f(i + b)?) << b;
            }
            words.push(w);
            i += n;
        }
        Some(SelectionMask { words, len })
    }

    /// Number of rows the mask covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for the zero-row mask.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Selects row `i`.
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Whether row `i` is selected.
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i >> 6] & (1u64 << (i & 63)) != 0
    }

    /// Conjunction: keeps only rows selected in both masks.
    pub fn and_with(&mut self, other: &SelectionMask) {
        debug_assert_eq!(self.len, other.len);
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// Number of selected rows.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when at least one row is selected.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Iterates the indices of selected rows in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some((wi << 6) | b)
            })
        })
    }
}

/// A column-major view over one morsel (`Vec<&Instance>` as produced by
/// [`crate::Relation::morsels`]). Columns decode lazily on first touch
/// and are cached for the morsel's lifetime; a `None` cache entry
/// records that the attribute cannot be decoded (some row lacks it), so
/// the fallback decision is also paid once.
pub struct ColumnarMorsel<'a> {
    rows: &'a [&'a Instance],
    cache: RefCell<HashMap<AttrId, Option<Rc<Column<'a>>>>>,
    homogeneous: Cell<Option<bool>>,
}

impl<'a> ColumnarMorsel<'a> {
    /// Wraps a morsel. No decoding happens until a column is requested.
    pub fn new(rows: &'a [&'a Instance]) -> Self {
        ColumnarMorsel {
            rows,
            cache: RefCell::new(HashMap::new()),
            homogeneous: Cell::new(None),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True for the zero-row morsel.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The underlying rows, in morsel order.
    pub fn rows(&self) -> &'a [&'a Instance] {
        self.rows
    }

    /// The decoded column for `attr`, or `None` when any row lacks the
    /// attribute (the caller must fall back to row-at-a-time evaluation
    /// for this morsel). Decoded columns are cached.
    pub fn column(&self, attr: AttrId) -> Option<Rc<Column<'a>>> {
        if let Some(cached) = self.cache.borrow().get(&attr) {
            return cached.clone();
        }
        let col = self.decode(attr).map(Rc::new);
        self.cache.borrow_mut().insert(attr, col.clone());
        col
    }

    /// The decoded columns for `attrs`, in request order (`None`
    /// entries where some row lacks the attribute). Each distinct
    /// attribute decodes as its own tight typed sweep — per-column
    /// loops vectorise and prefetch better than one fused multi-column
    /// state machine — and lands in the same cache [`Self::column`]
    /// serves, so duplicates (within the request or across calls) are
    /// decoded once.
    pub fn columns(&self, attrs: &[AttrId]) -> Vec<Option<Rc<Column<'a>>>> {
        attrs.iter().map(|a| self.column(*a)).collect()
    }

    /// True when every row carries exactly the attribute-id sequence of
    /// the first row (vacuously true when empty). Column-sliced
    /// projection requires this; mixed-shape morsels take the row path.
    pub fn homogeneous(&self) -> bool {
        if let Some(h) = self.homogeneous.get() {
            return h;
        }
        let h = match self.rows.split_first() {
            None => true,
            Some((first, rest)) => {
                let shape: Vec<AttrId> = first.fields().iter().map(|(a, _)| *a).collect();
                rest.iter().all(|r| {
                    r.fields().len() == shape.len()
                        && r.fields().iter().zip(&shape).all(|((a, _), s)| a == s)
                })
            }
        };
        self.homogeneous.set(Some(h));
        h
    }

    fn decode(&self, attr: AttrId) -> Option<Column<'a>> {
        if self.rows.is_empty() {
            return Some(Column::Int(Vec::new()));
        }
        // Same-shaped rows keep each attribute at one positional index;
        // probe the first row's position and verify per row, falling
        // back to a full lookup only when shapes differ.
        let pos = self.rows[0].fields().iter().position(|(a, _)| *a == attr);
        let fetch = |row: &'a Instance| -> Option<&'a Value> {
            match pos.and_then(|p| row.fields().get(p)) {
                Some((a, v)) if *a == attr => Some(v),
                _ => row.get(attr),
            }
        };
        // One pass straight into the typed vector of the first row's
        // variant; a mid-stream variant change (rare) restarts into the
        // mixed representation.
        macro_rules! typed {
            ($variant:ident, $conv:expr) => {{
                let mut vals = Vec::with_capacity(self.rows.len());
                for row in self.rows {
                    match fetch(row)? {
                        Value::$variant(v) => vals.push($conv(v)),
                        _ => return self.decode_mixed(&fetch),
                    }
                }
                Some(Column::$variant(vals))
            }};
        }
        match fetch(self.rows[0])? {
            Value::Int(_) => typed!(Int, |v: &i64| *v),
            Value::Str(_) => typed!(Str, |v: &'a String| v.as_str()),
            Value::Bool(_) => typed!(Bool, |v: &bool| *v),
        }
    }

    fn decode_mixed(
        &self,
        fetch: &impl Fn(&'a Instance) -> Option<&'a Value>,
    ) -> Option<Column<'a>> {
        let mut vals: Vec<&'a Value> = Vec::with_capacity(self.rows.len());
        for row in self.rows {
            vals.push(fetch(row)?);
        }
        Some(Column::Mixed(vals))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DomainCatalog;
    use toposem_core::{employee_schema, Schema};

    fn emp(s: &Schema, c: &DomainCatalog, name: &str, age: i64, dep: &str) -> Instance {
        Instance::new(
            s,
            c,
            s.type_id("employee").unwrap(),
            &[
                ("name", Value::str(name)),
                ("age", Value::Int(age)),
                ("depname", Value::str(dep)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn mask_all_none_and_tail_bits() {
        for len in [0, 1, 63, 64, 65, 130] {
            let all = SelectionMask::all(len);
            assert_eq!(all.count_ones(), len, "len {len}");
            assert_eq!(all.any(), len > 0);
            assert_eq!(
                all.iter_ones().collect::<Vec<_>>(),
                (0..len).collect::<Vec<_>>()
            );
            let none = SelectionMask::none(len);
            assert_eq!(none.count_ones(), 0);
            assert!(!none.any());
            assert_eq!(none.iter_ones().count(), 0);
        }
    }

    #[test]
    fn mask_from_fn_set_get_and_conjunction() {
        let len = 130;
        let evens = SelectionMask::from_fn(len, |i| i % 2 == 0);
        let thirds = SelectionMask::from_fn(len, |i| i % 3 == 0);
        assert_eq!(evens.count_ones(), 65);
        assert!(evens.get(0) && !evens.get(1) && evens.get(128));
        let mut both = evens.clone();
        both.and_with(&thirds);
        let expect: Vec<usize> = (0..len).filter(|i| i % 6 == 0).collect();
        assert_eq!(both.iter_ones().collect::<Vec<_>>(), expect);
        assert_eq!(both.count_ones(), expect.len());
        let mut m = SelectionMask::none(len);
        m.set(7);
        m.set(64);
        assert!(m.get(7) && m.get(64) && !m.get(8));
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), vec![7, 64]);
    }

    #[test]
    fn column_decode_specialises_by_tag() {
        let s = employee_schema();
        let c = DomainCatalog::employee_defaults();
        let rows_owned: Vec<Instance> = (0..5)
            .map(|i| emp(&s, &c, &format!("w{i}"), 20 + i, "sales"))
            .collect();
        let rows: Vec<&Instance> = rows_owned.iter().collect();
        let m = ColumnarMorsel::new(&rows);
        let age = s.attr_id("age").unwrap();
        let name = s.attr_id("name").unwrap();
        match &*m.column(age).unwrap() {
            Column::Int(v) => assert_eq!(v, &vec![20, 21, 22, 23, 24]),
            other => panic!("expected Int column, got {other:?}"),
        }
        match &*m.column(name).unwrap() {
            Column::Str(v) => assert_eq!(v.len(), 5),
            other => panic!("expected Str column, got {other:?}"),
        }
        // Cached: second request returns the same Rc.
        let a = m.column(age).unwrap();
        let b = m.column(age).unwrap();
        assert!(Rc::ptr_eq(&a, &b));
        assert!(m.homogeneous());
    }

    #[test]
    fn missing_attribute_yields_none_and_is_cached() {
        let s = employee_schema();
        let c = DomainCatalog::employee_defaults();
        let e = emp(&s, &c, "ann", 30, "sales");
        let person = s.type_id("person").unwrap();
        let employee = s.type_id("employee").unwrap();
        let p = e.project_to_type(&s, employee, person).unwrap();
        let rows: Vec<&Instance> = vec![&e, &p];
        let m = ColumnarMorsel::new(&rows);
        let dep = s.attr_id("depname").unwrap();
        assert!(m.column(dep).is_none(), "p lacks depname");
        assert!(m.column(dep).is_none(), "cached negative");
        // The attribute both rows share decodes fine despite the
        // heterogeneous shapes.
        let name = s.attr_id("name").unwrap();
        assert!(m.column(name).is_some());
        assert!(!m.homogeneous());
    }

    #[test]
    fn empty_and_single_row_morsels() {
        let s = employee_schema();
        let c = DomainCatalog::employee_defaults();
        let rows: Vec<&Instance> = Vec::new();
        let m = ColumnarMorsel::new(&rows);
        assert!(m.is_empty());
        assert!(m.homogeneous());
        let col = m.column(s.attr_id("age").unwrap()).unwrap();
        assert!(col.is_empty());

        let one = emp(&s, &c, "solo", 33, "sales");
        let rows: Vec<&Instance> = vec![&one];
        let m = ColumnarMorsel::new(&rows);
        assert_eq!(m.len(), 1);
        assert!(m.homogeneous());
        match &*m.column(s.attr_id("age").unwrap()).unwrap() {
            Column::Int(v) => assert_eq!(v, &vec![33]),
            other => panic!("expected Int column, got {other:?}"),
        }
    }
}
