//! The database extension: one relation per entity type, kept consistent
//! with the intension via the containment condition (§4.1):
//!
//! ```text
//! e, s ∈ E such that s ∈ S_e :  π^e_s(R_s) ⊆ R_e
//! ```
//!
//! Two maintenance policies are supported (the ablation DESIGN.md calls
//! out): **eager**, where inserting an instance of `s` immediately inserts
//! its projections into every generalisation, so that `R_e` is always
//! materialised; and **on-demand**, where only the declared relation is
//! written and the full extension of `e` is *collected* at read time as
//! `∪_{s ∈ S_e} π^e_s(R_s)` — the paper's "information about entity type
//! instances might be 'stored' within its specialisations only".

use serde::{Deserialize, Serialize};
use toposem_core::{Intension, Schema, TypeId};

use crate::instance::{Instance, InstanceError};
use crate::relation::Relation;
use crate::value::DomainCatalog;

/// How the containment condition is maintained.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContainmentPolicy {
    /// Insertions propagate projections to all generalisations eagerly.
    Eager,
    /// Relations store only direct insertions; extensions are collected
    /// from specialisations at read time.
    OnDemand,
}

/// A database: an intension plus one [`Relation`] per entity type.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Database {
    intension: Intension,
    catalog: DomainCatalog,
    relations: Vec<Relation>,
    policy: ContainmentPolicy,
}

/// A containment violation found by [`Database::verify_containment`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContainmentViolation {
    /// The specialised type whose projection escapes.
    pub specialisation: TypeId,
    /// The general type whose relation lacks the projection.
    pub generalisation: TypeId,
    /// One offending projected tuple.
    pub witness: Instance,
}

impl Database {
    /// Creates an empty database over an analysed intension.
    pub fn new(intension: Intension, catalog: DomainCatalog, policy: ContainmentPolicy) -> Self {
        let n = intension.schema().type_count();
        Database {
            intension,
            catalog,
            relations: vec![Relation::new(); n],
            policy,
        }
    }

    /// The intension this database instantiates.
    pub fn intension(&self) -> &Intension {
        &self.intension
    }

    /// Restores lookup indices after deserialisation (serde skips them).
    pub fn rebuild_indices(&mut self) {
        self.intension.rebuild_indices();
    }

    /// The schema (shorthand).
    pub fn schema(&self) -> &Schema {
        self.intension.schema()
    }

    /// The domain catalog.
    pub fn catalog(&self) -> &DomainCatalog {
        &self.catalog
    }

    /// The active containment policy.
    pub fn policy(&self) -> ContainmentPolicy {
        self.policy
    }

    /// The *stored* relation of `e` (policy-dependent; prefer
    /// [`Database::extension`] for the semantic extension).
    pub fn stored(&self, e: TypeId) -> &Relation {
        &self.relations[e.index()]
    }

    /// Builds and validates an instance of `e` from named fields, then
    /// inserts it.
    pub fn insert_fields(
        &mut self,
        e: TypeId,
        fields: &[(&str, crate::value::Value)],
    ) -> Result<bool, InstanceError> {
        let t = Instance::new(self.schema(), &self.catalog, e, fields)?;
        Ok(self.insert(e, t))
    }

    /// Inserts a pre-validated instance of `e`. Under the eager policy the
    /// projections onto every generalisation are inserted too. Returns
    /// whether the tuple was new in `R_e`.
    pub fn insert(&mut self, e: TypeId, t: Instance) -> bool {
        !self.insert_tracked(e, t).is_empty()
    }

    /// Like [`Database::insert`], but returns every `(type, tuple)` pair
    /// that was freshly stored — the instance itself plus any eager
    /// containment propagations. Empty when the tuple already existed.
    /// Transactional engines use this to build exact undo logs.
    pub fn insert_tracked(&mut self, e: TypeId, t: Instance) -> Vec<(TypeId, Instance)> {
        let mut added = Vec::new();
        if self.relations[e.index()].insert(t.clone()) {
            added.push((e, t.clone()));
            if self.policy == ContainmentPolicy::Eager {
                let gens: Vec<TypeId> = self
                    .intension
                    .generalisation()
                    .g_set(e)
                    .iter()
                    .map(|i| TypeId(i as u32))
                    .filter(|&g| g != e)
                    .collect();
                for g in gens {
                    let p = t.project(self.schema().attrs_of(g));
                    if self.relations[g.index()].insert(p.clone()) {
                        added.push((g, p));
                    }
                }
            }
        }
        added
    }

    /// Inserts a pre-validated instance of `e` **without** containment
    /// maintenance — the bulk-load path. The caller is expected to audit
    /// afterwards with [`Database::verify_containment`] and the Extension
    /// Axiom checker; hand-loaded data can violate both, which is exactly
    /// what those auditors exist to detect.
    pub fn insert_unchecked(&mut self, e: TypeId, t: Instance) -> bool {
        self.relations[e.index()].insert(t)
    }

    /// Removes a tuple from exactly one stored relation, with no cascade —
    /// the precise inverse of one entry of [`Database::insert_tracked`],
    /// used by transactional undo. Returns whether the tuple was present.
    pub fn stored_remove(&mut self, e: TypeId, t: &Instance) -> bool {
        self.relations[e.index()].remove(t)
    }

    /// Deletes an instance of `e`, cascading to every specialisation whose
    /// tuples project onto it (the containment condition would otherwise
    /// resurrect the deleted fact). Returns the number of tuples removed
    /// across all relations.
    pub fn delete(&mut self, e: TypeId, t: &Instance) -> usize {
        let mut removed = 0;
        if self.relations[e.index()].remove(t) {
            removed += 1;
        }
        let specs: Vec<TypeId> = self
            .intension
            .specialisation()
            .s_set(e)
            .iter()
            .map(|i| TypeId(i as u32))
            .filter(|&s| s != e)
            .collect();
        let ae = self.schema().attrs_of(e).clone();
        for s in specs {
            let before = self.relations[s.index()].len();
            self.relations[s.index()].retain(|u| &u.project(&ae) != t);
            removed += before - self.relations[s.index()].len();
        }
        removed
    }

    /// The semantic extension of `e`: under eager maintenance this is the
    /// stored relation; under on-demand it is collected from all
    /// specialisations, `∪_{s ∈ S_e} π^e_s(R_s)`.
    pub fn extension(&self, e: TypeId) -> Relation {
        match self.policy {
            ContainmentPolicy::Eager => self.relations[e.index()].clone(),
            ContainmentPolicy::OnDemand => {
                let mut out = Relation::new();
                let ae = self.schema().attrs_of(e);
                for si in self.intension.specialisation().s_set(e).iter() {
                    out.union_with(&self.relations[si].project(ae));
                }
                out
            }
        }
    }

    /// The semantic extension of `e` without cloning when the policy
    /// permits: under eager maintenance the stored relation *is* the
    /// extension, so a borrow suffices; under on-demand the collected
    /// union is owned. Executors use this to scan without copying.
    pub fn extension_cow(&self, e: TypeId) -> std::borrow::Cow<'_, Relation> {
        match self.policy {
            ContainmentPolicy::Eager => std::borrow::Cow::Borrowed(&self.relations[e.index()]),
            ContainmentPolicy::OnDemand => std::borrow::Cow::Owned(self.extension(e)),
        }
    }

    /// Cardinality of the semantic extension of `e`, without materialising
    /// it under the eager policy.
    pub fn extension_len(&self, e: TypeId) -> usize {
        match self.policy {
            ContainmentPolicy::Eager => self.relations[e.index()].len(),
            ContainmentPolicy::OnDemand => self.extension(e).len(),
        }
    }

    /// Number of stored tuples across all relations.
    pub fn total_stored(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    /// Checks the containment condition on the *stored* relations. Under
    /// the eager policy this should never report violations; under
    /// on-demand it checks the collected extensions instead (which hold by
    /// construction) — exposed mainly to audit hand-loaded data.
    pub fn verify_containment(&self) -> Vec<ContainmentViolation> {
        let mut violations = Vec::new();
        let schema = self.schema();
        for e in schema.type_ids() {
            let re = self.extension(e);
            for si in self.intension.specialisation().s_set(e).iter() {
                let s = TypeId(si as u32);
                if s == e {
                    continue;
                }
                let projected = self
                    .extension(s)
                    .project_to_type(schema, s, e)
                    .expect("s ∈ S_e implies A_e ⊆ A_s");
                for t in projected.iter() {
                    if !re.contains(t) {
                        violations.push(ContainmentViolation {
                            specialisation: s,
                            generalisation: e,
                            witness: t.clone(),
                        });
                        break; // one witness per pair suffices
                    }
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use toposem_core::employee_schema;

    fn db(policy: ContainmentPolicy) -> Database {
        Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            policy,
        )
    }

    fn insert_manager(d: &mut Database, name: &str, age: i64, dep: &str, budget: i64) {
        let manager = d.schema().type_id("manager").unwrap();
        d.insert_fields(
            manager,
            &[
                ("name", Value::str(name)),
                ("age", Value::Int(age)),
                ("depname", Value::str(dep)),
                ("budget", Value::Int(budget)),
            ],
        )
        .unwrap();
    }

    #[test]
    fn eager_insert_propagates_to_generalisations() {
        let mut d = db(ContainmentPolicy::Eager);
        insert_manager(&mut d, "ann", 40, "sales", 1000);
        let s = d.schema();
        let employee = s.type_id("employee").unwrap();
        let person = s.type_id("person").unwrap();
        let manager = s.type_id("manager").unwrap();
        assert_eq!(d.stored(manager).len(), 1);
        assert_eq!(d.stored(employee).len(), 1, "manager ISA employee");
        assert_eq!(d.stored(person).len(), 1, "manager ISA person");
        assert!(d.verify_containment().is_empty());
    }

    #[test]
    fn on_demand_collects_from_specialisations() {
        let mut d = db(ContainmentPolicy::OnDemand);
        insert_manager(&mut d, "ann", 40, "sales", 1000);
        let s = d.schema();
        let employee = s.type_id("employee").unwrap();
        let manager = s.type_id("manager").unwrap();
        // Stored only at manager…
        assert_eq!(d.stored(employee).len(), 0);
        assert_eq!(d.stored(manager).len(), 1);
        // …but the collected extension sees the employee.
        assert_eq!(d.extension(employee).len(), 1);
        assert!(d.verify_containment().is_empty());
    }

    #[test]
    fn policies_agree_on_extensions() {
        let mut eager = db(ContainmentPolicy::Eager);
        let mut lazy = db(ContainmentPolicy::OnDemand);
        for (name, age, dep, budget) in [("ann", 40, "sales", 1000), ("bob", 50, "research", 500)] {
            insert_manager(&mut eager, name, age, dep, budget);
            insert_manager(&mut lazy, name, age, dep, budget);
        }
        for e in eager.schema().type_ids() {
            assert_eq!(
                eager.extension(e),
                lazy.extension(e),
                "extensions must agree for {}",
                eager.schema().type_name(e)
            );
        }
        // But storage volume differs (the ablation's point).
        assert!(eager.total_stored() > lazy.total_stored());
    }

    #[test]
    fn delete_cascades_to_specialisations() {
        let mut d = db(ContainmentPolicy::Eager);
        insert_manager(&mut d, "ann", 40, "sales", 1000);
        let s = d.schema();
        let person = s.type_id("person").unwrap();
        let ann_person = Instance::new(
            s,
            d.catalog(),
            person,
            &[("name", Value::str("ann")), ("age", Value::Int(40))],
        )
        .unwrap();
        // Deleting ann as a person must delete the employee and manager
        // facts too — otherwise containment would resurrect her.
        let removed = d.delete(person, &ann_person);
        assert_eq!(removed, 3);
        assert!(d.verify_containment().is_empty());
        assert_eq!(d.total_stored(), 0);
    }

    #[test]
    fn delete_of_specialisation_keeps_generalisation() {
        let mut d = db(ContainmentPolicy::Eager);
        insert_manager(&mut d, "ann", 40, "sales", 1000);
        let s = d.schema();
        let manager = s.type_id("manager").unwrap();
        let employee = s.type_id("employee").unwrap();
        let ann_mgr = Instance::new(
            s,
            d.catalog(),
            manager,
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
                ("budget", Value::Int(1000)),
            ],
        )
        .unwrap();
        // Ann stops being a manager but remains an employee.
        let removed = d.delete(manager, &ann_mgr);
        assert_eq!(removed, 1);
        assert_eq!(d.stored(employee).len(), 1);
        assert!(d.verify_containment().is_empty());
    }

    #[test]
    fn extension_len_and_cow_match_extension() {
        for policy in [ContainmentPolicy::Eager, ContainmentPolicy::OnDemand] {
            let mut d = db(policy);
            insert_manager(&mut d, "ann", 40, "sales", 1000);
            insert_manager(&mut d, "bob", 50, "research", 500);
            for e in d.schema().type_ids() {
                let full = d.extension(e);
                assert_eq!(d.extension_len(e), full.len());
                assert_eq!(d.extension_cow(e).as_ref(), &full);
            }
            // Under eager maintenance the cow is a borrow of the stored
            // relation (no clone); on-demand collects an owned union.
            let person = d.schema().type_id("person").unwrap();
            let is_borrowed = matches!(d.extension_cow(person), std::borrow::Cow::Borrowed(_));
            assert_eq!(is_borrowed, policy == ContainmentPolicy::Eager);
        }
    }

    #[test]
    fn insert_fields_validates_domains() {
        let mut d = db(ContainmentPolicy::Eager);
        let manager = d.schema().type_id("manager").unwrap();
        let err = d
            .insert_fields(
                manager,
                &[
                    ("name", Value::str("x")),
                    ("age", Value::Int(9999)),
                    ("depname", Value::str("sales")),
                    ("budget", Value::Int(5)),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, InstanceError::OutsideDomain { .. }));
    }

    #[test]
    fn hand_loaded_violation_is_detected() {
        // Bypass insert() to simulate a corrupted on-demand load where a
        // *generalisation-level* fact contradicts nothing but an
        // eager-level store misses a projection.
        let mut d = db(ContainmentPolicy::Eager);
        let s = d.schema().clone();
        let manager = s.type_id("manager").unwrap();
        let t = Instance::new(
            &s,
            d.catalog(),
            manager,
            &[
                ("name", Value::str("eve")),
                ("age", Value::Int(33)),
                ("depname", Value::str("admin")),
                ("budget", Value::Int(7)),
            ],
        )
        .unwrap();
        d.relations[manager.index()].insert(t); // no propagation!
        let violations = d.verify_containment();
        assert!(!violations.is_empty());
        // Every violation names manager as the escaping specialisation.
        assert!(violations.iter().all(|v| v.specialisation == manager));
    }
}
