//! Schema evolution (§1, §6): "changes in the database intension can be
//! translated directly into information preserving properties of the
//! database extension. This makes a formal analysis of an evolutionary
//! database schema more tractable."
//!
//! An evolution step rebuilds the intension and migrates every stored
//! relation. The relationship between the old and the new intension is a
//! point map between the two specialisation spaces; the step is
//! *information preserving* exactly when every surviving entity type keeps
//! its attribute set (so relations migrate verbatim) and the map is a
//! continuous embedding of the surviving subspace.

use toposem_core::{Intension, Schema, SchemaBuilder, TypeId};
use toposem_topology::PointMap;

use crate::database::{ContainmentPolicy, Database};
use crate::instance::Instance;
use crate::value::Value;

/// One schema-evolution operation.
#[derive(Clone, Debug, PartialEq)]
pub enum EvolutionOp {
    /// Introduce a new entity type over existing attributes.
    AddEntityType {
        /// Name of the new type.
        name: String,
        /// Attribute names (must already be declared).
        attrs: Vec<String>,
    },
    /// Remove an entity type (its relation is dropped; information held
    /// only there is lost and reported).
    RemoveEntityType {
        /// Name of the type to remove.
        name: String,
    },
    /// Add an attribute to one entity type; existing instances get the
    /// default value. Specialisations of the type acquire the attribute
    /// too (their attribute sets must remain supersets).
    AddAttribute {
        /// The entity type gaining the attribute.
        type_name: String,
        /// The new attribute's name.
        attr: String,
        /// The new attribute's domain name.
        domain: String,
        /// Value assigned to pre-existing instances.
        default: Value,
    },
}

/// How one entity type fared in a migration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeFate {
    /// Same attribute set; relation copied verbatim.
    Preserved,
    /// Attribute set widened; instances extended with defaults.
    Widened,
    /// The type no longer exists; its relation was dropped.
    Dropped,
}

/// Result of an evolution step.
#[derive(Debug)]
pub struct Migration {
    /// The migrated database over the new intension.
    pub database: Database,
    /// `(old type id, old name, fate)` for every old type.
    pub fates: Vec<(TypeId, String, TypeFate)>,
    /// The map from surviving old types to new types.
    pub type_map: PointMap,
    /// Whether the surviving-type map is a continuous embedding of
    /// specialisation spaces (the information-preservation criterion).
    pub continuous_embedding: bool,
    /// Tuples dropped because their type was removed.
    pub dropped_tuples: usize,
}

/// Errors raised during evolution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvolveError {
    /// Named type does not exist.
    UnknownType(String),
    /// Named attribute does not exist.
    UnknownAttribute(String),
    /// The new schema violates a design axiom.
    AxiomViolation(String),
}

impl std::fmt::Display for EvolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvolveError::UnknownType(n) => write!(f, "unknown entity type `{n}`"),
            EvolveError::UnknownAttribute(n) => write!(f, "unknown attribute `{n}`"),
            EvolveError::AxiomViolation(m) => write!(f, "evolved schema violates axioms: {m}"),
        }
    }
}

impl std::error::Error for EvolveError {}

/// Applies `op` to `db`, producing a migrated database and a report.
pub fn evolve(db: &Database, op: &EvolutionOp) -> Result<Migration, EvolveError> {
    let old_schema = db.schema();
    // Describe the new schema as (name, attr-name list, declared contributors
    // by name) triples, then rebuild through the validating builder.
    let mut attr_decls: Vec<(String, String)> = old_schema
        .attr_ids()
        .map(|a| {
            let d = old_schema.attr(a);
            (d.name.clone(), d.domain.clone())
        })
        .collect();
    let mut type_decls: Vec<(String, Vec<String>)> = old_schema
        .type_ids()
        .map(|e| {
            (
                old_schema.type_name(e).to_owned(),
                old_schema
                    .attr_set_names(old_schema.attrs_of(e))
                    .into_iter()
                    .map(str::to_owned)
                    .collect(),
            )
        })
        .collect();

    // Per-type default fill for widened types: (type name, attr, value).
    let mut fills: Vec<(String, String, Value)> = Vec::new();

    match op {
        EvolutionOp::AddEntityType { name, attrs } => {
            for a in attrs {
                if old_schema.attr_id(a).is_none() {
                    return Err(EvolveError::UnknownAttribute(a.clone()));
                }
            }
            type_decls.push((name.clone(), attrs.clone()));
        }
        EvolutionOp::RemoveEntityType { name } => {
            if old_schema.type_id(name).is_none() {
                return Err(EvolveError::UnknownType(name.clone()));
            }
            type_decls.retain(|(n, _)| n != name);
        }
        EvolutionOp::AddAttribute {
            type_name,
            attr,
            domain,
            default,
        } => {
            let target = old_schema
                .type_id(type_name)
                .ok_or_else(|| EvolveError::UnknownType(type_name.clone()))?;
            if old_schema.attr_id(attr).is_none() {
                attr_decls.push((attr.clone(), domain.clone()));
            }
            // The target and all its specialisations gain the attribute so
            // the subset hierarchy (and thus containment) is preserved.
            let spec = db.intension().specialisation();
            for e in old_schema.type_ids() {
                if spec.is_specialisation(e, target) {
                    let name = old_schema.type_name(e).to_owned();
                    let decl = type_decls
                        .iter_mut()
                        .find(|(n, _)| *n == name)
                        .expect("type present");
                    if !decl.1.contains(attr) {
                        decl.1.push(attr.clone());
                        fills.push((name, attr.clone(), default.clone()));
                    }
                }
            }
        }
    }

    // Rebuild the schema through the axiom-validating builder.
    let mut builder = SchemaBuilder::new();
    for (name, domain) in &attr_decls {
        builder.attribute(name, domain);
    }
    for (name, attrs) in &type_decls {
        let refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        builder.entity_type(name, &refs);
    }
    let new_schema: Schema = builder.build_strict().map_err(|violations| {
        EvolveError::AxiomViolation(
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; "),
        )
    })?;
    let new_intension = Intension::analyse(new_schema);

    // Migrate relations.
    let mut out = Database::new(
        new_intension,
        db.catalog().clone(),
        ContainmentPolicy::OnDemand,
    );
    let mut fates = Vec::new();
    let mut dropped_tuples = 0;
    let mut survivors: Vec<(TypeId, TypeId)> = Vec::new();
    for e in old_schema.type_ids() {
        let name = old_schema.type_name(e).to_owned();
        match out.schema().type_id(&name) {
            None => {
                dropped_tuples += db.stored(e).len();
                fates.push((e, name, TypeFate::Dropped));
            }
            Some(new_e) => {
                survivors.push((e, new_e));
                let widened = out.schema().attrs_of(new_e).card() > old_schema.attrs_of(e).card();
                let fill: Vec<(String, Value)> = fills
                    .iter()
                    .filter(|(n, _, _)| *n == name)
                    .map(|(_, a, v)| (a.clone(), v.clone()))
                    .collect();
                for t in db.stored(e).iter() {
                    let mut parts: Vec<_> = t
                        .fields()
                        .iter()
                        .map(|(a, v)| {
                            // Attribute ids may shift; re-resolve by name.
                            let new_a = out
                                .schema()
                                .attr_id(old_schema.attr_name(*a))
                                .expect("attributes survive evolution");
                            (new_a, v.clone())
                        })
                        .collect();
                    for (a, v) in &fill {
                        let new_a = out.schema().attr_id(a).expect("fill attr exists");
                        parts.push((new_a, v.clone()));
                    }
                    out.insert(new_e, Instance::from_parts(parts));
                }
                fates.push((
                    e,
                    name,
                    if widened {
                        TypeFate::Widened
                    } else {
                        TypeFate::Preserved
                    },
                ));
            }
        }
    }

    // Build the old→new point map on survivors and test the embedding
    // criterion on the specialisation spaces.
    let map_vec: Vec<usize> = survivors.iter().map(|(_, n)| n.index()).collect();
    let survivor_ids: Vec<TypeId> = survivors.iter().map(|(o, _)| *o).collect();
    let type_map = PointMap::new(map_vec, out.schema().type_count()).expect("new ids are in range");
    // Restrict the old space to survivors, then check continuity +
    // injectivity of the induced map.
    let continuous_embedding = {
        let old_space = restrict_space(db, &survivor_ids);
        let new_space = out.intension().specialisation().space().clone();
        type_map.is_injective() && type_map.is_continuous(&old_space, &new_space)
    };

    Ok(Migration {
        database: out,
        fates,
        type_map,
        continuous_embedding,
        dropped_tuples,
    })
}

/// The subspace of the old specialisation space induced on the surviving
/// types, with points renumbered by survivor position.
fn restrict_space(db: &Database, survivors: &[TypeId]) -> toposem_topology::FiniteSpace {
    let old = db.intension().specialisation().space();
    let pos: std::collections::HashMap<usize, usize> = survivors
        .iter()
        .enumerate()
        .map(|(i, t)| (t.index(), i))
        .collect();
    let nbhds = survivors
        .iter()
        .map(|t| {
            toposem_topology::BitSet::from_indices(
                survivors.len(),
                old.min_neighbourhood(t.index())
                    .iter()
                    .filter_map(|x| pos.get(&x).copied()),
            )
        })
        .collect();
    toposem_topology::FiniteSpace::from_min_neighbourhoods(nbhds)
        .expect("subspace of a valid space is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DomainCatalog;
    use toposem_core::employee_schema;

    fn loaded_db() -> Database {
        let mut d = Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::OnDemand,
        );
        let s = d.schema().clone();
        d.insert_fields(
            s.type_id("manager").unwrap(),
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
                ("budget", Value::Int(1000)),
            ],
        )
        .unwrap();
        d.insert_fields(
            s.type_id("department").unwrap(),
            &[
                ("depname", Value::str("sales")),
                ("location", Value::str("amsterdam")),
            ],
        )
        .unwrap();
        d
    }

    #[test]
    fn add_entity_type_preserves_everything() {
        let d = loaded_db();
        let m = evolve(
            &d,
            &EvolutionOp::AddEntityType {
                name: "located".into(),
                attrs: vec!["name".into(), "age".into(), "location".into()],
            },
        )
        .unwrap();
        assert!(m.continuous_embedding);
        assert_eq!(m.dropped_tuples, 0);
        assert!(m.fates.iter().all(|(_, _, f)| *f == TypeFate::Preserved));
        assert_eq!(m.database.schema().type_count(), 6);
        // Old data still present.
        let mgr = m.database.schema().type_id("manager").unwrap();
        assert_eq!(m.database.extension(mgr).len(), 1);
    }

    #[test]
    fn remove_entity_type_drops_its_tuples() {
        let d = loaded_db();
        let m = evolve(
            &d,
            &EvolutionOp::RemoveEntityType {
                name: "manager".into(),
            },
        )
        .unwrap();
        assert_eq!(m.dropped_tuples, 1);
        assert!(m
            .fates
            .iter()
            .any(|(_, n, f)| n == "manager" && *f == TypeFate::Dropped));
        assert!(m.database.schema().type_id("manager").is_none());
        // The employee projection of ann was never stored (OnDemand), so
        // removing manager loses her — that is precisely the information
        // loss the report surfaces.
        let emp = m.database.schema().type_id("employee").unwrap();
        assert_eq!(m.database.extension(emp).len(), 0);
        assert!(m.continuous_embedding);
    }

    #[test]
    fn add_attribute_widens_type_and_specialisations() {
        let d = loaded_db();
        let m = evolve(
            &d,
            &EvolutionOp::AddAttribute {
                type_name: "employee".into(),
                attr: "salary".into(),
                domain: "amounts".into(),
                default: Value::Int(0),
            },
        )
        .unwrap();
        let s = m.database.schema();
        // employee, manager, worksfor widened; person/department untouched.
        let fates: std::collections::HashMap<&str, &TypeFate> =
            m.fates.iter().map(|(_, n, f)| (n.as_str(), f)).collect();
        assert_eq!(fates["employee"], &TypeFate::Widened);
        assert_eq!(fates["manager"], &TypeFate::Widened);
        assert_eq!(fates["worksfor"], &TypeFate::Widened);
        assert_eq!(fates["person"], &TypeFate::Preserved);
        // Migrated manager instance has the default salary.
        let mgr = s.type_id("manager").unwrap();
        let ext = m.database.extension(mgr);
        assert_eq!(ext.len(), 1);
        let t = ext.iter().next().unwrap();
        let salary = s.attr_id("salary").unwrap();
        assert_eq!(t.get(salary), Some(&Value::Int(0)));
        // Hierarchy intact: manager still specialises employee.
        let emp = s.type_id("employee").unwrap();
        assert!(m
            .database
            .intension()
            .specialisation()
            .is_specialisation(mgr, emp));
    }

    #[test]
    fn unknown_names_error() {
        let d = loaded_db();
        assert!(matches!(
            evolve(
                &d,
                &EvolutionOp::RemoveEntityType {
                    name: "ghost".into()
                }
            ),
            Err(EvolveError::UnknownType(_))
        ));
        assert!(matches!(
            evolve(
                &d,
                &EvolutionOp::AddEntityType {
                    name: "x".into(),
                    attrs: vec!["ghost".into()]
                }
            ),
            Err(EvolveError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn duplicate_attr_set_is_an_axiom_violation() {
        let d = loaded_db();
        let err = evolve(
            &d,
            &EvolutionOp::AddEntityType {
                name: "human".into(),
                attrs: vec!["name".into(), "age".into()],
            },
        )
        .unwrap_err();
        assert!(matches!(err, EvolveError::AxiomViolation(_)));
    }
}
