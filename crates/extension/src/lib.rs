//! # toposem-extension
//!
//! Database extensions for the toposem model (§4 of Siebes & Kersten
//! 1987): atomic domains and values, entity instances, relations, the
//! containment condition, extension mappings `E_e` / restriction maps
//! `p(h,f,e)` with their commuting corollary, the natural join, the
//! Extension Axiom checker, and schema evolution with
//! information-preservation analysis.
//!
//! The central type is [`database::Database`]: an analysed
//! [`toposem_core::Intension`] plus one [`relation::Relation`] per entity
//! type, maintained under either eager or on-demand containment
//! ([`database::ContainmentPolicy`]).

pub mod columnar;
pub mod database;
pub mod evolution;
pub mod extension_map;
pub mod instance;
pub mod join;
pub mod logical_op;
pub mod relation;
pub mod value;

pub use columnar::{Column, ColumnarMorsel, SelectionMask};
pub use database::{ContainmentPolicy, ContainmentViolation, Database};
pub use evolution::{evolve, EvolutionOp, EvolveError, Migration, TypeFate};
pub use extension_map::{e_map, p_inclusion_holds, verify_corollary, CorollaryReport};
pub use instance::{Instance, InstanceError};
pub use join::{check_all, check_extension_axiom, multi_join, natural_join, ExtensionAxiomReport};
pub use logical_op::{LogicalOp, ReplayError};
pub use relation::Relation;
pub use value::{DomainCatalog, DomainSpec, Value};
