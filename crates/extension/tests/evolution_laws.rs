//! Property-based tests of schema evolution: migrations preserve exactly
//! the data they claim to, and add/remove round-trips restore the
//! original extension.

use proptest::prelude::*;
use toposem_core::{employee_schema, Intension};
use toposem_extension::{
    evolve, ContainmentPolicy, Database, DomainCatalog, EvolutionOp, TypeFate, Value,
};

const NAMES: [&str; 5] = ["ann", "bob", "carol", "dave", "eve"];
const DEPS: [&str; 3] = ["sales", "research", "admin"];

fn loaded_db(rows: &[(usize, i64, usize)]) -> Database {
    let mut db = Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        ContainmentPolicy::OnDemand,
    );
    let s = db.schema().clone();
    for (n, a, d) in rows {
        db.insert_fields(
            s.type_id("employee").unwrap(),
            &[
                ("name", Value::str(NAMES[*n])),
                ("age", Value::Int(*a)),
                ("depname", Value::str(DEPS[*d])),
            ],
        )
        .unwrap();
    }
    db
}

fn rows_strategy() -> impl Strategy<Value = Vec<(usize, i64, usize)>> {
    prop::collection::vec((0..NAMES.len(), 0i64..100, 0..DEPS.len()), 0..15)
}

proptest! {
    /// Adding a fresh entity type never loses data and always embeds.
    #[test]
    fn add_type_is_lossless(rows in rows_strategy()) {
        let db = loaded_db(&rows);
        let m = evolve(
            &db,
            &EvolutionOp::AddEntityType {
                name: "fresh".into(),
                attrs: vec!["name".into(), "location".into()],
            },
        )
        .unwrap();
        prop_assert!(m.continuous_embedding);
        prop_assert_eq!(m.dropped_tuples, 0);
        prop_assert!(m.fates.iter().all(|(_, _, f)| *f == TypeFate::Preserved));
        // Every surviving type's extension is preserved verbatim.
        for e in db.schema().type_ids() {
            let name = db.schema().type_name(e);
            let new_e = m.database.schema().type_id(name).unwrap();
            prop_assert_eq!(
                db.extension(e).len(),
                m.database.extension(new_e).len()
            );
        }
    }

    /// Add-then-remove of a fresh type restores the original extension.
    #[test]
    fn add_remove_roundtrip(rows in rows_strategy()) {
        let db = loaded_db(&rows);
        let added = evolve(
            &db,
            &EvolutionOp::AddEntityType {
                name: "scratch".into(),
                attrs: vec!["budget".into()],
            },
        )
        .unwrap()
        .database;
        let removed = evolve(
            &added,
            &EvolutionOp::RemoveEntityType { name: "scratch".into() },
        )
        .unwrap()
        .database;
        prop_assert_eq!(removed.schema().type_count(), db.schema().type_count());
        for e in db.schema().type_ids() {
            let name = db.schema().type_name(e);
            let back = removed.schema().type_id(name).unwrap();
            prop_assert_eq!(db.extension(e), removed.extension(back));
        }
    }

    /// Widening with a default keeps tuple counts and fills the default.
    #[test]
    fn widening_fills_defaults(rows in rows_strategy()) {
        let db = loaded_db(&rows);
        let employee = db.schema().type_id("employee").unwrap();
        let before = db.extension(employee).len();
        let m = evolve(
            &db,
            &EvolutionOp::AddAttribute {
                type_name: "employee".into(),
                attr: "grade".into(),
                domain: "grades".into(),
                default: Value::Int(1),
            },
        )
        .unwrap();
        let s2 = m.database.schema();
        let e2 = s2.type_id("employee").unwrap();
        let ext = m.database.extension(e2);
        prop_assert_eq!(ext.len(), before);
        let grade = s2.attr_id("grade").unwrap();
        for t in ext.iter() {
            prop_assert_eq!(t.get(grade), Some(&Value::Int(1)));
        }
        // Containment survives the migration.
        prop_assert!(m.database.verify_containment().is_empty());
    }

    /// Migration never invents tuples: total stored never grows except by
    /// the declared widening/fill mechanics.
    #[test]
    fn migration_conserves_tuples(rows in rows_strategy()) {
        let db = loaded_db(&rows);
        let m = evolve(
            &db,
            &EvolutionOp::RemoveEntityType { name: "manager".into() },
        )
        .unwrap();
        prop_assert!(m.database.total_stored() <= db.total_stored());
        prop_assert!(m.database.verify_containment().is_empty());
    }
}
