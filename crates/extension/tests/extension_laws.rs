//! Property-based tests of §4 over randomly generated employee-database
//! extensions: policy equivalence, containment preservation, the extension
//! corollary, and join algebra laws.

use proptest::prelude::*;
use toposem_core::{employee_schema, Intension, TypeId};
use toposem_extension::{
    check_all, natural_join, verify_corollary, ContainmentPolicy, Database, DomainCatalog,
    Instance, Relation, Value,
};

const NAMES: [&str; 6] = ["ann", "bob", "carol", "dave", "eve", "frank"];
const DEPS: [&str; 3] = ["sales", "research", "admin"];
const LOCS: [&str; 2] = ["amsterdam", "utrecht"];

#[derive(Clone, Debug)]
enum Op {
    InsertEmployee(usize, i64, usize),
    InsertManager(usize, i64, usize, i64),
    InsertDepartment(usize, usize),
    InsertPerson(usize, i64),
    DeletePersonByName(usize, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..NAMES.len(), 0i64..100, 0..DEPS.len())
            .prop_map(|(n, a, d)| Op::InsertEmployee(n, a, d)),
        (0..NAMES.len(), 0i64..100, 0..DEPS.len(), 0i64..5000)
            .prop_map(|(n, a, d, b)| Op::InsertManager(n, a, d, b)),
        (0..DEPS.len(), 0..LOCS.len()).prop_map(|(d, l)| Op::InsertDepartment(d, l)),
        (0..NAMES.len(), 0i64..100).prop_map(|(n, a)| Op::InsertPerson(n, a)),
        (0..NAMES.len(), 0i64..100).prop_map(|(n, a)| Op::DeletePersonByName(n, a)),
    ]
}

fn apply(db: &mut Database, op: &Op) {
    let s = db.schema().clone();
    match op {
        Op::InsertEmployee(n, a, d) => {
            db.insert_fields(
                s.type_id("employee").unwrap(),
                &[
                    ("name", Value::str(NAMES[*n])),
                    ("age", Value::Int(*a)),
                    ("depname", Value::str(DEPS[*d])),
                ],
            )
            .unwrap();
        }
        Op::InsertManager(n, a, d, b) => {
            db.insert_fields(
                s.type_id("manager").unwrap(),
                &[
                    ("name", Value::str(NAMES[*n])),
                    ("age", Value::Int(*a)),
                    ("depname", Value::str(DEPS[*d])),
                    ("budget", Value::Int(*b)),
                ],
            )
            .unwrap();
        }
        Op::InsertDepartment(d, l) => {
            db.insert_fields(
                s.type_id("department").unwrap(),
                &[
                    ("depname", Value::str(DEPS[*d])),
                    ("location", Value::str(LOCS[*l])),
                ],
            )
            .unwrap();
        }
        Op::InsertPerson(n, a) => {
            db.insert_fields(
                s.type_id("person").unwrap(),
                &[("name", Value::str(NAMES[*n])), ("age", Value::Int(*a))],
            )
            .unwrap();
        }
        Op::DeletePersonByName(n, a) => {
            let person = s.type_id("person").unwrap();
            let t = Instance::new(
                &s,
                db.catalog(),
                person,
                &[("name", Value::str(NAMES[*n])), ("age", Value::Int(*a))],
            )
            .unwrap();
            db.delete(person, &t);
        }
    }
}

fn fresh(policy: ContainmentPolicy) -> Database {
    Database::new(
        Intension::analyse(employee_schema()),
        DomainCatalog::employee_defaults(),
        policy,
    )
}

proptest! {
    /// The two containment policies present identical extensions under any
    /// workload of maintained operations.
    #[test]
    fn policies_agree(ops in prop::collection::vec(op_strategy(), 0..30)) {
        let mut eager = fresh(ContainmentPolicy::Eager);
        let mut lazy = fresh(ContainmentPolicy::OnDemand);
        for op in &ops {
            apply(&mut eager, op);
            apply(&mut lazy, op);
        }
        for e in eager.schema().type_ids() {
            prop_assert_eq!(eager.extension(e), lazy.extension(e));
        }
    }

    /// Containment holds after any maintained workload, under both
    /// policies.
    #[test]
    fn containment_invariant(ops in prop::collection::vec(op_strategy(), 0..30)) {
        for policy in [ContainmentPolicy::Eager, ContainmentPolicy::OnDemand] {
            let mut db = fresh(policy);
            for op in &ops {
                apply(&mut db, op);
            }
            prop_assert!(db.verify_containment().is_empty());
        }
    }

    /// R4 as a property: the §4.2 corollary identities hold on arbitrary
    /// maintained extensions.
    #[test]
    fn extension_corollary_invariant(ops in prop::collection::vec(op_strategy(), 0..25)) {
        let mut db = fresh(ContainmentPolicy::Eager);
        for op in &ops {
            apply(&mut db, op);
        }
        let report = verify_corollary(&db);
        prop_assert!(report.all_hold(), "{:?}", report);
    }

    /// R5 determination as a property: maintained inserts always satisfy
    /// the determination half of the Extension Axiom (injectivity can be
    /// violated by two managers differing only in budget, so it is checked
    /// separately below).
    #[test]
    fn maintained_inserts_are_determined(ops in prop::collection::vec(op_strategy(), 0..25)) {
        let mut db = fresh(ContainmentPolicy::Eager);
        for op in &ops {
            apply(&mut db, op);
        }
        for report in check_all(&db) {
            prop_assert!(report.undetermined.is_empty(), "{:?}", report);
        }
    }

    /// Join algebra: commutativity and idempotence on employee relations.
    #[test]
    fn join_laws(ops in prop::collection::vec(op_strategy(), 0..20)) {
        let mut db = fresh(ContainmentPolicy::Eager);
        for op in &ops {
            apply(&mut db, op);
        }
        let s = db.schema();
        let n = s.attr_count();
        let emp = db.extension(s.type_id("employee").unwrap());
        let dep = db.extension(s.type_id("department").unwrap());
        // r * s = s * r
        prop_assert_eq!(natural_join(n, &emp, &dep), natural_join(n, &dep, &emp));
        // r * r = r
        prop_assert_eq!(natural_join(n, &emp, &emp), emp.clone());
        // r * ∅ = ∅
        prop_assert!(natural_join(n, &emp, &Relation::new()).is_empty());
    }

    /// Deleting everything that was inserted empties the database
    /// (delete cascades cover propagated projections).
    #[test]
    fn delete_by_root_type_empties(ops in prop::collection::vec(op_strategy(), 0..15)) {
        let mut db = fresh(ContainmentPolicy::Eager);
        for op in &ops {
            apply(&mut db, op);
        }
        let s = db.schema().clone();
        let person = s.type_id("person").unwrap();
        let department = s.type_id("department").unwrap();
        // Delete all persons (cascades to employee/manager/worksfor) and
        // all departments (cascades to worksfor).
        for t in db.extension(person).iter().cloned().collect::<Vec<_>>() {
            db.delete(person, &t);
        }
        for t in db.extension(department).iter().cloned().collect::<Vec<_>>() {
            db.delete(department, &t);
        }
        prop_assert_eq!(db.total_stored(), 0);
        prop_assert!(db.verify_containment().is_empty());
    }

    /// Projection monotonicity: R ⊆ S ⇒ π(R) ⊆ π(S) at the person level.
    #[test]
    fn projection_monotone(ops in prop::collection::vec(op_strategy(), 0..20)) {
        let mut db = fresh(ContainmentPolicy::Eager);
        for op in &ops {
            apply(&mut db, op);
        }
        let s = db.schema();
        let employee = s.type_id("employee").unwrap();
        let person = s.type_id("person").unwrap();
        let full = db.extension(employee);
        let half: Relation = full.iter().take(full.len() / 2).cloned().collect();
        let p_full = full.project_to_type(s, employee, person).unwrap();
        let p_half = half.project_to_type(s, employee, person).unwrap();
        prop_assert!(p_half.is_subset(&p_full));
    }
}

/// Injectivity failures are exactly same-combination duplicates: a focused
/// deterministic regression kept beside the properties.
#[test]
fn manager_budget_duplicate_breaks_injectivity() {
    let mut db = fresh(ContainmentPolicy::Eager);
    let s = db.schema().clone();
    let manager = s.type_id("manager").unwrap();
    for b in [1, 2] {
        db.insert_fields(
            manager,
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
                ("budget", Value::Int(b)),
            ],
        )
        .unwrap();
    }
    let reports = check_all(&db);
    let mgr_report = reports
        .iter()
        .find(|r| r.entity_type == TypeId(s.type_id("manager").unwrap().0))
        .unwrap();
    assert_eq!(mgr_report.injectivity_failures.len(), 1);
}
