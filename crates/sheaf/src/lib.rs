//! # toposem-sheaf
//!
//! Presheaves and the sheaf condition over finite spaces (§6 of
//! Siebes & Kersten 1987, after Tennison's *Sheaf Theory*), plus the
//! **extension presheaf**: the §4.2 extension mappings `E_e` / `p(h,f,e)`
//! realised as a presheaf on the specialisation topology whose sections
//! over `S_e` are the "single cuts" of the paper's disk diagram.

pub mod extension_presheaf;
pub mod presheaf;

pub use extension_presheaf::{ExtensionPresheaf, Family};
pub use presheaf::{Presheaf, PresheafLawViolation};
