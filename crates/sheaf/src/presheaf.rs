//! Finite presheaves with explicit data, and the sheaf condition.
//!
//! §6: "we use sheaf theory \[13\] to study the continuity problems in
//! databases, i.e. updates of both intension and extension." This module
//! provides the abstract machinery: a presheaf on a finite space is an
//! assignment of a section set to every open with restriction maps that
//! satisfy the functor laws; a sheaf additionally satisfies locality and
//! gluing over open covers.

use std::collections::{BTreeMap, BTreeSet};

use toposem_topology::{BitSet, FiniteSpace};

/// A presheaf on a finite space, with explicitly tabulated data. Sections
/// are identified by strings; restriction maps are explicit tables.
#[derive(Clone, Debug)]
pub struct Presheaf {
    space: FiniteSpace,
    opens: Vec<BitSet>,
    /// Sections over each open (indexed like `opens`).
    sections: BTreeMap<BitSet, BTreeSet<String>>,
    /// Restriction maps `(from, to) → (section → section)` for `to ⊆ from`.
    restrictions: BTreeMap<(BitSet, BitSet), BTreeMap<String, String>>,
}

/// Violations of the presheaf laws.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PresheafLawViolation {
    /// `res_{U→U}` is not the identity on some section.
    IdentityFails { open: BitSet, section: String },
    /// `res_{V→W} ∘ res_{U→V} ≠ res_{U→W}` on some section.
    CompositionFails {
        from: BitSet,
        mid: BitSet,
        to: BitSet,
        section: String,
    },
    /// A restriction map is missing or maps outside the target's sections.
    Malformed { from: BitSet, to: BitSet },
}

impl Presheaf {
    /// Starts an empty presheaf over `space`, with every open registered
    /// and no sections.
    pub fn new(space: FiniteSpace) -> Self {
        let opens = space.all_opens();
        let sections = opens.iter().map(|o| (o.clone(), BTreeSet::new())).collect();
        Presheaf {
            space,
            opens,
            sections,
            restrictions: BTreeMap::new(),
        }
    }

    /// The underlying space.
    pub fn space(&self) -> &FiniteSpace {
        &self.space
    }

    /// All opens of the space.
    pub fn opens(&self) -> &[BitSet] {
        &self.opens
    }

    /// Adds a section over an open.
    pub fn add_section(&mut self, open: &BitSet, name: &str) {
        assert!(self.space.is_open(open), "sections live over opens");
        self.sections
            .get_mut(open)
            .expect("open registered")
            .insert(name.to_owned());
    }

    /// Sets one restriction: `res_{from→to}(section) = image`.
    pub fn set_restriction(&mut self, from: &BitSet, to: &BitSet, section: &str, image: &str) {
        assert!(to.is_subset(from), "restriction goes to a smaller open");
        self.restrictions
            .entry((from.clone(), to.clone()))
            .or_default()
            .insert(section.to_owned(), image.to_owned());
    }

    /// The sections over an open.
    pub fn sections_over(&self, open: &BitSet) -> &BTreeSet<String> {
        &self.sections[open]
    }

    /// Applies `res_{from→to}`.
    pub fn restrict(&self, from: &BitSet, to: &BitSet, section: &str) -> Option<&String> {
        if from == to {
            // Identity restrictions may be left implicit.
            return self.sections[from].get(section);
        }
        self.restrictions
            .get(&(from.clone(), to.clone()))
            .and_then(|m| m.get(section))
    }

    /// Verifies the functor laws on all tabulated data.
    pub fn verify_laws(&self) -> Vec<PresheafLawViolation> {
        let mut violations = Vec::new();
        // Totality + well-typedness of every declared restriction.
        for ((from, to), table) in &self.restrictions {
            for s in &self.sections[from] {
                match table.get(s) {
                    None => {
                        violations.push(PresheafLawViolation::Malformed {
                            from: from.clone(),
                            to: to.clone(),
                        });
                        break;
                    }
                    Some(img) if !self.sections[to].contains(img) => {
                        violations.push(PresheafLawViolation::Malformed {
                            from: from.clone(),
                            to: to.clone(),
                        });
                        break;
                    }
                    _ => {}
                }
            }
        }
        // Identity.
        for o in &self.opens {
            if let Some(table) = self.restrictions.get(&(o.clone(), o.clone())) {
                for s in &self.sections[o] {
                    if table.get(s).map(String::as_str) != Some(s.as_str()) {
                        violations.push(PresheafLawViolation::IdentityFails {
                            open: o.clone(),
                            section: s.clone(),
                        });
                    }
                }
            }
        }
        // Composition over every chain W ⊆ V ⊆ U with declared maps.
        for u in &self.opens {
            for v in &self.opens {
                if !v.is_subset(u) || v == u {
                    continue;
                }
                for w in &self.opens {
                    if !w.is_subset(v) || w == v || w == u {
                        continue;
                    }
                    let (Some(uv), Some(vw), Some(uw)) = (
                        self.restrictions.get(&(u.clone(), v.clone())),
                        self.restrictions.get(&(v.clone(), w.clone())),
                        self.restrictions.get(&(u.clone(), w.clone())),
                    ) else {
                        continue;
                    };
                    for s in &self.sections[u] {
                        let via = uv.get(s).and_then(|m| vw.get(m));
                        let direct = uw.get(s);
                        if via != direct {
                            violations.push(PresheafLawViolation::CompositionFails {
                                from: u.clone(),
                                mid: v.clone(),
                                to: w.clone(),
                                section: s.clone(),
                            });
                        }
                    }
                }
            }
        }
        violations
    }

    /// The sheaf condition over a cover of `open`:
    ///
    /// - **locality**: two sections over `open` agreeing on every cover
    ///   member are equal;
    /// - **gluing**: every family of sections over the cover members that
    ///   agrees on pairwise intersections comes from a section over
    ///   `open`.
    pub fn sheaf_condition(&self, open: &BitSet, cover: &[BitSet]) -> Result<(), String> {
        // The cover must consist of opens and actually cover `open`.
        let mut u = BitSet::empty(open.universe_len());
        for c in cover {
            assert!(self.space.is_open(c) && c.is_subset(open));
            u.union_with(c);
        }
        assert_eq!(&u, open, "cover must cover");

        // Locality.
        let sections: Vec<&String> = self.sections[open].iter().collect();
        for (i, s1) in sections.iter().enumerate() {
            for s2 in sections.iter().skip(i + 1) {
                let agree_everywhere = cover
                    .iter()
                    .all(|c| self.restrict(open, c, s1) == self.restrict(open, c, s2));
                if agree_everywhere {
                    return Err(format!(
                        "locality fails: sections `{s1}` and `{s2}` agree on the cover"
                    ));
                }
            }
        }

        // Gluing: enumerate compatible families over the cover.
        let member_sections: Vec<Vec<&String>> = cover
            .iter()
            .map(|c| self.sections[c].iter().collect())
            .collect();
        let mut family = vec![0usize; cover.len()];
        loop {
            // Check pairwise compatibility of the current family.
            let mut compatible = true;
            'outer: for i in 0..cover.len() {
                for j in (i + 1)..cover.len() {
                    let inter = cover[i].intersection(&cover[j]);
                    let a = self.restrict(&cover[i], &inter, member_sections[i][family[i]]);
                    let b = self.restrict(&cover[j], &inter, member_sections[j][family[j]]);
                    if a != b {
                        compatible = false;
                        break 'outer;
                    }
                }
            }
            if compatible {
                // Must glue to exactly one global section.
                let gluings = self.sections[open]
                    .iter()
                    .filter(|s| {
                        cover.iter().enumerate().all(|(i, c)| {
                            self.restrict(open, c, s) == Some(member_sections[i][family[i]])
                                || self.restrict(open, c, s).map(String::as_str)
                                    == Some(member_sections[i][family[i]].as_str())
                        })
                    })
                    .count();
                if gluings == 0 {
                    return Err("gluing fails: a compatible family has no global section".into());
                }
            }
            // Advance the family odometer.
            let mut k = 0;
            loop {
                if k == cover.len() {
                    return Ok(());
                }
                if member_sections[k].is_empty() {
                    return Ok(()); // no families at all
                }
                family[k] += 1;
                if family[k] < member_sections[k].len() {
                    break;
                }
                family[k] = 0;
                k += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sheaf-like presheaf on the Sierpiński space: F({0,1}) = pairs,
    /// F({1}) = values, restriction = second projection.
    fn sierpinski_presheaf() -> (Presheaf, BitSet, BitSet) {
        let space =
            FiniteSpace::from_min_neighbourhoods(vec![BitSet::full(2), BitSet::singleton(2, 1)])
                .unwrap();
        let top = BitSet::full(2);
        let small = BitSet::singleton(2, 1);
        let empty = BitSet::empty(2);
        let mut p = Presheaf::new(space);
        for s in ["a0", "a1", "b0", "b1"] {
            p.add_section(&top, s);
        }
        for s in ["0", "1"] {
            p.add_section(&small, s);
        }
        p.add_section(&empty, "*"); // terminal over ∅ (sheaf requirement)
        for (s, img) in [("a0", "0"), ("a1", "1"), ("b0", "0"), ("b1", "1")] {
            p.set_restriction(&top, &small, s, img);
        }
        for s in ["a0", "a1", "b0", "b1"] {
            p.set_restriction(&top, &empty, s, "*");
        }
        for s in ["0", "1"] {
            p.set_restriction(&small, &empty, s, "*");
        }
        (p, top, small)
    }

    #[test]
    fn laws_hold_on_wellformed_presheaf() {
        let (p, _, _) = sierpinski_presheaf();
        assert!(p.verify_laws().is_empty());
    }

    #[test]
    fn malformed_restriction_detected() {
        let (mut p, top, small) = sierpinski_presheaf();
        p.set_restriction(&top, &small, "a0", "missing-section");
        let v = p.verify_laws();
        assert!(v
            .iter()
            .any(|x| matches!(x, PresheafLawViolation::Malformed { .. })));
    }

    #[test]
    fn composition_violation_detected() {
        let (mut p, _top, small) = sierpinski_presheaf();
        let empty = BitSet::empty(2);
        // Break the triangle: change res_{top→empty} after the fact? The
        // terminal ∅ has a single section, so break composition by adding
        // a second ∅-section and diverting one map.
        p.add_section(&empty, "**");
        p.set_restriction(&small, &empty, "0", "**");
        // Now res_{top→∅}(a0) = "*" but via small: a0 ↦ "0" ↦ "**".
        let v = p.verify_laws();
        assert!(v
            .iter()
            .any(|x| matches!(x, PresheafLawViolation::CompositionFails { .. })));
    }

    #[test]
    fn sheaf_condition_on_trivial_cover() {
        let (p, top, small) = sierpinski_presheaf();
        // Cover of top by {top}: trivially fine (locality via identity).
        p.sheaf_condition(&top, std::slice::from_ref(&top)).unwrap();
        p.sheaf_condition(&small, std::slice::from_ref(&small))
            .unwrap();
    }

    #[test]
    fn locality_violation_detected() {
        // Two distinct global sections whose restrictions to a genuine
        // cover coincide: on the discrete 2-point space covered by its
        // singletons, s1 and s2 both restrict to (x, y).
        let space = FiniteSpace::discrete(2);
        let u0 = BitSet::singleton(2, 0);
        let u1 = BitSet::singleton(2, 1);
        let t = BitSet::full(2);
        let mut q = Presheaf::new(space);
        q.add_section(&t, "s1");
        q.add_section(&t, "s2");
        q.add_section(&u0, "x");
        q.add_section(&u1, "y");
        for s in ["s1", "s2"] {
            q.set_restriction(&t, &u0, s, "x");
            q.set_restriction(&t, &u1, s, "y");
        }
        let err = q.sheaf_condition(&t, &[u0, u1]).unwrap_err();
        assert!(err.contains("locality"));
    }

    #[test]
    fn gluing_violation_detected() {
        // Discrete 2-point space, sections over the singletons but nothing
        // over the whole: the compatible family (x, y) cannot glue.
        let space = FiniteSpace::discrete(2);
        let u0 = BitSet::singleton(2, 0);
        let u1 = BitSet::singleton(2, 1);
        let t = BitSet::full(2);
        let mut q = Presheaf::new(space);
        q.add_section(&u0, "x");
        q.add_section(&u1, "y");
        let err = q.sheaf_condition(&t, &[u0, u1]).unwrap_err();
        assert!(err.contains("gluing"));
    }
}
