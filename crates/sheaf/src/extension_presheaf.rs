//! The extension presheaf: §4.2's mappings `E_e` / `p(h,f,e)` as an
//! actual presheaf on the specialisation topology.
//!
//! For an open set `U` of the specialisation space (a set of entity types
//! closed under specialisation), a **section over `U`** is a *compatible
//! family*: one instance per type in `U` such that whenever `f ∈ S_e`
//! (both in `U`), the instance at `e` is the projection of the instance
//! at `f`. A section over `S_e` is exactly the paper's F1 picture — "a
//! single cut" through the attribute disks, seen at every level of the
//! ISA hierarchy at once.
//!
//! Restriction maps just drop family members, so the functor laws hold by
//! construction; what is *checked* here is the sheaf condition — locality
//! and gluing of compatible families over open covers — and how gluing
//! failures relate to Extension Axiom violations.

use std::collections::BTreeMap;

use toposem_core::TypeId;
use toposem_extension::{Database, Instance};
use toposem_topology::BitSet;

/// A compatible family of instances over an open set of entity types.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Family {
    /// `type → instance`, covering exactly the open's members.
    pub members: BTreeMap<TypeId, Instance>,
}

impl Family {
    /// The family restricted to a smaller open.
    pub fn restrict(&self, open: &BitSet) -> Family {
        Family {
            members: self
                .members
                .iter()
                .filter(|(t, _)| open.contains(t.index()))
                .map(|(t, i)| (*t, i.clone()))
                .collect(),
        }
    }
}

/// The extension presheaf of a database.
pub struct ExtensionPresheaf<'a> {
    db: &'a Database,
}

impl<'a> ExtensionPresheaf<'a> {
    /// Wraps a database.
    pub fn new(db: &'a Database) -> Self {
        ExtensionPresheaf { db }
    }

    /// Is a family compatible over `open`? Every member must be an
    /// instance of its type's extension, and projections must agree along
    /// the specialisation order within the open.
    pub fn is_section(&self, open: &BitSet, family: &Family) -> bool {
        let schema = self.db.schema();
        let spec = self.db.intension().specialisation();
        // Exact coverage.
        if family.members.len() != open.card()
            || !family.members.keys().all(|t| open.contains(t.index()))
        {
            return false;
        }
        for (&t, inst) in &family.members {
            if !self.db.extension(t).contains(inst) {
                return false;
            }
        }
        for (&e, ie) in &family.members {
            for (&f, if_) in &family.members {
                if e != f && spec.is_specialisation(f, e) {
                    // e is a generalisation of f: i_e must be π(i_f).
                    if &if_.project(schema.attrs_of(e)) != ie {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Enumerates all sections over `open` (product of extensions filtered
    /// by compatibility; exponential — test-sized extensions only).
    pub fn sections_over(&self, open: &BitSet) -> Vec<Family> {
        let types: Vec<TypeId> = open.iter().map(|i| TypeId(i as u32)).collect();
        let mut families: Vec<BTreeMap<TypeId, Instance>> = vec![BTreeMap::new()];
        for &t in &types {
            let ext: Vec<Instance> = self.db.extension(t).iter().cloned().collect();
            let mut next = Vec::new();
            for fam in &families {
                for inst in &ext {
                    let mut f = fam.clone();
                    f.insert(t, inst.clone());
                    next.push(f);
                }
            }
            families = next;
        }
        families
            .into_iter()
            .map(|members| Family { members })
            .filter(|f| self.is_section(open, f))
            .collect()
    }

    /// Locality over a cover: sections agreeing on all cover members are
    /// equal. Holds automatically when the cover covers (restrictions are
    /// literal sub-families); checked exhaustively anyway.
    pub fn locality_holds(&self, open: &BitSet, cover: &[BitSet]) -> bool {
        let sections = self.sections_over(open);
        for (i, s1) in sections.iter().enumerate() {
            for s2 in sections.iter().skip(i + 1) {
                if cover.iter().all(|c| s1.restrict(c) == s2.restrict(c)) {
                    return false;
                }
            }
        }
        true
    }

    /// Gluing over a cover: every pairwise-compatible family of sections
    /// over the cover members assembles to a global section. Returns the
    /// number of compatible families that FAILED to glue (0 = sheaf-like
    /// on this cover).
    pub fn gluing_failures(&self, open: &BitSet, cover: &[BitSet]) -> usize {
        let member_sections: Vec<Vec<Family>> =
            cover.iter().map(|c| self.sections_over(c)).collect();
        let globals = self.sections_over(open);
        let mut failures = 0;
        let mut idx = vec![0usize; cover.len()];
        if member_sections.iter().any(Vec::is_empty) {
            return 0; // no families to glue
        }
        loop {
            // Pairwise compatibility on overlaps.
            let compatible = (0..cover.len()).all(|i| {
                ((i + 1)..cover.len()).all(|j| {
                    let inter = cover[i].intersection(&cover[j]);
                    member_sections[i][idx[i]].restrict(&inter)
                        == member_sections[j][idx[j]].restrict(&inter)
                })
            });
            if compatible {
                // Assemble and look for a global section matching.
                let mut assembled = BTreeMap::new();
                for (i, _) in cover.iter().enumerate() {
                    for (t, inst) in &member_sections[i][idx[i]].members {
                        assembled.insert(*t, inst.clone());
                    }
                }
                let assembled = Family { members: assembled };
                if !globals.contains(&assembled) {
                    failures += 1;
                }
            }
            // Odometer.
            let mut k = 0;
            loop {
                if k == cover.len() {
                    return failures;
                }
                idx[k] += 1;
                if idx[k] < member_sections[k].len() {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toposem_core::{employee_schema, Intension};
    use toposem_extension::{ContainmentPolicy, DomainCatalog, Value};

    fn loaded_db() -> Database {
        let mut d = Database::new(
            Intension::analyse(employee_schema()),
            DomainCatalog::employee_defaults(),
            ContainmentPolicy::Eager,
        );
        let s = d.schema().clone();
        d.insert_fields(
            s.type_id("manager").unwrap(),
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
                ("budget", Value::Int(100)),
            ],
        )
        .unwrap();
        d.insert_fields(
            s.type_id("employee").unwrap(),
            &[
                ("name", Value::str("bob")),
                ("age", Value::Int(30)),
                ("depname", Value::str("research")),
            ],
        )
        .unwrap();
        d.insert_fields(
            s.type_id("worksfor").unwrap(),
            &[
                ("name", Value::str("ann")),
                ("age", Value::Int(40)),
                ("depname", Value::str("sales")),
                ("location", Value::str("amsterdam")),
            ],
        )
        .unwrap();
        d
    }

    /// Sections over S_e = cuts through the disk diagram (F1).
    #[test]
    fn sections_over_s_person_are_consistent_cuts() {
        let db = loaded_db();
        let p = ExtensionPresheaf::new(&db);
        let s = db.schema();
        let person = s.type_id("person").unwrap();
        let employee = s.type_id("employee").unwrap();
        // S_employee = {employee, manager, worksfor} (an open by
        // construction): only ann is a manager AND in a worksfor fact, so
        // exactly one compatible cut exists, and it is ann at every level.
        let open = db.intension().specialisation().s_set(employee).clone();
        let sections = p.sections_over(&open);
        assert_eq!(sections.len(), 1, "only ann cuts all three disks");
        let fam = &sections[0];
        let name = s.attr_id("name").unwrap();
        for inst in fam.members.values() {
            assert_eq!(inst.get(name), Some(&Value::str("ann")));
        }
        // The same over S_person (adds the person level).
        let open_p = db.intension().specialisation().s_set(person).clone();
        let sections_p = p.sections_over(&open_p);
        assert_eq!(sections_p.len(), 1);
    }

    #[test]
    fn incompatible_families_are_rejected() {
        let db = loaded_db();
        let p = ExtensionPresheaf::new(&db);
        let s = db.schema();
        let person = s.type_id("person").unwrap();
        let employee = s.type_id("employee").unwrap();
        let open = BitSet::from_indices(s.type_count(), [person.index(), employee.index()]);
        // Mix ann's employee instance with bob's person projection.
        let ann_emp = db
            .extension(employee)
            .iter()
            .find(|t| t.get(s.attr_id("name").unwrap()) == Some(&Value::str("ann")))
            .unwrap()
            .clone();
        let bob_person = db
            .extension(person)
            .iter()
            .find(|t| t.get(s.attr_id("name").unwrap()) == Some(&Value::str("bob")))
            .unwrap()
            .clone();
        let fam = Family {
            members: [(person, bob_person), (employee, ann_emp)]
                .into_iter()
                .collect(),
        };
        assert!(!p.is_section(&open, &fam));
    }

    #[test]
    fn singleton_opens_have_extension_many_sections() {
        let db = loaded_db();
        let p = ExtensionPresheaf::new(&db);
        let s = db.schema();
        let manager = s.type_id("manager").unwrap();
        // S_manager = {manager} is open; sections = manager extension.
        let open = db.intension().specialisation().s_set(manager).clone();
        assert_eq!(p.sections_over(&open).len(), db.extension(manager).len());
    }

    #[test]
    fn locality_holds_on_covers() {
        let db = loaded_db();
        let p = ExtensionPresheaf::new(&db);
        let s = db.schema();
        let spec = db.intension().specialisation();
        let person = s.type_id("person").unwrap();
        let employee = s.type_id("employee").unwrap();
        let manager = s.type_id("manager").unwrap();
        // Cover S_employee by {S_manager, S_worksfor, S_employee}: the
        // trivial cover including the open itself.
        let open = spec.s_set(employee).clone();
        let cover = vec![spec.s_set(manager).clone(), open.clone()];
        assert!(p.locality_holds(&open, &cover));
        let _ = person;
    }

    #[test]
    fn gluing_succeeds_on_consistent_data() {
        let db = loaded_db();
        let p = ExtensionPresheaf::new(&db);
        let s = db.schema();
        let spec = db.intension().specialisation();
        let employee = s.type_id("employee").unwrap();
        let manager = s.type_id("manager").unwrap();
        let open = spec.s_set(manager).clone();
        // Trivial cover of S_manager by itself plus a sub-open.
        let cover = vec![open.clone()];
        assert_eq!(p.gluing_failures(&open, &cover), 0);
        let _ = employee;
    }
}
