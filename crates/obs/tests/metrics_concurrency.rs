//! The registry's primitives under real contention: concurrent writers
//! must lose no increments, and snapshot readers racing those writers
//! must never observe a torn histogram (`count != Σ buckets`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use toposem_obs::{Counter, EngineMetrics, Histogram, SIZE_BOUNDS};

#[test]
fn counters_lose_nothing_under_contention() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;
    let c = Arc::new(Counter::default());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let c = Arc::clone(&c);
            thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
}

#[test]
fn histogram_totals_exact_under_contention() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    let h = Arc::new(Histogram::new(SIZE_BOUNDS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Deterministic spread across buckets, including +Inf.
                    h.record((t * PER_THREAD + i) % 2048);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let s = h.snapshot();
    assert_eq!(s.count, THREADS * PER_THREAD);
    assert_eq!(s.counts.iter().sum::<u64>(), s.count);
    // Σ of 0..PER_THREAD*THREADS mod 2048, computed independently.
    let expected_sum: u64 = (0..THREADS * PER_THREAD).map(|v| v % 2048).sum();
    assert_eq!(s.sum, expected_sum);
}

/// Readers snapshotting mid-write must always see `count == Σ buckets`
/// and a monotonically non-decreasing count — the no-torn-read contract.
#[test]
fn histogram_snapshots_are_never_torn() {
    let h = Arc::new(Histogram::new(SIZE_BOUNDS));
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..4u64)
        .map(|t| {
            let h = Arc::clone(&h);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    h.record((t + i) % 300);
                    i += 1;
                }
                i
            })
        })
        .collect();
    let mut last_count = 0u64;
    for _ in 0..10_000 {
        let s = h.snapshot();
        assert_eq!(
            s.counts.iter().sum::<u64>(),
            s.count,
            "torn histogram snapshot"
        );
        assert!(s.count >= last_count, "histogram count went backwards");
        last_count = s.count;
    }
    stop.store(true, Ordering::Relaxed);
    let written: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
    assert_eq!(h.snapshot().count, written);
}

/// A full registry hammered from many threads across several metric
/// families at once: every increment lands, and racing
/// `MetricsSnapshot`s stay internally consistent.
#[test]
fn registry_snapshot_consistent_under_mixed_load() {
    const THREADS: u64 = 6;
    const PER_THREAD: u64 = 10_000;
    let m = Arc::new(EngineMetrics::new());
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let m = Arc::clone(&m);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut snaps = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let s = m.snapshot();
                assert_eq!(
                    s.wal.fsync_ns.counts.iter().sum::<u64>(),
                    s.wal.fsync_ns.count
                );
                assert_eq!(
                    s.wal.group_commit_batch.counts.iter().sum::<u64>(),
                    s.wal.group_commit_batch.count
                );
                snaps += 1;
            }
            snaps
        })
    };
    let writers: Vec<_> = (0..THREADS)
        .map(|t| {
            let m = Arc::clone(&m);
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    m.plan_cache_hits.inc();
                    m.queries_planned.inc();
                    m.query_rows_returned.add(3);
                    m.wal.fsync_ns.record(1_000 * (t + 1));
                    m.wal.group_commit_batch.record(i % 64);
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let snaps = reader.join().unwrap();
    assert!(snaps > 0, "reader never snapshotted");

    let total = THREADS * PER_THREAD;
    let s = m.snapshot();
    assert_eq!(s.plan_cache.hits, total);
    assert_eq!(s.queries.planned, total);
    assert_eq!(s.queries.rows_returned, 3 * total);
    assert_eq!(s.wal.fsync_ns.count, total);
    assert_eq!(s.wal.group_commit_batch.count, total);
}
