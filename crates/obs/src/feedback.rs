//! Feedback-driven selectivity corrections.
//!
//! The planner's static estimates come from min/max interpolation and
//! distinct counts, which misprice skew: a range predicate over a
//! zipfian attribute can look like "most of the table" when it matches
//! a handful of rows. This module closes the loop. Every profiled
//! execution compares the estimated row count of each cardinality-
//! bearing operator against what the operator actually produced and
//! folds the ratio into a [`SelectivityFeedback`] cache keyed on
//! `(entity type, attribute, predicate class)` and scoped to a
//! statistics epoch. The next planning pass multiplies its static
//! estimate by the learned correction.
//!
//! Design points, each load-bearing:
//!
//! - **Epoch scoping.** Corrections describe the data distribution at a
//!   particular statistics epoch. A lookup under any other epoch
//!   returns the neutral `1.0`, and the first observation under a newer
//!   epoch clears the cache — so DDL or bulk mutation can never be
//!   priced with stale skew knowledge.
//! - **Decayed updates.** Corrections are a geometric moving average
//!   with weight `1/min(n, DECAY_WINDOW)`: later observations damp
//!   noise. A key's *first* observation is confidence-scaled — an
//!   extreme miss (beyond `REPLAN_FACTOR`²) is adopted outright, since
//!   one profiled execution is enough to fix a badly mispriced plan,
//!   while a moderate miss adopts only its square root until a second
//!   run confirms the direction.
//! - **Clamping.** A pathological q-error cannot zero out or explode a
//!   cost: corrections live in `[MIN_CORRECTION, MAX_CORRECTION]`.
//! - **Re-plan generation.** When a key's correction drifts
//!   [`REPLAN_FACTOR`]× away from the value the current plans were
//!   priced with, the global [`generation`](SelectivityFeedback::generation)
//!   bumps. The engine folds the generation into its plan-cache epoch,
//!   so cached plans priced before the drift are invalidated instead of
//!   served forever. The threshold is confirmation-scaled: a key backed
//!   by a single observation needs `REPLAN_FACTOR`² of drift — one
//!   outlier run corrects its own query's next plan but does not churn
//!   every cached plan until a second run corroborates it.
//! - **Significance gate.** Nodes where both the estimate and the
//!   actual are tiny (under [`MIN_SIGNIFICANT_ROWS`]) are not recorded:
//!   at that scale the ratio is mostly integer-rounding noise and a
//!   correction could only churn plans whose costs are all ≈ equal
//!   anyway.
//!
//! The cache lives in `toposem-obs` (which depends on nothing) and is
//! threaded into the storage layer's `Statistics` by the engine; the
//! keys are therefore raw `u32` indices rather than the core crate's
//! typed ids.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::metrics::Counter;

/// Corrections below/above these bounds are clamped; a pathological
/// observed/estimated ratio can dent a cost estimate but never zero it
/// out or blow it up.
pub const MIN_CORRECTION: f64 = 1e-3;
/// See [`MIN_CORRECTION`].
pub const MAX_CORRECTION: f64 = 1e3;

/// When a key's correction drifts this factor away from the value the
/// current generation of plans was priced with, the feedback generation
/// bumps and cached plans go stale.
pub const REPLAN_FACTOR: f64 = 2.0;

/// Effective window of the geometric moving average: observation `n`
/// gets weight `1/min(n, DECAY_WINDOW)`, so the first observation for a
/// key adopts the ratio outright and history beyond ~8 runs decays.
pub const DECAY_WINDOW: u64 = 8;

/// Observations where both the estimate and the actual row count are
/// below this are ignored: the ratio of two single-digit counts is
/// rounding noise, not skew.
pub const MIN_SIGNIFICANT_ROWS: f64 = 100.0;

/// Which kind of predicate produced an estimate. Part of the cache key:
/// an attribute can be well-priced for equality (distinct counts are
/// robust) while its range interpolation is badly fooled by outliers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PredClass {
    /// Equality seek/filter (`attr = v`).
    Eq,
    /// Range or other non-equality filter (`attr ≥ v`, `attr in [lo,hi]`).
    Range,
    /// Join output cardinality, keyed on the dominant join attribute.
    Join,
}

/// Cache key: entity type index, attribute index, predicate class. The
/// indices are the `u32` forms of the core crate's `TypeId`/`AttrId`
/// (obs depends on nothing, so it cannot name those types).
/// [`FeedbackKey::NO_ATTR`] marks estimates not tied to a single
/// attribute (e.g. a key-less cross join).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FeedbackKey {
    /// Entity-type index (`TypeId::index()`); for joins, the output
    /// type.
    pub ty: u32,
    /// Attribute index (`AttrId::index()`), or [`FeedbackKey::NO_ATTR`].
    pub attr: u32,
    /// Predicate class.
    pub class: PredClass,
}

impl FeedbackKey {
    /// Sentinel attribute index for estimates without a single
    /// governing attribute.
    pub const NO_ATTR: u32 = u32::MAX;
}

/// One observation to fold into the cache: a node's estimated and
/// actual row counts, attributed (evenly, in log space) across the keys
/// that produced the estimate.
#[derive(Clone, Debug)]
pub struct FeedbackObservation {
    /// Keys that contributed to the node's estimate (e.g. one per
    /// conjunct of a fused filter).
    pub keys: Vec<FeedbackKey>,
    /// Estimated output rows at plan time (correction already applied,
    /// so the residual ratio is exactly the remaining error).
    pub est_rows: f64,
    /// Rows the operator actually produced.
    pub act_rows: f64,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    /// Current correction factor (multiply the static estimate by
    /// this).
    corr: f64,
    /// The correction in force when the current plan generation was
    /// priced; drifting `REPLAN_FACTOR`× away from it bumps the
    /// generation.
    planned_corr: f64,
    /// Observations folded into `corr` (saturating).
    observations: u64,
}

#[derive(Debug, Default)]
struct State {
    /// Statistics epoch the entries describe.
    epoch: u64,
    map: HashMap<FeedbackKey, Entry>,
}

/// Point-in-time summary of the cache, for metrics snapshots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FeedbackStats {
    /// Observations folded into corrections.
    pub observations: u64,
    /// Non-neutral corrections handed to the planner.
    pub corrections_applied: u64,
    /// Generation bumps (corrections that crossed the re-plan
    /// threshold).
    pub replans: u64,
    /// Current feedback generation.
    pub generation: u64,
    /// Distinct keys with a learned correction.
    pub entries: u64,
}

/// The feedback cache. One per engine, shared between the statistics
/// layer (lookups during planning) and the profiler (observations after
/// execution). All methods are safe to call concurrently.
#[derive(Debug)]
pub struct SelectivityFeedback {
    enabled: bool,
    state: Mutex<State>,
    generation: AtomicU64,
    /// Non-neutral corrections handed out via [`correction`](Self::correction).
    pub corrections_applied: Counter,
    /// Observations folded in via [`observe`](Self::observe).
    pub observations: Counter,
    /// Generation bumps.
    pub replans: Counter,
}

impl Default for SelectivityFeedback {
    fn default() -> Self {
        Self::new()
    }
}

impl SelectivityFeedback {
    /// A cache whose enablement follows `TOPOSEM_FEEDBACK` (enabled
    /// unless the variable is set to `0` or empty). The variable is
    /// read once, at construction: an engine keeps the behaviour it was
    /// built with.
    pub fn new() -> Self {
        let enabled = std::env::var("TOPOSEM_FEEDBACK")
            .map_or(true, |v| v.trim() != "0" && !v.trim().is_empty());
        Self::with_enabled(enabled)
    }

    /// A cache with enablement fixed by the caller (tests; the env-var
    /// path goes through [`new`](Self::new)).
    pub fn with_enabled(enabled: bool) -> Self {
        SelectivityFeedback {
            enabled,
            state: Mutex::new(State::default()),
            generation: AtomicU64::new(0),
            corrections_applied: Counter::default(),
            observations: Counter::default(),
            replans: Counter::default(),
        }
    }

    /// Whether this cache records and applies corrections at all.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The re-plan generation: bumped whenever a correction crosses
    /// [`REPLAN_FACTOR`] relative to the value current plans were
    /// priced with. Monotonically non-decreasing; the engine adds it to
    /// the statistics epoch to form the plan-cache epoch.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Distinct keys currently holding a correction.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// True when no corrections have been learned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time summary for metrics snapshots.
    pub fn stats(&self) -> FeedbackStats {
        FeedbackStats {
            observations: self.observations.get(),
            corrections_applied: self.corrections_applied.get(),
            replans: self.replans.get(),
            generation: self.generation(),
            entries: self.len() as u64,
        }
    }

    /// The multiplicative correction for `key` at `epoch`: the learned
    /// factor, or `1.0` when disabled, when no observation exists, or
    /// when the cache describes a different epoch (corrections never
    /// survive a stats-epoch bump).
    pub fn correction(&self, epoch: u64, key: FeedbackKey) -> f64 {
        if !self.enabled {
            return 1.0;
        }
        let state = self.lock();
        if state.epoch != epoch {
            return 1.0;
        }
        match state.map.get(&key) {
            Some(e) => {
                let c = e.corr.clamp(MIN_CORRECTION, MAX_CORRECTION);
                if c != 1.0 {
                    self.corrections_applied.inc();
                }
                c
            }
            None => 1.0,
        }
    }

    /// Fold a batch of observations from one profiled execution into
    /// the cache. `epoch` is the statistics epoch the plan was priced
    /// under; observations from an older epoch are dropped, and the
    /// first batch from a newer epoch clears every correction (the data
    /// changed — relearn).
    pub fn observe(&self, epoch: u64, observations: &[FeedbackObservation]) {
        if !self.enabled || observations.is_empty() {
            return;
        }
        let mut state = self.lock();
        if epoch > state.epoch {
            state.map.clear();
            state.epoch = epoch;
        } else if epoch < state.epoch {
            return;
        }
        let mut bumps = 0u64;
        for obs in observations {
            if obs.keys.is_empty() || obs.est_rows.max(obs.act_rows) < MIN_SIGNIFICANT_ROWS {
                continue;
            }
            // The residual ratio is attributed evenly across the keys
            // in log space: k conjuncts each absorb ratio^(1/k), so the
            // product of the per-key corrections reproduces the node's
            // observed ratio.
            let ratio = (obs.act_rows.max(1.0) / obs.est_rows.max(1.0))
                .clamp(MIN_CORRECTION, MAX_CORRECTION);
            let share = ratio.powf(1.0 / obs.keys.len() as f64);
            self.observations.inc();
            for &key in &obs.keys {
                let e = state.map.entry(key).or_insert(Entry {
                    corr: 1.0,
                    planned_corr: 1.0,
                    observations: 0,
                });
                e.observations = e.observations.saturating_add(1);
                let w = 1.0 / e.observations.min(DECAY_WINDOW) as f64;
                // Confidence damping: a key's very first observation is
                // one sample. When the miss is *moderate* (inside the
                // REPLAN_FACTOR² band) only its square root is adopted —
                // halving the step in log space — until a second run
                // corroborates the direction. An extreme first miss is
                // adopted outright: at that magnitude the plan is wrong
                // whatever the noise, and waiting costs a bad execution.
                let moderate = share > 1.0 / (REPLAN_FACTOR * REPLAN_FACTOR)
                    && share < REPLAN_FACTOR * REPLAN_FACTOR;
                let eff_share = if e.observations == 1 && moderate {
                    share.sqrt()
                } else {
                    share
                };
                // Geometric EWMA: corrections are multiplicative, so
                // the average lives in log space. The first observation
                // (w = 1) adopts `target` outright.
                let target = e.corr * eff_share;
                e.corr =
                    (e.corr.powf(1.0 - w) * target.powf(w)).clamp(MIN_CORRECTION, MAX_CORRECTION);
                let drift = (e.corr / e.planned_corr).max(e.planned_corr / e.corr);
                // Confirmation-scaled replan threshold: one observation
                // is a sample, not a trend. A key seen only once must
                // drift REPLAN_FACTOR² before every cached plan is
                // repriced on its word — the correction itself is still
                // adopted, so the *next* planning pass of the affected
                // query is fixed either way — while a corroborated key
                // (≥ 2 observations) replans at the standard factor.
                // Without this, a single unlucky run (cold cache, lock
                // convoy, one skewed batch) churns the whole plan cache.
                let threshold = if e.observations < 2 {
                    REPLAN_FACTOR * REPLAN_FACTOR
                } else {
                    REPLAN_FACTOR
                };
                if drift >= threshold {
                    e.planned_corr = e.corr;
                    bumps += 1;
                }
            }
        }
        drop(state);
        if bumps > 0 {
            self.replans.add(bumps);
            self.generation.fetch_add(bumps, Ordering::Relaxed);
        }
    }

    /// Snapshot of the learned corrections at `epoch` (empty for any
    /// other epoch), for tests and debugging.
    pub fn corrections(&self, epoch: u64) -> Vec<(FeedbackKey, f64)> {
        let state = self.lock();
        if state.epoch != epoch {
            return Vec::new();
        }
        let mut v: Vec<_> = state.map.iter().map(|(k, e)| (*k, e.corr)).collect();
        v.sort_by_key(|(k, _)| (k.ty, k.attr, k.class as u8));
        v
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(ty: u32, attr: u32, class: PredClass) -> FeedbackKey {
        FeedbackKey { ty, attr, class }
    }

    fn obs(keys: &[FeedbackKey], est: f64, act: f64) -> FeedbackObservation {
        FeedbackObservation {
            keys: keys.to_vec(),
            est_rows: est,
            act_rows: act,
        }
    }

    #[test]
    fn first_observation_adopts_the_ratio() {
        let fb = SelectivityFeedback::with_enabled(true);
        let k = key(0, 1, PredClass::Range);
        fb.observe(0, &[obs(&[k], 4000.0, 40.0)]);
        let c = fb.correction(0, k);
        assert!((c - 0.01).abs() < 1e-9, "corr = {c}");
    }

    #[test]
    fn later_observations_are_damped() {
        let fb = SelectivityFeedback::with_enabled(true);
        let k = key(0, 1, PredClass::Range);
        fb.observe(0, &[obs(&[k], 1000.0, 100.0)]);
        assert!((fb.correction(0, k) - 0.1).abs() < 1e-9);
        // A contradicting observation (the corrected estimate of 100
        // undershot a 10× larger actual) pulls the correction towards
        // neutral, but only halfway in log space: sqrt(0.1 · 1.0) ≈ 0.316.
        fb.observe(0, &[obs(&[k], 100.0, 1000.0)]);
        let c = fb.correction(0, k);
        assert!(c > 0.1 && c < 1.0, "corr = {c}");
    }

    #[test]
    fn corrections_are_clamped() {
        let fb = SelectivityFeedback::with_enabled(true);
        let k = key(0, 1, PredClass::Range);
        // Pathological q-error: estimate 1e12× too high, repeatedly.
        for _ in 0..32 {
            fb.observe(0, &[obs(&[k], 1e14, 100.0)]);
        }
        assert_eq!(fb.correction(0, k), MIN_CORRECTION);
        let k2 = key(0, 2, PredClass::Eq);
        for _ in 0..32 {
            fb.observe(0, &[obs(&[k2], 100.0, 1e14)]);
        }
        assert_eq!(fb.correction(0, k2), MAX_CORRECTION);
    }

    #[test]
    fn epoch_bump_resets_corrections() {
        let fb = SelectivityFeedback::with_enabled(true);
        let k = key(0, 1, PredClass::Range);
        fb.observe(3, &[obs(&[k], 4000.0, 40.0)]);
        assert!(fb.correction(3, k) < 1.0);
        // A lookup at a newer epoch is already neutral …
        assert_eq!(fb.correction(4, k), 1.0);
        // … and the first observation at the newer epoch clears the map.
        fb.observe(4, &[obs(&[key(0, 9, PredClass::Eq)], 500.0, 500.0)]);
        assert_eq!(fb.corrections(3), Vec::new());
        assert_eq!(fb.correction(4, k), 1.0);
        // Late observations from the old epoch are dropped, not merged.
        fb.observe(3, &[obs(&[k], 4000.0, 40.0)]);
        assert_eq!(fb.correction(4, k), 1.0);
    }

    #[test]
    fn replan_threshold_bumps_generation() {
        let fb = SelectivityFeedback::with_enabled(true);
        let k = key(0, 1, PredClass::Range);
        assert_eq!(fb.generation(), 0);
        // 1.25× off: learned, but under the 2× replan threshold.
        fb.observe(0, &[obs(&[k], 1000.0, 800.0)]);
        assert_eq!(fb.generation(), 0);
        assert!(fb.correction(0, k) < 1.0);
        // 100× off: crosses the threshold, plans must be repriced.
        let k2 = key(0, 2, PredClass::Range);
        fb.observe(0, &[obs(&[k2], 10_000.0, 100.0)]);
        assert_eq!(fb.generation(), 1);
        assert_eq!(fb.replans.get(), 1);
        // Stable follow-ups do not churn the generation.
        fb.observe(0, &[obs(&[k2], 110.0, 100.0)]);
        assert_eq!(fb.generation(), 1);
    }

    #[test]
    fn single_observation_outlier_does_not_replan_until_confirmed() {
        let fb = SelectivityFeedback::with_enabled(true);
        let k = key(0, 1, PredClass::Range);
        // A moderate outlier (3× off) in one run: the correction is
        // adopted — the affected query's next plan is repriced with it
        // — but the generation holds, so one unlucky sample does not
        // invalidate every cached plan.
        fb.observe(0, &[obs(&[k], 300.0, 900.0)]);
        // Confidence damping: the unconfirmed moderate miss adopts √3,
        // not the full 3×.
        assert!((fb.correction(0, k) - 3.0_f64.sqrt()).abs() < 1e-9);
        assert_eq!(fb.generation(), 0, "single-run outlier must not replan");
        assert_eq!(fb.replans.get(), 0);
        // A second run confirming the drift crosses the standard
        // threshold and replans.
        fb.observe(0, &[obs(&[k], 900.0, 8100.0)]);
        assert!(fb.generation() >= 1, "corroborated drift must replan");
    }

    #[test]
    fn moderate_first_observation_is_damped_until_confirmed() {
        let fb = SelectivityFeedback::with_enabled(true);
        let k = key(2, 7, PredClass::Range);
        // One run at 0.5× (inside the moderate band): adopt √0.5 only.
        fb.observe(0, &[obs(&[k], 1000.0, 500.0)]);
        let first = fb.correction(0, k);
        assert!((first - 0.5_f64.sqrt()).abs() < 1e-9, "corr = {first}");
        // A second run repeating the same ratio is confirmation: the
        // correction moves past the damped value toward the full 0.5×.
        fb.observe(0, &[obs(&[k], 1000.0, 500.0)]);
        let second = fb.correction(0, k);
        assert!(second < first, "confirmation must strengthen: {second}");
        // An extreme first observation on a fresh key is NOT damped —
        // magnitude is its own confirmation.
        let k2 = key(2, 8, PredClass::Eq);
        fb.observe(0, &[obs(&[k2], 10_000.0, 100.0)]);
        assert!((fb.correction(0, k2) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn extreme_single_observation_still_replans() {
        // The damping is for moderate outliers; a 1000× misestimate in
        // one run is past REPLAN_FACTOR² and must reprice immediately
        // (the planner feedback-loop tests depend on one-shot repair).
        let fb = SelectivityFeedback::with_enabled(true);
        let k = key(0, 1, PredClass::Range);
        fb.observe(0, &[obs(&[k], 100_000.0, 100.0)]);
        assert_eq!(fb.generation(), 1);
    }

    #[test]
    fn insignificant_observations_are_ignored() {
        let fb = SelectivityFeedback::with_enabled(true);
        let k = key(0, 1, PredClass::Eq);
        fb.observe(0, &[obs(&[k], 8.0, 2.0)]);
        assert_eq!(fb.correction(0, k), 1.0);
        assert_eq!(fb.observations.get(), 0);
        // One significant side is enough.
        fb.observe(0, &[obs(&[k], 400.0, 2.0)]);
        assert!(fb.correction(0, k) < 1.0);
    }

    #[test]
    fn multi_key_attribution_splits_in_log_space() {
        let fb = SelectivityFeedback::with_enabled(true);
        let a = key(0, 1, PredClass::Eq);
        let b = key(0, 2, PredClass::Range);
        // Two conjuncts, combined ratio 0.01 → each absorbs 0.1.
        fb.observe(0, &[obs(&[a, b], 10_000.0, 100.0)]);
        assert!((fb.correction(0, a) - 0.1).abs() < 1e-9);
        assert!((fb.correction(0, b) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn disabled_cache_is_inert() {
        let fb = SelectivityFeedback::with_enabled(false);
        let k = key(0, 1, PredClass::Range);
        fb.observe(0, &[obs(&[k], 4000.0, 40.0)]);
        assert_eq!(fb.correction(0, k), 1.0);
        assert!(fb.is_empty());
        assert_eq!(fb.generation(), 0);
    }
}
