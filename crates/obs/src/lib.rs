//! # toposem-obs
//!
//! Observability primitives for the toposem engine: the pieces every
//! other layer (WAL, storage engine, planner, executor) records into,
//! with no dependency on any of them.
//!
//! Three layers, mirroring how the engine is observed in practice:
//!
//! 1. **[`metrics`]** — an engine-wide registry of cheap atomic
//!    counters, gauges, and fixed-bucket histograms ([`EngineMetrics`]),
//!    snapshot into a typed [`MetricsSnapshot`] and rendered in the
//!    Prometheus text exposition format (hand-written, no external
//!    crates — consistent with the workspace's vendored-stand-in rule).
//! 2. **[`profile`]** — per-operator execution profiles: the executor
//!    accumulates rows/time/detail into a [`PlanProfile`] (one
//!    [`NodeProfile`] of relaxed atomics per physical operator, merged
//!    per worker so morsel loops never contend on a shared cache line),
//!    and the planner zips it with its estimates into an [`OpProfile`]
//!    tree carrying q-error = max(est/act, act/est) per node.
//! 3. **[`trace`]** — a bounded ring of recent [`QueryTrace`] entries
//!    (fingerprint, plan hash, plan/exec/commit phase timings) with a
//!    configurable slow-query threshold (`TOPOSEM_SLOW_QUERY_MS`) that
//!    retains the full operator profile for offenders, and a
//!    [`worst_plans`](TraceRing::worst_plans) q-error watchdog over the
//!    retained profiles.
//! 4. **[`feedback`]** — the closed loop: a [`SelectivityFeedback`]
//!    cache of observed-vs-estimated cardinality corrections, recorded
//!    from every profiled execution and consumed by the planner's cost
//!    model (clamped, epoch-scoped, with a re-plan generation that
//!    invalidates cached plans when a correction drifts).
//!
//! Everything here is safe to call from hot paths: recording is a
//! handful of relaxed atomic adds and a monotonic clock read; the only
//! lock is the trace ring's mutex, taken once per query.

pub mod feedback;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use feedback::{
    FeedbackKey, FeedbackObservation, FeedbackStats, PredClass, SelectivityFeedback,
    MIN_SIGNIFICANT_ROWS, REPLAN_FACTOR,
};
pub use metrics::{
    Counter, EngineMetrics, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, MvccStats,
    PlanCacheStats, QueryMetrics, RecoveryStats, ReplicationMetrics, ReplicationStats,
    SessionStats, TxnStats, WalMetrics, WalStats, LATENCY_NS_BOUNDS, QERROR_X100_BOUNDS,
    SIZE_BOUNDS,
};
pub use profile::{q_error, NodeProfile, NodeSnapshot, OpProfile, PlanProfile, QueryProfile};
pub use trace::{current_session, set_current_session, QueryTrace, TraceRing};
