//! Engine-wide metrics registry: atomic counters, gauges, and
//! fixed-bucket histograms, with a typed snapshot API and a
//! Prometheus-style text exporter.
//!
//! Recording is always-on and near-free: every primitive is a relaxed
//! atomic operation, so instrumented hot paths (WAL flush, plan-cache
//! lookup, morsel loops) pay a handful of nanoseconds. Snapshots are
//! lock-free reads; a histogram snapshot derives its total count from
//! the per-bucket counts it just read, so `count == Σ buckets` holds by
//! construction and readers never observe a torn histogram.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::feedback::{FeedbackStats, SelectivityFeedback};

/// Monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value (e.g. the current statistics
/// epoch).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add one (e.g. a session opening).
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtract one, saturating at zero so a double-close can never
    /// wrap the gauge around.
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bounds (inclusive, in ns) for latency histograms: 1µs … 10s,
/// one bucket per decade plus a 3× subdivision, then +Inf.
pub const LATENCY_NS_BOUNDS: &[u64] = &[
    1_000,
    3_000,
    10_000,
    30_000,
    100_000,
    300_000,
    1_000_000,
    3_000_000,
    10_000_000,
    30_000_000,
    100_000_000,
    300_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// Upper bounds (inclusive) for size/count histograms (e.g. group-commit
/// batch sizes): powers of two up to 1024, then +Inf.
pub const SIZE_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

/// Upper bounds for the planner q-error histogram, in hundredths (a
/// recorded value of `q × 100`, so `le="150"` means q ≤ 1.5). A healthy
/// feedback loop concentrates mass in the first two buckets.
pub const QERROR_X100_BOUNDS: &[u64] = &[110, 150, 200, 400, 1_000, 10_000, 100_000, 1_000_000];

/// Fixed-bucket histogram. Buckets are non-cumulative atomics; the
/// final bucket is the implicit `+Inf` overflow.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram over the given static bucket bounds (ascending).
    pub fn new(bounds: &'static [u64]) -> Self {
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        let i = self
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.bounds.len());
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Consistent point-in-time copy. The total count is derived from
    /// the bucket counts read here, never from a separate atomic, so
    /// `count == counts.iter().sum()` always holds.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            bounds: self.bounds,
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds; `counts` has one extra `+Inf` slot.
    pub bounds: &'static [u64],
    /// Per-bucket (non-cumulative) observation counts.
    pub counts: Vec<u64>,
    /// Total observations, equal to `counts.iter().sum()` by
    /// construction.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean observed value, or 0.0 with no observations.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn render_prometheus(&self, name: &str, help: &str, out: &mut String) {
        use std::fmt::Write;
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cumulative += c;
            match self.bounds.get(i) {
                Some(b) => {
                    let _ = writeln!(out, "{name}_bucket{{le=\"{b}\"}} {cumulative}");
                }
                None => {
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                }
            }
        }
        let _ = writeln!(out, "{name}_sum {}", self.sum);
        let _ = writeln!(out, "{name}_count {}", self.count);
    }
}

/// Metrics recorded by the write-ahead log. Kept as a separate struct
/// behind an `Arc` so the WAL crate can hold it without depending on
/// the engine (the dependency arrow stays storage → wal → obs).
#[derive(Debug)]
pub struct WalMetrics {
    /// Physical flushes (`flush()` + fsync) of the log.
    pub flushes: Counter,
    /// Wall time of each flush's `sync_data`, in nanoseconds.
    pub fsync_ns: Histogram,
    /// Commits acknowledged per group-commit flush (1 under
    /// `PerCommit`).
    pub group_commit_batch: Histogram,
    /// Checkpoints written.
    pub checkpoints: Counter,
    /// Wall time of each checkpoint, in nanoseconds.
    pub checkpoint_ns: Histogram,
}

impl Default for WalMetrics {
    fn default() -> Self {
        WalMetrics {
            flushes: Counter::default(),
            fsync_ns: Histogram::new(LATENCY_NS_BOUNDS),
            group_commit_batch: Histogram::new(SIZE_BOUNDS),
            checkpoints: Counter::default(),
            checkpoint_ns: Histogram::new(LATENCY_NS_BOUNDS),
        }
    }
}

/// Metrics recorded by the replication layer. Kept as a separate struct
/// behind an `Arc` (same dependency-arrow trick as [`WalMetrics`]) so
/// the replication crate records into the engine-wide registry without
/// obs depending on it. A primary's shipper updates the shipped side; a
/// follower updates both the shipped watermark it has *seen* and the
/// applied side, so `lag` is meaningful on whichever end exports it.
#[derive(Debug, Default)]
pub struct ReplicationMetrics {
    /// Highest LSN published through the segment transport (primary) or
    /// observed in the transport manifest (follower).
    pub shipped_lsn: Gauge,
    /// One past the last LSN the follower has applied to its engine.
    pub applied_lsn: Gauge,
    /// Segment publications through the transport (whole or partial).
    pub segments_shipped: Counter,
    /// Segment bytes pushed through the transport.
    pub bytes_shipped: Counter,
    /// Checkpoints published through the transport.
    pub checkpoints_shipped: Counter,
    /// WAL records a follower applied from the stream.
    pub records_applied: Counter,
    /// Times a follower re-bootstrapped from a newer checkpoint because
    /// the segments it needed were superseded.
    pub rebootstraps: Counter,
}

/// The engine-wide registry. One instance per [`Engine`]; every layer
/// records into it through an `Arc`.
///
/// [`Engine`]: https://docs.rs/ (toposem-storage)
#[derive(Debug)]
pub struct EngineMetrics {
    /// Plan-cache hits (fingerprint found at the current statistics
    /// epoch).
    pub plan_cache_hits: Counter,
    /// Plan-cache misses (absent, stale epoch, or unsupported cached
    /// plan).
    pub plan_cache_misses: Counter,
    /// Plans actually inserted into the cache.
    pub plan_cache_stores: Counter,
    /// Statistics-epoch bumps (mutations invalidating stats + plans).
    pub stats_epoch_bumps: Counter,
    /// Current statistics epoch.
    pub stats_epoch: Gauge,
    /// Explicit transactions begun.
    pub txn_begins: Counter,
    /// Transactions committed (explicit commits; autocommitted
    /// single-op transactions count too).
    pub txn_commits: Counter,
    /// Transactions rolled back.
    pub txn_aborts: Counter,
    /// Planned queries executed (`query_planned*`, `query_profiled*`,
    /// `explain_analyze`).
    pub queries_planned: Counter,
    /// Planned queries whose total time crossed the slow-query
    /// threshold.
    pub queries_slow: Counter,
    /// Rows returned by planned queries.
    pub query_rows_returned: Counter,
    /// Recoveries performed (`Engine::recover` / `from_scan`).
    pub recovery_runs: Counter,
    /// Committed transactions replayed during recovery.
    pub recovery_replayed_txns: Counter,
    /// Logical operations replayed during recovery.
    pub recovery_replayed_ops: Counter,
    /// Worst per-operator q-error of each planned query, recorded as
    /// `q × 100` (so the histogram can stay integral); a value of 100
    /// is a perfect estimate.
    pub planner_qerror: Histogram,
    /// MVCC snapshot rebuilds (a reader materialised a fresh committed
    /// epoch).
    pub snapshot_rebuilds: Counter,
    /// MVCC snapshot requests served from the cached epoch.
    pub snapshot_hits: Counter,
    /// Sessions opened over the engine's lifetime.
    pub sessions_opened: Counter,
    /// Sessions currently open.
    pub sessions_open: Gauge,
    /// Network connections accepted over the server's lifetime.
    pub connections_opened: Counter,
    /// Network connections currently open.
    pub connections_open: Gauge,
    /// WAL-layer metrics, shared with the attached [`Wal`].
    ///
    /// [`Wal`]: https://docs.rs/ (toposem-wal)
    pub wal: Arc<WalMetrics>,
    /// Replication-layer metrics, shared with a shipper (primary) or
    /// follower attached to this engine.
    pub repl: Arc<ReplicationMetrics>,
    /// Selectivity-feedback cache, shared with the statistics layer
    /// (same dependency-arrow trick as [`WalMetrics`]: storage holds it
    /// through obs without obs depending on storage).
    pub feedback: Arc<SelectivityFeedback>,
}

impl Default for EngineMetrics {
    fn default() -> Self {
        EngineMetrics {
            plan_cache_hits: Counter::default(),
            plan_cache_misses: Counter::default(),
            plan_cache_stores: Counter::default(),
            stats_epoch_bumps: Counter::default(),
            stats_epoch: Gauge::default(),
            txn_begins: Counter::default(),
            txn_commits: Counter::default(),
            txn_aborts: Counter::default(),
            queries_planned: Counter::default(),
            queries_slow: Counter::default(),
            query_rows_returned: Counter::default(),
            recovery_runs: Counter::default(),
            recovery_replayed_txns: Counter::default(),
            recovery_replayed_ops: Counter::default(),
            planner_qerror: Histogram::new(QERROR_X100_BOUNDS),
            snapshot_rebuilds: Counter::default(),
            snapshot_hits: Counter::default(),
            sessions_opened: Counter::default(),
            sessions_open: Gauge::default(),
            connections_opened: Counter::default(),
            connections_open: Gauge::default(),
            wal: Arc::new(WalMetrics::default()),
            repl: Arc::new(ReplicationMetrics::default()),
            feedback: Arc::new(SelectivityFeedback::new()),
        }
    }
}

impl EngineMetrics {
    /// Fresh registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Typed point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            plan_cache: PlanCacheStats {
                hits: self.plan_cache_hits.get(),
                misses: self.plan_cache_misses.get(),
                stores: self.plan_cache_stores.get(),
            },
            stats_epoch: self.stats_epoch.get(),
            stats_epoch_bumps: self.stats_epoch_bumps.get(),
            txn: TxnStats {
                begins: self.txn_begins.get(),
                commits: self.txn_commits.get(),
                aborts: self.txn_aborts.get(),
            },
            queries: QueryMetrics {
                planned: self.queries_planned.get(),
                slow: self.queries_slow.get(),
                rows_returned: self.query_rows_returned.get(),
            },
            recovery: RecoveryStats {
                runs: self.recovery_runs.get(),
                replayed_txns: self.recovery_replayed_txns.get(),
                replayed_ops: self.recovery_replayed_ops.get(),
            },
            wal: WalStats {
                flushes: self.wal.flushes.get(),
                fsync_ns: self.wal.fsync_ns.snapshot(),
                group_commit_batch: self.wal.group_commit_batch.snapshot(),
                checkpoints: self.wal.checkpoints.get(),
                checkpoint_ns: self.wal.checkpoint_ns.snapshot(),
            },
            repl: ReplicationStats {
                shipped_lsn: self.repl.shipped_lsn.get(),
                applied_lsn: self.repl.applied_lsn.get(),
                segments_shipped: self.repl.segments_shipped.get(),
                bytes_shipped: self.repl.bytes_shipped.get(),
                checkpoints_shipped: self.repl.checkpoints_shipped.get(),
                records_applied: self.repl.records_applied.get(),
                rebootstraps: self.repl.rebootstraps.get(),
            },
            planner_qerror: self.planner_qerror.snapshot(),
            mvcc: MvccStats {
                snapshot_rebuilds: self.snapshot_rebuilds.get(),
                snapshot_hits: self.snapshot_hits.get(),
            },
            sessions: SessionStats {
                opened: self.sessions_opened.get(),
                open: self.sessions_open.get(),
                connections_opened: self.connections_opened.get(),
                connections_open: self.connections_open.get(),
            },
            feedback: self.feedback.stats(),
        }
    }
}

/// MVCC snapshot counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MvccStats {
    /// Committed epochs materialised as immutable snapshots.
    pub snapshot_rebuilds: u64,
    /// Snapshot requests served from the cached epoch.
    pub snapshot_hits: u64,
}

/// Session and connection counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Sessions opened over the engine's lifetime.
    pub opened: u64,
    /// Sessions currently open.
    pub open: u64,
    /// Network connections accepted over the server's lifetime.
    pub connections_opened: u64,
    /// Network connections currently open.
    pub connections_open: u64,
}

/// Plan-cache counters (the typed form of the `PlanCache: …` line in
/// `explain` output).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups that returned a usable cached plan.
    pub hits: u64,
    /// Lookups that had to replan.
    pub misses: u64,
    /// Plans inserted into the cache.
    pub stores: u64,
}

/// Transaction counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TxnStats {
    /// `begin()` calls.
    pub begins: u64,
    /// Committed transactions.
    pub commits: u64,
    /// Rolled-back transactions.
    pub aborts: u64,
}

/// Planned-query counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryMetrics {
    /// Planned queries executed.
    pub planned: u64,
    /// Queries over the slow threshold.
    pub slow: u64,
    /// Total rows returned.
    pub rows_returned: u64,
}

/// Recovery counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Recoveries performed.
    pub runs: u64,
    /// Committed transactions replayed.
    pub replayed_txns: u64,
    /// Logical operations replayed.
    pub replayed_ops: u64,
}

/// WAL counters and histograms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalStats {
    /// Physical flushes.
    pub flushes: u64,
    /// fsync latency histogram (ns).
    pub fsync_ns: HistogramSnapshot,
    /// Commits per group-commit flush.
    pub group_commit_batch: HistogramSnapshot,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Checkpoint duration histogram (ns).
    pub checkpoint_ns: HistogramSnapshot,
}

/// Replication counters and watermarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Highest LSN published/observed through the transport.
    pub shipped_lsn: u64,
    /// One past the last LSN applied by the follower.
    pub applied_lsn: u64,
    /// Segment publications through the transport.
    pub segments_shipped: u64,
    /// Segment bytes pushed through the transport.
    pub bytes_shipped: u64,
    /// Checkpoints published through the transport.
    pub checkpoints_shipped: u64,
    /// WAL records applied from the stream.
    pub records_applied: u64,
    /// Follower re-bootstraps from a newer checkpoint.
    pub rebootstraps: u64,
}

impl ReplicationStats {
    /// Records shipped but not yet applied — the replication lag this
    /// end can observe (0 on an engine with no replication attached).
    pub fn lag(&self) -> u64 {
        self.shipped_lsn.saturating_sub(self.applied_lsn)
    }
}

/// Typed snapshot of the whole registry.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// Plan-cache counters.
    pub plan_cache: PlanCacheStats,
    /// Current statistics epoch.
    pub stats_epoch: u64,
    /// Epoch bumps since engine creation.
    pub stats_epoch_bumps: u64,
    /// Transaction counters.
    pub txn: TxnStats,
    /// Planned-query counters.
    pub queries: QueryMetrics,
    /// Recovery counters.
    pub recovery: RecoveryStats,
    /// WAL counters and histograms.
    pub wal: WalStats,
    /// Replication counters and watermarks.
    pub repl: ReplicationStats,
    /// Worst per-query q-error distribution (values are `q × 100`).
    pub planner_qerror: HistogramSnapshot,
    /// MVCC snapshot counters.
    pub mvcc: MvccStats,
    /// Session and connection counters.
    pub sessions: SessionStats,
    /// Selectivity-feedback counters.
    pub feedback: FeedbackStats,
}

impl MetricsSnapshot {
    /// Render in the Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        };
        counter(
            "toposem_plan_cache_hits_total",
            "Plan-cache lookups that returned a usable plan",
            self.plan_cache.hits,
        );
        counter(
            "toposem_plan_cache_misses_total",
            "Plan-cache lookups that had to replan",
            self.plan_cache.misses,
        );
        counter(
            "toposem_plan_cache_stores_total",
            "Plans inserted into the cache",
            self.plan_cache.stores,
        );
        counter(
            "toposem_stats_epoch_bumps_total",
            "Statistics-epoch bumps from mutations",
            self.stats_epoch_bumps,
        );
        counter(
            "toposem_txn_begins_total",
            "Explicit transactions begun",
            self.txn.begins,
        );
        counter(
            "toposem_txn_commits_total",
            "Transactions committed",
            self.txn.commits,
        );
        counter(
            "toposem_txn_aborts_total",
            "Transactions rolled back",
            self.txn.aborts,
        );
        counter(
            "toposem_queries_planned_total",
            "Planned queries executed",
            self.queries.planned,
        );
        counter(
            "toposem_queries_slow_total",
            "Planned queries over the slow-query threshold",
            self.queries.slow,
        );
        counter(
            "toposem_query_rows_returned_total",
            "Rows returned by planned queries",
            self.queries.rows_returned,
        );
        counter(
            "toposem_recovery_runs_total",
            "Recoveries performed",
            self.recovery.runs,
        );
        counter(
            "toposem_recovery_replayed_txns_total",
            "Committed transactions replayed during recovery",
            self.recovery.replayed_txns,
        );
        counter(
            "toposem_recovery_replayed_ops_total",
            "Logical operations replayed during recovery",
            self.recovery.replayed_ops,
        );
        counter(
            "toposem_wal_flushes_total",
            "Physical WAL flushes (write + fsync)",
            self.wal.flushes,
        );
        counter(
            "toposem_wal_checkpoints_total",
            "Checkpoints written",
            self.wal.checkpoints,
        );
        counter(
            "toposem_snapshot_rebuilds_total",
            "MVCC snapshot rebuilds (committed epochs materialised)",
            self.mvcc.snapshot_rebuilds,
        );
        counter(
            "toposem_snapshot_hits_total",
            "MVCC snapshot requests served from the cached epoch",
            self.mvcc.snapshot_hits,
        );
        counter(
            "toposem_sessions_opened_total",
            "Sessions opened",
            self.sessions.opened,
        );
        counter(
            "toposem_connections_opened_total",
            "Network connections accepted",
            self.sessions.connections_opened,
        );
        counter(
            "toposem_repl_segments_shipped_total",
            "WAL segment publications through the replication transport",
            self.repl.segments_shipped,
        );
        counter(
            "toposem_repl_bytes_shipped_total",
            "WAL segment bytes pushed through the replication transport",
            self.repl.bytes_shipped,
        );
        counter(
            "toposem_repl_checkpoints_shipped_total",
            "Checkpoints published through the replication transport",
            self.repl.checkpoints_shipped,
        );
        counter(
            "toposem_repl_records_applied_total",
            "WAL records applied from the replication stream",
            self.repl.records_applied,
        );
        counter(
            "toposem_repl_rebootstraps_total",
            "Follower re-bootstraps from a newer checkpoint",
            self.repl.rebootstraps,
        );
        counter(
            "toposem_feedback_corrections_applied",
            "Non-neutral selectivity corrections applied during planning",
            self.feedback.corrections_applied,
        );
        counter(
            "toposem_feedback_observations_total",
            "Observed-vs-estimated cardinality samples folded into the feedback cache",
            self.feedback.observations,
        );
        counter(
            "toposem_feedback_replans_total",
            "Corrections that crossed the re-plan threshold and invalidated cached plans",
            self.feedback.replans,
        );
        {
            let _ = writeln!(
                out,
                "# HELP toposem_stats_epoch Current statistics epoch\n# TYPE toposem_stats_epoch gauge\ntoposem_stats_epoch {}",
                self.stats_epoch
            );
            let _ = writeln!(
                out,
                "# HELP toposem_feedback_generation Current feedback re-plan generation\n# TYPE toposem_feedback_generation gauge\ntoposem_feedback_generation {}",
                self.feedback.generation
            );
            let _ = writeln!(
                out,
                "# HELP toposem_feedback_entries Distinct keys with a learned correction\n# TYPE toposem_feedback_entries gauge\ntoposem_feedback_entries {}",
                self.feedback.entries
            );
            let _ = writeln!(
                out,
                "# HELP toposem_sessions_open Sessions currently open\n# TYPE toposem_sessions_open gauge\ntoposem_sessions_open {}",
                self.sessions.open
            );
            let _ = writeln!(
                out,
                "# HELP toposem_connections_open Network connections currently open\n# TYPE toposem_connections_open gauge\ntoposem_connections_open {}",
                self.sessions.connections_open
            );
            let _ = writeln!(
                out,
                "# HELP toposem_repl_shipped_lsn Highest LSN published or observed through the replication transport\n# TYPE toposem_repl_shipped_lsn gauge\ntoposem_repl_shipped_lsn {}",
                self.repl.shipped_lsn
            );
            let _ = writeln!(
                out,
                "# HELP toposem_repl_applied_lsn One past the last LSN applied from the replication stream\n# TYPE toposem_repl_applied_lsn gauge\ntoposem_repl_applied_lsn {}",
                self.repl.applied_lsn
            );
            let _ = writeln!(
                out,
                "# HELP toposem_repl_lag_records Records shipped but not yet applied\n# TYPE toposem_repl_lag_records gauge\ntoposem_repl_lag_records {}",
                self.repl.lag()
            );
        }
        self.planner_qerror.render_prometheus(
            "toposem_planner_qerror",
            "Worst per-operator q-error of each planned query, times 100",
            &mut out,
        );
        self.wal.fsync_ns.render_prometheus(
            "toposem_wal_fsync_latency_ns",
            "WAL fsync latency in nanoseconds",
            &mut out,
        );
        self.wal.group_commit_batch.render_prometheus(
            "toposem_wal_group_commit_batch",
            "Commits acknowledged per WAL flush",
            &mut out,
        );
        self.wal.checkpoint_ns.render_prometheus(
            "toposem_wal_checkpoint_duration_ns",
            "Checkpoint duration in nanoseconds",
            &mut out,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_sum() {
        let h = Histogram::new(SIZE_BOUNDS);
        h.record(1);
        h.record(2);
        h.record(3); // -> le=4 bucket
        h.record(2_000_000); // -> +Inf
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 2_000_006);
        assert_eq!(s.counts.iter().sum::<u64>(), s.count);
        assert_eq!(s.counts[0], 1); // le=1
        assert_eq!(s.counts[1], 1); // le=2
        assert_eq!(s.counts[2], 1); // le=4
        assert_eq!(s.counts[SIZE_BOUNDS.len()], 1); // +Inf
    }

    #[test]
    fn prometheus_render_shape() {
        let m = EngineMetrics::new();
        m.plan_cache_hits.add(3);
        m.wal.fsync_ns.record(12_345);
        m.wal.group_commit_batch.record(7);
        m.planner_qerror.record(137);
        m.repl.shipped_lsn.set(42);
        m.repl.applied_lsn.set(40);
        m.repl.segments_shipped.add(5);
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("toposem_plan_cache_hits_total 3"));
        assert!(text.contains("# TYPE toposem_planner_qerror histogram"));
        assert!(text.contains("toposem_planner_qerror_bucket{le=\"150\"} 1"));
        assert!(text.contains("toposem_feedback_corrections_applied 0"));
        assert!(text.contains("toposem_feedback_generation 0"));
        assert!(text.contains("# TYPE toposem_wal_fsync_latency_ns histogram"));
        assert!(text.contains("toposem_wal_fsync_latency_ns_count 1"));
        assert!(text.contains("toposem_wal_fsync_latency_ns_sum 12345"));
        assert!(text.contains("toposem_wal_group_commit_batch_bucket{le=\"8\"} 1"));
        assert!(text.contains("toposem_wal_group_commit_batch_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("toposem_repl_shipped_lsn 42"));
        assert!(text.contains("toposem_repl_applied_lsn 40"));
        assert!(text.contains("toposem_repl_lag_records 2"));
        assert!(text.contains("toposem_repl_segments_shipped_total 5"));
    }
}
