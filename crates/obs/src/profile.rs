//! Per-operator execution profiles.
//!
//! The executor accumulates into a [`PlanProfile`] — one
//! [`NodeProfile`] of relaxed atomics per physical operator, addressed
//! by the operator's pre-order index in the plan tree. Workers count
//! into plain locals and merge with one atomic add per morsel or batch,
//! so profiling adds no shared-cacheline contention to morsel loops.
//!
//! The planner then zips the raw counters with its cost-model estimates
//! into an [`OpProfile`] tree: estimated vs actual rows, q-error,
//! inclusive wall time, and actual parallel degree per node — the data
//! behind `explain_analyze`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Raw atomic accumulator for one physical operator.
///
/// All fields use relaxed ordering: the executor joins its worker
/// threads before the profile is read, which provides the necessary
/// happens-before edge.
#[derive(Debug, Default)]
pub struct NodeProfile {
    /// Rows emitted by this operator (bag semantics, before any final
    /// set dedup).
    pub rows: AtomicU64,
    /// Rows or index entries inspected to produce the output (scanned
    /// tuples for scans/seeks, keys walked for index-only scans,
    /// combined input rows for merge joins).
    pub rows_in: AtomicU64,
    /// Inclusive wall time in nanoseconds (children included; fused
    /// pipeline stages share the pipeline's wall time).
    pub wall_ns: AtomicU64,
    /// Times the operator was evaluated.
    pub calls: AtomicU64,
    /// Maximum worker threads that actually ran this operator.
    pub workers: AtomicU64,
    /// Morsels processed (parallel paths only).
    pub morsels: AtomicU64,
    /// Hash partitions (parallel hash join) or distinct key buckets
    /// (serial hash join build).
    pub partitions: AtomicU64,
    /// Largest partition / bucket size — the skew numerator.
    pub max_partition: AtomicU64,
    /// Sorted runs merged (sort operators; 1 when serial).
    pub runs: AtomicU64,
    /// Columnar batches evaluated through the vectorised kernels.
    pub vec_batches: AtomicU64,
}

impl NodeProfile {
    /// Add emitted rows.
    pub fn add_rows(&self, n: u64) {
        self.rows.fetch_add(n, Ordering::Relaxed);
    }

    /// Add inspected rows.
    pub fn add_rows_in(&self, n: u64) {
        self.rows_in.fetch_add(n, Ordering::Relaxed);
    }

    /// Add inclusive wall time.
    pub fn add_wall_ns(&self, ns: u64) {
        self.wall_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Count one evaluation.
    pub fn add_call(&self) {
        self.calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the worker count of one evaluation (keeps the max).
    pub fn note_workers(&self, n: u64) {
        self.workers.fetch_max(n, Ordering::Relaxed);
    }

    /// Add processed morsels.
    pub fn add_morsels(&self, n: u64) {
        self.morsels.fetch_add(n, Ordering::Relaxed);
    }

    /// Record partition shape (count and largest).
    pub fn note_partitions(&self, count: u64, max: u64) {
        self.partitions.fetch_max(count, Ordering::Relaxed);
        self.max_partition.fetch_max(max, Ordering::Relaxed);
    }

    /// Add merged sorted runs.
    pub fn add_runs(&self, n: u64) {
        self.runs.fetch_add(n, Ordering::Relaxed);
    }

    /// Add vectorised (columnar) batches.
    pub fn add_vec_batches(&self, n: u64) {
        self.vec_batches.fetch_add(n, Ordering::Relaxed);
    }

    /// Plain-data copy.
    pub fn snapshot(&self) -> NodeSnapshot {
        NodeSnapshot {
            rows: self.rows.load(Ordering::Relaxed),
            rows_in: self.rows_in.load(Ordering::Relaxed),
            wall_ns: self.wall_ns.load(Ordering::Relaxed),
            calls: self.calls.load(Ordering::Relaxed),
            workers: self.workers.load(Ordering::Relaxed),
            morsels: self.morsels.load(Ordering::Relaxed),
            partitions: self.partitions.load(Ordering::Relaxed),
            max_partition: self.max_partition.load(Ordering::Relaxed),
            runs: self.runs.load(Ordering::Relaxed),
            vec_batches: self.vec_batches.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`NodeProfile`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeSnapshot {
    /// Rows emitted.
    pub rows: u64,
    /// Rows/keys inspected.
    pub rows_in: u64,
    /// Inclusive wall ns.
    pub wall_ns: u64,
    /// Evaluations.
    pub calls: u64,
    /// Max actual workers.
    pub workers: u64,
    /// Morsels processed.
    pub morsels: u64,
    /// Partitions / buckets.
    pub partitions: u64,
    /// Largest partition.
    pub max_partition: u64,
    /// Sorted runs.
    pub runs: u64,
    /// Columnar batches evaluated.
    pub vec_batches: u64,
}

/// Accumulator for a whole plan: one [`NodeProfile`] per operator,
/// indexed pre-order (root = 0, then each child subtree depth-first in
/// child order).
#[derive(Debug)]
pub struct PlanProfile {
    nodes: Vec<NodeProfile>,
}

impl PlanProfile {
    /// A profile for a plan with `node_count` operators.
    pub fn new(node_count: usize) -> Self {
        PlanProfile {
            nodes: (0..node_count).map(|_| NodeProfile::default()).collect(),
        }
    }

    /// The accumulator for the operator at pre-order index `id`.
    pub fn node(&self, id: usize) -> &NodeProfile {
        &self.nodes[id]
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for the degenerate zero-operator profile.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// One node of the annotated `explain_analyze` tree: the operator
/// description zipped with its estimate and observed execution.
#[derive(Clone, Debug, PartialEq)]
pub struct OpProfile {
    /// Operator description, e.g. `HashJoin [worksfor] on (dept)`.
    pub label: String,
    /// Planner-estimated output rows, with any feedback correction
    /// applied — the number the plan was actually priced with.
    pub est_rows: f64,
    /// Feedback correction folded into `est_rows` (1.0 when the
    /// estimate is purely static). The raw static estimate is
    /// `est_rows / corr`; rendering shows `est≈raw×corr` when the
    /// factor is non-neutral so feedback-steered plans are visible.
    pub corr: f64,
    /// Observed execution counters.
    pub stats: NodeSnapshot,
    /// Operator-specific detail (`build`, `probe`, `skew`, `runs`,
    /// `scanned`, `morsels`, …), rendered in order.
    pub detail: Vec<(&'static str, String)>,
    /// Child operators, in the same order `explain` renders them.
    pub children: Vec<OpProfile>,
}

impl OpProfile {
    /// q-error of the cardinality estimate: `max(est/act, act/est)`
    /// with both sides clamped to ≥ 1 so empty operators compare
    /// cleanly.
    pub fn q_error(&self) -> f64 {
        q_error(self.est_rows, self.stats.rows)
    }

    /// Actual parallel degree: observed workers, floored at 1.
    pub fn par(&self) -> u64 {
        self.stats.workers.max(1)
    }

    /// Render this subtree annotated with actuals, one operator per
    /// line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        // `est≈static×corr`: the factored form appears only when a
        // feedback correction steered the estimate, so a plain `est≈n`
        // still reads as "purely static estimate".
        let est = if (self.corr - 1.0).abs() > 5e-3 && self.corr > 0.0 {
            format!("{:.1}×{:.3}", self.est_rows / self.corr, self.corr)
        } else {
            format!("{:.1}", self.est_rows)
        };
        let _ = write!(
            out,
            "{pad}{}  (est≈{est}, act={}, q={:.2}, {}, par≈{})",
            self.label,
            self.stats.rows,
            self.q_error(),
            fmt_ns(self.stats.wall_ns),
            self.par(),
        );
        if !self.detail.is_empty() {
            let _ = write!(out, " [");
            for (i, (k, v)) in self.detail.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, " ");
                }
                let _ = write!(out, "{k}={v}");
            }
            let _ = write!(out, "]");
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }

    /// Pre-order walk over this subtree.
    pub fn walk(&self, f: &mut impl FnMut(&OpProfile)) {
        f(self);
        for c in &self.children {
            c.walk(f);
        }
    }
}

/// `max(est/act, act/est)` with both sides clamped to ≥ 1.
pub fn q_error(est_rows: f64, actual_rows: u64) -> f64 {
    let e = est_rows.max(1.0);
    let a = (actual_rows as f64).max(1.0);
    (e / a).max(a / e)
}

/// Human-readable duration from nanoseconds.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// A profiled query: phase timings plus the annotated operator tree.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryProfile {
    /// Fingerprint of the logical query (plan-cache key component).
    pub fingerprint: u64,
    /// Fingerprint of the chosen physical plan.
    pub plan_hash: u64,
    /// Planning phase (includes the plan-cache lookup) in ns.
    pub plan_ns: u64,
    /// Execution phase in ns.
    pub exec_ns: u64,
    /// Whether the plan came from the cache.
    pub cache_hit: bool,
    /// Rows in the final result.
    pub rows: u64,
    /// Annotated operator tree.
    pub root: OpProfile,
}

impl QueryProfile {
    /// Render the annotated plan tree plus a phase-timing footer.
    pub fn render(&self) -> String {
        let mut out = self.root.render();
        out.push_str(&format!(
            "Phases: plan {}, exec {} ({}, fingerprint {:016x}, plan hash {:016x}, {} rows)\n",
            fmt_ns(self.plan_ns),
            fmt_ns(self.exec_ns),
            if self.cache_hit {
                "plan cache hit"
            } else {
                "plan cache miss"
            },
            self.fingerprint,
            self.plan_hash,
            self.rows,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_symmetric_and_clamped() {
        assert_eq!(q_error(10.0, 10), 1.0);
        assert_eq!(q_error(20.0, 10), 2.0);
        assert_eq!(q_error(10.0, 20), 2.0);
        assert_eq!(q_error(0.0, 0), 1.0); // both clamp to 1
        assert_eq!(q_error(5.0, 0), 5.0);
    }

    #[test]
    fn render_includes_annotations() {
        let mut prof = OpProfile {
            label: "SeqScan person".into(),
            est_rows: 100.0,
            corr: 1.0,
            stats: NodeSnapshot {
                rows: 100,
                wall_ns: 1_500,
                workers: 4,
                ..NodeSnapshot::default()
            },
            detail: vec![("scanned", "100".into())],
            children: vec![],
        };
        prof.children.push(OpProfile {
            label: "child".into(),
            est_rows: 1.0,
            corr: 1.0,
            stats: NodeSnapshot::default(),
            detail: vec![],
            children: vec![],
        });
        let text = prof.render();
        assert!(text.contains("est≈100.0"));
        assert!(text.contains("act=100"));
        assert!(text.contains("q=1.00"));
        assert!(text.contains("par≈4"));
        assert!(text.contains("[scanned=100]"));
        assert!(text.starts_with("SeqScan person"));
        assert!(text.contains("\n  child"));
    }

    #[test]
    fn render_factors_feedback_corrections() {
        let prof = OpProfile {
            label: "IndexRangeSeek person.age".into(),
            est_rows: 40.0,
            corr: 0.01,
            stats: NodeSnapshot {
                rows: 40,
                ..NodeSnapshot::default()
            },
            detail: vec![],
            children: vec![],
        };
        let text = prof.render();
        // Corrected estimate shown as static×corr: 4000 × 0.01 = 40.
        assert!(text.contains("est≈4000.0×0.010"), "{text}");
        // q-error is judged against the corrected estimate.
        assert!(text.contains("q=1.00"), "{text}");
    }
}
