//! Structured event trace: a bounded ring buffer of recent query
//! executions with a configurable slow-query threshold.
//!
//! Every planned query pushes one [`QueryTrace`] (fingerprint, plan
//! hash, plan/exec/commit phase timings, row count). Entries whose
//! total time crosses the threshold are flagged slow and retain the
//! full per-operator [`QueryProfile`]; fast entries stay lightweight so
//! the always-on cost is one mutex push per query.
//!
//! The threshold defaults to 100ms and is configurable via the
//! `TOPOSEM_SLOW_QUERY_MS` environment variable (read at ring
//! construction) or [`TraceRing::set_slow_query_ms`] at runtime.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::profile::QueryProfile;

thread_local! {
    /// Session id attributed to traces pushed from this thread. The
    /// session layer runs each connection on its own thread, so a
    /// thread-local carries the attribution through the planner without
    /// threading a parameter down every execution path.
    static CURRENT_SESSION: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Sets the session id stamped into traces pushed from this thread
/// (`None` clears it). The session/server layer calls this when a
/// connection thread starts serving a session.
pub fn set_current_session(id: Option<u64>) {
    CURRENT_SESSION.set(id);
}

/// The session id traces pushed from this thread are attributed to.
pub fn current_session() -> Option<u64> {
    CURRENT_SESSION.get()
}

/// Default slow-query threshold when `TOPOSEM_SLOW_QUERY_MS` is unset.
pub const DEFAULT_SLOW_QUERY_MS: u64 = 100;

/// Default ring capacity.
pub const DEFAULT_TRACE_CAP: usize = 128;

/// One traced event. Queries populate `plan_ns`/`exec_ns`; durable
/// transaction commits are traced separately with `commit_ns` (their
/// fingerprint and plan hash are 0).
#[derive(Clone, Debug)]
pub struct QueryTrace {
    /// Logical-query fingerprint (0 for commit events).
    pub fingerprint: u64,
    /// Physical-plan fingerprint (0 for commit events).
    pub plan_hash: u64,
    /// Planning phase in ns (plan-cache lookup included).
    pub plan_ns: u64,
    /// Execution phase in ns.
    pub exec_ns: u64,
    /// Commit phase in ns (WAL append + flush; 0 for read-only
    /// queries).
    pub commit_ns: u64,
    /// Rows returned (queries) or operations committed (commits).
    pub rows: u64,
    /// Whether the plan came from the cache.
    pub cache_hit: bool,
    /// Whether total time crossed the slow-query threshold.
    pub slow: bool,
    /// Worst per-operator q-error observed for this execution (≥ 1.0;
    /// 0.0 when no cardinality comparison ran, e.g. feedback disabled
    /// or commit events).
    pub max_q: f64,
    /// Token of the enclosing explicit transaction, if any; commits
    /// attribute their `commit_ns` back to entries sharing the token.
    pub txn: Option<u64>,
    /// Session the query ran under, if any (stamped from the pushing
    /// thread's [`current_session`]).
    pub session: Option<u64>,
    /// Full operator profile — retained for slow queries and explicit
    /// `query_profiled` / `explain_analyze` runs.
    pub profile: Option<Arc<QueryProfile>>,
}

impl QueryTrace {
    /// Total traced time across phases.
    pub fn total_ns(&self) -> u64 {
        self.plan_ns + self.exec_ns + self.commit_ns
    }
}

/// Bounded ring of recent [`QueryTrace`] entries.
#[derive(Debug)]
pub struct TraceRing {
    cap: usize,
    slow_ns: AtomicU64,
    entries: Mutex<VecDeque<QueryTrace>>,
}

impl TraceRing {
    /// A ring holding the most recent `cap` entries, with the slow
    /// threshold taken from `TOPOSEM_SLOW_QUERY_MS` (falling back to
    /// [`DEFAULT_SLOW_QUERY_MS`]).
    pub fn new(cap: usize) -> Self {
        let ms = std::env::var("TOPOSEM_SLOW_QUERY_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(DEFAULT_SLOW_QUERY_MS);
        TraceRing {
            cap: cap.max(1),
            slow_ns: AtomicU64::new(ms.saturating_mul(1_000_000)),
            entries: Mutex::new(VecDeque::with_capacity(cap.max(1))),
        }
    }

    /// Current slow-query threshold in nanoseconds.
    pub fn slow_query_ns(&self) -> u64 {
        self.slow_ns.load(Ordering::Relaxed)
    }

    /// Override the slow-query threshold at runtime.
    pub fn set_slow_query_ms(&self, ms: u64) {
        self.slow_ns
            .store(ms.saturating_mul(1_000_000), Ordering::Relaxed);
    }

    /// Append an entry, evicting the oldest past capacity.
    pub fn push(&self, t: QueryTrace) {
        let mut q = self.entries.lock().unwrap();
        if q.len() == self.cap {
            q.pop_front();
        }
        q.push_back(t);
    }

    /// All retained entries, oldest first.
    pub fn recent(&self) -> Vec<QueryTrace> {
        self.entries.lock().unwrap().iter().cloned().collect()
    }

    /// Retained entries flagged slow, oldest first.
    pub fn slow(&self) -> Vec<QueryTrace> {
        self.entries
            .lock()
            .unwrap()
            .iter()
            .filter(|t| t.slow)
            .cloned()
            .collect()
    }

    /// The `n` retained entries with the worst (highest) recorded
    /// q-error that still hold a full operator profile, worst first —
    /// the q-error watchdog's working set: these are the plans whose
    /// estimates were furthest from reality.
    pub fn worst_plans(&self, n: usize) -> Vec<QueryTrace> {
        let mut v: Vec<QueryTrace> = self
            .entries
            .lock()
            .unwrap()
            .iter()
            .filter(|t| t.profile.is_some() && t.max_q > 0.0)
            .cloned()
            .collect();
        v.sort_by(|a, b| b.max_q.total_cmp(&a.max_q));
        v.truncate(n);
        v
    }

    /// Distribute a commit's `commit_ns` across the retained entries of
    /// transaction `txn` (evenly, remainder on the last), re-evaluating
    /// their slow flag against the new totals. Returns how many entries
    /// absorbed a share; 0 means the transaction's queries are no
    /// longer in the ring (or it ran none) and the caller should trace
    /// the commit standalone.
    pub fn attribute_commit(&self, txn: u64, commit_ns: u64) -> usize {
        let slow_ns = self.slow_query_ns();
        let mut q = self.entries.lock().unwrap();
        let idx: Vec<usize> = q
            .iter()
            .enumerate()
            .filter(|(_, t)| t.txn == Some(txn))
            .map(|(i, _)| i)
            .collect();
        if idx.is_empty() {
            return 0;
        }
        let share = commit_ns / idx.len() as u64;
        let remainder = commit_ns % idx.len() as u64;
        for (pos, &i) in idx.iter().enumerate() {
            let t = &mut q[i];
            t.commit_ns += share + if pos + 1 == idx.len() { remainder } else { 0 };
            if t.total_ns() >= slow_ns {
                t.slow = true;
            }
        }
        idx.len()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// True when nothing has been traced yet.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(fp: u64, slow: bool) -> QueryTrace {
        QueryTrace {
            fingerprint: fp,
            plan_hash: fp ^ 1,
            plan_ns: 10,
            exec_ns: 20,
            commit_ns: 0,
            rows: 1,
            cache_hit: false,
            slow,
            max_q: 0.0,
            txn: None,
            session: None,
            profile: None,
        }
    }

    fn profiled(fp: u64, max_q: f64) -> QueryTrace {
        use crate::profile::{OpProfile, QueryProfile};
        QueryTrace {
            max_q,
            profile: Some(Arc::new(QueryProfile {
                fingerprint: fp,
                plan_hash: fp ^ 1,
                plan_ns: 1,
                exec_ns: 1,
                cache_hit: false,
                rows: 1,
                root: OpProfile {
                    label: "SeqScan".into(),
                    est_rows: 1.0,
                    corr: 1.0,
                    stats: Default::default(),
                    detail: Vec::new(),
                    children: Vec::new(),
                },
            })),
            ..entry(fp, false)
        }
    }

    #[test]
    fn ring_bounds_and_order() {
        let ring = TraceRing::new(3);
        for fp in 0..5 {
            ring.push(entry(fp, fp == 3));
        }
        let recent = ring.recent();
        assert_eq!(
            recent.iter().map(|t| t.fingerprint).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(ring.slow().len(), 1);
        assert_eq!(ring.slow()[0].fingerprint, 3);
        assert_eq!(recent[0].total_ns(), 30);
    }

    #[test]
    fn worst_plans_ranks_retained_profiles_by_q_error() {
        let ring = TraceRing::new(8);
        ring.push(entry(1, false)); // no profile: never surfaced
        ring.push(profiled(2, 4.0));
        ring.push(profiled(3, 80.0));
        ring.push(profiled(4, 9.5));
        let worst = ring.worst_plans(2);
        assert_eq!(
            worst.iter().map(|t| t.fingerprint).collect::<Vec<_>>(),
            vec![3, 4]
        );
        assert!(ring.worst_plans(10).len() == 3);
    }

    #[test]
    fn attribute_commit_distributes_across_txn_entries() {
        let ring = TraceRing::new(8);
        ring.set_slow_query_ms(1); // 1_000_000 ns threshold
        for fp in 0..3 {
            let mut t = entry(fp, false);
            t.txn = (fp < 2).then_some(7);
            ring.push(t);
        }
        // 1_000_001 ns over two entries: 500_000 each, remainder on
        // the last; per-entry totals (~500µs) stay under the 1ms slow
        // threshold.
        assert_eq!(ring.attribute_commit(7, 1_000_001), 2);
        let recent = ring.recent();
        assert_eq!(recent[0].commit_ns, 500_000);
        assert_eq!(recent[1].commit_ns, 500_001);
        assert_eq!(recent[2].commit_ns, 0); // not in txn 7
        assert!(!recent[0].slow);
        assert_eq!(ring.attribute_commit(7, 1_200_000), 2);
        assert!(ring.recent()[0].slow, "totals crossed the threshold");
        // Unknown transaction: nothing to attribute.
        assert_eq!(ring.attribute_commit(99, 1_000), 0);
    }
}
